//! Closed-loop autoscaling walkthrough: a diurnal day in 400 ms.
//!
//! The arc: a fleet sized for the evening peak serves a 10:1 diurnal
//! swing. Open-loop, every instance burns idle power all night for
//! traffic that is not there. Close the loop and the control plane
//! parks the fleet down the trough and boots it back up the ramp —
//! reactive scaling follows the load one boot-time late; predictive
//! scaling forecasts the ramp and boots ahead of it. The figure of
//! merit is SLO-attainment-per-watt.
//!
//! Run with `cargo run --release --example autoscaling`.

use pcnna::core::PcnnaConfig;
use pcnna::fleet::prelude::*;

/// Renders one controlled run's window trace as a sampled strip chart:
/// provisioned instances (`#` active, `~` booting) against the arrival
/// rate each window actually saw.
fn print_trace(label: &str, r: &ControlledReport, every: usize) {
    println!("{label} trace (one row per {every} windows):");
    println!("    t(ms)  arrivals  queue  provision");
    for w in r.trace.iter().step_by(every) {
        println!(
            "  {:7.1}  {:>8} {:>6}  {}{} {}",
            1e3 * w.t_s,
            w.arrivals,
            w.queue_depth,
            "#".repeat(w.active),
            "~".repeat(w.booting),
            w.active + w.booting,
        );
    }
    println!();
}

fn main() {
    // ---- 1. the day and the fleet ----------------------------------
    // A compressed diurnal cycle: 9k rps at the trough, 90k at the
    // peak, two full cycles in the horizon. The 8-instance fleet is
    // sized for the peak — which means most of it is dead weight at
    // 3 am.
    let scenario = FleetScenario {
        classes: vec![
            NetworkClass::alexnet(0.004, 1.0), // 4 ms SLO
            NetworkClass::lenet5(0.001, 3.0),  // 1 ms SLO, 3× traffic
        ],
        arrival: ArrivalProcess::Diurnal {
            base_rps: 9_000.0,
            peak_rps: 90_000.0,
            period_s: 0.2,
        },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); 8],
        max_batch: 32,
        queue_capacity: 100_000,
        horizon_s: 0.4,
        seed: 7,
        ..FleetScenario::default()
    };
    let cfg = ControlConfig {
        window_s: 0.002,            // observe + act every 2 ms
        boot_s: 0.004,              // boot + ring-lock/calibration cost per scale-up
        min_active: 1,              // never park the whole fleet
        initial_active: usize::MAX, // start fully provisioned
        max_step: 4,
        idle_power_w: 2.0, // laser bias + thermal lock per powered instance
    };

    // ---- 2. open loop: the full fleet, all night -------------------
    let open = scenario.simulate().unwrap();
    let open_power = uncontrolled_power_metrics(&open, scenario.instances.len(), cfg.idle_power_w);
    println!("open loop — all 8 instances powered for the whole day:");
    println!(
        "  SLO {:.2}%, p99 {:.3} ms, mean power {:.1} W, SLO-per-watt {:.5}",
        100.0 * open.slo_attainment,
        1e3 * open.latency.p99_s,
        open_power.mean_power_w,
        open_power.slo_per_watt
    );
    println!();

    // ---- 3. closed loop, reactive ----------------------------------
    // Hysteresis on this window's load factor: scales up the moment
    // load crosses the threshold — which is one boot-time after it
    // should have — and drifts down one instance at a time.
    let reactive = scenario
        .simulate_controlled(&cfg, &mut ReactivePolicy::new())
        .unwrap();
    print_trace("reactive", &reactive, 10);

    // ---- 4. closed loop, predictive --------------------------------
    // Holt double-EWMA forecast one boot-lead ahead: the ramp is in
    // the trend term, so capacity is already locked and serving when
    // the load lands.
    let predictive = scenario
        .simulate_controlled(&cfg, &mut PredictivePolicy::new())
        .unwrap();
    print_trace("predictive", &predictive, 10);

    // ---- 5. the scoreboard -----------------------------------------
    println!("policy      SLO %   p99 ms  avg inst  watts   SLO/W   scale up/down");
    for (name, r, p) in [
        ("open loop", &open, &open_power),
        ("reactive", &reactive.report, &reactive.power),
        ("predictive", &predictive.report, &predictive.power),
    ] {
        let mean_active = p.powered_instance_s / r.makespan_s;
        println!(
            "  {:<10} {:>6.2} {:>8.3} {:>8.2} {:>7.1} {:>7.5}   {}",
            name,
            100.0 * r.slo_attainment,
            1e3 * r.latency.p99_s,
            if name == "open loop" {
                8.0
            } else {
                mean_active
            },
            p.mean_power_w,
            p.slo_per_watt,
            if name == "open loop" {
                "-".to_owned()
            } else if name == "reactive" {
                format!("{}/{}", reactive.scale_ups, reactive.scale_downs)
            } else {
                format!("{}/{}", predictive.scale_ups, predictive.scale_downs)
            }
        );
    }
    println!();

    // ---- 6. the takeaway -------------------------------------------
    let r = &reactive.report;
    assert_eq!(
        r.admitted,
        r.completed + r.resilience.unserved + r.resilience.shed,
        "conservation: admitted = completed + unserved + shed"
    );
    println!(
        "both controllers trade a few SLO points on the ramps for a \
         {:.0}% power cut — SLO-per-watt {:.2}x (reactive) and {:.2}x \
         (predictive) over the open loop",
        100.0 * (1.0 - reactive.power.mean_power_w / open_power.mean_power_w),
        reactive.power.slo_per_watt / open_power.slo_per_watt,
        predictive.power.slo_per_watt / open_power.slo_per_watt,
    );
    println!(
        "every number above reproduces bit-for-bit from seed {} — the \
         controlled engine keeps the same determinism contract as the \
         open-loop one",
        scenario.seed
    );
}
