//! Task-accuracy experiment the paper leaves open: train a small CNN (in
//! this repo, plain SGD), then run its convolution layer on the photonic
//! substrate — calibrated MRR banks, quantized drives, optional physical
//! noise — and measure how much *classification accuracy* survives.
//!
//! Run with: `cargo run --release --example trained_inference`

use pcnna::cnn::train::{orientation_dataset, TinyConvNet};
use pcnna::core::functional::FunctionalOptions;
use pcnna::core::{Pcnna, PcnnaConfig};

fn main() {
    // 1. Train on the synthetic orientation task.
    let mut net = TinyConvNet::new(12, 4, 2, 7).expect("valid net");
    let train_set = orientation_dataset(120, 12, 11);
    let test_set = orientation_dataset(60, 12, 99);
    let final_loss = net.train(&train_set, 15, 0.05).expect("training runs");
    let reference_acc = net.accuracy(&test_set).expect("eval runs");
    println!("trained tiny conv-net: final epoch loss {final_loss:.4}");
    println!(
        "reference (digital) test accuracy: {:.1}%",
        100.0 * reference_acc
    );
    println!();

    // 2. Re-run the test set with the conv layer computed photonically.
    let accel = Pcnna::new(PcnnaConfig::default()).expect("valid config");
    let mut results = Vec::new();
    for (label, opts) in [
        ("photonic (ideal devices)", FunctionalOptions::default()),
        (
            "photonic (with shot/thermal/RIN noise)",
            FunctionalOptions {
                noise: true,
                seed: 5,
                ..FunctionalOptions::default()
            },
        ),
    ] {
        let mut correct = 0usize;
        for (img, want) in &test_set {
            let run = accel
                .run_functional(&net.geometry, img, &net.kernels, &opts)
                .expect("layer fits the photonic link");
            let logits = net
                .logits_from_conv_output(&run.output)
                .expect("shapes chain");
            let got = pcnna::cnn::metrics::argmax(&logits).unwrap_or(0);
            if got == *want {
                correct += 1;
            }
        }
        let acc = correct as f64 / test_set.len() as f64;
        println!("{label}: {:.1}% test accuracy", 100.0 * acc);
        results.push(acc);
    }

    println!();
    println!(
        "accuracy retained: {:.1}% (ideal), {:.1}% (noisy) of the digital reference",
        100.0 * results[0] / reference_acc,
        100.0 * results[1] / reference_acc
    );
    println!("the analog MAC's ~5 effective bits are ample for this task — the");
    println!("precision story behind PCNNA-style accelerators in one number.");
}
