//! Quickstart: map one convolution layer onto PCNNA and read off the
//! paper's three headline quantities — ring count, ring area, and execution
//! time (optical core vs. full system).
//!
//! Run with: `cargo run --example quickstart`

use pcnna::cnn::geometry::ConvGeometry;
use pcnna::core::{Pcnna, PcnnaConfig};

fn main() {
    // AlexNet conv1 exactly as the paper parameterises it:
    // 224x224x3 input, 96 kernels of 11x11, stride 4, padding 2.
    let conv1 = ConvGeometry::new(224, 11, 2, 4, 3, 96).expect("valid geometry");

    let accel = Pcnna::new(PcnnaConfig::default()).expect("valid default config");
    let report = accel
        .analyze_conv_layers(&[("conv1", conv1)])
        .expect("conv1 fits the paper design point");
    let layer = &report.layers[0];

    println!("PCNNA quickstart — {}", layer.geometry);
    println!();
    println!("receptive-field filtering (the paper's key optimization):");
    println!("  rings without filtering : {:>14}", layer.rings_unfiltered);
    println!("  rings with filtering    : {:>14}", layer.rings_filtered);
    println!(
        "  saving                  : {:>13.0}x",
        layer.rings_unfiltered as f64 / layer.rings_filtered as f64
    );
    println!();
    println!(
        "execution time for the layer ({} kernel locations):",
        layer.locations
    );
    println!("  optical core, PCNNA(O)  : {:>14}", layer.optical_time);
    println!("  full system, PCNNA(O+E) : {:>14}", layer.full_system_time);
    println!("  bound by                : {:>14}", layer.bottleneck);
    println!();
    println!(
        "the optical core idles {:.1}x waiting for the electronic I/O — \
         the paper's central full-system observation",
        layer.timing.io_slowdown()
    );
}
