//! Fault-tolerance walkthrough: a heat wave hits a serving fleet.
//!
//! The arc: derive the thermal drift budget from the real weight-bank
//! physics, load the committed `scenarios/heat-wave-demo.json` scenario
//! file, run its fleet healthy as the baseline, then replay the same
//! traffic through the file's `heat-wave` chaos timeline — ambient
//! climbs past the budget, instances drain and recalibrate in staggered
//! waves, load fails over to whoever is still locked, and the fleet
//! recovers as the excursion passes — and read the resilience report.
//!
//! Run with `cargo run --release --example fault_tolerance`.

use pcnna::fleet::prelude::*;
use pcnna::photonics::degradation::DegradationLimits;
use pcnna::photonics::microring::RingParams;
use pcnna::photonics::thermal::ThermalModel;
use pcnna::photonics::wavelength::WdmGrid;
use pcnna::photonics::weight_bank::MrrWeightBank;

/// The committed scenario file this walkthrough replays.
const SCENARIO_FILE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/heat-wave-demo.json");

fn main() {
    // ---- 1. the physics: how much drift can a weight bank take? -----
    let thermal = ThermalModel::default();
    let ring = RingParams {
        tuning_bits: None,
        ..RingParams::default()
    };
    let grid = WdmGrid::dense_50ghz(8).unwrap();
    let mut bank = MrrWeightBank::new(grid, ring).unwrap();
    let targets: Vec<f64> = (0..8).map(|i| -0.7 + 1.4 * i as f64 / 8.0).collect();
    bank.calibrate(&targets, 1e-6, 200).unwrap();
    let uncompensated = DegradationLimits::from_bank(&thermal, &bank, 0.01, 0.5);
    println!("thermal drift budget, from the bank model:");
    println!(
        "  uncompensated bank, 1% weight tolerance: {:.1} mK \
         ({:.2} half-linewidths of resonance shift)",
        1e3 * uncompensated.max_ambient_excursion_k,
        uncompensated.excursion_in_linewidths(&thermal, &ring),
    );
    let limits = DegradationLimits::default();
    println!(
        "  closed-loop dither lock (deployment default): {:.0} mK — \
         past that, drain and re-lock",
        1e3 * limits.max_ambient_excursion_k
    );
    println!();

    // ---- 2. the fleet and its traffic, from the scenario file ------
    // A mixed AlexNet/LeNet class mix at 45k req/s over 4 instances for
    // 250 ms, faults declared as a `heat-wave` chaos reference with a
    // 5 ms re-lock window — the same file `scenarios --file` replays
    // and the fuzz/regression machinery round-trips.
    let spec = ScenarioSpec::load(SCENARIO_FILE).unwrap();
    let base = spec.compile().unwrap().scenario;
    println!(
        "scenario file {} ({}): {} classes, {} instances, {:.0} req/s for {:.0} ms",
        spec.name,
        SCENARIO_FILE,
        base.classes.len(),
        base.instances.len(),
        base.arrival.mean_rate_rps(),
        1e3 * base.horizon_s,
    );
    let healthy = FleetScenario {
        faults: FaultTimeline::new(),
        ..base.clone()
    }
    .simulate()
    .unwrap();
    println!("healthy fleet (faults stripped from the file's scenario):");
    println!("{}", healthy.render());

    // ---- 3. the heat wave ------------------------------------------
    // The file's chaos reference compiled to a staggered ambient
    // excursion at 2.5× the drift budget: every instance is forced past
    // its lock range at least twice (once on the way up, once down).
    let faults = &base.faults;
    println!(
        "heat wave timeline: {} events across {} instances; instance 0 sees:",
        faults.len(),
        base.instances.len()
    );
    for e in faults.events().iter().filter(|e| e.instance == 0) {
        match e.action {
            FaultAction::Degrade(h) => println!(
                "  t={:6.1} ms  drift {:+6.0} mK since last lock{}",
                1e3 * e.at_s,
                1e3 * h.ambient_delta_k,
                if h.ambient_delta_k.abs() > limits.max_ambient_excursion_k {
                    "  ← past budget: weights wrong, must re-lock"
                } else {
                    ""
                }
            ),
            FaultAction::Recalibrate { duration_s } => println!(
                "  t={:6.1} ms  drain + recalibrate for {:.1} ms",
                1e3 * e.at_s,
                1e3 * duration_s
            ),
            FaultAction::Fail => println!("  t={:6.1} ms  hard failure", 1e3 * e.at_s),
        }
    }
    println!();

    // ---- 4. the same traffic through the storm ---------------------
    let stormy = base.simulate().unwrap();
    println!("the same fleet through the heat wave:");
    println!("{}", stormy.render());

    // ---- 5. the takeaway -------------------------------------------
    let r = &stormy.resilience;
    println!("recovery arc:");
    println!(
        "  {} recalibrations took {:.1} ms of instance downtime \
         (availability {:.2}% vs 100% healthy)",
        r.recalibrations,
        1e3 * r.recal_downtime_s,
        100.0 * r.availability
    );
    println!(
        "  SLO attainment {:.2}% → {:.2}% ({:+.2} points), p99 {:.3} ms → {:.3} ms",
        100.0 * healthy.slo_attainment,
        100.0 * stormy.slo_attainment,
        100.0 * (stormy.slo_attainment - healthy.slo_attainment),
        1e3 * healthy.latency.p99_s,
        1e3 * stormy.latency.p99_s
    );
    println!(
        "  conservation held: {} admitted = {} completed + {} unserved, \
         {} failed over",
        stormy.admitted, stormy.completed, r.unserved, r.failed_over
    );
    assert_eq!(stormy.admitted, stormy.completed + r.unserved);
    println!();
    println!(
        "every number above reproduces bit-for-bit from seed {} — \
         this walkthrough is also the determinism demo",
        base.seed
    );
}
