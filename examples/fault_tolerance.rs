//! Fault-tolerance walkthrough: a heat wave hits a serving fleet.
//!
//! The arc: derive the thermal drift budget from the real weight-bank
//! physics, run a healthy 4-instance fleet as the baseline, then replay
//! the same traffic through the `heat-wave` chaos scenario — ambient
//! climbs past the budget, instances drain and recalibrate in staggered
//! waves, load fails over to whoever is still locked, and the fleet
//! recovers as the excursion passes — and read the resilience report.
//!
//! Run with `cargo run --release --example fault_tolerance`.

use pcnna::core::PcnnaConfig;
use pcnna::fleet::prelude::*;
use pcnna::photonics::degradation::DegradationLimits;
use pcnna::photonics::microring::RingParams;
use pcnna::photonics::thermal::ThermalModel;
use pcnna::photonics::wavelength::WdmGrid;
use pcnna::photonics::weight_bank::MrrWeightBank;

fn main() {
    // ---- 1. the physics: how much drift can a weight bank take? -----
    let thermal = ThermalModel::default();
    let ring = RingParams {
        tuning_bits: None,
        ..RingParams::default()
    };
    let grid = WdmGrid::dense_50ghz(8).unwrap();
    let mut bank = MrrWeightBank::new(grid, ring).unwrap();
    let targets: Vec<f64> = (0..8).map(|i| -0.7 + 1.4 * i as f64 / 8.0).collect();
    bank.calibrate(&targets, 1e-6, 200).unwrap();
    let uncompensated = DegradationLimits::from_bank(&thermal, &bank, 0.01, 0.5);
    println!("thermal drift budget, from the bank model:");
    println!(
        "  uncompensated bank, 1% weight tolerance: {:.1} mK \
         ({:.2} half-linewidths of resonance shift)",
        1e3 * uncompensated.max_ambient_excursion_k,
        uncompensated.excursion_in_linewidths(&thermal, &ring),
    );
    let limits = DegradationLimits::default();
    println!(
        "  closed-loop dither lock (deployment default): {:.0} mK — \
         past that, drain and re-lock",
        1e3 * limits.max_ambient_excursion_k
    );
    println!();

    // ---- 2. the fleet and its traffic ------------------------------
    let base = FleetScenario {
        classes: vec![
            NetworkClass::alexnet(0.004, 1.0), // 4 ms SLO
            NetworkClass::lenet5(0.001, 3.0),  // 1 ms SLO, 3× traffic
        ],
        arrival: ArrivalProcess::Poisson { rate_rps: 45_000.0 },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); 4],
        max_batch: 32,
        queue_capacity: 100_000,
        horizon_s: 0.25,
        seed: 7,
        limits,
        ..FleetScenario::default()
    };
    let healthy = base.simulate().unwrap();
    println!("healthy fleet (no faults):");
    println!("{}", healthy.render());

    // ---- 3. the heat wave ------------------------------------------
    // Staggered ambient excursion to 2.5× the drift budget: every
    // instance is forced past its lock range at least twice (once on
    // the way up, once on the way down).
    let chaos = ChaosConfig {
        limits,
        recalibration_s: 5e-3, // 5 ms to re-lock every ring
        seed: 7,
    };
    let faults = chaos_timeline(ChaosKind::HeatWave, &base.instances, base.horizon_s, &chaos);
    println!(
        "heat wave timeline: {} events across {} instances; instance 0 sees:",
        faults.len(),
        base.instances.len()
    );
    for e in faults.events().iter().filter(|e| e.instance == 0) {
        match e.action {
            FaultAction::Degrade(h) => println!(
                "  t={:6.1} ms  drift {:+6.0} mK since last lock{}",
                1e3 * e.at_s,
                1e3 * h.ambient_delta_k,
                if h.ambient_delta_k.abs() > limits.max_ambient_excursion_k {
                    "  ← past budget: weights wrong, must re-lock"
                } else {
                    ""
                }
            ),
            FaultAction::Recalibrate { duration_s } => println!(
                "  t={:6.1} ms  drain + recalibrate for {:.1} ms",
                1e3 * e.at_s,
                1e3 * duration_s
            ),
            FaultAction::Fail => println!("  t={:6.1} ms  hard failure", 1e3 * e.at_s),
        }
    }
    println!();

    // ---- 4. the same traffic through the storm ---------------------
    let stormy = FleetScenario {
        faults,
        ..base.clone()
    }
    .simulate()
    .unwrap();
    println!("the same fleet through the heat wave:");
    println!("{}", stormy.render());

    // ---- 5. the takeaway -------------------------------------------
    let r = &stormy.resilience;
    println!("recovery arc:");
    println!(
        "  {} recalibrations took {:.1} ms of instance downtime \
         (availability {:.2}% vs 100% healthy)",
        r.recalibrations,
        1e3 * r.recal_downtime_s,
        100.0 * r.availability
    );
    println!(
        "  SLO attainment {:.2}% → {:.2}% ({:+.2} points), p99 {:.3} ms → {:.3} ms",
        100.0 * healthy.slo_attainment,
        100.0 * stormy.slo_attainment,
        100.0 * (stormy.slo_attainment - healthy.slo_attainment),
        1e3 * healthy.latency.p99_s,
        1e3 * stormy.latency.p99_s
    );
    println!(
        "  conservation held: {} admitted = {} completed + {} unserved, \
         {} failed over",
        stormy.admitted, stormy.completed, r.unserved, r.failed_over
    );
    assert_eq!(stormy.admitted, stormy.completed + r.unserved);
    println!();
    println!(
        "every number above reproduces bit-for-bit from seed {} — \
         this walkthrough is also the determinism demo",
        base.seed
    );
}
