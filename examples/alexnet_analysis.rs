//! The paper's full evaluation in one report: Figure 5 (microring counts)
//! and Figure 6 (execution time vs. Eyeriss-like and YodaNN-like engines)
//! for all five AlexNet convolution layers, plus the pipeline-simulation
//! cross-check the paper lacks.
//!
//! Run with: `cargo run --release --example alexnet_analysis`

use pcnna::baselines::{AcceleratorModel, Eyeriss, YodaNn};
use pcnna::cnn::zoo;
use pcnna::core::config::PcnnaConfig;
use pcnna::core::mapping::{figure5, AreaModel};
use pcnna::core::report::{render_fig5, render_simulation, render_timing};
use pcnna::core::Pcnna;

fn main() {
    let layers = zoo::alexnet_conv_layers();
    let accel = Pcnna::new(PcnnaConfig::default()).expect("valid default config");

    println!("== Figure 5: microrings per AlexNet conv layer ==");
    print!("{}", render_fig5(&figure5(&layers, &AreaModel::default())));
    println!();

    println!("== Figure 6: execution time (PCNNA analytical) ==");
    let report = accel
        .analyze_conv_layers(&layers)
        .expect("alexnet fits the paper design point");
    print!("{}", render_timing(&report));
    println!();

    println!("== Figure 6: electronic baselines ==");
    let eyeriss = Eyeriss::default();
    let yodann = YodaNn::default();
    println!("{:<8} {:>12} {:>12}", "layer", "Eyeriss", "YodaNN");
    for (name, g) in &layers {
        println!(
            "{:<8} {:>12} {:>12}",
            name,
            eyeriss.layer_time(g).to_string(),
            yodann.layer_time(g).to_string()
        );
    }
    println!();

    let e_total = eyeriss.network_time(&layers);
    println!(
        "totals: Eyeriss {} | YodaNN {} | PCNNA(O+E) {} | PCNNA(O) {}",
        e_total,
        yodann.network_time(&layers),
        report.total_full_system(),
        report.total_optical()
    );
    println!(
        "network speedups vs Eyeriss: O+E = {:.0}x, O = {:.0}x",
        e_total.ratio(report.total_full_system()),
        e_total.ratio(report.total_optical())
    );
    println!();

    println!("== pipeline simulation cross-check (exact update sets) ==");
    let sims = accel
        .simulate_conv_layers(&layers)
        .expect("alexnet fits the paper design point");
    print!("{}", render_simulation(&sims));
}
