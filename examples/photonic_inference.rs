//! Functional photonic inference: run a small CNN's convolution layers
//! *through the device models* — calibrated microring weight banks, MZM
//! input modulators, balanced photodiodes, quantized converters — and
//! compare each photonic feature map against the ground-truth reference
//! convolution, with and without physical noise.
//!
//! This is the experiment the paper does not show: evidence that the
//! broadcast-and-weight MAC actually computes correct convolutions.
//!
//! Run with: `cargo run --release --example photonic_inference`

use pcnna::cnn::reference;
use pcnna::cnn::workload::Workload;
use pcnna::cnn::zoo;
use pcnna::core::functional::FunctionalOptions;
use pcnna::core::{Pcnna, PcnnaConfig};

fn main() {
    let accel = Pcnna::new(PcnnaConfig::default()).expect("valid default config");
    let net = zoo::cifar_small();
    println!(
        "functional photonic inference over the conv layers of `{}`",
        net.name()
    );
    println!();
    println!(
        "{:<6} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "layer", "shape", "ideal-SNR", "noisy-SNR", "max-err", "calib-resid"
    );

    for (i, conv) in net.conv_layers().enumerate() {
        let g = conv.geometry;
        let seed = 100 + i as u64;
        // Post-ReLU-like activations: non-negative, as in a real CNN stack.
        let wl = Workload::uniform(&g, seed);

        let ideal = accel
            .run_functional(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
            .expect("layer fits the photonic link");
        let noisy_opts = FunctionalOptions {
            noise: true,
            seed,
            ..FunctionalOptions::default()
        };
        let noisy = accel
            .run_functional(&g, &wl.input, &wl.kernels, &noisy_opts)
            .expect("layer fits the photonic link");

        println!(
            "{:<6} {:>14} {:>9.1} dB {:>9.1} dB {:>12.4} {:>12.4}",
            conv.name,
            g.to_string().split(" -> ").nth(1).unwrap_or("?"),
            ideal.accuracy.snr_db,
            noisy.accuracy.snr_db,
            noisy.accuracy.max_abs_error,
            noisy.worst_calibration_residual,
        );
    }

    println!();
    println!("sanity: the photonic output of c1 still ranks activations like the");
    println!("reference does (ReLU + argmax agreement on a sample of positions):");
    let g = zoo::cifar_small()
        .conv_layers()
        .next()
        .expect("cifar_small has conv layers")
        .geometry;
    let wl = Workload::uniform(&g, 999);
    let run = accel
        .run_functional(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
        .expect("layer fits");
    let photonic_relu = reference::relu(&run.output);
    let reference_relu = reference::relu(&run.reference);
    let o = g.output_side();
    let mut agree = 0usize;
    let mut total = 0usize;
    for y in 0..o {
        for x in 0..o {
            let best = |t: &pcnna::cnn::tensor::Tensor| {
                (0..g.kernels())
                    .max_by(|&a, &b| t.at3(a, y, x).total_cmp(&t.at3(b, y, x)))
                    .expect("at least one kernel")
            };
            if best(&photonic_relu) == best(&reference_relu) {
                agree += 1;
            }
            total += 1;
        }
    }
    println!(
        "  strongest-kernel agreement: {agree}/{total} = {:.1}%",
        100.0 * agree as f64 / total as f64
    );
}
