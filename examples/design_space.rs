//! Design-space exploration walkthrough: from the paper's single design
//! point to a Pareto frontier and a co-designed serving fleet.
//!
//! The paper fixes one PCNNA configuration (10 input DACs, 5 GHz clock,
//! one ADC model, 50 GHz WDM spacing). `pcnna-dse` treats every one of
//! those choices as a knob and searches the space for designs no other
//! design beats on all of latency, energy, area, and SNR headroom at
//! once.
//!
//! Run with: `cargo run --release --example design_space`

use pcnna::cnn::zoo;
use pcnna::core::config::PcnnaConfig;
use pcnna::core::Pcnna;
use pcnna::dse::prelude::*;
use pcnna::fleet::prelude::*;

fn main() {
    // -- 0. the paper's design point, for reference -------------------
    let accel = Pcnna::new(PcnnaConfig::default()).expect("valid config");
    let report = accel
        .analyze_conv_layers(&zoo::alexnet_conv_layers())
        .expect("alexnet fits");
    let paper_total_us: f64 = report
        .layers
        .iter()
        .map(|l| l.full_system_time.as_us_f64())
        .sum();
    println!("paper design point: AlexNet conv stack in {paper_total_us:.1} µs (O+E)\n");

    // -- 1. define the space and sweep it ------------------------------
    // The smoke space is 48 points so the example runs in milliseconds;
    // swap in DesignSpace::default() for the full 3 888-point grid.
    let space = DesignSpace::smoke();
    let evaluator = Evaluator::alexnet();
    let threads = default_threads();
    let sweep = grid_sweep(&space, &evaluator, threads).expect("space is valid");
    println!(
        "grid sweep: {} designs evaluated ({} feasible) → {} on the Pareto frontier",
        sweep.stats.evaluated,
        sweep.stats.valid,
        sweep.frontier.len()
    );
    println!(
        "  {:<10} {:>5} {:>5} {:>6} {:>9} {:>10} {:>9} {:>8}",
        "design", "ndac", "nadc", "alloc?", "lat µs", "energy mJ", "area mm²", "snr dB"
    );
    for e in sweep.frontier.sorted_by_latency() {
        println!(
            "  {:<10} {:>5} {:>5} {:>6} {:>9.1} {:>10.3} {:>9.1} {:>8.1}",
            format!("{:08x}", (e.point.fingerprint >> 32) as u32),
            e.candidate.config.n_input_dacs,
            e.candidate.config.n_adcs,
            e.candidate.config.allocation.label(),
            1e6 * e.point.latency_s,
            1e3 * e.point.energy_j,
            e.point.area_mm2,
            e.point.snr_headroom_db,
        );
    }
    println!();

    // -- 2. evolutionary refinement over the full space ----------------
    // Same seed ⇒ same frontier, bit for bit, regardless of thread count.
    let evo = EvolutionConfig {
        population: 32,
        generations: 6,
        seed: 7,
        threads,
        ..EvolutionConfig::default()
    };
    let refined = evolve(&DesignSpace::default(), &evaluator, &evo).expect("space is valid");
    println!(
        "evolutionary search over the full space (seed {}): {} fresh evaluations, \
         {} cache hits → {} Pareto designs",
        evo.seed,
        refined.stats.evaluated,
        refined.stats.cache_hits,
        refined.frontier.len()
    );
    let best = refined.frontier.sorted_by_latency()[0];
    println!(
        "fastest frontier design: {:.1} µs ({:.1}× the paper point) at {:.2} mJ/frame\n",
        1e6 * best.point.latency_s,
        paper_total_us / (1e6 * best.point.latency_s),
        1e3 * best.point.energy_j,
    );

    // -- 3. close the loop: which *fleet* should we build? -------------
    let rows = co_design(
        &refined.frontier,
        &[
            NetworkClass::alexnet(0.004, 1.0),
            NetworkClass::lenet5(0.0005, 3.0),
        ],
        &CodesignConfig {
            top_k: 3,
            fleet_size: 4,
            arrival: ArrivalProcess::Poisson { rate_rps: 10_000.0 },
            horizon_s: 0.2,
            ..CodesignConfig::default()
        },
    )
    .expect("frontier is non-empty");
    println!("fleet co-design (4 instances, 10 000 req/s AlexNet+LeNet):");
    for r in &rows {
        println!(
            "  {:<18} SLO {:>6.2}%  {:>6.1} W  {:>8.4} SLO%/W  p99 {:.3} ms",
            r.label,
            100.0 * r.slo_attainment,
            r.mean_power_w,
            100.0 * r.slo_per_watt,
            r.p99_ms
        );
    }
    println!("\nbest fleet: {}", rows[0].label);
}
