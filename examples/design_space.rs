//! Design-space exploration beyond the paper's single design point: where
//! do the crossovers between bottlenecks fall as the DAC count, fast clock,
//! stride, and bottleneck model vary?
//!
//! Run with: `cargo run --release --example design_space`

use pcnna::cnn::zoo;
use pcnna::core::config::{BottleneckModel, PcnnaConfig, ScanOrder};
use pcnna::core::Pcnna;
use pcnna::electronics::clock::ClockDomain;

fn main() {
    let conv4 = zoo::alexnet_conv_layers()[3].1;

    println!("== NDAC sweep (conv4, DAC-only model) ==");
    println!("{:<8} {:>14} {:>18}", "NDAC", "full-system", "vs optical");
    for n in [1usize, 2, 4, 8, 10, 16, 32, 64, 128] {
        let accel = Pcnna::new(PcnnaConfig::default().with_input_dacs(n)).expect("valid config");
        let row = &accel
            .analyze_conv_layers(&[("conv4", conv4)])
            .expect("conv4 fits")
            .layers[0];
        println!(
            "{:<8} {:>14} {:>17.1}x",
            n,
            row.full_system_time.to_string(),
            row.timing.io_slowdown()
        );
    }
    println!("diminishing returns set in once the DAC batch drops under one");
    println!("fast-clock cycle; the optical core becomes the limit.");
    println!();

    println!("== fast-clock sweep (conv4, optical core) ==");
    println!("{:<10} {:>14}", "clock", "PCNNA(O)");
    for ghz in [1.0f64, 2.5, 5.0, 10.0, 20.0, 40.0] {
        let clock = ClockDomain::new("fast", ghz * 1e9).expect("positive frequency");
        let accel =
            Pcnna::new(PcnnaConfig::default().with_fast_clock(clock)).expect("valid config");
        let row = &accel
            .analyze_conv_layers(&[("conv4", conv4)])
            .expect("conv4 fits")
            .layers[0];
        println!(
            "{:<10} {:>14}",
            format!("{ghz} GHz"),
            row.optical_time.to_string()
        );
    }
    println!();

    println!("== bottleneck model comparison (all AlexNet layers) ==");
    let layers = zoo::alexnet_conv_layers();
    let paper = Pcnna::new(PcnnaConfig::default()).expect("valid config");
    let fuller = Pcnna::new(PcnnaConfig::default().with_bottleneck(BottleneckModel::MaxOfStages))
        .expect("valid config");
    let a = paper.analyze_conv_layers(&layers).expect("fits");
    let b = fuller.analyze_conv_layers(&layers).expect("fits");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "layer", "paper(DAC)", "max-of-stages", "bound-by"
    );
    for (pa, fu) in a.layers.iter().zip(&b.layers) {
        println!(
            "{:<8} {:>14} {:>14} {:>10}",
            pa.name,
            pa.full_system_time.to_string(),
            fu.full_system_time.to_string(),
            fu.bottleneck
        );
    }
    println!();

    println!("== stride sensitivity (conv4 variants, DAC-only) ==");
    println!("{:<8} {:>10} {:>14}", "stride", "Nlocs", "full-system");
    for s in [1usize, 2, 3] {
        let g = conv4.with_stride(s).expect("valid stride");
        let row = &paper
            .analyze_conv_layers(&[("conv4s", g)])
            .expect("fits")
            .layers[0];
        println!(
            "{:<8} {:>10} {:>14}",
            s,
            row.locations,
            row.full_system_time.to_string()
        );
    }
    println!();

    println!("== scan-order ablation (simulation, conv2) ==");
    let conv2 = layers[1].1;
    for (label, scan) in [
        ("row-major", ScanOrder::RowMajor),
        ("serpentine", ScanOrder::Serpentine),
    ] {
        let accel = Pcnna::new(PcnnaConfig::default().with_scan(scan)).expect("valid config");
        let r = &accel
            .simulate_conv_layers(&[("conv2", conv2)])
            .expect("fits")[0];
        println!(
            "{label:<10}: sim {} | {} input loads | hit rate {:.1}%",
            r.total_time,
            r.total_input_loads,
            100.0 * r.cache.hit_rate()
        );
    }
}
