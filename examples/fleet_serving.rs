//! Fleet serving demo: AlexNet + LeNet mixed traffic on a 4-instance PCNNA
//! fleet, printing a latency-percentile / SLO table per scheduling policy.
//!
//! Run with `cargo run --release --example fleet_serving`.

use pcnna::core::PcnnaConfig;
use pcnna::fleet::prelude::*;

fn main() {
    // 3:1 LeNet:AlexNet mixed traffic. LeNet requests are interactive
    // (500 µs SLO); AlexNet requests get 4 ms.
    let classes = vec![
        NetworkClass::alexnet(0.004, 1.0),
        NetworkClass::lenet5(0.0005, 3.0),
    ];
    // A heterogeneous 4-instance fleet: two paper design points and two
    // wider-front-end variants (20 input DACs).
    let instances = vec![
        PcnnaConfig::default(),
        PcnnaConfig::default(),
        PcnnaConfig::default().with_input_dacs(20),
        PcnnaConfig::default().with_input_dacs(20),
    ];
    // Bursty traffic: 10k req/s background with 90k req/s spikes.
    let arrival = ArrivalProcess::Mmpp {
        low_rps: 10_000.0,
        high_rps: 90_000.0,
        dwell_low_s: 0.2,
        dwell_high_s: 0.1,
    };

    println!("PCNNA fleet: 4 instances, AlexNet + 3x LeNet, bursty (MMPP) traffic");
    println!();

    for (label, policy) in [
        ("FIFO", Policy::Fifo),
        ("earliest-deadline-first", Policy::EarliestDeadlineFirst),
        ("network-affinity", Policy::NetworkAffinity),
    ] {
        let report = FleetScenario {
            classes: classes.clone(),
            arrival,
            policy,
            instances: instances.clone(),
            max_batch: 32,
            queue_capacity: 50_000,
            horizon_s: 2.0,
            seed: 7,
            ..FleetScenario::default()
        }
        .simulate()
        .expect("scenario is valid");

        println!("=== policy: {label}");
        print!("{}", report.render());
        println!();
    }
}
