//! Fleet serving demo: AlexNet + LeNet mixed traffic on a 4-instance PCNNA
//! fleet, printing a latency-percentile / SLO table per scheduling policy —
//! then the same workload scaled to a 512-instance fleet on the sharded
//! engine, with its bit-identical-across-shards determinism check.
//!
//! Run with `cargo run --release --example fleet_serving`.

use pcnna::core::PcnnaConfig;
use pcnna::fleet::prelude::*;
use std::time::Instant;

fn main() {
    // 3:1 LeNet:AlexNet mixed traffic. LeNet requests are interactive
    // (500 µs SLO); AlexNet requests get 4 ms.
    let classes = vec![
        NetworkClass::alexnet(0.004, 1.0),
        NetworkClass::lenet5(0.0005, 3.0),
    ];
    // A heterogeneous 4-instance fleet: two paper design points and two
    // wider-front-end variants (20 input DACs).
    let instances = vec![
        PcnnaConfig::default(),
        PcnnaConfig::default(),
        PcnnaConfig::default().with_input_dacs(20),
        PcnnaConfig::default().with_input_dacs(20),
    ];
    // Bursty traffic: 10k req/s background with 90k req/s spikes.
    let arrival = ArrivalProcess::Mmpp {
        low_rps: 10_000.0,
        high_rps: 90_000.0,
        dwell_low_s: 0.2,
        dwell_high_s: 0.1,
    };

    println!("PCNNA fleet: 4 instances, AlexNet + 3x LeNet, bursty (MMPP) traffic");
    println!();

    for (label, policy) in [
        ("FIFO", Policy::Fifo),
        ("earliest-deadline-first", Policy::EarliestDeadlineFirst),
        ("network-affinity", Policy::NetworkAffinity),
    ] {
        let report = FleetScenario {
            classes: classes.clone(),
            arrival,
            policy,
            instances: instances.clone(),
            max_batch: 32,
            queue_capacity: 50_000,
            horizon_s: 2.0,
            seed: 7,
            ..FleetScenario::default()
        }
        .simulate()
        .expect("scenario is valid");

        println!("=== policy: {label}");
        print!("{}", report.render());
        println!();
    }

    // --- scaling one simulation: the sharded engine -------------------
    // Eight traffic classes over 512 instances: the shard plan builds 8
    // independent cells, and the report is bit-identical at any shard /
    // thread count (the `shards = 1` run is the oracle).
    let big = FleetScenario {
        classes: (0..8)
            .map(|i| NetworkClass::lenet5(0.001 + 0.0005 * f64::from(i), 1.0))
            .collect(),
        arrival: ArrivalProcess::Poisson {
            rate_rps: 2_000_000.0,
        },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); 512],
        max_batch: 32,
        queue_capacity: 500_000,
        horizon_s: 0.2,
        seed: 7,
        ..FleetScenario::default()
    };
    let plan = big.shard_plan();
    println!(
        "=== sharded engine: 512 instances, 8 classes -> {} cells",
        plan.n_cells()
    );
    let t0 = Instant::now();
    let oracle = big.simulate_sharded(1, 1).expect("scenario is valid");
    let t_oracle = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let sharded = big.simulate_sharded(8, 8).expect("scenario is valid");
    let t_sharded = t0.elapsed().as_secs_f64();
    assert_eq!(oracle, sharded, "same seed => bit-identical at any shards");
    println!(
        "{} requests, shards=1 in {:.2} s vs shards=8 in {:.2} s — reports bit-identical",
        sharded.completed, t_oracle, t_sharded
    );
    print!("{}", sharded.render());
}
