//! Analog-precision study: the paper stores 16-bit values, but what does
//! the *optical* MAC actually resolve? Sweeps laser power and ring Q,
//! reporting link SNR / ENOB and the end-to-end functional accuracy of a
//! small convolution under each condition.
//!
//! Run with: `cargo run --release --example noise_study`

use pcnna::cnn::geometry::ConvGeometry;
use pcnna::cnn::workload::Workload;
use pcnna::core::functional::FunctionalOptions;
use pcnna::core::{Pcnna, PcnnaConfig};
use pcnna::photonics::laser::LaserDiode;
use pcnna::photonics::link::{BroadcastWeightLink, LinkConfig};
use pcnna::photonics::microring::RingParams;
use pcnna::photonics::noise::snr_to_enob;

fn main() {
    let g = ConvGeometry::new(8, 3, 0, 1, 2, 4).expect("valid geometry");
    let wl = Workload::uniform(&g, 17);

    println!("== laser power vs link SNR and functional accuracy ==");
    println!(
        "{:<12} {:>12} {:>10} {:>14}",
        "laser power", "link SNR", "ENOB", "conv SNR (dB)"
    );
    for power_mw in [0.01f64, 0.1, 1.0, 10.0] {
        let link_cfg = LinkConfig {
            laser: LaserDiode {
                power_w: power_mw * 1e-3,
                ..LaserDiode::default()
            },
            ..LinkConfig::default()
        };
        let link = BroadcastWeightLink::new(link_cfg, g.n_kernel() as usize, g.kernels())
            .expect("valid link");
        let snr = link.full_scale_snr();

        let cfg = PcnnaConfig {
            link: link_cfg,
            ..PcnnaConfig::default()
        };
        let accel = Pcnna::new(cfg).expect("valid config");
        let opts = FunctionalOptions {
            noise: true,
            seed: 3,
            ..FunctionalOptions::default()
        };
        let run = accel
            .run_functional(&g, &wl.input, &wl.kernels, &opts)
            .expect("layer fits");
        println!(
            "{:<12} {:>11.0} {:>10.1} {:>14.1}",
            format!("{power_mw} mW"),
            snr,
            snr_to_enob(snr),
            run.accuracy.snr_db
        );
    }
    println!();

    println!("== ring Q vs calibration quality and functional accuracy ==");
    println!(
        "{:<10} {:>16} {:>14}",
        "Q factor", "calib residual", "conv SNR (dB)"
    );
    for q in [1.0e4f64, 2.5e4, 5.0e4, 1.0e5] {
        let base = LinkConfig::default();
        let link_cfg = LinkConfig {
            ring: RingParams {
                q_factor: q,
                ..base.ring
            },
            ..base
        };
        let cfg = PcnnaConfig {
            link: link_cfg,
            ..PcnnaConfig::default()
        };
        let accel = Pcnna::new(cfg).expect("valid config");
        let run = accel
            .run_functional(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
            .expect("layer fits");
        println!(
            "{:<10} {:>16.5} {:>14.1}",
            format!("{q:.0}"),
            run.worst_calibration_residual,
            run.accuracy.snr_db
        );
    }
    println!();
    println!("low Q widens the Lorentzian tails: inter-channel crosstalk grows and");
    println!("calibration residuals rise; low laser power drowns the MAC in shot,");
    println!("thermal and RIN noise. The paper's 16-bit storage is far beyond what");
    println!("the analog core resolves — see EXPERIMENTS.md, 'Analog precision'.");
}
