//! Property-based tests of the CNN substrate's algebraic invariants.

use proptest::prelude::*;

use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::quantize::Quantizer;
use pcnna_cnn::reference;
use pcnna_cnn::tensor::Tensor;
use pcnna_cnn::workload::Workload;

fn geometries() -> impl Strategy<Value = ConvGeometry> {
    (
        3usize..16,
        1usize..6,
        0usize..3,
        1usize..4,
        1usize..4,
        1usize..6,
    )
        .prop_filter_map("kernel must fit padded input", |(n, m, p, s, nc, k)| {
            ConvGeometry::new(n, m, p, s, nc, k).ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn geometry_identities(g in geometries()) {
        // Table I identities
        prop_assert_eq!(
            g.n_input(),
            (g.input_side() * g.input_side() * g.channels()) as u64
        );
        prop_assert_eq!(
            g.n_kernel(),
            (g.kernel_side() * g.kernel_side() * g.channels()) as u64
        );
        prop_assert_eq!(g.n_output(), g.n_locations() * g.kernels() as u64);
        prop_assert_eq!(g.macs(), g.n_locations() * g.weight_count());
        // output side from the closed form
        let o = (g.input_side() + 2 * g.padding() - g.kernel_side()) / g.stride() + 1;
        prop_assert_eq!(g.output_side(), o);
    }

    #[test]
    fn larger_stride_never_increases_output(g in geometries()) {
        if let Ok(g2) = g.with_stride(g.stride() + 1) {
            prop_assert!(g2.output_side() <= g.output_side());
            prop_assert!(g2.n_locations() <= g.n_locations());
        }
    }

    #[test]
    fn conv_is_linear_in_input(g in geometries(), seed in 0u64..500, alpha in 0.25f32..4.0) {
        let wl = Workload::gaussian(&g, seed);
        let out1 = reference::conv2d_direct(&g, &wl.input, &wl.kernels).unwrap();
        let scaled_in = wl.input.map(|v| alpha * v);
        let out2 = reference::conv2d_direct(&g, &scaled_in, &wl.kernels).unwrap();
        let expect = out1.map(|v| alpha * v);
        let tol = 1e-3 * (1.0 + expect.max_abs());
        prop_assert!(out2.approx_eq(&expect, tol));
    }

    #[test]
    fn conv_is_additive_in_kernels(g in geometries(), seed in 0u64..500) {
        let a = Workload::gaussian(&g, seed);
        let b = Workload::gaussian(&g, seed.wrapping_add(1));
        let sum_kernels = a.kernels.add(&b.kernels).unwrap();
        let out_sum = reference::conv2d_direct(&g, &a.input, &sum_kernels).unwrap();
        let out_a = reference::conv2d_direct(&g, &a.input, &a.kernels).unwrap();
        let out_b = reference::conv2d_direct(&g, &a.input, &b.kernels).unwrap();
        let expect = out_a.add(&out_b).unwrap();
        let tol = 1e-3 * (1.0 + expect.max_abs());
        prop_assert!(out_sum.approx_eq(&expect, tol));
    }

    #[test]
    fn receptive_field_length_is_nkernel(g in geometries(), seed in 0u64..100) {
        let wl = Workload::uniform(&g, seed);
        let o = g.output_side();
        let field = reference::receptive_field(&g, &wl.input, o / 2, o / 2).unwrap();
        prop_assert_eq!(field.len() as u64, g.n_kernel());
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(shape_seed in 0u64..100) {
        let g = ConvGeometry::new(8, 3, 0, 1, 2, 2).unwrap();
        let wl = Workload::gaussian(&g, shape_seed);
        let once = reference::relu(&wl.input);
        prop_assert!(once.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(reference::relu(&once), once);
    }

    #[test]
    fn maxpool_dominates_avgpool(seed in 0u64..100) {
        let g = ConvGeometry::new(8, 3, 0, 1, 2, 2).unwrap();
        let wl = Workload::uniform(&g, seed);
        let mx = reference::maxpool(&wl.input, 2, 2).unwrap();
        let av = reference::avgpool(&wl.input, 2, 2).unwrap();
        for (m, a) in mx.as_slice().iter().zip(av.as_slice()) {
            prop_assert!(m >= a);
        }
    }

    #[test]
    fn quantizer_error_bounded_and_idempotent(
        bits in 2u8..16,
        range in 0.5f32..10.0,
        value in -12.0f32..12.0,
    ) {
        let q = Quantizer::new(bits, range);
        let once = q.quantize(value);
        prop_assert_eq!(q.quantize(once), once);
        if value.abs() <= range {
            prop_assert!((value - once).abs() <= q.max_error() + 1e-6);
        } else {
            // clipped to full scale
            prop_assert!(once.abs() <= range + q.max_error());
        }
    }

    #[test]
    fn tensor_add_sub_roundtrip(seed in 0u64..200) {
        let g = ConvGeometry::new(6, 3, 0, 1, 2, 2).unwrap();
        let a = Workload::gaussian(&g, seed).input;
        let b = Workload::gaussian(&g, seed.wrapping_add(7)).input;
        let roundtrip = a.add(&b).unwrap().sub(&b).unwrap();
        prop_assert!(roundtrip.approx_eq(&a, 1e-4 * (1.0 + a.max_abs())));
    }

    #[test]
    fn im2col_shape_is_consistent(g in geometries(), seed in 0u64..100) {
        let wl = Workload::uniform(&g, seed);
        let mat = reference::im2col(&g, &wl.input).unwrap();
        let o = g.output_side();
        prop_assert_eq!(mat.shape(), &[g.n_kernel() as usize, o * o]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn conv_with_zero_kernels_is_zero(g in geometries(), seed in 0u64..50) {
        let wl = Workload::gaussian(&g, seed);
        let zeros = Tensor::zeros(&g.kernel_shape());
        let out = reference::conv2d_direct(&g, &wl.input, &zeros).unwrap();
        prop_assert_eq!(out.max_abs(), 0.0);
    }

    #[test]
    fn padding_only_adds_border_locations(g in geometries()) {
        if let Ok(padded) = ConvGeometry::new(
            g.input_side(), g.kernel_side(), g.padding() + 1, g.stride(),
            g.channels(), g.kernels(),
        ) {
            prop_assert!(padded.output_side() >= g.output_side());
        }
    }
}
