//! Prints the proxy quantized-accuracy ladder — the measured top-1 of the
//! trained proxy net at each effective datapath bit width. Used to
//! calibrate the `min_accuracy` floors in the accuracy-serving bench
//! scenarios.

fn main() {
    println!("pristine {:.4}", pcnna_cnn::train::pristine_top1());
    for bits in 1..=pcnna_cnn::train::PROXY_MAX_BITS {
        println!(
            "{bits:2} bits  top1 {:.4}",
            pcnna_cnn::train::quantized_top1(bits)
        );
    }
}
