//! Minimal in-repo training: a tiny conv-net, plain SGD, synthetic data.
//!
//! The PCNNA paper evaluates timing on untrained (weight-agnostic) layers.
//! To ask the question it leaves open — *does a network still classify
//! correctly when its convolutions run on the analog photonic substrate?* —
//! we need a genuinely trained model. No ML framework is available offline,
//! so this module implements exactly enough: a fixed small architecture
//! (conv 3×3 → ReLU → 2×2 average pool → fully connected), softmax
//! cross-entropy, manual backprop, and SGD, trained on a synthetic
//! two-class orientation task. The functional simulator then swaps the
//! conv layer's output for the photonic one and re-measures accuracy
//! (`examples/trained_inference.rs`).

use crate::geometry::ConvGeometry;
use crate::quantize::Quantizer;
use crate::reference;
use crate::tensor::Tensor;
use crate::{CnnError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// A labelled dataset of `(image, class)` pairs; images are `(1, n, n)`.
pub type Dataset = Vec<(Tensor, usize)>;

/// Generates the synthetic two-class orientation task: class 0 images carry
/// horizontal stripes, class 1 vertical stripes, both with additive noise.
#[must_use]
pub fn orientation_dataset(n_samples: usize, side: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_samples)
        .map(|i| {
            let class = i % 2;
            let phase: usize = rng.gen_range(0..4);
            let period: usize = rng.gen_range(2..4);
            let mut img = Tensor::zeros(&[1, side, side]);
            for y in 0..side {
                for x in 0..side {
                    let stripe_coord = if class == 0 { y } else { x };
                    let stripe = ((stripe_coord + phase) / period).is_multiple_of(2);
                    let noise: f32 = rng.gen_range(-0.15..0.15);
                    *img.at3_mut(0, y, x) = if stripe { 0.9 } else { 0.1 } + noise;
                }
            }
            (img, class)
        })
        .collect()
}

/// The fixed tiny architecture: conv(1→k, 3×3, pad 1) → ReLU → avgpool 2×2
/// → FC(→classes).
#[derive(Debug, Clone)]
pub struct TinyConvNet {
    /// Conv geometry (fixed stride 1, pad 1, single input channel).
    pub geometry: ConvGeometry,
    /// Conv kernels `(k, 1, 3, 3)`.
    pub kernels: Tensor,
    /// FC weights `(classes, k·(side/2)²)`.
    pub fc: Tensor,
    classes: usize,
    pooled_side: usize,
}

/// Forward-pass intermediate activations kept for backprop.
struct ForwardCache {
    input: Tensor,
    conv_out: Tensor,
    relu_out: Tensor,
    pooled: Tensor,
    logits: Vec<f32>,
}

impl TinyConvNet {
    /// Creates a randomly initialised net for `side`×`side` inputs,
    /// `k` conv kernels and `classes` outputs.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::InvalidGeometry`] if `side` is odd or too small
    /// (the 2×2 pool needs an even conv output).
    pub fn new(side: usize, k: usize, classes: usize, seed: u64) -> Result<Self> {
        if side < 4 || !side.is_multiple_of(2) {
            return Err(CnnError::InvalidGeometry {
                reason: format!("side must be even and ≥ 4, got {side}"),
            });
        }
        let geometry = ConvGeometry::new(side, 3, 1, 1, 1, k)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut kernels = Tensor::zeros(&[k, 1, 3, 3]);
        let scale = (2.0 / 9.0f32).sqrt();
        for v in kernels.as_mut_slice() {
            *v = rng.gen_range(-scale..scale);
        }
        let pooled_side = side / 2;
        let fc_inputs = k * pooled_side * pooled_side;
        let fc_scale = (2.0 / fc_inputs as f32).sqrt();
        let mut fc = Tensor::zeros(&[classes, fc_inputs]);
        for v in fc.as_mut_slice() {
            *v = rng.gen_range(-fc_scale..fc_scale);
        }
        Ok(TinyConvNet {
            geometry,
            kernels,
            fc,
            classes,
            pooled_side,
        })
    }

    /// Number of output classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    fn forward_cached(&self, input: &Tensor) -> Result<ForwardCache> {
        let conv_out = reference::conv2d_direct(&self.geometry, input, &self.kernels)?;
        let relu_out = reference::relu(&conv_out);
        let pooled = reference::avgpool(&relu_out, 2, 2)?;
        let flat_len = pooled.len();
        let flat = pooled.clone().reshape(&[flat_len])?;
        let logits_t = reference::fully_connected(&self.fc, &flat)?;
        Ok(ForwardCache {
            input: input.clone(),
            conv_out,
            relu_out,
            pooled,
            logits: logits_t.into_vec(),
        })
    }

    /// Class logits for one image.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched inputs.
    pub fn logits(&self, input: &Tensor) -> Result<Vec<f32>> {
        Ok(self.forward_cached(input)?.logits)
    }

    /// Classifies the *post-conv* path: takes an externally produced conv
    /// feature map (e.g. the photonic one) and runs the rest of the network.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched feature maps.
    pub fn logits_from_conv_output(&self, conv_out: &Tensor) -> Result<Vec<f32>> {
        let relu_out = reference::relu(conv_out);
        let pooled = reference::avgpool(&relu_out, 2, 2)?;
        let flat_len = pooled.len();
        let flat = pooled.reshape(&[flat_len])?;
        Ok(reference::fully_connected(&self.fc, &flat)?.into_vec())
    }

    /// Predicted class for one image.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched inputs.
    pub fn predict(&self, input: &Tensor) -> Result<usize> {
        let logits = self.logits(input)?;
        Ok(crate::metrics::argmax(&logits).unwrap_or(0))
    }

    /// Fraction of the dataset classified correctly.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched inputs.
    pub fn accuracy(&self, data: &Dataset) -> Result<f64> {
        let mut correct = 0usize;
        for (img, label) in data {
            if self.predict(img)? == *label {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len().max(1) as f64)
    }

    /// One SGD step on one sample; returns the cross-entropy loss.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched inputs.
    pub fn sgd_step(&mut self, input: &Tensor, label: usize, lr: f32) -> Result<f32> {
        let cache = self.forward_cached(input)?;
        let probs = softmax(&cache.logits);
        let loss = -probs[label].max(1e-12).ln();

        // dL/dlogits = probs − onehot
        let mut dlogits = probs;
        dlogits[label] -= 1.0;

        // FC grads: dW[c, j] = dlogits[c] · flat[j]; dflat = Wᵀ dlogits
        let flat = cache.pooled.as_slice();
        let fc_inputs = flat.len();
        let mut dflat = vec![0.0f32; fc_inputs];
        {
            let w = self.fc.as_mut_slice();
            for (c, &dl) in dlogits.iter().enumerate() {
                for j in 0..fc_inputs {
                    dflat[j] += w[c * fc_inputs + j] * dl;
                    w[c * fc_inputs + j] -= lr * dl * flat[j];
                }
            }
        }

        // avgpool backward: each pooled grad spreads /4 into its window,
        // then ReLU mask.
        let k = self.geometry.kernels();
        let side = self.geometry.output_side();
        let ps = self.pooled_side;
        let mut dconv = Tensor::zeros(&[k, side, side]);
        for kk in 0..k {
            for py in 0..ps {
                for px in 0..ps {
                    let g = dflat[(kk * ps + py) * ps + px] / 4.0;
                    for wy in 0..2 {
                        for wx in 0..2 {
                            let (y, x) = (py * 2 + wy, px * 2 + wx);
                            if cache.relu_out.at3(kk, y, x) > 0.0 {
                                *dconv.at3_mut(kk, y, x) = g;
                            }
                        }
                    }
                }
            }
        }
        let _ = &cache.conv_out;

        // conv weight grads: dw[k,0,ky,kx] = Σ dconv[k,oy,ox]·x[oy+ky−1,ox+kx−1]
        let n = self.geometry.input_side();
        let kw = self.kernels.as_mut_slice();
        for kk in 0..k {
            for ky in 0..3 {
                for kx in 0..3 {
                    let mut grad = 0.0f32;
                    for oy in 0..side {
                        for ox in 0..side {
                            let y = oy as isize + ky as isize - 1;
                            let x = ox as isize + kx as isize - 1;
                            if y < 0 || x < 0 || y as usize >= n || x as usize >= n {
                                continue;
                            }
                            grad +=
                                dconv.at3(kk, oy, ox) * cache.input.at3(0, y as usize, x as usize);
                        }
                    }
                    kw[(kk * 3 + ky) * 3 + kx] -= lr * grad;
                }
            }
        }
        Ok(loss)
    }

    /// Trains for `epochs` passes over `data`, returning the mean loss of
    /// the final epoch.
    ///
    /// # Errors
    ///
    /// Returns shape errors for mismatched inputs.
    pub fn train(&mut self, data: &Dataset, epochs: usize, lr: f32) -> Result<f32> {
        let mut last = 0.0f32;
        for _ in 0..epochs {
            let mut total = 0.0f32;
            for (img, label) in data {
                total += self.sgd_step(img, *label, lr)?;
            }
            last = total / data.len().max(1) as f32;
        }
        Ok(last)
    }
}

/// Generates the synthetic four-class *small-signal* stripe task the proxy
/// accuracy ladder is measured on: orientation (horizontal/vertical) ×
/// stripe period (2/3), with low contrast (±0.08) on a 0.5 DC pedestal and
/// matched noise. The small informative swing on a large offset mirrors
/// the regime where converter resolution genuinely limits a photonic
/// datapath — the decision margins sit only a few LSB above the
/// quantization floor at realistic effective bit widths, where the
/// high-contrast [`orientation_dataset`] saturates by 2 bits.
#[must_use]
pub fn small_signal_dataset(n_samples: usize, side: usize, seed: u64) -> Dataset {
    const CONTRAST: f32 = 0.08;
    const NOISE: f32 = 0.08;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_samples)
        .map(|i| {
            let class = i % 4;
            let (vertical, period) = (class % 2 == 1, if class < 2 { 2 } else { 3 });
            let phase: usize = rng.gen_range(0..4);
            let mut img = Tensor::zeros(&[1, side, side]);
            for y in 0..side {
                for x in 0..side {
                    let stripe_coord = if vertical { x } else { y };
                    let stripe = ((stripe_coord + phase) / period).is_multiple_of(2);
                    let noise: f32 = rng.gen_range(-NOISE..NOISE);
                    *img.at3_mut(0, y, x) = if stripe {
                        0.5 + CONTRAST
                    } else {
                        0.5 - CONTRAST
                    } + noise;
                }
            }
            (img, class)
        })
        .collect()
}

/// Highest bit width the proxy accuracy ladder measures; above this the
/// quantization floor is far below the task's decision margins (and real
/// converters top out near it — the paper's storage words are 16-bit, and
/// multi-GSa/s ADC ENOB is well under 12).
pub const PROXY_MAX_BITS: u8 = 12;

/// The measured proxy ladder: a trained net's top-1 accuracy as a function
/// of the effective bit width of its conv datapath.
struct ProxyLadder {
    pristine: f64,
    top1: [f64; PROXY_MAX_BITS as usize],
}

/// Quantizes one image's conv pass with the functional photonic
/// simulator's converter geometry (`pcnna_core::functional`): inputs are
/// offset-encoded into the DAC's fixed `[0, 1]` full scale
/// (`x' = (x/xs + 1)/2`), ring weights carry `bits` of precision over the
/// kernel full scale, and each bank's ADC full scale is sized for the
/// worst-case accumulation `Σ|w|·xs` — not the typical signal. Returns the
/// quantized conv feature map.
fn photonic_style_conv(net: &TinyConvNet, img: &Tensor, bits: u8) -> Result<Tensor> {
    let xs = img.max_abs().max(1e-9);
    let ws = net.kernels.max_abs().max(1e-9);
    let dac = Quantizer::new(bits, 1.0);
    let wq = Quantizer::new(bits, ws);
    let img_q = img.map(|v| {
        let encoded = (v / xs + 1.0) / 2.0;
        (2.0 * dac.quantize(encoded) - 1.0) * xs
    });
    let kernels_q = wq.quantize_tensor(&net.kernels);
    let mut conv = reference::conv2d_direct(&net.geometry, &img_q, &kernels_q)?;
    let taps = kernels_q.len() / net.geometry.kernels();
    let side = net.geometry.output_side();
    let kdata = kernels_q.as_slice().to_vec();
    for kk in 0..net.geometry.kernels() {
        let sum_abs: f32 = kdata[kk * taps..(kk + 1) * taps]
            .iter()
            .map(|w| w.abs())
            .sum();
        let adc = Quantizer::new(bits, (sum_abs * xs).max(1e-9));
        for y in 0..side {
            for x in 0..side {
                *conv.at3_mut(kk, y, x) = adc.quantize(conv.at3(kk, y, x));
            }
        }
    }
    Ok(conv)
}

/// Trains the fixed proxy net once (process-wide) and measures its top-1
/// accuracy at every bit width. Deterministic: fixed seeds, fixed
/// architecture, fixed evaluation order — the ladder is the same in every
/// process and on every thread.
fn proxy_ladder() -> &'static ProxyLadder {
    static LADDER: OnceLock<ProxyLadder> = OnceLock::new();
    LADDER.get_or_init(|| {
        let mut net = TinyConvNet::new(12, 6, 4, 7).expect("fixed geometry is valid");
        let train = small_signal_dataset(160, 12, 11);
        net.train(&train, 20, 0.05).expect("fixed shapes");
        let test = small_signal_dataset(200, 12, 99);
        let pristine = net.accuracy(&test).expect("fixed shapes");

        let mut measured = [0.0f64; PROXY_MAX_BITS as usize];
        for bits in 1..=PROXY_MAX_BITS {
            let mut correct = 0usize;
            for (img, label) in &test {
                let conv_q = photonic_style_conv(&net, img, bits).expect("fixed shapes");
                let logits = net.logits_from_conv_output(&conv_q).expect("fixed shapes");
                if crate::metrics::argmax(&logits).unwrap_or(0) == *label {
                    correct += 1;
                }
            }
            measured[bits as usize - 1] = correct as f64 / test.len() as f64;
        }

        // Lower envelope sweeping bits downward: a coarser datapath never
        // quotes better accuracy than a finer one. This pins the
        // monotonicity the serving-quote property tests rely on even if a
        // single bit width gets lucky on the small test set.
        let mut top1 = measured;
        let mut cap = pristine;
        for b in (0..PROXY_MAX_BITS as usize).rev() {
            cap = cap.min(top1[b]);
            top1[b] = cap;
        }
        ProxyLadder { pristine, top1 }
    })
}

/// Top-1 accuracy of the trained proxy net when its conv datapath — DAC
/// inputs, ring weights, and ADC outputs — carries `bits` of effective
/// resolution under the functional simulator's converter geometry.
/// Monotone non-increasing as `bits` falls; `bits` is clamped to
/// `[1, PROXY_MAX_BITS]`.
///
/// This is the measured end of the serving accuracy quote: photonic health
/// maps to effective bits via the SNR budget, and effective bits map to
/// top-1 here.
#[must_use]
pub fn quantized_top1(bits: u8) -> f64 {
    let ladder = proxy_ladder();
    ladder.top1[(bits.clamp(1, PROXY_MAX_BITS) as usize) - 1]
}

/// Top-1 accuracy of the trained proxy net with a float (unquantized)
/// datapath — the ceiling of [`quantized_top1`].
#[must_use]
pub fn pristine_top1() -> f64 {
    proxy_ladder().pristine
}

/// Numerically stable softmax.
#[must_use]
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum.max(1e-12)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_balanced_and_deterministic() {
        let a = orientation_dataset(40, 12, 3);
        let b = orientation_dataset(40, 12, 3);
        assert_eq!(a.len(), 40);
        assert_eq!(a.iter().filter(|(_, c)| *c == 0).count(), 20);
        for ((ia, ca), (ib, cb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 3.0, 2.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[1] > p[2] && p[2] > p[0]);
    }

    #[test]
    fn construction_validates() {
        assert!(TinyConvNet::new(5, 4, 2, 0).is_err()); // odd side
        assert!(TinyConvNet::new(2, 4, 2, 0).is_err()); // too small
        assert!(TinyConvNet::new(12, 4, 2, 0).is_ok());
    }

    #[test]
    fn sgd_reduces_loss_on_one_sample() {
        let mut net = TinyConvNet::new(8, 4, 2, 1).unwrap();
        let data = orientation_dataset(2, 8, 2);
        let (img, label) = &data[0];
        let first = net.sgd_step(img, *label, 0.05).unwrap();
        let mut last = first;
        for _ in 0..20 {
            last = net.sgd_step(img, *label, 0.05).unwrap();
        }
        assert!(last < first, "loss {first} -> {last} did not drop");
    }

    #[test]
    fn training_reaches_high_accuracy() {
        let mut net = TinyConvNet::new(12, 4, 2, 7).unwrap();
        let train = orientation_dataset(80, 12, 11);
        let test = orientation_dataset(40, 12, 99);
        let untrained = net.accuracy(&test).unwrap();
        net.train(&train, 12, 0.05).unwrap();
        let trained = net.accuracy(&test).unwrap();
        assert!(
            trained > 0.9,
            "trained accuracy {trained} (untrained was {untrained})"
        );
        assert!(trained > untrained);
    }

    #[test]
    fn proxy_ladder_is_monotone_and_tops_out_near_pristine() {
        let pristine = pristine_top1();
        assert!(pristine > 0.8, "proxy net trained poorly: {pristine}");
        let mut prev = 0.0f64;
        for bits in 1..=PROXY_MAX_BITS {
            let acc = quantized_top1(bits);
            assert!((0.0..=1.0).contains(&acc));
            assert!(
                acc >= prev,
                "ladder not monotone: {bits} bits -> {acc} < {prev}"
            );
            assert!(acc <= pristine, "{bits} bits beats pristine");
            prev = acc;
        }
        assert!(
            quantized_top1(PROXY_MAX_BITS) > pristine - 0.05,
            "a {PROXY_MAX_BITS}-bit datapath should be within noise of float: {} vs {pristine}",
            quantized_top1(PROXY_MAX_BITS)
        );
        // clamping: out-of-ladder widths saturate, never panic
        assert_eq!(quantized_top1(0), quantized_top1(1));
        assert_eq!(quantized_top1(31), quantized_top1(PROXY_MAX_BITS));
    }

    #[test]
    fn proxy_ladder_actually_degrades_at_low_bits() {
        // the serving stories need real slope: a visibly degraded rung in
        // the 4–5 bit band the chaos scenarios reach, and a cliff below
        assert!(
            quantized_top1(4) < quantized_top1(PROXY_MAX_BITS) - 0.05,
            "4-bit rung should sit visibly below nominal: {} vs {}",
            quantized_top1(4),
            quantized_top1(PROXY_MAX_BITS)
        );
        assert!(
            quantized_top1(2) < 0.5,
            "2-bit rung should be near chance: {}",
            quantized_top1(2)
        );
    }

    #[test]
    fn small_signal_dataset_is_balanced_and_deterministic() {
        let a = small_signal_dataset(40, 12, 3);
        let b = small_signal_dataset(40, 12, 3);
        assert_eq!(a.len(), 40);
        for class in 0..4 {
            assert_eq!(a.iter().filter(|(_, c)| *c == class).count(), 10);
        }
        for ((ia, ca), (ib, cb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert_eq!(ca, cb);
        }
    }

    #[test]
    fn logits_from_conv_output_matches_forward() {
        let net = TinyConvNet::new(8, 3, 2, 5).unwrap();
        let data = orientation_dataset(2, 8, 6);
        let (img, _) = &data[0];
        let direct = net.logits(img).unwrap();
        let conv = reference::conv2d_direct(&net.geometry, img, &net.kernels).unwrap();
        let via_conv = net.logits_from_conv_output(&conv).unwrap();
        for (a, b) in direct.iter().zip(&via_conv) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        // Spot-check one kernel weight's analytic gradient against a
        // central finite difference of the loss.
        let net = TinyConvNet::new(8, 2, 2, 9).unwrap();
        let data = orientation_dataset(2, 8, 10);
        let (img, label) = &data[0];
        let loss_at = |n: &TinyConvNet| {
            let l = n.logits(img).unwrap();
            -softmax(&l)[*label].max(1e-12).ln()
        };
        let eps = 1e-3f32;
        let idx = 4; // center tap of kernel 0
        let mut plus = net.clone();
        plus.kernels.as_mut_slice()[idx] += eps;
        let mut minus = net.clone();
        minus.kernels.as_mut_slice()[idx] -= eps;
        let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps);
        // analytic: run one sgd step with lr so weight delta = -lr·grad
        let mut stepped = net.clone();
        let lr = 1e-3f32;
        stepped.sgd_step(img, *label, lr).unwrap();
        let analytic = (net.kernels.as_slice()[idx] - stepped.kernels.as_slice()[idx]) / lr;
        assert!(
            (numeric - analytic).abs() < 0.05 * numeric.abs().max(0.1),
            "numeric {numeric} vs analytic {analytic}"
        );
    }
}
