//! Typed CNN layer descriptions with shape inference.
//!
//! A [`Layer`] describes one stage of a network. Convolution layers carry a
//! full [`ConvGeometry`]; the remaining layer kinds carry just enough
//! structure to propagate feature-map shapes through the network and to run
//! the functional reference kernels.

use crate::geometry::ConvGeometry;
use crate::{CnnError, Result};
use serde::{Deserialize, Serialize};

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Average,
}

/// Pooling layer over square windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolLayer {
    /// Pooling flavour.
    pub kind: PoolKind,
    /// Window side length.
    pub window: usize,
    /// Stride between windows.
    pub stride: usize,
}

impl PoolLayer {
    /// Creates a pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::InvalidGeometry`] if window or stride is zero.
    pub fn new(kind: PoolKind, window: usize, stride: usize) -> Result<Self> {
        if window == 0 || stride == 0 {
            return Err(CnnError::InvalidGeometry {
                reason: format!("pool window ({window}) and stride ({stride}) must be nonzero"),
            });
        }
        Ok(PoolLayer {
            kind,
            window,
            stride,
        })
    }

    /// Output side for a given input side.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::InvalidGeometry`] if the window exceeds the input.
    pub fn output_side(&self, input_side: usize) -> Result<usize> {
        if self.window > input_side {
            return Err(CnnError::InvalidGeometry {
                reason: format!(
                    "pool window {} exceeds input side {input_side}",
                    self.window
                ),
            });
        }
        Ok((input_side - self.window) / self.stride + 1)
    }
}

/// Convolution layer: geometry plus a human-readable name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Layer name, e.g. `"conv1"`.
    pub name: String,
    /// Full Table-I geometry.
    pub geometry: ConvGeometry,
}

impl ConvLayer {
    /// Creates a named convolution layer.
    #[must_use]
    pub fn new(name: impl Into<String>, geometry: ConvGeometry) -> Self {
        ConvLayer {
            name: name.into(),
            geometry,
        }
    }
}

/// One stage of a CNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Layer {
    /// 2-D convolution (the layer kind PCNNA accelerates).
    Conv(ConvLayer),
    /// Pooling.
    Pool(PoolLayer),
    /// Rectified linear unit, elementwise.
    Relu,
    /// Local response normalisation (AlexNet-style), parameterised by
    /// `(radius, alpha, beta, bias)`.
    LocalResponseNorm {
        /// Half-width of the channel window.
        radius: usize,
        /// Scale parameter.
        alpha: f32,
        /// Exponent parameter.
        beta: f32,
        /// Additive bias.
        bias: f32,
    },
    /// Flattens `(c, h, w)` into a vector.
    Flatten,
    /// Fully connected layer with the given output width.
    FullyConnected {
        /// Name, e.g. `"fc6"`.
        name: String,
        /// Number of output neurons.
        outputs: usize,
    },
}

/// A feature-map shape flowing between layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureShape {
    /// A `(channels, side, side)` volume.
    Volume {
        /// Channel count.
        channels: usize,
        /// Spatial side length.
        side: usize,
    },
    /// A flat vector of the given length.
    Flat {
        /// Vector length.
        len: usize,
    },
}

impl FeatureShape {
    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        match *self {
            FeatureShape::Volume { channels, side } => channels * side * side,
            FeatureShape::Flat { len } => len,
        }
    }

    /// Whether the shape is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl core::fmt::Display for FeatureShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            FeatureShape::Volume { channels, side } => write!(f, "{side}x{side}x{channels}"),
            FeatureShape::Flat { len } => write!(f, "flat[{len}]"),
        }
    }
}

impl Layer {
    /// Short human-readable kind tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv(_) => "conv",
            Layer::Pool(p) => match p.kind {
                PoolKind::Max => "maxpool",
                PoolKind::Average => "avgpool",
            },
            Layer::Relu => "relu",
            Layer::LocalResponseNorm { .. } => "lrn",
            Layer::Flatten => "flatten",
            Layer::FullyConnected { .. } => "fc",
        }
    }

    /// Infers the output shape of this layer for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::ShapeMismatch`] when the input shape is
    /// incompatible with the layer (wrong channel count, flat input to a
    /// spatial layer, …) and [`CnnError::InvalidGeometry`] when the spatial
    /// math does not work out.
    pub fn output_shape(&self, input: FeatureShape) -> Result<FeatureShape> {
        match self {
            Layer::Conv(conv) => match input {
                FeatureShape::Volume { channels, side } => {
                    let g = &conv.geometry;
                    if channels != g.channels() || side != g.input_side() {
                        return Err(CnnError::ShapeMismatch {
                            expected: format!(
                                "{}x{}x{}",
                                g.input_side(),
                                g.input_side(),
                                g.channels()
                            ),
                            actual: input.to_string(),
                        });
                    }
                    Ok(FeatureShape::Volume {
                        channels: g.kernels(),
                        side: g.output_side(),
                    })
                }
                FeatureShape::Flat { .. } => Err(CnnError::ShapeMismatch {
                    expected: "volume input for conv".to_owned(),
                    actual: input.to_string(),
                }),
            },
            Layer::Pool(p) => match input {
                FeatureShape::Volume { channels, side } => Ok(FeatureShape::Volume {
                    channels,
                    side: p.output_side(side)?,
                }),
                FeatureShape::Flat { .. } => Err(CnnError::ShapeMismatch {
                    expected: "volume input for pool".to_owned(),
                    actual: input.to_string(),
                }),
            },
            Layer::Relu | Layer::LocalResponseNorm { .. } => Ok(input),
            Layer::Flatten => Ok(FeatureShape::Flat { len: input.len() }),
            Layer::FullyConnected { outputs, .. } => Ok(FeatureShape::Flat { len: *outputs }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol(channels: usize, side: usize) -> FeatureShape {
        FeatureShape::Volume { channels, side }
    }

    #[test]
    fn pool_layer_validates() {
        assert!(PoolLayer::new(PoolKind::Max, 0, 1).is_err());
        assert!(PoolLayer::new(PoolKind::Max, 2, 0).is_err());
        let p = PoolLayer::new(PoolKind::Max, 3, 2).unwrap();
        assert_eq!(p.output_side(55).unwrap(), 27);
        assert!(p.output_side(2).is_err());
    }

    #[test]
    fn conv_shape_inference_happy_path() {
        let g = ConvGeometry::new(224, 11, 2, 4, 3, 96).unwrap();
        let layer = Layer::Conv(ConvLayer::new("conv1", g));
        let out = layer.output_shape(vol(3, 224)).unwrap();
        assert_eq!(out, vol(96, 55));
    }

    #[test]
    fn conv_rejects_wrong_input() {
        let g = ConvGeometry::new(16, 3, 0, 1, 4, 8).unwrap();
        let layer = Layer::Conv(ConvLayer::new("c", g));
        assert!(layer.output_shape(vol(3, 16)).is_err());
        assert!(layer.output_shape(vol(4, 15)).is_err());
        assert!(layer.output_shape(FeatureShape::Flat { len: 100 }).is_err());
    }

    #[test]
    fn relu_and_lrn_preserve_shape() {
        let shape = vol(96, 55);
        assert_eq!(Layer::Relu.output_shape(shape).unwrap(), shape);
        let lrn = Layer::LocalResponseNorm {
            radius: 2,
            alpha: 1e-4,
            beta: 0.75,
            bias: 2.0,
        };
        assert_eq!(lrn.output_shape(shape).unwrap(), shape);
    }

    #[test]
    fn flatten_and_fc_shapes() {
        let out = Layer::Flatten.output_shape(vol(256, 6)).unwrap();
        assert_eq!(out, FeatureShape::Flat { len: 9216 });
        let fc = Layer::FullyConnected {
            name: "fc6".to_owned(),
            outputs: 4096,
        };
        assert_eq!(
            fc.output_shape(out).unwrap(),
            FeatureShape::Flat { len: 4096 }
        );
    }

    #[test]
    fn pool_rejects_flat_input() {
        let p = Layer::Pool(PoolLayer::new(PoolKind::Max, 2, 2).unwrap());
        assert!(p.output_shape(FeatureShape::Flat { len: 8 }).is_err());
    }

    #[test]
    fn feature_shape_len_and_display() {
        assert_eq!(vol(3, 4).len(), 48);
        assert_eq!(FeatureShape::Flat { len: 7 }.len(), 7);
        assert_eq!(vol(3, 16).to_string(), "16x16x3");
        assert!(!vol(1, 1).is_empty());
    }

    #[test]
    fn layer_kind_tags() {
        assert_eq!(Layer::Relu.kind(), "relu");
        assert_eq!(
            Layer::Pool(PoolLayer::new(PoolKind::Average, 2, 2).unwrap()).kind(),
            "avgpool"
        );
        assert_eq!(Layer::Flatten.kind(), "flatten");
    }
}
