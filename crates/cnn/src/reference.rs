//! Ground-truth functional kernels.
//!
//! These CPU implementations define the *correct answer* for every operation
//! PCNNA accelerates or that surrounds it in a network. The photonic
//! functional simulator in `pcnna-core` is validated against
//! [`conv2d_direct`]; [`conv2d_im2col`] is an independent second
//! implementation used to cross-check the first (and as the electronic
//! baseline's compute kernel in the benches).

use crate::geometry::ConvGeometry;
use crate::tensor::Tensor;
use crate::{CnnError, Result};

/// Checks that `input` and `kernels` match the geometry `g`.
fn check_conv_shapes(g: &ConvGeometry, input: &Tensor, kernels: &Tensor) -> Result<()> {
    let want_in = g.input_shape();
    if input.shape() != want_in {
        return Err(CnnError::ShapeMismatch {
            expected: format!("{want_in:?}"),
            actual: format!("{:?}", input.shape()),
        });
    }
    let want_k = g.kernel_shape();
    if kernels.shape() != want_k {
        return Err(CnnError::ShapeMismatch {
            expected: format!("{want_k:?}"),
            actual: format!("{:?}", kernels.shape()),
        });
    }
    Ok(())
}

/// Reads the padded input at `(c, y, x)` where `y`/`x` are coordinates in the
/// padded frame; out-of-range reads return the zero padding value.
#[inline]
fn padded_at(input: &Tensor, c: usize, y: isize, x: isize, side: usize) -> f32 {
    if y < 0 || x < 0 || y as usize >= side || x as usize >= side {
        0.0
    } else {
        input.at3(c, y as usize, x as usize)
    }
}

/// Direct (sliding-window) 2-D convolution.
///
/// `input` is `(nc, n, n)`, `kernels` is `(k, nc, m, m)`; the result is
/// `(k, o, o)` with `o = g.output_side()`. This is the paper's 4-D
/// convolution (batch of one): cross-correlation orientation, as in every
/// inference framework.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] if the tensors do not match `g`.
pub fn conv2d_direct(g: &ConvGeometry, input: &Tensor, kernels: &Tensor) -> Result<Tensor> {
    check_conv_shapes(g, input, kernels)?;
    let o = g.output_side();
    let (m, nc, k, s, p, n) = (
        g.kernel_side(),
        g.channels(),
        g.kernels(),
        g.stride(),
        g.padding() as isize,
        g.input_side(),
    );
    let mut out = Tensor::zeros(&[k, o, o]);
    for kk in 0..k {
        for oy in 0..o {
            for ox in 0..o {
                let base_y = (oy * s) as isize - p;
                let base_x = (ox * s) as isize - p;
                let mut acc = 0.0f32;
                for c in 0..nc {
                    for ky in 0..m {
                        for kx in 0..m {
                            let iv =
                                padded_at(input, c, base_y + ky as isize, base_x + kx as isize, n);
                            acc += iv * kernels.at4(kk, c, ky, kx);
                        }
                    }
                }
                *out.at3_mut(kk, oy, ox) = acc;
            }
        }
    }
    Ok(out)
}

/// Lowers the input into an im2col matrix of shape
/// `(nc·m·m, o·o)` stored row-major, column `j` holding the receptive field
/// of output location `j` (row-major over output locations).
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] if `input` does not match `g`.
pub fn im2col(g: &ConvGeometry, input: &Tensor) -> Result<Tensor> {
    let mut buf = Vec::new();
    im2col_into(g, input, &mut buf)?;
    let o = g.output_side();
    let rows = g.n_kernel() as usize;
    Tensor::from_vec(&[rows, o * o], buf)
}

/// Lowers the input into a caller-provided im2col buffer (same layout as
/// [`im2col`]): `out` is resized to `(nc·m·m) · (o·o)` and filled. A warm
/// buffer makes repeated lowering allocation-free.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] if `input` does not match `g`.
pub fn im2col_into(g: &ConvGeometry, input: &Tensor, out: &mut Vec<f32>) -> Result<()> {
    let want_in = g.input_shape();
    if input.shape() != want_in {
        return Err(CnnError::ShapeMismatch {
            expected: format!("{want_in:?}"),
            actual: format!("{:?}", input.shape()),
        });
    }
    let o = g.output_side();
    let (m, nc, s, p, n) = (
        g.kernel_side(),
        g.channels(),
        g.stride(),
        g.padding() as isize,
        g.input_side(),
    );
    let rows = nc * m * m;
    let cols = o * o;
    out.clear();
    out.resize(rows * cols, 0.0);
    for c in 0..nc {
        for ky in 0..m {
            for kx in 0..m {
                let row = (c * m + ky) * m + kx;
                for oy in 0..o {
                    for ox in 0..o {
                        let col = oy * o + ox;
                        let y = (oy * s) as isize - p + ky as isize;
                        let x = (ox * s) as isize - p + kx as isize;
                        out[row * cols + col] = padded_at(input, c, y, x, n);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reusable scratch buffers for [`conv2d_im2col_scratch`]: the im2col
/// matrix and the output accumulator. Capacity survives across calls, so
/// a warm scratch makes the whole convolution allocation-free — the form
/// the electronic-baseline benches run in steady state.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    im2col: Vec<f32>,
    out: Vec<f32>,
}

impl ConvScratch {
    /// Empty scratch (buffers grow on first use, then stay warm).
    #[must_use]
    pub fn new() -> Self {
        ConvScratch::default()
    }

    /// The output of the last [`conv2d_im2col_scratch`] call, row-major
    /// `(k, o, o)`.
    #[must_use]
    pub fn output(&self) -> &[f32] {
        &self.out
    }
}

/// How many columns of the im2col matrix one GEMM tile spans: small
/// enough that a four-row output tile plus a [`ROW_BLOCK`]-row B block
/// (~35 KiB) sits in L1 while the micro-kernel streams over it.
const COL_TILE: usize = 128;
/// How many im2col rows one GEMM pass accumulates before touching the
/// next block (with [`COL_TILE`], bounds the working set per pass).
const ROW_BLOCK: usize = 64;

/// Cache-blocked GEMM: `out(k × cols) += a(k × rows) · b(rows × cols)`,
/// all row-major. Columns are tiled, rows are blocked, and four output
/// rows are accumulated per pass so each loaded `b` segment feeds four
/// multiply-adds — the classic register-tiled axpy kernel. Accumulation
/// order over `r` is ascending for every output element, so results are
/// bit-identical to the naive row-major loop.
fn gemm_blocked(a: &[f32], b: &[f32], out: &mut [f32], k: usize, rows: usize, cols: usize) {
    for col0 in (0..cols).step_by(COL_TILE) {
        let col1 = (col0 + COL_TILE).min(cols);
        for r0 in (0..rows).step_by(ROW_BLOCK) {
            let r1 = (r0 + ROW_BLOCK).min(rows);
            let mut kk = 0;
            // 4-row micro-kernel.
            while kk + 4 <= k {
                let (a0, a1, a2, a3) = (
                    &a[kk * rows..(kk + 1) * rows],
                    &a[(kk + 1) * rows..(kk + 2) * rows],
                    &a[(kk + 2) * rows..(kk + 3) * rows],
                    &a[(kk + 3) * rows..(kk + 4) * rows],
                );
                let (head, rest) = out[kk * cols..].split_at_mut(cols);
                let (row1, rest) = rest.split_at_mut(cols);
                let (row2, rest) = rest.split_at_mut(cols);
                let o0 = &mut head[col0..col1];
                let o1 = &mut row1[col0..col1];
                let o2 = &mut row2[col0..col1];
                let o3 = &mut rest[col0..col1];
                for r in r0..r1 {
                    let (w0, w1, w2, w3) = (a0[r], a1[r], a2[r], a3[r]);
                    if w0 == 0.0 && w1 == 0.0 && w2 == 0.0 && w3 == 0.0 {
                        continue;
                    }
                    let brow = &b[r * cols + col0..r * cols + col1];
                    // Zip (not indexing) so the compiler sees equal
                    // lengths and vectorizes without bounds checks.
                    let acc = o0
                        .iter_mut()
                        .zip(o1.iter_mut())
                        .zip(o2.iter_mut().zip(o3.iter_mut()));
                    for (((x0, x1), (x2, x3)), &bv) in acc.zip(brow) {
                        *x0 += w0 * bv;
                        *x1 += w1 * bv;
                        *x2 += w2 * bv;
                        *x3 += w3 * bv;
                    }
                }
                kk += 4;
            }
            // Remainder rows: plain axpy.
            for kk in kk..k {
                let arow = &a[kk * rows..(kk + 1) * rows];
                let orow = &mut out[kk * cols + col0..kk * cols + col1];
                for r in r0..r1 {
                    let w = arow[r];
                    if w == 0.0 {
                        continue;
                    }
                    let brow = &b[r * cols + col0..r * cols + col1];
                    for (oval, &bval) in orow.iter_mut().zip(brow) {
                        *oval += w * bval;
                    }
                }
            }
        }
    }
}

/// [`conv2d_im2col`] with caller-provided scratch: the im2col matrix and
/// the output live in `scratch` (read the result via
/// [`ConvScratch::output`]), so a warm scratch makes repeated
/// convolutions completely allocation-free. The multiply is the
/// cache-blocked `gemm_blocked` kernel.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] if the tensors do not match `g`.
pub fn conv2d_im2col_scratch(
    g: &ConvGeometry,
    input: &Tensor,
    kernels: &Tensor,
    scratch: &mut ConvScratch,
) -> Result<()> {
    check_conv_shapes(g, input, kernels)?;
    let o = g.output_side();
    let k = g.kernels();
    let rows = g.n_kernel() as usize; // nc*m*m
    let cols = o * o;
    let ConvScratch { im2col, out } = scratch;
    im2col_into(g, input, im2col)?;
    out.clear();
    out.resize(k * cols, 0.0);
    gemm_blocked(kernels.as_slice(), im2col, out, k, rows, cols);
    Ok(())
}

/// im2col-based convolution: lowers the input, flattens the kernels into a
/// `(k, nc·m·m)` matrix and multiplies with a cache-blocked GEMM.
/// Numerically equivalent to [`conv2d_direct`] up to f32 summation-order
/// effects. Allocates fresh buffers per call — hot loops should hold a
/// [`ConvScratch`] and call [`conv2d_im2col_scratch`] instead.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] if the tensors do not match `g`.
pub fn conv2d_im2col(g: &ConvGeometry, input: &Tensor, kernels: &Tensor) -> Result<Tensor> {
    let mut scratch = ConvScratch::new();
    conv2d_im2col_scratch(g, input, kernels, &mut scratch)?;
    let o = g.output_side();
    Tensor::from_vec(&[g.kernels(), o, o], scratch.out)
}

/// Extracts the receptive field of output location `(oy, ox)` as a flat
/// vector in `(c, ky, kx)` order — exactly the value ordering the PCNNA
/// input DACs present to the Mach-Zehnder modulators.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] if `input` does not match `g`, or
/// [`CnnError::IndexOutOfBounds`] if `(oy, ox)` is not a valid location.
pub fn receptive_field(g: &ConvGeometry, input: &Tensor, oy: usize, ox: usize) -> Result<Vec<f32>> {
    let want_in = g.input_shape();
    if input.shape() != want_in {
        return Err(CnnError::ShapeMismatch {
            expected: format!("{want_in:?}"),
            actual: format!("{:?}", input.shape()),
        });
    }
    let o = g.output_side();
    if oy >= o || ox >= o {
        return Err(CnnError::IndexOutOfBounds {
            index: format!("({oy}, {ox})"),
            shape: format!("({o}, {o}) locations"),
        });
    }
    let (m, nc, s, p, n) = (
        g.kernel_side(),
        g.channels(),
        g.stride(),
        g.padding() as isize,
        g.input_side(),
    );
    let mut field = Vec::with_capacity(g.n_kernel() as usize);
    let base_y = (oy * s) as isize - p;
    let base_x = (ox * s) as isize - p;
    for c in 0..nc {
        for ky in 0..m {
            for kx in 0..m {
                field.push(padded_at(
                    input,
                    c,
                    base_y + ky as isize,
                    base_x + kx as isize,
                    n,
                ));
            }
        }
    }
    Ok(field)
}

/// Elementwise ReLU.
#[must_use]
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|v| v.max(0.0))
}

/// Max pooling over `(c, h, w)` volumes.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] for non-3-D input and
/// [`CnnError::InvalidGeometry`] when the window does not fit.
pub fn maxpool(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    pool(input, window, stride, true)
}

/// Average pooling over `(c, h, w)` volumes.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] for non-3-D input and
/// [`CnnError::InvalidGeometry`] when the window does not fit.
pub fn avgpool(input: &Tensor, window: usize, stride: usize) -> Result<Tensor> {
    pool(input, window, stride, false)
}

fn pool(input: &Tensor, window: usize, stride: usize, take_max: bool) -> Result<Tensor> {
    let shape = input.shape();
    if shape.len() != 3 {
        return Err(CnnError::ShapeMismatch {
            expected: "(c, h, w) volume".to_owned(),
            actual: format!("{shape:?}"),
        });
    }
    let (nc, h, w) = (shape[0], shape[1], shape[2]);
    if window == 0 || stride == 0 || window > h || window > w {
        return Err(CnnError::InvalidGeometry {
            reason: format!("pool window {window} / stride {stride} vs input {h}x{w}"),
        });
    }
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let mut out = Tensor::zeros(&[nc, oh, ow]);
    for c in 0..nc {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0f32;
                for wy in 0..window {
                    for wx in 0..window {
                        let v = input.at3(c, oy * stride + wy, ox * stride + wx);
                        best = best.max(v);
                        sum += v;
                    }
                }
                *out.at3_mut(c, oy, ox) = if take_max {
                    best
                } else {
                    sum / (window * window) as f32
                };
            }
        }
    }
    Ok(out)
}

/// AlexNet-style local response normalisation across channels.
///
/// `out[c] = in[c] / (bias + alpha/size * sum_{c'} in[c']^2)^beta` where the
/// sum runs over the `2·radius + 1` channels centred on `c` (clamped).
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] for non-3-D input.
pub fn local_response_norm(
    input: &Tensor,
    radius: usize,
    alpha: f32,
    beta: f32,
    bias: f32,
) -> Result<Tensor> {
    let shape = input.shape();
    if shape.len() != 3 {
        return Err(CnnError::ShapeMismatch {
            expected: "(c, h, w) volume".to_owned(),
            actual: format!("{shape:?}"),
        });
    }
    let (nc, h, w) = (shape[0], shape[1], shape[2]);
    let size = (2 * radius + 1) as f32;
    let mut out = Tensor::zeros(shape);
    for c in 0..nc {
        let lo = c.saturating_sub(radius);
        let hi = (c + radius).min(nc - 1);
        for y in 0..h {
            for x in 0..w {
                let mut ss = 0.0f32;
                for cc in lo..=hi {
                    let v = input.at3(cc, y, x);
                    ss += v * v;
                }
                let denom = (bias + alpha / size * ss).powf(beta);
                *out.at3_mut(c, y, x) = input.at3(c, y, x) / denom;
            }
        }
    }
    Ok(out)
}

/// Fully connected layer: `out = W · x` with `W` of shape
/// `(outputs, inputs)` and `x` flat of length `inputs`.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] if dimensions disagree.
pub fn fully_connected(weights: &Tensor, input: &Tensor) -> Result<Tensor> {
    let wshape = weights.shape();
    if wshape.len() != 2 {
        return Err(CnnError::ShapeMismatch {
            expected: "(outputs, inputs) weight matrix".to_owned(),
            actual: format!("{wshape:?}"),
        });
    }
    let (outputs, inputs) = (wshape[0], wshape[1]);
    if input.len() != inputs {
        return Err(CnnError::ShapeMismatch {
            expected: format!("flat input of {inputs}"),
            actual: format!("{} elements", input.len()),
        });
    }
    let w = weights.as_slice();
    let x = input.as_slice();
    let mut out = vec![0.0f32; outputs];
    for (i, oval) in out.iter_mut().enumerate() {
        let row = &w[i * inputs..(i + 1) * inputs];
        *oval = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_vec(&[outputs], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{self, Workload};

    fn tiny_geometry() -> ConvGeometry {
        ConvGeometry::new(4, 3, 0, 1, 1, 1).unwrap()
    }

    #[test]
    fn conv_identity_kernel_extracts_center() {
        // 3x3 kernel with a 1 in the middle reproduces the valid interior.
        let g = tiny_geometry();
        let input = Tensor::from_vec(&[1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let mut kernels = Tensor::zeros(&[1, 1, 3, 3]);
        kernels.set(&[0, 0, 1, 1], 1.0).unwrap();
        let out = conv2d_direct(&g, &input, &kernels).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        // interior of the 4x4 ramp: rows 1..3, cols 1..3
        assert_eq!(out.as_slice(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn conv_box_kernel_sums_window() {
        let g = tiny_geometry();
        let input = Tensor::full(&[1, 4, 4], 1.0);
        let kernels = Tensor::full(&[1, 1, 3, 3], 1.0);
        let out = conv2d_direct(&g, &input, &kernels).unwrap();
        assert!(out.as_slice().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn conv_respects_padding_with_zeros() {
        let g = ConvGeometry::new(2, 3, 1, 1, 1, 1).unwrap();
        let input = Tensor::full(&[1, 2, 2], 1.0);
        let kernels = Tensor::full(&[1, 1, 3, 3], 1.0);
        let out = conv2d_direct(&g, &input, &kernels).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        // every 3x3 window sees exactly the four ones (corners of padding)
        assert!(out.as_slice().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn conv_stride_subsamples() {
        let g = ConvGeometry::new(5, 1, 0, 2, 1, 1).unwrap();
        let input = Tensor::from_vec(&[1, 5, 5], (0..25).map(|v| v as f32).collect()).unwrap();
        let kernels = Tensor::full(&[1, 1, 1, 1], 1.0);
        let out = conv2d_direct(&g, &input, &kernels).unwrap();
        assert_eq!(out.shape(), &[1, 3, 3]);
        assert_eq!(
            out.as_slice(),
            &[0.0, 2.0, 4.0, 10.0, 12.0, 14.0, 20.0, 22.0, 24.0]
        );
    }

    #[test]
    fn conv_multi_channel_accumulates() {
        let g = ConvGeometry::new(3, 3, 0, 1, 2, 1).unwrap();
        let input = Tensor::full(&[2, 3, 3], 2.0);
        let kernels = Tensor::full(&[1, 2, 3, 3], 0.5);
        let out = conv2d_direct(&g, &input, &kernels).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert!((out.as_slice()[0] - 18.0).abs() < 1e-5);
    }

    #[test]
    fn im2col_matches_direct_on_random_layers() {
        let cases = [
            ConvGeometry::new(8, 3, 0, 1, 3, 4).unwrap(),
            ConvGeometry::new(9, 3, 1, 2, 2, 5).unwrap(),
            ConvGeometry::new(12, 5, 2, 3, 1, 2).unwrap(),
            ConvGeometry::new(16, 1, 0, 1, 4, 8).unwrap(),
        ];
        for (i, g) in cases.iter().enumerate() {
            let wl = Workload::gaussian(g, 42 + i as u64);
            let a = conv2d_direct(g, &wl.input, &wl.kernels).unwrap();
            let b = conv2d_im2col(g, &wl.input, &wl.kernels).unwrap();
            assert!(
                a.approx_eq(&b, 1e-3),
                "direct vs im2col mismatch for {g} (rmse {})",
                a.rmse(&b).unwrap()
            );
        }
    }

    #[test]
    fn receptive_field_matches_im2col_column() {
        let g = ConvGeometry::new(7, 3, 1, 2, 2, 3).unwrap();
        let wl = Workload::gaussian(&g, 7);
        let mat = im2col(&g, &wl.input).unwrap();
        let o = g.output_side();
        let cols = o * o;
        for oy in 0..o {
            for ox in 0..o {
                let field = receptive_field(&g, &wl.input, oy, ox).unwrap();
                let col = oy * o + ox;
                for (r, &v) in field.iter().enumerate() {
                    assert_eq!(v, mat.as_slice()[r * cols + col]);
                }
            }
        }
    }

    #[test]
    fn receptive_field_rejects_bad_location() {
        let g = tiny_geometry();
        let input = Tensor::zeros(&[1, 4, 4]);
        assert!(receptive_field(&g, &input, 2, 0).is_err());
    }

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn maxpool_takes_window_max() {
        let input = Tensor::from_vec(&[1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let out = maxpool(&input, 2, 2).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avgpool_takes_window_mean() {
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let out = avgpool(&input, 2, 2).unwrap();
        assert_eq!(out.as_slice(), &[4.0]);
    }

    #[test]
    fn pool_overlapping_windows() {
        // AlexNet uses 3x3 windows with stride 2 (overlapping).
        let input = Tensor::from_vec(&[1, 5, 5], (0..25).map(|v| v as f32).collect()).unwrap();
        let out = maxpool(&input, 3, 2).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[12.0, 14.0, 22.0, 24.0]);
    }

    #[test]
    fn pool_rejects_bad_window() {
        let input = Tensor::zeros(&[1, 2, 2]);
        assert!(maxpool(&input, 3, 1).is_err());
        assert!(maxpool(&input, 0, 1).is_err());
        assert!(maxpool(&Tensor::zeros(&[4]), 1, 1).is_err());
    }

    #[test]
    fn lrn_unit_input_is_scaled_down() {
        let input = Tensor::full(&[5, 2, 2], 1.0);
        let out = local_response_norm(&input, 2, 1e-4, 0.75, 2.0).unwrap();
        // denominator > 1 for positive alpha/bias, so outputs shrink
        assert!(out.as_slice().iter().all(|&v| v < 1.0 && v > 0.0));
    }

    #[test]
    fn lrn_zero_alpha_divides_by_bias_pow_beta() {
        let input = Tensor::full(&[3, 1, 1], 4.0);
        let out = local_response_norm(&input, 1, 0.0, 1.0, 2.0).unwrap();
        assert!(out.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn fully_connected_computes_matvec() {
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]).unwrap();
        let x = Tensor::from_vec(&[3], vec![2.0, 3.0, 4.0]).unwrap();
        let y = fully_connected(&w, &x).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 7.0]);
    }

    #[test]
    fn fully_connected_rejects_mismatch() {
        let w = Tensor::zeros(&[2, 3]);
        let x = Tensor::zeros(&[4]);
        assert!(fully_connected(&w, &x).is_err());
        assert!(fully_connected(&Tensor::zeros(&[6]), &x).is_err());
    }

    #[test]
    fn conv_rejects_wrong_shapes() {
        let g = tiny_geometry();
        let bad_input = Tensor::zeros(&[2, 4, 4]);
        let kernels = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(conv2d_direct(&g, &bad_input, &kernels).is_err());
        let input = Tensor::zeros(&[1, 4, 4]);
        let bad_kernels = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(conv2d_direct(&g, &input, &bad_kernels).is_err());
        assert!(conv2d_im2col(&g, &bad_input, &kernels).is_err());
    }

    #[test]
    fn workload_determinism_same_seed_same_conv() {
        let g = ConvGeometry::new(6, 3, 0, 1, 2, 2).unwrap();
        let a = workload::Workload::gaussian(&g, 99);
        let b = workload::Workload::gaussian(&g, 99);
        let ca = conv2d_direct(&g, &a.input, &a.kernels).unwrap();
        let cb = conv2d_direct(&g, &b.input, &b.kernels).unwrap();
        assert_eq!(ca, cb);
    }
}
