//! Deterministic synthetic workload generation.
//!
//! The paper's timing and area results are data-independent, and its
//! functional behaviour only needs statistically representative tensors, so
//! ImageNet inputs are substituted by seeded generators (see DESIGN.md §2,
//! "Simulated substitutions"). Every generator takes an explicit seed so that
//! tests, examples and benches are reproducible bit-for-bit.

use crate::geometry::ConvGeometry;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A matched `(input, kernels)` pair for one convolution layer.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Input feature map of shape `(nc, n, n)`.
    pub input: Tensor,
    /// Kernel stack of shape `(k, nc, m, m)`.
    pub kernels: Tensor,
}

impl Workload {
    /// Standard-normal input activations and Xavier-scaled kernels.
    #[must_use]
    pub fn gaussian(g: &ConvGeometry, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = gaussian_tensor(&g.input_shape(), 0.0, 1.0, &mut rng);
        let fan_in = g.n_kernel() as f32;
        let scale = (2.0 / fan_in).sqrt();
        let kernels = gaussian_tensor(&g.kernel_shape(), 0.0, scale, &mut rng);
        Workload { input, kernels }
    }

    /// Uniform activations in `[0, 1)` (post-ReLU-like) and uniform kernels
    /// in `[-w, w)` with Xavier bound `w`.
    #[must_use]
    pub fn uniform(g: &ConvGeometry, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = uniform_tensor(&g.input_shape(), 0.0, 1.0, &mut rng);
        let bound = (6.0 / (g.n_kernel() as f32 + g.kernels() as f32)).sqrt();
        let kernels = uniform_tensor(&g.kernel_shape(), -bound, bound, &mut rng);
        Workload { input, kernels }
    }

    /// A structured "natural-image-like" input (smooth blobs and an edge)
    /// with Gabor-like oriented edge kernels — exercises spatial correlation
    /// paths that pure noise misses.
    #[must_use]
    pub fn structured(g: &ConvGeometry, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = blob_image(&g.input_shape(), &mut rng);
        let kernels = oriented_kernels(&g.kernel_shape(), &mut rng);
        Workload { input, kernels }
    }
}

/// Tensor of i.i.d. normal samples (Box-Muller; deterministic given the rng).
fn gaussian_tensor(shape: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let len: usize = shape.iter().product();
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < len {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data).expect("generated data matches shape by construction")
}

/// Tensor of i.i.d. uniform samples in `[lo, hi)`.
fn uniform_tensor(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let len: usize = shape.iter().product();
    let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("generated data matches shape by construction")
}

/// Smooth random blobs plus one hard vertical edge per channel, normalised
/// to `[0, 1]`.
fn blob_image(shape: &[usize; 3], rng: &mut StdRng) -> Tensor {
    let (nc, h, w) = (shape[0], shape[1], shape[2]);
    let mut t = Tensor::zeros(shape);
    for c in 0..nc {
        let n_blobs = 3 + (c % 3);
        let centers: Vec<(f32, f32, f32)> = (0..n_blobs)
            .map(|_| {
                (
                    rng.gen_range(0.0..h as f32),
                    rng.gen_range(0.0..w as f32),
                    rng.gen_range(1.0..(h.max(4) as f32 / 2.0)),
                )
            })
            .collect();
        let edge_col = rng.gen_range(0..w);
        for y in 0..h {
            for x in 0..w {
                let mut v = 0.0f32;
                for &(cy, cx, sigma) in &centers {
                    let d2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                    v += (-d2 / (2.0 * sigma * sigma)).exp();
                }
                if x >= edge_col {
                    v += 0.5;
                }
                *t.at3_mut(c, y, x) = v;
            }
        }
    }
    let max = t.max_abs().max(1e-9);
    t.map_inplace(|v| v / max);
    t
}

/// Oriented difference kernels (crude Gabor family) with random orientation
/// per output channel.
fn oriented_kernels(shape: &[usize; 4], rng: &mut StdRng) -> Tensor {
    let (k, nc, m, _) = (shape[0], shape[1], shape[2], shape[3]);
    let mut t = Tensor::zeros(shape);
    let data = t.as_mut_slice();
    for kk in 0..k {
        let theta: f32 = rng.gen_range(0.0..core::f32::consts::PI);
        let (st, ct) = theta.sin_cos();
        for c in 0..nc {
            for ky in 0..m {
                for kx in 0..m {
                    let y = ky as f32 - (m as f32 - 1.0) / 2.0;
                    let x = kx as f32 - (m as f32 - 1.0) / 2.0;
                    let along = x * ct + y * st;
                    let across = -x * st + y * ct;
                    let v = along * (-(across * across) / 2.0).exp() / (m as f32 / 2.0).max(1.0);
                    data[((kk * nc + c) * m + ky) * m + kx] = v;
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> ConvGeometry {
        ConvGeometry::new(12, 3, 1, 1, 3, 4).unwrap()
    }

    #[test]
    fn gaussian_is_deterministic_per_seed() {
        let a = Workload::gaussian(&g(), 1);
        let b = Workload::gaussian(&g(), 1);
        assert_eq!(a.input, b.input);
        assert_eq!(a.kernels, b.kernels);
        let c = Workload::gaussian(&g(), 2);
        assert_ne!(a.input, c.input);
    }

    #[test]
    fn gaussian_shapes_match_geometry() {
        let wl = Workload::gaussian(&g(), 3);
        assert_eq!(wl.input.shape(), g().input_shape());
        assert_eq!(wl.kernels.shape(), g().kernel_shape());
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let geo = ConvGeometry::new(32, 3, 0, 1, 8, 4).unwrap();
        let wl = Workload::gaussian(&geo, 5);
        let mean = wl.input.mean();
        assert!(mean.abs() < 0.1, "input mean {mean} too far from 0");
        let var: f32 = wl
            .input
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / wl.input.len() as f32;
        assert!((var - 1.0).abs() < 0.15, "input variance {var} far from 1");
    }

    #[test]
    fn uniform_ranges_hold() {
        let wl = Workload::uniform(&g(), 11);
        assert!(wl.input.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
        let bound = (6.0 / (g().n_kernel() as f32 + g().kernels() as f32)).sqrt();
        assert!(wl.kernels.as_slice().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn structured_is_normalised_and_deterministic() {
        let a = Workload::structured(&g(), 21);
        let b = Workload::structured(&g(), 21);
        assert_eq!(a.input, b.input);
        assert!(a.input.max_abs() <= 1.0 + 1e-6);
        assert!(a.input.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn oriented_kernels_have_zero_ish_mean() {
        let wl = Workload::structured(&g(), 33);
        // Odd-symmetric edge kernels should be near zero-mean.
        assert!(wl.kernels.mean().abs() < 0.05);
    }
}
