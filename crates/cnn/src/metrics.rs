//! Task-level agreement metrics between two feature maps.
//!
//! RMSE answers "how far apart are the numbers"; these metrics answer the
//! question a CNN user actually cares about when the convolutions run on a
//! noisy analog substrate: *would the network still make the same
//! decisions?* Used by the functional-inference example and tests to score
//! photonic feature maps against the reference.

use crate::tensor::Tensor;
use crate::{CnnError, Result};

/// Index of the maximum element (first of ties); `None` for empty input.
#[must_use]
pub fn argmax(values: &[f32]) -> Option<usize> {
    // strictly-greater replacement keeps the first of ties
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            None => best = Some((i, v)),
            Some((_, bv)) if v > bv => best = Some((i, v)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

/// Indices of the `k` largest elements, in descending order.
#[must_use]
pub fn top_k(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
    idx.truncate(k);
    idx
}

/// Cosine similarity of two equal-length vectors (1 for identical
/// directions, 0 if either is zero).
#[must_use]
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|&y| y * y).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Per-position channel-argmax agreement between two `(c, h, w)` feature
/// maps: the fraction of spatial positions whose strongest channel matches.
///
/// # Errors
///
/// Returns [`CnnError::ShapeMismatch`] if the maps differ in shape or are
/// not 3-dimensional.
pub fn channel_argmax_agreement(a: &Tensor, b: &Tensor) -> Result<f64> {
    if a.shape() != b.shape() || a.ndim() != 3 {
        return Err(CnnError::ShapeMismatch {
            expected: format!("matching (c,h,w), got {:?}", a.shape()),
            actual: format!("{:?}", b.shape()),
        });
    }
    let (c, h, w) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let mut agree = 0usize;
    for y in 0..h {
        for x in 0..w {
            let col_a: Vec<f32> = (0..c).map(|ch| a.at3(ch, y, x)).collect();
            let col_b: Vec<f32> = (0..c).map(|ch| b.at3(ch, y, x)).collect();
            if argmax(&col_a) == argmax(&col_b) {
                agree += 1;
            }
        }
    }
    Ok(agree as f64 / (h * w) as f64)
}

/// Top-`k` overlap of two score vectors: `|topk(a) ∩ topk(b)| / k`.
#[must_use]
pub fn top_k_overlap(a: &[f32], b: &[f32], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let ta: std::collections::HashSet<usize> = top_k(a, k).into_iter().collect();
    let tb = top_k(b, k);
    let common = tb.iter().filter(|i| ta.contains(i)).count();
    common as f64 / k.min(a.len().max(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        // first of ties
        assert_eq!(argmax(&[5.0, 5.0]), Some(0));
    }

    #[test]
    fn top_k_is_descending() {
        let v = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k(&v, 3), vec![1, 3, 2]);
        assert_eq!(top_k(&v, 10).len(), 4);
        assert!(top_k(&v, 0).is_empty());
    }

    #[test]
    fn cosine_similarity_endpoints() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn agreement_of_identical_maps_is_one() {
        let t = Tensor::from_vec(&[2, 2, 2], vec![1., 2., 3., 4., 0., 1., 5., 2.]).unwrap();
        assert_eq!(channel_argmax_agreement(&t, &t).unwrap(), 1.0);
    }

    #[test]
    fn agreement_detects_flips() {
        let a = Tensor::from_vec(&[2, 1, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_vec(&[2, 1, 2], vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        // position 0: a→ch0, b→ch1 (disagree); position 1: both ch1 (agree)
        assert!((channel_argmax_agreement(&a, &b).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn agreement_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2, 2]);
        let b = Tensor::zeros(&[2, 2, 3]);
        assert!(channel_argmax_agreement(&a, &b).is_err());
        let flat = Tensor::zeros(&[8]);
        assert!(channel_argmax_agreement(&flat, &flat).is_err());
    }

    #[test]
    fn top_k_overlap_behaviour() {
        let a = [0.9f32, 0.8, 0.1, 0.05];
        let b = [0.85f32, 0.9, 0.02, 0.3];
        assert_eq!(top_k_overlap(&a, &b, 2), 1.0); // {0,1} both
        assert!((top_k_overlap(&a, &b, 3) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(top_k_overlap(&a, &b, 0), 1.0);
    }
}
