//! MAC / weight / activation accounting.
//!
//! The paper motivates PCNNA with the observation that "convolution
//! operations account for roughly 90% of the total operations in a CNN"
//! (§I, citing Cong & Xiao). This module quantifies exactly that for any
//! [`Network`], and provides the per-layer operation counts the baseline
//! accelerator models consume.

use crate::geometry::ConvGeometry;
use crate::layer::Layer;
use crate::network::Network;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Operation/storage statistics for a single layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Layer name or kind tag.
    pub name: String,
    /// Layer kind tag (`"conv"`, `"fc"`, …).
    pub kind: String,
    /// Multiply-accumulate operations.
    pub macs: u64,
    /// Number of weight parameters.
    pub weights: u64,
    /// Number of output activations produced.
    pub activations: u64,
}

/// Statistics for one convolution layer.
#[must_use]
pub fn conv_stats(name: &str, g: &ConvGeometry) -> LayerStats {
    LayerStats {
        name: name.to_owned(),
        kind: "conv".to_owned(),
        macs: g.macs(),
        weights: g.weight_count(),
        activations: g.n_output(),
    }
}

/// Whole-network statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Network name.
    pub network: String,
    /// Per-layer statistics, in network order.
    pub layers: Vec<LayerStats>,
}

impl NetworkStats {
    /// Total MACs across all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total MACs in convolution layers only.
    #[must_use]
    pub fn conv_macs(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.kind == "conv")
            .map(|l| l.macs)
            .sum()
    }

    /// Fraction of all MACs spent in convolutions (the paper's ~90% claim).
    #[must_use]
    pub fn conv_mac_fraction(&self) -> f64 {
        let total = self.total_macs();
        if total == 0 {
            0.0
        } else {
            self.conv_macs() as f64 / total as f64
        }
    }

    /// Total weight parameters.
    #[must_use]
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weights).sum()
    }
}

/// Computes statistics for every layer of a network.
///
/// # Errors
///
/// Propagates shape-tracing errors (impossible for builder-validated
/// networks).
pub fn network_stats(net: &Network) -> Result<NetworkStats> {
    let trace = net.shape_trace()?;
    let mut layers = Vec::with_capacity(net.layers().len());
    for (i, layer) in net.layers().iter().enumerate() {
        let input = trace[i];
        let output = trace[i + 1];
        let stats = match layer {
            Layer::Conv(c) => conv_stats(&c.name, &c.geometry),
            Layer::FullyConnected { name, outputs } => {
                let inputs = input.len() as u64;
                LayerStats {
                    name: name.clone(),
                    kind: "fc".to_owned(),
                    macs: inputs * *outputs as u64,
                    weights: inputs * *outputs as u64,
                    activations: *outputs as u64,
                }
            }
            // Pooling does comparisons/adds, not MACs; all these layer
            // kinds are counted as zero MACs and zero weights.
            Layer::Pool(_) | Layer::Relu | Layer::LocalResponseNorm { .. } | Layer::Flatten => {
                LayerStats {
                    name: format!("{}{}", layer.kind(), i),
                    kind: layer.kind().to_owned(),
                    macs: 0,
                    weights: 0,
                    activations: output.len() as u64,
                }
            }
        };
        layers.push(stats);
    }
    Ok(NetworkStats {
        network: net.name().to_owned(),
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::FeatureShape;
    use crate::zoo;

    #[test]
    fn alexnet_conv_macs_match_known_values() {
        // Classic AlexNet conv MAC counts (dense, 224 input, pad 2):
        // conv1: 55*55*96*363      = 105_415_200
        // conv2: 27*27*256*2400    = 447_897_600
        // conv3: 13*13*384*2304    = 149_520_384
        // conv4: 13*13*384*3456    = 224_280_576
        // conv5: 13*13*256*3456    = 149_520_384
        let layers = zoo::alexnet_conv_layers();
        let macs: Vec<u64> = layers.iter().map(|(_, g)| g.macs()).collect();
        assert_eq!(
            macs,
            vec![
                105_415_200,
                447_897_600,
                149_520_384,
                224_280_576,
                149_520_384
            ]
        );
    }

    #[test]
    fn conv4_has_most_weights_in_alexnet() {
        // §V-A: "the 4th layer of AlexNet ... accounts for the most number
        // of kernel weights".
        let layers = zoo::alexnet_conv_layers();
        let weights: Vec<u64> = layers.iter().map(|(_, g)| g.weight_count()).collect();
        let max = *weights.iter().max().unwrap();
        assert_eq!(weights[3], max);
        assert_eq!(weights[3], 384 * 3 * 3 * 384); // 1_327_104
    }

    #[test]
    fn alexnet_conv_fraction_is_about_90_percent() {
        // The §I claim this reproduction encodes: convs dominate MACs.
        let stats = network_stats(&zoo::alexnet()).unwrap();
        let frac = stats.conv_mac_fraction();
        assert!(
            (0.90..=0.96).contains(&frac),
            "conv MAC fraction {frac} outside the paper's ~90% ballpark"
        );
    }

    #[test]
    fn fc_layers_dominate_weights_in_alexnet() {
        let stats = network_stats(&zoo::alexnet()).unwrap();
        let fc_weights: u64 = stats
            .layers
            .iter()
            .filter(|l| l.kind == "fc")
            .map(|l| l.weights)
            .sum();
        assert!(fc_weights > stats.total_weights() / 2);
    }

    #[test]
    fn pool_and_relu_contribute_no_macs() {
        let stats = network_stats(&zoo::lenet5()).unwrap();
        for l in &stats.layers {
            if l.kind != "conv" && l.kind != "fc" {
                assert_eq!(l.macs, 0, "{} should have 0 MACs", l.name);
            }
        }
    }

    #[test]
    fn activations_match_shape_trace() {
        let net = zoo::cifar_small();
        let stats = network_stats(&net).unwrap();
        let trace = net.shape_trace().unwrap();
        for (l, s) in stats.layers.iter().zip(trace.iter().skip(1)) {
            assert_eq!(l.activations, s.len() as u64);
        }
    }

    #[test]
    fn unused_shape_variable_lint_helper() {
        // FeatureShape is part of the public input of this module through
        // network traces; sanity check Flat length accounting.
        assert_eq!(FeatureShape::Flat { len: 12 }.len(), 12);
    }
}
