//! A minimal dense, row-major, `f32` tensor.
//!
//! The PCNNA models only need a handful of tensor operations (indexing,
//! elementwise maps, comparisons and simple reductions), so rather than pull
//! in an array library we provide exactly those, fully tested.

use crate::{CnnError, Result};

/// Dense row-major tensor of `f32` values.
///
/// The last axis is contiguous. Feature maps use `(channels, height, width)`
/// order; kernel stacks use `(k, channels, height, width)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcnna_cnn::tensor::Tensor;
    /// let t = Tensor::zeros(&[3, 4, 4]);
    /// assert_eq!(t.len(), 48);
    /// ```
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with a constant value.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates a tensor from raw data in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::ShapeMismatch`] if `data.len()` does not equal the
    /// product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(CnnError::ShapeMismatch {
                expected: format!("{expected} elements for shape {shape:?}"),
                actual: format!("{} elements", data.len()),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of axes.
    #[must_use]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Computes the flat offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::IndexOutOfBounds`] if the index rank or any
    /// component is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() {
            return Err(CnnError::IndexOutOfBounds {
                index: format!("{index:?}"),
                shape: format!("{:?}", self.shape),
            });
        }
        let mut off = 0usize;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            if ix >= dim {
                return Err(CnnError::IndexOutOfBounds {
                    index: format!("{index:?} (axis {i})"),
                    shape: format!("{:?}", self.shape),
                });
            }
            off = off * dim + ix;
        }
        Ok(off)
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::IndexOutOfBounds`] on a bad index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::IndexOutOfBounds`] on a bad index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Fast unchecked-ish accessor for `(c, y, x)` tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-dimensional or the index is out of range.
    #[must_use]
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 3, "at3 requires a 3-D tensor");
        let (h, w) = (self.shape[1], self.shape[2]);
        self.data[(c * h + y) * w + x]
    }

    /// Mutable counterpart of [`Tensor::at3`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-dimensional or the index is out of range.
    pub fn at3_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 3, "at3_mut requires a 3-D tensor");
        let (h, w) = (self.shape[1], self.shape[2]);
        &mut self.data[(c * h + y) * w + x]
    }

    /// Fast accessor for `(k, c, y, x)` tensors (kernel stacks).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-dimensional or the index is out of range.
    #[must_use]
    pub fn at4(&self, k: usize, c: usize, y: usize, x: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4, "at4 requires a 4-D tensor");
        let (nc, h, w) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((k * nc + c) * h + y) * w + x]
    }

    /// Applies a function to every element, returning a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise sum with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b)
    }

    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(CnnError::ShapeMismatch {
                expected: format!("{:?}", self.shape),
                actual: format!("{:?}", other.shape),
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Maximum absolute value over all elements (0 for empty tensors).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |acc, &v| acc.max(v.abs()))
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Root-mean-square difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::ShapeMismatch`] if shapes differ.
    pub fn rmse(&self, other: &Tensor) -> Result<f32> {
        let diff = self.sub(other)?;
        let ss: f32 = diff.data.iter().map(|v| v * v).sum();
        Ok((ss / diff.data.len().max(1) as f32).sqrt())
    }

    /// Whether every element is within `tol` of the corresponding element of
    /// `other`. Shapes must match, otherwise returns `false`.
    #[must_use]
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Reshapes the tensor without copying.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::ShapeMismatch`] if the element count differs.
    pub fn reshape(self, shape: &[usize]) -> Result<Tensor> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(CnnError::ShapeMismatch {
                expected: format!("{} elements for shape {shape:?}", self.data.len()),
                actual: format!("{expected} elements"),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_len_and_values() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(&[2, 2], vec![1.0; 5]),
            Err(CnnError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn offset_is_row_major() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(t.get(&[0, 2]).unwrap(), 2.0);
        assert_eq!(t.get(&[1, 0]).unwrap(), 3.0);
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
    }

    #[test]
    fn get_rejects_bad_rank_and_bounds() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(matches!(
            t.get(&[0]),
            Err(CnnError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            t.get(&[0, 2]),
            Err(CnnError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn set_then_get_roundtrip() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[1, 2], 7.5).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.5);
    }

    #[test]
    fn at3_matches_get() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 9.0).unwrap();
        assert_eq!(t.at3(1, 2, 3), 9.0);
        *t.at3_mut(0, 1, 2) = 4.0;
        assert_eq!(t.get(&[0, 1, 2]).unwrap(), 4.0);
    }

    #[test]
    fn at4_matches_get() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        t.set(&[1, 2, 3, 4], 11.0).unwrap();
        assert_eq!(t.at4(1, 2, 3, 4), 11.0);
    }

    #[test]
    fn map_and_map_inplace_agree() {
        let t = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        let mapped = t.map(f32::abs);
        let mut inplace = t.clone();
        inplace.map_inplace(f32::abs);
        assert_eq!(mapped, inplace);
        assert_eq!(mapped.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn add_sub_shapes_must_match() {
        let a = Tensor::full(&[2, 2], 3.0);
        let b = Tensor::full(&[2, 2], 1.0);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0; 4]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[2.0; 4]);
        let c = Tensor::zeros(&[4]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, -4.0]).unwrap();
        assert_eq!(t.max_abs(), 4.0);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
    }

    #[test]
    fn rmse_zero_for_identical() {
        let t = Tensor::full(&[3, 3], 2.5);
        assert_eq!(t.rmse(&t).unwrap(), 0.0);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = Tensor::full(&[2], 1.0);
        let b = Tensor::full(&[2], 1.0005);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
        let c = Tensor::full(&[3], 1.0);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect()).unwrap();
        let r = t.clone().reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn empty_tensor_behaves() {
        let t = Tensor::zeros(&[0]);
        assert!(t.is_empty());
        assert_eq!(t.max_abs(), 0.0);
        assert_eq!(t.mean(), 0.0);
    }
}
