//! CNN substrate for the PCNNA reproduction.
//!
//! This crate provides everything the accelerator model needs to reason about
//! convolutional neural networks *without* any external ML dependency:
//!
//! * [`tensor`] — a minimal dense row-major tensor with the handful of
//!   operations the reference kernels need.
//! * [`geometry`] — the convolution-layer parameter algebra of the paper's
//!   Table I and equations (1)–(3) and (6).
//! * [`layer`] / [`network`] — typed layer descriptions and whole-network
//!   containers with shape inference.
//! * [`reference`](mod@reference) — ground-truth functional kernels (direct and im2col
//!   convolution, pooling, ReLU, LRN, fully connected) used to validate the
//!   photonic datapath.
//! * [`quantize`] — 16-bit fixed-point quantization matching the paper's
//!   "8 thousand 16 bit values" SRAM sizing.
//! * [`zoo`] — layer tables for AlexNet (the paper's evaluation network),
//!   LeNet-5, VGG-16 and a small CIFAR network.
//! * [`workload`] — deterministic synthetic workload generators.
//! * [`stats`] — MAC/weight/activation accounting per layer and per network.
//! * [`metrics`] — task-level agreement metrics (argmax, top-k, cosine).
//! * [`train`] — a minimal trainable conv-net (manual backprop + SGD) for
//!   measuring task accuracy of analog photonic inference.
//! * [`winograd`] — Winograd F(2×2, 3×3) convolution: a third independent
//!   implementation cross-checking the ground truth.
//!
//! # Example
//!
//! ```
//! use pcnna_cnn::geometry::ConvGeometry;
//!
//! // AlexNet conv1 as used in the paper (224x224x3 input, 96 11x11 kernels).
//! let conv1 = ConvGeometry::new(224, 11, 2, 4, 3, 96).unwrap();
//! assert_eq!(conv1.n_input(), 224 * 224 * 3);
//! assert_eq!(conv1.n_kernel(), 11 * 11 * 3);
//! assert_eq!(conv1.output_side(), 55);
//! assert_eq!(conv1.n_locations(), 55 * 55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod layer;
pub mod metrics;
pub mod network;
pub mod quantize;
pub mod reference;
pub mod stats;
pub mod tensor;
pub mod train;
pub mod winograd;
pub mod workload;
pub mod zoo;

pub use geometry::ConvGeometry;
pub use layer::{ConvLayer, Layer, PoolKind, PoolLayer};
pub use network::Network;
pub use tensor::Tensor;

/// Errors produced by the CNN substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CnnError {
    /// A layer parameter combination is geometrically impossible
    /// (e.g. kernel larger than padded input, zero stride).
    InvalidGeometry {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A tensor shape did not match what an operation required.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        actual: String,
    },
    /// An index was out of bounds for a tensor.
    IndexOutOfBounds {
        /// The offending flat or multi-dimensional index, rendered.
        index: String,
        /// The tensor shape, rendered.
        shape: String,
    },
}

impl core::fmt::Display for CnnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CnnError::InvalidGeometry { reason } => {
                write!(f, "invalid convolution geometry: {reason}")
            }
            CnnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            CnnError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index} out of bounds for shape {shape}")
            }
        }
    }
}

impl std::error::Error for CnnError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, CnnError>;
