//! Winograd F(2×2, 3×3) convolution.
//!
//! A third, algorithmically independent implementation of the 3×3/stride-1
//! convolution (after direct and im2col): each 2×2 output tile is computed
//! from a 4×4 input tile with 16 multiplies instead of 36, via
//! `Y = Aᵀ[(G g Gᵀ) ⊙ (Bᵀ d B)]A`. Three-way agreement between direct,
//! im2col and Winograd is the strongest correctness evidence this crate can
//! give the ground-truth engine the photonic datapath is judged against —
//! and the electronic baselines in the benches get a realistic fast kernel.

use crate::geometry::ConvGeometry;
use crate::tensor::Tensor;
use crate::{CnnError, Result};

/// Whether a geometry is eligible for this transform (3×3 kernel, stride 1).
#[must_use]
pub fn supports(g: &ConvGeometry) -> bool {
    g.kernel_side() == 3 && g.stride() == 1
}

/// `G·g·Gᵀ`: transforms one 3×3 kernel tap into the 4×4 Winograd domain.
fn transform_kernel(g: &[f32; 9]) -> [f32; 16] {
    // G = [[1,0,0],[1/2,1/2,1/2],[1/2,-1/2,1/2],[0,0,1]]
    let mut tmp = [0.0f32; 12]; // G·g : 4x3
    for col in 0..3 {
        let (a, b, c) = (g[col], g[3 + col], g[6 + col]);
        tmp[col] = a;
        tmp[3 + col] = 0.5 * (a + b + c);
        tmp[6 + col] = 0.5 * (a - b + c);
        tmp[9 + col] = c;
    }
    let mut out = [0.0f32; 16]; // (G·g)·Gᵀ : 4x4
    for row in 0..4 {
        let (a, b, c) = (tmp[row * 3], tmp[row * 3 + 1], tmp[row * 3 + 2]);
        out[row * 4] = a;
        out[row * 4 + 1] = 0.5 * (a + b + c);
        out[row * 4 + 2] = 0.5 * (a - b + c);
        out[row * 4 + 3] = c;
    }
    out
}

/// `Bᵀ·d·B`: transforms one 4×4 input tile.
fn transform_input(d: &[f32; 16]) -> [f32; 16] {
    // Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]
    let mut tmp = [0.0f32; 16]; // Bᵀ·d
    for col in 0..4 {
        let (d0, d1, d2, d3) = (d[col], d[4 + col], d[8 + col], d[12 + col]);
        tmp[col] = d0 - d2;
        tmp[4 + col] = d1 + d2;
        tmp[8 + col] = d2 - d1;
        tmp[12 + col] = d1 - d3;
    }
    let mut out = [0.0f32; 16]; // (Bᵀ·d)·B
    for row in 0..4 {
        let (t0, t1, t2, t3) = (
            tmp[row * 4],
            tmp[row * 4 + 1],
            tmp[row * 4 + 2],
            tmp[row * 4 + 3],
        );
        out[row * 4] = t0 - t2;
        out[row * 4 + 1] = t1 + t2;
        out[row * 4 + 2] = t2 - t1;
        out[row * 4 + 3] = t1 - t3;
    }
    out
}

/// `Aᵀ·m·A`: collapses a 4×4 Winograd-domain product into the 2×2 output.
fn transform_output(m: &[f32; 16]) -> [f32; 4] {
    // Aᵀ = [[1,1,1,0],[0,1,-1,-1]]
    let mut tmp = [0.0f32; 8]; // Aᵀ·m : 2x4
    for col in 0..4 {
        let (m0, m1, m2, m3) = (m[col], m[4 + col], m[8 + col], m[12 + col]);
        tmp[col] = m0 + m1 + m2;
        tmp[4 + col] = m1 - m2 - m3;
    }
    let mut out = [0.0f32; 4];
    for row in 0..2 {
        let (t0, t1, t2, t3) = (
            tmp[row * 4],
            tmp[row * 4 + 1],
            tmp[row * 4 + 2],
            tmp[row * 4 + 3],
        );
        out[row * 2] = t0 + t1 + t2;
        out[row * 2 + 1] = t1 - t2 - t3;
    }
    out
}

/// Winograd convolution for 3×3 stride-1 layers.
///
/// # Errors
///
/// Returns [`CnnError::InvalidGeometry`] if [`supports`] is false, and
/// shape errors if tensors do not match `g`.
pub fn conv2d_winograd(g: &ConvGeometry, input: &Tensor, kernels: &Tensor) -> Result<Tensor> {
    if !supports(g) {
        return Err(CnnError::InvalidGeometry {
            reason: format!(
                "winograd F(2,3) needs m=3, s=1; got m={}, s={}",
                g.kernel_side(),
                g.stride()
            ),
        });
    }
    if input.shape() != g.input_shape() {
        return Err(CnnError::ShapeMismatch {
            expected: format!("{:?}", g.input_shape()),
            actual: format!("{:?}", input.shape()),
        });
    }
    if kernels.shape() != g.kernel_shape() {
        return Err(CnnError::ShapeMismatch {
            expected: format!("{:?}", g.kernel_shape()),
            actual: format!("{:?}", kernels.shape()),
        });
    }
    let (n, nc, k, p, o) = (
        g.input_side(),
        g.channels(),
        g.kernels(),
        g.padding() as isize,
        g.output_side(),
    );

    // Pre-transform every kernel plane.
    let kdata = kernels.as_slice();
    let mut u = vec![[0.0f32; 16]; k * nc];
    for kk in 0..k {
        for c in 0..nc {
            let base = (kk * nc + c) * 9;
            let plane: [f32; 9] = kdata[base..base + 9]
                .try_into()
                .expect("9 taps per 3x3 plane");
            u[kk * nc + c] = transform_kernel(&plane);
        }
    }

    let tiles = o.div_ceil(2);
    let mut out = Tensor::zeros(&[k, o, o]);
    let mut v = vec![[0.0f32; 16]; nc];
    for ty in 0..tiles {
        for tx in 0..tiles {
            // Gather the 4x4 input tile per channel (zero padding applied).
            let base_y = (2 * ty) as isize - p;
            let base_x = (2 * tx) as isize - p;
            for (c, vc) in v.iter_mut().enumerate() {
                let mut d = [0.0f32; 16];
                for dy in 0..4 {
                    let y = base_y + dy as isize;
                    if y < 0 || y as usize >= n {
                        continue;
                    }
                    for dx in 0..4 {
                        let x = base_x + dx as isize;
                        if x < 0 || x as usize >= n {
                            continue;
                        }
                        d[dy * 4 + dx] = input.at3(c, y as usize, x as usize);
                    }
                }
                *vc = transform_input(&d);
            }
            for kk in 0..k {
                let mut m = [0.0f32; 16];
                for (c, vc) in v.iter().enumerate() {
                    let uc = &u[kk * nc + c];
                    for i in 0..16 {
                        m[i] += uc[i] * vc[i];
                    }
                }
                let y4 = transform_output(&m);
                for dy in 0..2 {
                    let oy = 2 * ty + dy;
                    if oy >= o {
                        continue;
                    }
                    for dx in 0..2 {
                        let ox = 2 * tx + dx;
                        if ox >= o {
                            continue;
                        }
                        *out.at3_mut(kk, oy, ox) = y4[dy * 2 + dx];
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv2d_direct;
    use crate::workload::Workload;

    #[test]
    fn supports_only_3x3_stride_1() {
        assert!(supports(&ConvGeometry::new(8, 3, 1, 1, 2, 4).unwrap()));
        assert!(!supports(&ConvGeometry::new(8, 5, 2, 1, 2, 4).unwrap()));
        assert!(!supports(&ConvGeometry::new(8, 3, 1, 2, 2, 4).unwrap()));
    }

    #[test]
    fn rejects_unsupported_geometry() {
        let g = ConvGeometry::new(8, 5, 2, 1, 1, 1).unwrap();
        let wl = Workload::gaussian(&g, 0);
        assert!(conv2d_winograd(&g, &wl.input, &wl.kernels).is_err());
    }

    #[test]
    fn identity_kernel_roundtrip() {
        let g = ConvGeometry::new(6, 3, 1, 1, 1, 1).unwrap();
        let input = Tensor::from_vec(&[1, 6, 6], (0..36).map(|v| v as f32).collect()).unwrap();
        let mut kernels = Tensor::zeros(&[1, 1, 3, 3]);
        kernels.set(&[0, 0, 1, 1], 1.0).unwrap();
        let out = conv2d_winograd(&g, &input, &kernels).unwrap();
        assert!(out.approx_eq(&input, 1e-4), "identity failed");
    }

    #[test]
    fn matches_direct_on_even_output() {
        let g = ConvGeometry::new(10, 3, 1, 1, 3, 4).unwrap(); // out 10 (even)
        let wl = Workload::gaussian(&g, 5);
        let a = conv2d_direct(&g, &wl.input, &wl.kernels).unwrap();
        let b = conv2d_winograd(&g, &wl.input, &wl.kernels).unwrap();
        assert!(
            a.approx_eq(&b, 1e-3 * (1.0 + a.max_abs())),
            "rmse {}",
            a.rmse(&b).unwrap()
        );
    }

    #[test]
    fn matches_direct_on_odd_output() {
        // 13x13 output (AlexNet conv3 shape family): last tile row/col clip.
        let g = ConvGeometry::new(13, 3, 1, 1, 4, 3).unwrap();
        let wl = Workload::gaussian(&g, 6);
        let a = conv2d_direct(&g, &wl.input, &wl.kernels).unwrap();
        let b = conv2d_winograd(&g, &wl.input, &wl.kernels).unwrap();
        assert!(
            a.approx_eq(&b, 1e-3 * (1.0 + a.max_abs())),
            "rmse {}",
            a.rmse(&b).unwrap()
        );
    }

    #[test]
    fn matches_direct_without_padding() {
        let g = ConvGeometry::new(9, 3, 0, 1, 2, 2).unwrap(); // out 7
        let wl = Workload::uniform(&g, 7);
        let a = conv2d_direct(&g, &wl.input, &wl.kernels).unwrap();
        let b = conv2d_winograd(&g, &wl.input, &wl.kernels).unwrap();
        assert!(a.approx_eq(&b, 1e-3 * (1.0 + a.max_abs())));
    }

    #[test]
    fn alexnet_conv3_slice_three_way_agreement() {
        let g = ConvGeometry::new(13, 3, 1, 1, 16, 8).unwrap();
        let wl = Workload::gaussian(&g, 8);
        let direct = conv2d_direct(&g, &wl.input, &wl.kernels).unwrap();
        let im2col = crate::reference::conv2d_im2col(&g, &wl.input, &wl.kernels).unwrap();
        let wino = conv2d_winograd(&g, &wl.input, &wl.kernels).unwrap();
        let tol = 1e-3 * (1.0 + direct.max_abs());
        assert!(direct.approx_eq(&im2col, tol));
        assert!(direct.approx_eq(&wino, tol));
    }

    #[test]
    fn shape_validation() {
        let g = ConvGeometry::new(8, 3, 1, 1, 2, 2).unwrap();
        let wl = Workload::gaussian(&g, 9);
        let bad = Tensor::zeros(&[3, 8, 8]);
        assert!(conv2d_winograd(&g, &bad, &wl.kernels).is_err());
        let badk = Tensor::zeros(&[2, 2, 4, 4]);
        assert!(conv2d_winograd(&g, &wl.input, &badk).is_err());
    }
}
