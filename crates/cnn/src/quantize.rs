//! Fixed-point quantization.
//!
//! The paper sizes the PCNNA cache as "128kb capacity that can store 8
//! thousand 16bit values" (§V-B), i.e. activations and weights live as 16-bit
//! fixed-point words between DRAM and the converters. This module provides
//! the symmetric quantizer used by the electronic datapath models and the
//! functional photonic simulator (whose DAC/ADC resolutions are configurable
//! but default to the paper's converters).

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Symmetric linear quantizer over `[-range, +range]` with `bits` of
/// resolution (one bit of which is the sign).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    bits: u8,
    range: f32,
}

impl Quantizer {
    /// Creates a quantizer with the given bit width and full-scale range.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31, or if `range` is not a
    /// positive finite number — these are programming errors, not data
    /// errors.
    #[must_use]
    pub fn new(bits: u8, range: f32) -> Self {
        assert!(bits > 0 && bits < 32, "bits must be in 1..=31, got {bits}");
        assert!(
            range.is_finite() && range > 0.0,
            "range must be positive and finite, got {range}"
        );
        Quantizer { bits, range }
    }

    /// 16-bit quantizer, the paper's storage word width.
    #[must_use]
    pub fn int16(range: f32) -> Self {
        Quantizer::new(16, range)
    }

    /// Bit width.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Full-scale range (values are clipped to `[-range, +range]`).
    #[must_use]
    pub fn range(&self) -> f32 {
        self.range
    }

    /// Number of positive quantization levels, `2^(bits-1) - 1`.
    #[must_use]
    pub fn max_level(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// The quantization step size (LSB), `range / max_level`.
    #[must_use]
    pub fn step(&self) -> f32 {
        self.range / self.max_level() as f32
    }

    /// Quantizes a value to an integer code, clipping to full scale.
    #[must_use]
    pub fn encode(&self, value: f32) -> i32 {
        let max = self.max_level();
        let scaled = (value / self.step()).round();
        if scaled.is_nan() {
            0
        } else {
            scaled.clamp(-(max as f32), max as f32) as i32
        }
    }

    /// Reconstructs a value from an integer code.
    #[must_use]
    pub fn decode(&self, code: i32) -> f32 {
        code as f32 * self.step()
    }

    /// Rounds a value to its nearest representable level (encode∘decode).
    #[must_use]
    pub fn quantize(&self, value: f32) -> f32 {
        self.decode(self.encode(value))
    }

    /// Quantizes every element of a tensor.
    #[must_use]
    pub fn quantize_tensor(&self, t: &Tensor) -> Tensor {
        t.map(|v| self.quantize(v))
    }

    /// Worst-case absolute rounding error for in-range values: half an LSB.
    #[must_use]
    pub fn max_error(&self) -> f32 {
        self.step() / 2.0
    }

    /// Signal-to-quantization-noise ratio in dB for a full-scale sine input:
    /// the classical `6.02·bits + 1.76` dB.
    #[must_use]
    pub fn sqnr_db(&self) -> f32 {
        6.02 * f32::from(self.bits) + 1.76
    }
}

/// Measures the worst-case and RMS quantization error of `q` over `t`.
#[must_use]
pub fn quantization_error(q: &Quantizer, t: &Tensor) -> (f32, f32) {
    let quant = q.quantize_tensor(t);
    let diff = t.sub(&quant).expect("same shape by construction");
    let max = diff.max_abs();
    let rms =
        (diff.as_slice().iter().map(|v| v * v).sum::<f32>() / diff.len().max(1) as f32).sqrt();
    (max, rms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_and_levels_for_int16() {
        let q = Quantizer::int16(1.0);
        assert_eq!(q.bits(), 16);
        assert_eq!(q.max_level(), 32767);
        assert!((q.step() - 1.0 / 32767.0).abs() < 1e-12);
    }

    #[test]
    fn encode_decode_roundtrip_on_grid() {
        let q = Quantizer::new(8, 2.0);
        for code in [-127, -64, 0, 1, 100, 127] {
            let v = q.decode(code);
            assert_eq!(q.encode(v), code);
        }
    }

    #[test]
    fn quantize_is_idempotent() {
        let q = Quantizer::new(6, 1.0);
        for &v in &[0.013, -0.77, 0.5, 0.999, -1.0] {
            let once = q.quantize(v);
            assert_eq!(q.quantize(once), once);
        }
    }

    #[test]
    fn clipping_at_full_scale() {
        let q = Quantizer::new(8, 1.0);
        assert_eq!(q.quantize(5.0), q.decode(q.max_level()));
        assert_eq!(q.quantize(-5.0), q.decode(-q.max_level()));
    }

    #[test]
    fn nan_encodes_to_zero() {
        let q = Quantizer::new(8, 1.0);
        assert_eq!(q.encode(f32::NAN), 0);
    }

    #[test]
    fn in_range_error_bounded_by_half_lsb() {
        let q = Quantizer::new(10, 1.0);
        for i in 0..1000 {
            let v = -1.0 + 2.0 * (i as f32) / 999.0;
            let err = (v - q.quantize(v)).abs();
            assert!(
                err <= q.max_error() + 1e-7,
                "error {err} exceeds half-LSB {} at {v}",
                q.max_error()
            );
        }
    }

    #[test]
    fn tensor_quantization_error_metrics() {
        let q = Quantizer::new(8, 1.0);
        let t = Tensor::from_vec(&[4], vec![0.1, -0.2, 0.3, -0.4]).unwrap();
        let (max, rms) = quantization_error(&q, &t);
        assert!(max <= q.max_error() + 1e-7);
        assert!(rms <= max);
    }

    #[test]
    fn sqnr_tracks_bits() {
        let q8 = Quantizer::new(8, 1.0);
        let q16 = Quantizer::new(16, 1.0);
        assert!(q16.sqnr_db() > q8.sqnr_db() + 45.0);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=31")]
    fn zero_bits_panics() {
        let _ = Quantizer::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn nonpositive_range_panics() {
        let _ = Quantizer::new(8, 0.0);
    }
}
