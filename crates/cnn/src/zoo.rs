//! Model zoo: the networks used throughout the evaluation.
//!
//! [`alexnet`] is the paper's evaluation network, encoded exactly as the
//! paper parameterises it: a 224×224×3 input, five convolution layers, and
//! **no channel grouping** — the paper's own numbers (conv1 unfiltered ring
//! count of ~5.2 B, eq. (8)'s `nc = 384` for the largest layer) treat
//! AlexNet's grouped convolutions as dense. See DESIGN.md §3.
//!
//! The other networks extend the evaluation beyond the paper (stretch goals):
//! LeNet-5 for fast functional tests, VGG-16 for a deeper sweep, and a small
//! CIFAR-style CNN sized so the full photonic functional simulation runs in
//! seconds.

use crate::geometry::ConvGeometry;
use crate::layer::{PoolKind, PoolLayer};
use crate::network::{Network, NetworkBuilder};

/// Names and geometries of AlexNet's five convolution layers as the paper
/// parameterises them (dense, 224×224 input, pad 2 on conv1).
///
/// | layer | n   | m  | p | s | nc  | K   |
/// |-------|-----|----|---|---|-----|-----|
/// | conv1 | 224 | 11 | 2 | 4 | 3   | 96  |
/// | conv2 | 27  | 5  | 2 | 1 | 96  | 256 |
/// | conv3 | 13  | 3  | 1 | 1 | 256 | 384 |
/// | conv4 | 13  | 3  | 1 | 1 | 384 | 384 |
/// | conv5 | 13  | 3  | 1 | 1 | 384 | 256 |
#[must_use]
pub fn alexnet_conv_layers() -> Vec<(&'static str, ConvGeometry)> {
    vec![
        (
            "conv1",
            ConvGeometry::new(224, 11, 2, 4, 3, 96).expect("static geometry is valid"),
        ),
        (
            "conv2",
            ConvGeometry::new(27, 5, 2, 1, 96, 256).expect("static geometry is valid"),
        ),
        (
            "conv3",
            ConvGeometry::new(13, 3, 1, 1, 256, 384).expect("static geometry is valid"),
        ),
        (
            "conv4",
            ConvGeometry::new(13, 3, 1, 1, 384, 384).expect("static geometry is valid"),
        ),
        (
            "conv5",
            ConvGeometry::new(13, 3, 1, 1, 384, 256).expect("static geometry is valid"),
        ),
    ]
}

/// Full AlexNet (conv + pool + LRN + fc stack), shape-checked.
#[must_use]
pub fn alexnet() -> Network {
    let convs = alexnet_conv_layers();
    NetworkBuilder::new("alexnet", 3, 224)
        .conv(convs[0].0, convs[0].1)
        .relu()
        .lrn()
        .pool(PoolLayer::new(PoolKind::Max, 3, 2).expect("static pool is valid"))
        .conv(convs[1].0, convs[1].1)
        .relu()
        .lrn()
        .pool(PoolLayer::new(PoolKind::Max, 3, 2).expect("static pool is valid"))
        .conv(convs[2].0, convs[2].1)
        .relu()
        .conv(convs[3].0, convs[3].1)
        .relu()
        .conv(convs[4].0, convs[4].1)
        .relu()
        .pool(PoolLayer::new(PoolKind::Max, 3, 2).expect("static pool is valid"))
        .flatten()
        .fully_connected("fc6", 4096)
        .relu()
        .fully_connected("fc7", 4096)
        .relu()
        .fully_connected("fc8", 1000)
        .build()
        .expect("alexnet shapes chain by construction")
}

/// LeNet-5 on 28×28 single-channel inputs (padded conv1) — small enough for
/// end-to-end functional photonic simulation in unit tests.
#[must_use]
pub fn lenet5() -> Network {
    NetworkBuilder::new("lenet5", 1, 28)
        .conv(
            "c1",
            ConvGeometry::new(28, 5, 2, 1, 1, 6).expect("static geometry is valid"),
        )
        .relu()
        .pool(PoolLayer::new(PoolKind::Average, 2, 2).expect("static pool is valid"))
        .conv(
            "c3",
            ConvGeometry::new(14, 5, 0, 1, 6, 16).expect("static geometry is valid"),
        )
        .relu()
        .pool(PoolLayer::new(PoolKind::Average, 2, 2).expect("static pool is valid"))
        .conv(
            "c5",
            ConvGeometry::new(5, 5, 0, 1, 16, 120).expect("static geometry is valid"),
        )
        .relu()
        .flatten()
        .fully_connected("f6", 84)
        .relu()
        .fully_connected("output", 10)
        .build()
        .expect("lenet5 shapes chain by construction")
}

/// The thirteen convolution layers of VGG-16 (224×224×3 input).
#[must_use]
pub fn vgg16_conv_layers() -> Vec<(&'static str, ConvGeometry)> {
    let spec: [(&'static str, usize, usize, usize); 13] = [
        // (name, input side, input channels, kernels)
        ("conv1_1", 224, 3, 64),
        ("conv1_2", 224, 64, 64),
        ("conv2_1", 112, 64, 128),
        ("conv2_2", 112, 128, 128),
        ("conv3_1", 56, 128, 256),
        ("conv3_2", 56, 256, 256),
        ("conv3_3", 56, 256, 256),
        ("conv4_1", 28, 256, 512),
        ("conv4_2", 28, 512, 512),
        ("conv4_3", 28, 512, 512),
        ("conv5_1", 14, 512, 512),
        ("conv5_2", 14, 512, 512),
        ("conv5_3", 14, 512, 512),
    ];
    spec.iter()
        .map(|&(name, n, nc, k)| {
            (
                name,
                ConvGeometry::new(n, 3, 1, 1, nc, k).expect("static geometry is valid"),
            )
        })
        .collect()
}

/// Full VGG-16 network (conv stacks + pools + fcs), shape-checked.
#[must_use]
pub fn vgg16() -> Network {
    let c = vgg16_conv_layers();
    let pool = || PoolLayer::new(PoolKind::Max, 2, 2).expect("static pool is valid");
    NetworkBuilder::new("vgg16", 3, 224)
        .conv(c[0].0, c[0].1)
        .relu()
        .conv(c[1].0, c[1].1)
        .relu()
        .pool(pool())
        .conv(c[2].0, c[2].1)
        .relu()
        .conv(c[3].0, c[3].1)
        .relu()
        .pool(pool())
        .conv(c[4].0, c[4].1)
        .relu()
        .conv(c[5].0, c[5].1)
        .relu()
        .conv(c[6].0, c[6].1)
        .relu()
        .pool(pool())
        .conv(c[7].0, c[7].1)
        .relu()
        .conv(c[8].0, c[8].1)
        .relu()
        .conv(c[9].0, c[9].1)
        .relu()
        .pool(pool())
        .conv(c[10].0, c[10].1)
        .relu()
        .conv(c[11].0, c[11].1)
        .relu()
        .conv(c[12].0, c[12].1)
        .relu()
        .pool(pool())
        .flatten()
        .fully_connected("fc6", 4096)
        .relu()
        .fully_connected("fc7", 4096)
        .relu()
        .fully_connected("fc8", 1000)
        .build()
        .expect("vgg16 shapes chain by construction")
}

/// The convolution layers of GoogLeNet's stem and the first inception
/// module (3a), flattened (the paper cites Szegedy et al. \[13\] as a
/// motivating deep CNN). Inception branches appear as independent conv
/// layers over the same input — exactly how PCNNA would schedule them.
#[must_use]
pub fn googlenet_stem_conv_layers() -> Vec<(&'static str, ConvGeometry)> {
    vec![
        (
            "conv1/7x7_s2",
            ConvGeometry::new(224, 7, 3, 2, 3, 64).expect("static geometry is valid"),
        ),
        (
            "conv2/3x3_reduce",
            ConvGeometry::new(56, 1, 0, 1, 64, 64).expect("static geometry is valid"),
        ),
        (
            "conv2/3x3",
            ConvGeometry::new(56, 3, 1, 1, 64, 192).expect("static geometry is valid"),
        ),
        (
            "3a/1x1",
            ConvGeometry::new(28, 1, 0, 1, 192, 64).expect("static geometry is valid"),
        ),
        (
            "3a/3x3_reduce",
            ConvGeometry::new(28, 1, 0, 1, 192, 96).expect("static geometry is valid"),
        ),
        (
            "3a/3x3",
            ConvGeometry::new(28, 3, 1, 1, 96, 128).expect("static geometry is valid"),
        ),
        (
            "3a/5x5_reduce",
            ConvGeometry::new(28, 1, 0, 1, 192, 16).expect("static geometry is valid"),
        ),
        (
            "3a/5x5",
            ConvGeometry::new(28, 5, 2, 1, 16, 32).expect("static geometry is valid"),
        ),
        (
            "3a/pool_proj",
            ConvGeometry::new(28, 1, 0, 1, 192, 32).expect("static geometry is valid"),
        ),
    ]
}

/// The convolution layers of ResNet-18 (the paper cites He et al. \[1\]).
/// Identity shortcuts carry no weights; the 1×1 projection shortcuts are
/// included as conv layers.
#[must_use]
pub fn resnet18_conv_layers() -> Vec<(&'static str, ConvGeometry)> {
    let mut layers: Vec<(&'static str, ConvGeometry)> = vec![(
        "conv1",
        ConvGeometry::new(224, 7, 3, 2, 3, 64).expect("static geometry is valid"),
    )];
    // (name, input side, input channels, kernels, stride) for each 3x3 conv
    let blocks: [(&'static str, usize, usize, usize, usize); 16] = [
        ("layer1.0.conv1", 56, 64, 64, 1),
        ("layer1.0.conv2", 56, 64, 64, 1),
        ("layer1.1.conv1", 56, 64, 64, 1),
        ("layer1.1.conv2", 56, 64, 64, 1),
        ("layer2.0.conv1", 56, 64, 128, 2),
        ("layer2.0.conv2", 28, 128, 128, 1),
        ("layer2.1.conv1", 28, 128, 128, 1),
        ("layer2.1.conv2", 28, 128, 128, 1),
        ("layer3.0.conv1", 28, 128, 256, 2),
        ("layer3.0.conv2", 14, 256, 256, 1),
        ("layer3.1.conv1", 14, 256, 256, 1),
        ("layer3.1.conv2", 14, 256, 256, 1),
        ("layer4.0.conv1", 14, 256, 512, 2),
        ("layer4.0.conv2", 7, 512, 512, 1),
        ("layer4.1.conv1", 7, 512, 512, 1),
        ("layer4.1.conv2", 7, 512, 512, 1),
    ];
    for &(name, n, nc, k, s) in &blocks {
        layers.push((
            name,
            ConvGeometry::new(n, 3, 1, s, nc, k).expect("static geometry is valid"),
        ));
    }
    // Projection shortcuts (1x1, stride 2) at each stage transition.
    layers.push((
        "layer2.0.downsample",
        ConvGeometry::new(56, 1, 0, 2, 64, 128).expect("static geometry is valid"),
    ));
    layers.push((
        "layer3.0.downsample",
        ConvGeometry::new(28, 1, 0, 2, 128, 256).expect("static geometry is valid"),
    ));
    layers.push((
        "layer4.0.downsample",
        ConvGeometry::new(14, 1, 0, 2, 256, 512).expect("static geometry is valid"),
    ));
    layers
}

/// A small CIFAR-style CNN (32×32×3) whose every conv layer is cheap enough
/// for full photonic functional simulation with noise.
#[must_use]
pub fn cifar_small() -> Network {
    NetworkBuilder::new("cifar_small", 3, 32)
        .conv(
            "c1",
            ConvGeometry::new(32, 3, 1, 1, 3, 8).expect("static geometry is valid"),
        )
        .relu()
        .pool(PoolLayer::new(PoolKind::Max, 2, 2).expect("static pool is valid"))
        .conv(
            "c2",
            ConvGeometry::new(16, 3, 1, 1, 8, 16).expect("static geometry is valid"),
        )
        .relu()
        .pool(PoolLayer::new(PoolKind::Max, 2, 2).expect("static pool is valid"))
        .conv(
            "c3",
            ConvGeometry::new(8, 3, 1, 1, 16, 16).expect("static geometry is valid"),
        )
        .relu()
        .pool(PoolLayer::new(PoolKind::Max, 2, 2).expect("static pool is valid"))
        .flatten()
        .fully_connected("fc", 10)
        .build()
        .expect("cifar_small shapes chain by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_matches_paper_numbers() {
        let layers = alexnet_conv_layers();
        let (name, conv1) = layers[0];
        assert_eq!(name, "conv1");
        assert_eq!(conv1.n_input(), 150_528);
        assert_eq!(conv1.n_kernel(), 363);
        assert_eq!(conv1.output_side(), 55);
        // §V-A: ~5.2 billion rings unfiltered
        let unfiltered = conv1.n_input() * conv1.kernels() as u64 * conv1.n_kernel();
        assert_eq!(unfiltered, 5_245_599_744);
        // §V-A: ~35 thousand rings filtered
        assert_eq!(conv1.weight_count(), 34_848);
    }

    #[test]
    fn alexnet_conv4_is_largest_by_eq8_numerator() {
        // eq. (8): the largest layer has nc*m*s = 384*3*1 = 1152.
        let layers = alexnet_conv_layers();
        let max = layers
            .iter()
            .map(|(_, g)| g.updated_inputs_per_location())
            .max()
            .unwrap();
        assert_eq!(max, 1152);
        assert_eq!(layers[3].1.updated_inputs_per_location(), 1152);
    }

    #[test]
    fn alexnet_spatial_chain() {
        // 224 -(conv1,s4)-> 55 -(pool)-> 27 -(conv2,p2)-> 27 -(pool)-> 13
        let layers = alexnet_conv_layers();
        assert_eq!(layers[0].1.output_side(), 55);
        assert_eq!(layers[1].1.input_side(), 27);
        assert_eq!(layers[1].1.output_side(), 27);
        for (_, g) in &layers[2..] {
            assert_eq!(g.input_side(), 13);
            assert_eq!(g.output_side(), 13);
        }
    }

    #[test]
    fn alexnet_full_network_builds_and_ends_at_1000() {
        let net = alexnet();
        assert_eq!(
            net.output_shape().unwrap(),
            crate::layer::FeatureShape::Flat { len: 1000 }
        );
        assert_eq!(net.conv_layers().count(), 5);
    }

    #[test]
    fn lenet5_builds() {
        let net = lenet5();
        assert_eq!(
            net.output_shape().unwrap(),
            crate::layer::FeatureShape::Flat { len: 10 }
        );
        assert_eq!(net.conv_layers().count(), 3);
    }

    #[test]
    fn vgg16_builds_with_13_convs() {
        let net = vgg16();
        assert_eq!(net.conv_layers().count(), 13);
        assert_eq!(
            net.output_shape().unwrap(),
            crate::layer::FeatureShape::Flat { len: 1000 }
        );
    }

    #[test]
    fn cifar_small_builds() {
        let net = cifar_small();
        assert_eq!(net.conv_layers().count(), 3);
        assert_eq!(
            net.output_shape().unwrap(),
            crate::layer::FeatureShape::Flat { len: 10 }
        );
    }

    #[test]
    fn googlenet_stem_shapes_chain() {
        let layers = googlenet_stem_conv_layers();
        assert_eq!(layers.len(), 9);
        // conv1 7x7/2 on 224 → 112
        assert_eq!(layers[0].1.output_side(), 112);
        // all 3a branches consume the 28x28x192 tensor
        for (name, g) in &layers[3..] {
            if name.starts_with("3a/") && name.contains("reduce") || *name == "3a/1x1" {
                assert_eq!(g.channels(), 192, "{name}");
            }
            assert_eq!(g.output_side(), 28, "{name}");
        }
    }

    #[test]
    fn resnet18_has_20_conv_layers() {
        let layers = resnet18_conv_layers();
        assert_eq!(layers.len(), 1 + 16 + 3);
        // stage transitions halve the spatial side
        let g = layers
            .iter()
            .find(|(n, _)| *n == "layer3.0.conv1")
            .unwrap()
            .1;
        assert_eq!(g.output_side(), 14);
        // total ResNet-18 conv MACs ≈ 1.8 GMACs
        let macs: u64 = layers.iter().map(|(_, g)| g.macs()).sum();
        assert!((1.6e9..2.0e9).contains(&(macs as f64)), "{macs}");
    }

    #[test]
    fn vgg16_layers_all_3x3_s1_p1() {
        for (_, g) in vgg16_conv_layers() {
            assert_eq!(g.kernel_side(), 3);
            assert_eq!(g.stride(), 1);
            assert_eq!(g.padding(), 1);
            assert_eq!(g.output_side(), g.input_side());
        }
    }
}
