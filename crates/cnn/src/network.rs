//! Whole-network containers with shape checking and functional forward pass.

use crate::geometry::ConvGeometry;
use crate::layer::{ConvLayer, FeatureShape, Layer, PoolLayer};
use crate::reference;
use crate::tensor::Tensor;
use crate::workload::Workload;
use crate::{CnnError, Result};
use serde::{Deserialize, Serialize};

/// A feed-forward CNN: an input shape plus an ordered list of layers whose
/// shapes have been verified to chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    input: FeatureShape,
    layers: Vec<Layer>,
}

/// Builder for [`Network`]; validates shape chaining at [`NetworkBuilder::build`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    input: FeatureShape,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a network taking `(channels, side, side)` volumes.
    #[must_use]
    pub fn new(name: impl Into<String>, channels: usize, side: usize) -> Self {
        NetworkBuilder {
            name: name.into(),
            input: FeatureShape::Volume { channels, side },
            layers: Vec::new(),
        }
    }

    /// Appends a convolution layer.
    #[must_use]
    pub fn conv(mut self, name: impl Into<String>, geometry: ConvGeometry) -> Self {
        self.layers
            .push(Layer::Conv(ConvLayer::new(name, geometry)));
        self
    }

    /// Appends a ReLU.
    #[must_use]
    pub fn relu(mut self) -> Self {
        self.layers.push(Layer::Relu);
        self
    }

    /// Appends a pooling layer.
    #[must_use]
    pub fn pool(mut self, layer: PoolLayer) -> Self {
        self.layers.push(Layer::Pool(layer));
        self
    }

    /// Appends an AlexNet-style LRN with the classic constants.
    #[must_use]
    pub fn lrn(mut self) -> Self {
        self.layers.push(Layer::LocalResponseNorm {
            radius: 2,
            alpha: 1e-4,
            beta: 0.75,
            bias: 2.0,
        });
        self
    }

    /// Appends a flatten layer.
    #[must_use]
    pub fn flatten(mut self) -> Self {
        self.layers.push(Layer::Flatten);
        self
    }

    /// Appends a fully connected layer.
    #[must_use]
    pub fn fully_connected(mut self, name: impl Into<String>, outputs: usize) -> Self {
        self.layers.push(Layer::FullyConnected {
            name: name.into(),
            outputs,
        });
        self
    }

    /// Validates that every layer's input shape matches its predecessor's
    /// output and returns the network.
    ///
    /// # Errors
    ///
    /// Propagates the first shape error encountered while chaining.
    pub fn build(self) -> Result<Network> {
        let mut shape = self.input;
        for (i, layer) in self.layers.iter().enumerate() {
            shape = layer.output_shape(shape).map_err(|e| match e {
                CnnError::ShapeMismatch { expected, actual } => CnnError::ShapeMismatch {
                    expected,
                    actual: format!("{actual} (at layer index {i}, kind {})", layer.kind()),
                },
                other => other,
            })?;
        }
        Ok(Network {
            name: self.name,
            input: self.input,
            layers: self.layers,
        })
    }
}

impl Network {
    /// Network name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expected input shape.
    #[must_use]
    pub fn input_shape(&self) -> FeatureShape {
        self.input
    }

    /// All layers, in order.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Iterator over just the convolution layers (the ones PCNNA runs).
    pub fn conv_layers(&self) -> impl Iterator<Item = &ConvLayer> {
        self.layers.iter().filter_map(|l| match l {
            Layer::Conv(c) => Some(c),
            _ => None,
        })
    }

    /// The shape produced after every layer, starting with the input shape
    /// (so the result has `layers().len() + 1` entries).
    ///
    /// # Errors
    ///
    /// Never fails for a network produced by [`NetworkBuilder::build`]; kept
    /// fallible for forward compatibility with externally constructed layers.
    pub fn shape_trace(&self) -> Result<Vec<FeatureShape>> {
        let mut shapes = Vec::with_capacity(self.layers.len() + 1);
        let mut shape = self.input;
        shapes.push(shape);
        for layer in &self.layers {
            shape = layer.output_shape(shape)?;
            shapes.push(shape);
        }
        Ok(shapes)
    }

    /// Final output shape.
    ///
    /// # Errors
    ///
    /// See [`Network::shape_trace`].
    pub fn output_shape(&self) -> Result<FeatureShape> {
        Ok(*self
            .shape_trace()?
            .last()
            .expect("trace always contains the input shape"))
    }

    /// Runs the reference forward pass.
    ///
    /// Convolution weights are generated deterministically from `seed` per
    /// conv/fc layer (the paper's experiments are weight-agnostic; see
    /// `workload`). Returns the activations after every layer.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `input` does not match the declared input
    /// shape.
    pub fn forward_reference(&self, input: &Tensor, seed: u64) -> Result<Vec<Tensor>> {
        match self.input {
            FeatureShape::Volume { channels, side } => {
                if input.shape() != [channels, side, side] {
                    return Err(CnnError::ShapeMismatch {
                        expected: format!("[{channels}, {side}, {side}]"),
                        actual: format!("{:?}", input.shape()),
                    });
                }
            }
            FeatureShape::Flat { len } => {
                if input.len() != len {
                    return Err(CnnError::ShapeMismatch {
                        expected: format!("flat[{len}]"),
                        actual: format!("{:?}", input.shape()),
                    });
                }
            }
        }
        let mut acts = Vec::with_capacity(self.layers.len());
        let mut current = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let layer_seed = seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            current = match layer {
                Layer::Conv(conv) => {
                    let wl = Workload::gaussian(&conv.geometry, layer_seed);
                    reference::conv2d_direct(&conv.geometry, &current, &wl.kernels)?
                }
                Layer::Pool(p) => match p.kind {
                    crate::layer::PoolKind::Max => {
                        reference::maxpool(&current, p.window, p.stride)?
                    }
                    crate::layer::PoolKind::Average => {
                        reference::avgpool(&current, p.window, p.stride)?
                    }
                },
                Layer::Relu => reference::relu(&current),
                Layer::LocalResponseNorm {
                    radius,
                    alpha,
                    beta,
                    bias,
                } => reference::local_response_norm(&current, *radius, *alpha, *beta, *bias)?,
                Layer::Flatten => {
                    let len = current.len();
                    current.reshape(&[len])?
                }
                Layer::FullyConnected { outputs, .. } => {
                    let inputs = current.len();
                    let g = ConvGeometry::new(1, 1, 0, 1, inputs, *outputs)
                        .expect("fc dims are nonzero by builder validation");
                    let wl = Workload::gaussian(&g, layer_seed);
                    let w = wl.kernels.reshape(&[*outputs, inputs])?;
                    let flat = current.reshape(&[inputs])?;
                    reference::fully_connected(&w, &flat)?
                }
            };
            acts.push(current.clone());
        }
        Ok(acts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PoolKind;

    fn small_net() -> Network {
        NetworkBuilder::new("tiny", 1, 8)
            .conv("c1", ConvGeometry::new(8, 3, 1, 1, 1, 4).unwrap())
            .relu()
            .pool(PoolLayer::new(PoolKind::Max, 2, 2).unwrap())
            .conv("c2", ConvGeometry::new(4, 3, 1, 1, 4, 8).unwrap())
            .relu()
            .flatten()
            .fully_connected("fc", 10)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_chaining() {
        // conv expects 4 channels but pool output has 4? deliberately break:
        let bad = NetworkBuilder::new("bad", 1, 8)
            .conv("c1", ConvGeometry::new(8, 3, 1, 1, 1, 4).unwrap())
            .conv("c2", ConvGeometry::new(8, 3, 1, 1, 3, 4).unwrap())
            .build();
        assert!(bad.is_err());
    }

    #[test]
    fn shape_trace_has_layer_count_plus_one() {
        let net = small_net();
        let trace = net.shape_trace().unwrap();
        assert_eq!(trace.len(), net.layers().len() + 1);
        assert_eq!(
            trace[0],
            FeatureShape::Volume {
                channels: 1,
                side: 8
            }
        );
        assert_eq!(*trace.last().unwrap(), FeatureShape::Flat { len: 10 });
    }

    #[test]
    fn conv_layers_iterator_finds_all() {
        let net = small_net();
        let names: Vec<&str> = net.conv_layers().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["c1", "c2"]);
    }

    #[test]
    fn forward_reference_produces_declared_shapes() {
        let net = small_net();
        let input = Tensor::full(&[1, 8, 8], 0.5);
        let acts = net.forward_reference(&input, 7).unwrap();
        assert_eq!(acts.len(), net.layers().len());
        let trace = net.shape_trace().unwrap();
        for (act, shape) in acts.iter().zip(trace.iter().skip(1)) {
            assert_eq!(act.len(), shape.len());
        }
    }

    #[test]
    fn forward_reference_is_deterministic() {
        let net = small_net();
        let input = Tensor::full(&[1, 8, 8], 0.25);
        let a = net.forward_reference(&input, 9).unwrap();
        let b = net.forward_reference(&input, 9).unwrap();
        assert_eq!(a.last(), b.last());
        let c = net.forward_reference(&input, 10).unwrap();
        assert_ne!(a.last(), c.last());
    }

    #[test]
    fn forward_rejects_wrong_input() {
        let net = small_net();
        let input = Tensor::zeros(&[3, 8, 8]);
        assert!(net.forward_reference(&input, 0).is_err());
    }

    #[test]
    fn relu_layers_clamp_in_forward() {
        let net = NetworkBuilder::new("r", 1, 4)
            .conv("c", ConvGeometry::new(4, 3, 1, 1, 1, 2).unwrap())
            .relu()
            .build()
            .unwrap();
        let input = Tensor::full(&[1, 4, 4], 1.0);
        let acts = net.forward_reference(&input, 3).unwrap();
        assert!(acts[1].as_slice().iter().all(|&v| v >= 0.0));
    }
}
