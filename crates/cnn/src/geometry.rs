//! Convolution-layer geometry: the parameter algebra of the paper's Table I.
//!
//! The paper characterises a convolution layer by the tuple
//! `(n, m, p, s, nc, K)` — input side, kernel side, padding, stride, input
//! channels and kernel count — and derives from it (equations (1)–(3), (6)):
//!
//! * `Ninput  = n · n · nc`
//! * `Nkernel = m · m · nc`
//! * `Noutput = (⌊(n + 2p − m)/s⌋ + 1)² · K`
//! * `Nlocs   = Noutput / K = (⌊(n + 2p − m)/s⌋ + 1)²`
//!
//! [`ConvGeometry`] encodes that tuple once, validated, and exposes every
//! derived quantity used by the mapper, scheduler and analytical models.

use crate::{CnnError, Result};
use serde::{Deserialize, Serialize};

/// Validated convolution-layer geometry (paper Table I).
///
/// Input feature maps are square `n × n × nc` volumes; kernels are square
/// `m × m × nc` volumes; `k` kernels slide with stride `s` over an input
/// padded by `p` on each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeometry {
    n: usize,
    m: usize,
    p: usize,
    s: usize,
    nc: usize,
    k: usize,
}

impl ConvGeometry {
    /// Creates a validated geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::InvalidGeometry`] if any dimension is zero, the
    /// stride is zero, or the kernel does not fit in the padded input
    /// (`m > n + 2p`).
    ///
    /// # Examples
    ///
    /// ```
    /// use pcnna_cnn::geometry::ConvGeometry;
    /// let g = ConvGeometry::new(16, 3, 0, 1, 1, 5).unwrap();
    /// assert_eq!(g.output_side(), 14);
    /// ```
    pub fn new(n: usize, m: usize, p: usize, s: usize, nc: usize, k: usize) -> Result<Self> {
        if n == 0 || m == 0 || nc == 0 || k == 0 {
            return Err(CnnError::InvalidGeometry {
                reason: format!("dimensions must be nonzero (n={n}, m={m}, nc={nc}, k={k})"),
            });
        }
        if s == 0 {
            return Err(CnnError::InvalidGeometry {
                reason: "stride must be nonzero".to_owned(),
            });
        }
        if m > n + 2 * p {
            return Err(CnnError::InvalidGeometry {
                reason: format!("kernel side {m} exceeds padded input side {}", n + 2 * p),
            });
        }
        Ok(ConvGeometry { n, m, p, s, nc, k })
    }

    /// Input feature-map side length `n`.
    #[must_use]
    pub fn input_side(&self) -> usize {
        self.n
    }

    /// Kernel side length `m`.
    #[must_use]
    pub fn kernel_side(&self) -> usize {
        self.m
    }

    /// Padding `p` applied on each border.
    #[must_use]
    pub fn padding(&self) -> usize {
        self.p
    }

    /// Stride `s`.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.s
    }

    /// Input channel count `nc`.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.nc
    }

    /// Number of kernels `K` (= output channels).
    #[must_use]
    pub fn kernels(&self) -> usize {
        self.k
    }

    /// `Ninput = n · n · nc` — paper equation (1).
    #[must_use]
    pub fn n_input(&self) -> u64 {
        (self.n * self.n * self.nc) as u64
    }

    /// `Nkernel = m · m · nc` — paper equation (2).
    #[must_use]
    pub fn n_kernel(&self) -> u64 {
        (self.m * self.m * self.nc) as u64
    }

    /// Receptive-field size of a single channel slice, `m · m`.
    ///
    /// Used by the channel-sequential allocation policy (see DESIGN.md §3).
    #[must_use]
    pub fn n_kernel_per_channel(&self) -> u64 {
        (self.m * self.m) as u64
    }

    /// Output feature-map side length `⌊(n + 2p − m)/s⌋ + 1`.
    #[must_use]
    pub fn output_side(&self) -> usize {
        (self.n + 2 * self.p - self.m) / self.s + 1
    }

    /// `Noutput = output_side² · K` — paper equation (3).
    #[must_use]
    pub fn n_output(&self) -> u64 {
        let side = self.output_side() as u64;
        side * side * self.k as u64
    }

    /// `Nlocs = Noutput / K` — paper equation (6): the number of distinct
    /// kernel locations over the input feature map.
    #[must_use]
    pub fn n_locations(&self) -> u64 {
        let side = self.output_side() as u64;
        side * side
    }

    /// Multiply-accumulate operations for the full layer:
    /// `Nlocs · K · Nkernel`.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.n_locations() * self.k as u64 * self.n_kernel()
    }

    /// Number of weight values in the layer, `K · Nkernel`.
    #[must_use]
    pub fn weight_count(&self) -> u64 {
        self.k as u64 * self.n_kernel()
    }

    /// Values newly required when the kernel window advances by one stride
    /// within a row: `nc · m · s` (paper §V-B, the numerator of equation (8)).
    ///
    /// The paper uses this as the steady-state per-location input-update
    /// count; see [`crate::layer`] and the scheduler for the exact per-row
    /// accounting.
    #[must_use]
    pub fn updated_inputs_per_location(&self) -> u64 {
        (self.nc * self.m * self.s) as u64
    }

    /// The shape of the input volume as `(nc, n, n)`.
    #[must_use]
    pub fn input_shape(&self) -> [usize; 3] {
        [self.nc, self.n, self.n]
    }

    /// The shape of the kernel stack as `(k, nc, m, m)`.
    #[must_use]
    pub fn kernel_shape(&self) -> [usize; 4] {
        [self.k, self.nc, self.m, self.m]
    }

    /// The shape of the output volume as `(k, out, out)`.
    #[must_use]
    pub fn output_shape(&self) -> [usize; 3] {
        let o = self.output_side();
        [self.k, o, o]
    }

    /// Describes a fully connected layer as a degenerate convolution: a
    /// `1×1` input of `inputs` channels hit by `outputs` kernels of `1×1` —
    /// how PCNNA would map an FC layer onto its weight banks (every input
    /// on its own carrier, one bank per output neuron). `Nkernel = inputs`,
    /// `Nlocs = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::InvalidGeometry`] if either count is zero.
    pub fn for_fully_connected(inputs: usize, outputs: usize) -> Result<Self> {
        ConvGeometry::new(1, 1, 0, 1, inputs, outputs)
    }

    /// Returns a copy with a different kernel count.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::InvalidGeometry`] when `k` is zero.
    pub fn with_kernels(&self, k: usize) -> Result<Self> {
        ConvGeometry::new(self.n, self.m, self.p, self.s, self.nc, k)
    }

    /// Returns a copy with a different stride.
    ///
    /// # Errors
    ///
    /// Returns [`CnnError::InvalidGeometry`] when `s` is zero.
    pub fn with_stride(&self, s: usize) -> Result<Self> {
        ConvGeometry::new(self.n, self.m, self.p, s, self.nc, self.k)
    }
}

impl core::fmt::Display for ConvGeometry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}x{}x{} * {}@{}x{}x{} (p={}, s={}) -> {}x{}x{}",
            self.n,
            self.n,
            self.nc,
            self.k,
            self.m,
            self.m,
            self.nc,
            self.p,
            self.s,
            self.output_side(),
            self.output_side(),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// AlexNet conv1 exactly as the paper uses it in §V-A.
    fn alexnet_conv1() -> ConvGeometry {
        ConvGeometry::new(224, 11, 2, 4, 3, 96).unwrap()
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(ConvGeometry::new(0, 3, 0, 1, 1, 1).is_err());
        assert!(ConvGeometry::new(8, 0, 0, 1, 1, 1).is_err());
        assert!(ConvGeometry::new(8, 3, 0, 0, 1, 1).is_err());
        assert!(ConvGeometry::new(8, 3, 0, 1, 0, 1).is_err());
        assert!(ConvGeometry::new(8, 3, 0, 1, 1, 0).is_err());
        // kernel larger than padded input
        assert!(ConvGeometry::new(4, 7, 1, 1, 1, 1).is_err());
        // ... but fine once padding accommodates it
        assert!(ConvGeometry::new(4, 6, 1, 1, 1, 1).is_ok());
    }

    #[test]
    fn paper_equation_1_and_2_for_alexnet_conv1() {
        let g = alexnet_conv1();
        assert_eq!(g.n_input(), 224 * 224 * 3); // 150_528
        assert_eq!(g.n_kernel(), 11 * 11 * 3); // 363
    }

    #[test]
    fn paper_equation_3_and_6_for_alexnet_conv1() {
        let g = alexnet_conv1();
        assert_eq!(g.output_side(), 55);
        assert_eq!(g.n_output(), 55 * 55 * 96);
        assert_eq!(g.n_locations(), 3025);
    }

    #[test]
    fn figure2_example_geometry() {
        // Figure 2: 16x16 input feature map, five 3x3 kernels.
        let g = ConvGeometry::new(16, 3, 0, 1, 1, 5).unwrap();
        assert_eq!(g.output_side(), 14);
        assert_eq!(g.n_kernel(), 9);
        assert_eq!(g.weight_count(), 45);
    }

    #[test]
    fn figure3_49_locations() {
        // The paper's Figure 3 narrative: "the input receptive field goes
        // through 49 cycles" — a 7x7 output grid.
        let g = ConvGeometry::new(9, 3, 0, 1, 1, 4).unwrap();
        assert_eq!(g.n_locations(), 49);
    }

    #[test]
    fn macs_count_is_consistent() {
        let g = ConvGeometry::new(8, 3, 1, 1, 2, 4).unwrap();
        // output 8x8, each output value needs 3*3*2 MACs, 4 kernels
        assert_eq!(g.output_side(), 8);
        assert_eq!(g.macs(), 8 * 8 * 4 * 18);
    }

    #[test]
    fn updated_inputs_matches_equation_8_numerator() {
        // Paper eq. (8): nc * m * s = 384 * 3 * 1 for AlexNet's largest layer.
        let conv4 = ConvGeometry::new(13, 3, 1, 1, 384, 384).unwrap();
        assert_eq!(conv4.updated_inputs_per_location(), 1152);
    }

    #[test]
    fn shapes_are_consistent() {
        let g = ConvGeometry::new(16, 5, 2, 2, 3, 8).unwrap();
        assert_eq!(g.input_shape(), [3, 16, 16]);
        assert_eq!(g.kernel_shape(), [8, 3, 5, 5]);
        let o = g.output_side();
        assert_eq!(g.output_shape(), [8, o, o]);
    }

    #[test]
    fn with_kernels_and_stride_rebuild() {
        let g = ConvGeometry::new(16, 3, 1, 1, 4, 8).unwrap();
        assert_eq!(g.with_kernels(16).unwrap().kernels(), 16);
        assert_eq!(g.with_stride(2).unwrap().output_side(), 8);
        assert!(g.with_stride(0).is_err());
    }

    #[test]
    fn fully_connected_mapping() {
        let g = ConvGeometry::for_fully_connected(9216, 4096).unwrap();
        assert_eq!(g.n_locations(), 1);
        assert_eq!(g.n_kernel(), 9216);
        assert_eq!(g.weight_count(), 9216 * 4096);
        assert_eq!(g.macs(), 9216 * 4096);
        assert!(ConvGeometry::for_fully_connected(0, 4).is_err());
    }

    #[test]
    fn display_is_informative() {
        let g = alexnet_conv1();
        let s = g.to_string();
        assert!(s.contains("224x224x3"));
        assert!(s.contains("96@11x11x3"));
        assert!(s.contains("55x55x96"));
    }
}
