//! Property-based tests of the photonic device models' physical invariants.

use proptest::prelude::*;

use pcnna_photonics::microring::{Microring, RingParams};
use pcnna_photonics::modulator::Mzm;
use pcnna_photonics::photodiode::{BalancedPair, Photodiode};
use pcnna_photonics::waveguide::{db_to_linear, linear_to_db, WaveguideModel};
use pcnna_photonics::wavelength::WdmGrid;
use pcnna_photonics::weight_bank::MrrWeightBank;

fn ideal_params() -> RingParams {
    RingParams {
        tuning_bits: None,
        ..RingParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_transmissions_are_physical(detuning_frac in 0.0f64..1.0) {
        let mut ring = Microring::new(ideal_params(), 1550e-9).unwrap();
        let max_det = ring.params().tuning_range_frac * ring.carrier_m();
        ring.set_detuning(detuning_frac * max_det);
        let d = ring.drop_transmission(1550e-9);
        let t = ring.through_transmission(1550e-9);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((0.0..=1.0).contains(&t));
        // passive device: no gain
        prop_assert!(d + t <= 1.0 + 1e-9);
    }

    #[test]
    fn ring_weight_roundtrip(weight in -0.95f64..0.85) {
        let mut ring = Microring::new(ideal_params(), 1550e-9).unwrap();
        if weight >= ring.min_weight() && weight <= ring.max_weight() {
            let achieved = ring.set_weight(weight).unwrap();
            prop_assert!((achieved - weight).abs() < 1e-6);
        }
    }

    #[test]
    fn quantized_ring_weight_error_bounded(weight in -0.9f64..0.8, bits in 8u8..14) {
        let params = RingParams {
            tuning_bits: Some(bits),
            ..RingParams::default()
        };
        let mut ring = Microring::new(params, 1550e-9).unwrap();
        let achieved = ring.set_weight(weight).unwrap();
        // error shrinks with bits: bound by the 8-bit worst case
        prop_assert!((achieved - weight).abs() < 0.1, "err {}", (achieved - weight).abs());
    }

    #[test]
    fn mzm_output_monotone_in_input(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let m = Mzm {
            drive_bits: None,
            ..Mzm::default()
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.modulate(lo) <= m.modulate(hi) + 1e-12);
    }

    #[test]
    fn photodiode_current_monotone_in_power(p1 in 0.0f64..1e-2, p2 in 0.0f64..1e-2) {
        let pd = Photodiode::default();
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(pd.photocurrent_a(lo) <= pd.photocurrent_a(hi));
    }

    #[test]
    fn balanced_pair_is_antisymmetric(p1 in 0.0f64..1e-2, p2 in 0.0f64..1e-2) {
        let bp = BalancedPair::default();
        let forward = bp.differential_current_a(p1, p2);
        let reverse = bp.differential_current_a(p2, p1);
        prop_assert!((forward + reverse).abs() < 1e-15);
    }

    #[test]
    fn db_conversion_roundtrip(db in -60.0f64..20.0) {
        let lin = db_to_linear(db);
        prop_assert!(lin > 0.0);
        prop_assert!((linear_to_db(lin) - db).abs() < 1e-9);
    }

    #[test]
    fn waveguide_loss_monotone_in_length(l1 in 0.0f64..5.0, l2 in 0.0f64..5.0) {
        let wg = WaveguideModel::default();
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(wg.propagation_transmission(hi) <= wg.propagation_transmission(lo));
    }

    #[test]
    fn broadcast_loss_monotone_in_fanout(f1 in 1usize..256, f2 in 1usize..256) {
        let wg = WaveguideModel::default();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(wg.broadcast_loss_db(hi) >= wg.broadcast_loss_db(lo));
    }

    #[test]
    fn grid_wavelengths_strictly_descend(channels in 2usize..32) {
        let grid = WdmGrid::dense_50ghz(channels).unwrap();
        let wls = grid.wavelengths_m();
        for w in wls.windows(2) {
            prop_assert!(w[1] < w[0]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bank_calibration_converges_for_random_targets(
        targets in prop::collection::vec(-0.9f64..0.8, 2..10),
    ) {
        let grid = WdmGrid::dense_50ghz(targets.len()).unwrap();
        let mut bank = MrrWeightBank::new(grid, ideal_params()).unwrap();
        let report = bank.calibrate(&targets, 1e-5, 300).unwrap();
        prop_assert!(report.residual <= 1e-5);
        let eff = bank.effective_weights();
        for (e, t) in eff.iter().zip(&targets) {
            prop_assert!((e - t).abs() < 1e-4);
        }
    }

    #[test]
    fn bank_propagation_conserves_power(
        weights in prop::collection::vec(-0.9f64..0.8, 2..8),
        powers in prop::collection::vec(1e-6f64..1e-2, 2..8),
    ) {
        let n = weights.len().min(powers.len());
        let grid = WdmGrid::dense_50ghz(n).unwrap();
        let mut bank = MrrWeightBank::new(grid, ideal_params()).unwrap();
        bank.set_weights_uncalibrated(&weights[..n]).unwrap();
        let (drops, thrus) = bank.propagate(&powers[..n]).unwrap();
        for j in 0..n {
            prop_assert!(drops[j] >= 0.0 && thrus[j] >= 0.0);
            prop_assert!(drops[j] + thrus[j] <= powers[j] + 1e-12);
        }
    }
}
