//! The end-to-end broadcast-and-weight MAC datapath.
//!
//! [`BroadcastWeightLink`] wires the device models together exactly as the
//! paper's Figure 1/4 describe: laser diodes emit one carrier per input
//! value, Mach-Zehnder modulators imprint the (DAC-supplied) input
//! amplitudes, the WDM bundle is broadcast over a splitter tree to `K`
//! microring weight banks (one per kernel), and each bank's balanced
//! photodiode pair produces a photocurrent proportional to the signed dot
//! product of its weights with the shared input vector.
//!
//! The link exposes both an ideal path ([`BroadcastWeightLink::mac_ideal`],
//! deterministic: device non-idealities only) and a noisy path
//! ([`BroadcastWeightLink::mac_noisy`]: RIN, shot and thermal noise sampled
//! per evaluation), plus the normalisation the electronic back end applies
//! to convert photocurrent back into numbers.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::laser::{LaserArray, LaserDiode};
use crate::microring::RingParams;
use crate::modulator::Mzm;
use crate::photodiode::BalancedPair;
use crate::waveguide::WaveguideModel;
use crate::wavelength::WdmGrid;
use crate::weight_bank::{CalibrationReport, MrrWeightBank};
use crate::{PhotonicError, Result};

/// Configuration of a broadcast-and-weight link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Microring parameters for every ring of every bank.
    pub ring: RingParams,
    /// Input Mach-Zehnder modulator model.
    pub mzm: Mzm,
    /// Per-channel laser diode model.
    pub laser: LaserDiode,
    /// Balanced receiver model.
    pub receiver: BalancedPair,
    /// Passive routing model.
    pub waveguide: WaveguideModel,
    /// WDM channel spacing, Hz.
    pub channel_spacing_hz: f64,
    /// Physical route length laser → bank, cm.
    pub route_length_cm: f64,
    /// Receiver detection bandwidth, Hz (the fast clock).
    pub detection_bandwidth_hz: f64,
    /// Weight-bank calibration tolerance (max-norm on physical weights).
    pub calibration_tolerance: f64,
    /// Calibration iteration cap.
    pub calibration_max_iters: usize,
}

impl Default for LinkConfig {
    /// Paper-aligned defaults: 5 GHz detection bandwidth (the fast clock
    /// domain), 50 GHz WDM grid, 12-bit heater DACs, 16-bit input drive.
    fn default() -> Self {
        LinkConfig {
            ring: RingParams {
                tuning_bits: Some(12),
                ..RingParams::default()
            },
            mzm: Mzm::default(),
            laser: LaserDiode::default(),
            receiver: BalancedPair::default(),
            waveguide: WaveguideModel::default(),
            channel_spacing_hz: 50e9,
            route_length_cm: 0.5,
            detection_bandwidth_hz: 5e9,
            calibration_tolerance: 5e-3,
            calibration_max_iters: 150,
        }
    }
}

/// A laser → MZM → broadcast → MRR banks → balanced-PD analog MAC unit.
#[derive(Debug, Clone)]
pub struct BroadcastWeightLink {
    config: LinkConfig,
    grid: WdmGrid,
    lasers: LaserArray,
    banks: Vec<MrrWeightBank>,
    /// Logical→physical weight scale (max realisable |weight|).
    weight_scale: f64,
    /// Per-bank path transmission laser → bank input.
    path_transmission: f64,
    /// Latest calibration outcome per bank.
    calibration: Vec<Option<CalibrationReport>>,
}

impl BroadcastWeightLink {
    /// Builds a link with `channels` carriers feeding `banks` weight banks.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] if any device parameter
    /// fails validation or `banks` is zero.
    pub fn new(config: LinkConfig, channels: usize, banks: usize) -> Result<Self> {
        config.ring.validate()?;
        config.mzm.validate()?;
        config.laser.validate()?;
        config.receiver.diode.validate()?;
        config.waveguide.validate()?;
        if banks == 0 {
            return Err(PhotonicError::InvalidParameter {
                reason: "link needs at least one weight bank".to_owned(),
            });
        }
        let grid = WdmGrid::new(1550e-9, config.channel_spacing_hz, channels)?;
        let lasers = LaserArray::new(config.laser, channels)?;
        let bank_vec = (0..banks)
            .map(|_| MrrWeightBank::new(grid, config.ring))
            .collect::<Result<Vec<_>>>()?;
        let (lo, hi) = bank_vec[0].weight_range();
        let weight_scale = (-lo).min(hi).max(f64::MIN_POSITIVE) * 0.999;
        let path_transmission = config
            .waveguide
            .path_transmission(config.route_length_cm, banks);
        Ok(BroadcastWeightLink {
            config,
            grid,
            lasers,
            banks: bank_vec,
            weight_scale,
            path_transmission,
            calibration: vec![None; banks],
        })
    }

    /// The link configuration.
    #[must_use]
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Number of WDM channels (inputs).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.grid.channels()
    }

    /// Number of weight banks (kernels computed in parallel).
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// The logical weight range this link realises exactly: `[-1, 1]`
    /// scaled internally by [`Self::weight_scale`].
    #[must_use]
    pub fn weight_scale(&self) -> f64 {
        self.weight_scale
    }

    /// Laser-to-bank path transmission (linear), including the broadcast
    /// splitter tree for the configured fan-out.
    #[must_use]
    pub fn path_transmission(&self) -> f64 {
        self.path_transmission
    }

    /// Latest calibration report for a bank, if it has been programmed.
    #[must_use]
    pub fn calibration_report(&self, bank: usize) -> Option<CalibrationReport> {
        self.calibration.get(bank).copied().flatten()
    }

    /// Programs logical weights in `[-1, 1]` into bank `bank`, running the
    /// crosstalk-correcting calibration loop (best effort: with quantized
    /// heater DACs the loop converges to the quantization floor, which the
    /// report records).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::BankOutOfRange`],
    /// [`PhotonicError::ChannelCountMismatch`] or
    /// [`PhotonicError::WeightOutOfRange`] (logical |w| > 1).
    pub fn set_weights(&mut self, bank: usize, weights: &[f64]) -> Result<()> {
        let n_banks = self.banks.len();
        let b = self
            .banks
            .get_mut(bank)
            .ok_or(PhotonicError::BankOutOfRange {
                index: bank,
                banks: n_banks,
            })?;
        if weights.len() != b.len() {
            return Err(PhotonicError::ChannelCountMismatch {
                expected: b.len(),
                actual: weights.len(),
            });
        }
        for &w in weights {
            if !(-1.0..=1.0).contains(&w) {
                return Err(PhotonicError::WeightOutOfRange {
                    weight: w,
                    min: -1.0,
                    max: 1.0,
                });
            }
        }
        let physical: Vec<f64> = weights.iter().map(|&w| w * self.weight_scale).collect();
        let report = match b.calibrate(
            &physical,
            self.config.calibration_tolerance,
            self.config.calibration_max_iters,
        ) {
            Ok(report) => report,
            // Quantized tuners bottom out above very tight tolerances; the
            // bank is left at its best-effort state, which we keep.
            Err(PhotonicError::CalibrationDiverged { residual, .. }) => CalibrationReport {
                iterations: self.config.calibration_max_iters,
                residual,
            },
            Err(other) => return Err(other),
        };
        self.calibration[bank] = Some(report);
        Ok(())
    }

    /// The effective logical weights of a bank (crosstalk-inclusive,
    /// normalised back by the weight scale).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::BankOutOfRange`] for a bad index.
    pub fn effective_weights(&self, bank: usize) -> Result<Vec<f64>> {
        let b = self.banks.get(bank).ok_or(PhotonicError::BankOutOfRange {
            index: bank,
            banks: self.banks.len(),
        })?;
        Ok(b.effective_weights()
            .into_iter()
            .map(|w| w / self.weight_scale)
            .collect())
    }

    /// Bank-input per-channel powers for normalized inputs `x ∈ [0,1]`,
    /// given per-channel laser powers.
    fn bank_input_powers(&self, inputs: &[f64], laser_powers: &[f64]) -> Vec<f64> {
        inputs
            .iter()
            .zip(laser_powers)
            .map(|(&x, &p)| p * self.config.mzm.modulate(x) * self.path_transmission)
            .collect()
    }

    /// Normalisation factor converting differential photocurrent into a
    /// logical dot product: full-scale single-channel current.
    fn normalization_a(&self) -> f64 {
        self.config.receiver.diode.responsivity_a_w
            * self.config.laser.power_w
            * self.config.mzm.insertion
            * self.path_transmission
            * self.weight_scale
    }

    /// Deterministic MAC: returns, per bank, the logical dot product
    /// `Σ_j x_j · w_j` as recovered from the balanced photocurrent. Device
    /// non-idealities (MZM quantization, heater quantization, crosstalk
    /// residue, insertion losses) are included; stochastic noise is not.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] if `inputs` length
    /// differs from the channel count.
    pub fn mac_ideal(&self, inputs: &[f64]) -> Result<Vec<f64>> {
        self.check_inputs(inputs)?;
        let laser_powers = self.lasers.mean_powers_w();
        let powers = self.bank_input_powers(inputs, &laser_powers);
        let norm = self.normalization_a();
        self.banks
            .iter()
            .map(|bank| {
                let (drops, thrus) = bank.propagate(&powers)?;
                let plus: f64 = drops.iter().sum();
                let minus: f64 = thrus.iter().sum();
                let current = self.config.receiver.differential_current_a(plus, minus);
                Ok(current / norm)
            })
            .collect()
    }

    /// Stochastic MAC: like [`Self::mac_ideal`] but sampling laser RIN and
    /// receiver shot/thermal noise over the detection bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] if `inputs` length
    /// differs from the channel count.
    pub fn mac_noisy(&self, inputs: &[f64], rng: &mut impl Rng) -> Result<Vec<f64>> {
        self.check_inputs(inputs)?;
        let bw = self.config.detection_bandwidth_hz;
        let laser_powers = self.lasers.sample_powers_w(bw, rng);
        let powers = self.bank_input_powers(inputs, &laser_powers);
        let norm = self.normalization_a();
        self.banks
            .iter()
            .map(|bank| {
                let (drops, thrus) = bank.propagate(&powers)?;
                let plus: f64 = drops.iter().sum();
                let minus: f64 = thrus.iter().sum();
                let current = self
                    .config
                    .receiver
                    .sample_differential_a(plus, minus, bw, rng);
                Ok(current / norm)
            })
            .collect()
    }

    /// Signal-to-noise ratio (linear) of a full-scale single-channel MAC at
    /// the configured detection bandwidth — the analog precision headline.
    #[must_use]
    pub fn full_scale_snr(&self) -> f64 {
        let signal = self.normalization_a();
        let full_power =
            self.config.laser.power_w * self.config.mzm.insertion * self.path_transmission;
        let bw = self.config.detection_bandwidth_hz;
        let noise_var = self.config.receiver.noise_variance(full_power, 0.0, bw)
            + self.config.receiver.diode.responsivity_a_w.powi(2)
                * self.config.laser.rin_power_variance(bw)
                * self.path_transmission.powi(2)
                * self.config.mzm.insertion.powi(2);
        signal * signal / noise_var
    }

    /// Total electrical power draw of the photonic front end: lasers plus
    /// all bank heaters, watts.
    #[must_use]
    pub fn electrical_power_w(&self) -> f64 {
        self.lasers.electrical_power_w()
            + self
                .banks
                .iter()
                .map(MrrWeightBank::heater_power_w)
                .sum::<f64>()
    }

    fn check_inputs(&self, inputs: &[f64]) -> Result<()> {
        if inputs.len() != self.channels() {
            return Err(PhotonicError::ChannelCountMismatch {
                expected: self.channels(),
                actual: inputs.len(),
            });
        }
        Ok(())
    }

    /// Freezes the current weight-bank state into a [`CompiledLink`] whose
    /// MAC evaluation is `O(channels)` per bank instead of `O(channels²)`.
    /// Use after programming weights, before sweeping many input vectors
    /// (the weight banks are static across a CNN layer — paper §IV).
    #[must_use]
    pub fn compile(&self) -> CompiledLink {
        let coeffs = self
            .banks
            .iter()
            .map(MrrWeightBank::channel_coefficients)
            .collect();
        CompiledLink {
            config: self.config,
            channels: self.channels(),
            coeffs,
            weight_scale: self.weight_scale,
            path_transmission: self.path_transmission,
        }
    }
}

/// A frozen broadcast-and-weight link: per-bank linear transfer coefficients
/// captured from the (calibrated) ring state, evaluated in `O(channels)`
/// per bank. Produces bit-identical results to the parent link's
/// [`BroadcastWeightLink::mac_ideal`] and statistically identical
/// [`BroadcastWeightLink::mac_noisy`] samples.
#[derive(Debug, Clone)]
pub struct CompiledLink {
    config: LinkConfig,
    channels: usize,
    /// Per bank: (drop coefficients, through coefficients) per channel.
    coeffs: Vec<(Vec<f64>, Vec<f64>)>,
    weight_scale: f64,
    path_transmission: f64,
}

impl CompiledLink {
    /// Number of WDM channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.coeffs.len()
    }

    fn normalization_a(&self) -> f64 {
        self.config.receiver.diode.responsivity_a_w
            * self.config.laser.power_w
            * self.config.mzm.insertion
            * self.path_transmission
            * self.weight_scale
    }

    /// Deterministic MAC (see [`BroadcastWeightLink::mac_ideal`]).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] on a length mismatch.
    pub fn mac_ideal(&self, inputs: &[f64]) -> Result<Vec<f64>> {
        if inputs.len() != self.channels {
            return Err(PhotonicError::ChannelCountMismatch {
                expected: self.channels,
                actual: inputs.len(),
            });
        }
        let powers: Vec<f64> = inputs
            .iter()
            .map(|&x| {
                self.config.laser.power_w * self.config.mzm.modulate(x) * self.path_transmission
            })
            .collect();
        let norm = self.normalization_a();
        Ok(self
            .coeffs
            .iter()
            .map(|(drops, thrus)| {
                let plus: f64 = powers.iter().zip(drops).map(|(&p, &d)| p * d).sum();
                let minus: f64 = powers.iter().zip(thrus).map(|(&p, &t)| p * t).sum();
                self.config.receiver.differential_current_a(plus, minus) / norm
            })
            .collect())
    }

    /// Stochastic MAC (see [`BroadcastWeightLink::mac_noisy`]).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] on a length mismatch.
    pub fn mac_noisy(&self, inputs: &[f64], rng: &mut impl Rng) -> Result<Vec<f64>> {
        if inputs.len() != self.channels {
            return Err(PhotonicError::ChannelCountMismatch {
                expected: self.channels,
                actual: inputs.len(),
            });
        }
        let bw = self.config.detection_bandwidth_hz;
        let powers: Vec<f64> = inputs
            .iter()
            .map(|&x| {
                self.config.laser.sample_power(bw, rng)
                    * self.config.mzm.modulate(x)
                    * self.path_transmission
            })
            .collect();
        let norm = self.normalization_a();
        Ok(self
            .coeffs
            .iter()
            .map(|(drops, thrus)| {
                let plus: f64 = powers.iter().zip(drops).map(|(&p, &d)| p * d).sum();
                let minus: f64 = powers.iter().zip(thrus).map(|(&p, &t)| p * t).sum();
                self.config
                    .receiver
                    .sample_differential_a(plus, minus, bw, rng)
                    / norm
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn link(channels: usize, banks: usize) -> BroadcastWeightLink {
        BroadcastWeightLink::new(LinkConfig::default(), channels, banks).unwrap()
    }

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| x * y).sum()
    }

    #[test]
    fn construction_validates() {
        assert!(BroadcastWeightLink::new(LinkConfig::default(), 4, 0).is_err());
        let bad = LinkConfig {
            laser: LaserDiode {
                power_w: -1.0,
                ..LaserDiode::default()
            },
            ..LinkConfig::default()
        };
        assert!(BroadcastWeightLink::new(bad, 4, 1).is_err());
    }

    #[test]
    fn mac_ideal_matches_dot_product() {
        let mut l = link(8, 1);
        let w: Vec<f64> = (0..8).map(|i| -1.0 + 0.25 * i as f64).collect();
        l.set_weights(0, &w).unwrap();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 + 1.0) / 8.0).collect();
        let out = l.mac_ideal(&x).unwrap();
        let expect = dot(&x, &w);
        assert!(
            (out[0] - expect).abs() < 0.02,
            "mac {} vs ideal {expect}",
            out[0]
        );
    }

    #[test]
    fn multiple_banks_compute_in_parallel() {
        let mut l = link(6, 3);
        let ws = [
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.5, 0.0, -0.5, 0.0],
            vec![-0.2; 6],
        ];
        for (i, w) in ws.iter().enumerate() {
            l.set_weights(i, w).unwrap();
        }
        let x = [0.9, 0.1, 0.8, 0.2, 0.7, 0.3];
        let out = l.mac_ideal(&x).unwrap();
        assert_eq!(out.len(), 3);
        for (o, w) in out.iter().zip(&ws) {
            let expect = dot(&x, w);
            assert!((o - expect).abs() < 0.02, "bank out {o} vs {expect}");
        }
    }

    #[test]
    fn zero_inputs_give_near_zero_output() {
        let mut l = link(4, 1);
        l.set_weights(0, &[0.7, -0.7, 0.3, -0.3]).unwrap();
        let out = l.mac_ideal(&[0.0; 4]).unwrap();
        // MZM extinction floor leaks a little light; stays small.
        assert!(out[0].abs() < 0.02, "leakage {}", out[0]);
    }

    #[test]
    fn weight_out_of_logical_range_rejected() {
        let mut l = link(4, 1);
        assert!(l.set_weights(0, &[1.2, 0.0, 0.0, 0.0]).is_err());
        assert!(l.set_weights(0, &[-1.2, 0.0, 0.0, 0.0]).is_err());
        assert!(l.set_weights(1, &[0.0; 4]).is_err()); // bad bank
        assert!(l.set_weights(0, &[0.0; 3]).is_err()); // bad length
    }

    #[test]
    fn input_length_checked() {
        let l = link(4, 1);
        assert!(l.mac_ideal(&[0.0; 3]).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(l.mac_noisy(&[0.0; 5], &mut rng).is_err());
    }

    #[test]
    fn effective_weights_close_to_programmed() {
        let mut l = link(8, 1);
        let w: Vec<f64> = (0..8).map(|i| 0.8 - 0.2 * i as f64).collect();
        l.set_weights(0, &w).unwrap();
        let eff = l.effective_weights(0).unwrap();
        for (e, t) in eff.iter().zip(&w) {
            assert!((e - t).abs() < 0.02, "eff {e} vs target {t}");
        }
        assert!(l.calibration_report(0).is_some());
    }

    #[test]
    fn noisy_mac_is_unbiased_and_spread() {
        let mut l = link(4, 1);
        l.set_weights(0, &[0.5, -0.5, 0.25, 0.75]).unwrap();
        let x = [0.6, 0.4, 0.8, 0.2];
        let ideal = l.mac_ideal(&x).unwrap()[0];
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2000;
        let samples: Vec<f64> = (0..n)
            .map(|_| l.mac_noisy(&x, &mut rng).unwrap()[0])
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - ideal).abs() < 0.01, "mean {mean} vs ideal {ideal}");
        assert!(var > 0.0, "noise must add spread");
    }

    #[test]
    fn full_scale_snr_is_large_at_1mw() {
        let l = link(4, 1);
        let snr = l.full_scale_snr();
        assert!(snr > 1e3, "SNR {snr} too small for 1 mW launch");
    }

    #[test]
    fn snr_degrades_with_fanout() {
        // More banks = deeper splitter tree = less power per bank.
        let l1 = link(4, 1);
        let l64 = link(4, 64);
        assert!(l1.full_scale_snr() > l64.full_scale_snr());
    }

    #[test]
    fn electrical_power_includes_lasers() {
        let l = link(8, 2);
        assert!(l.electrical_power_w() >= l.lasers.electrical_power_w());
    }

    #[test]
    fn compiled_link_matches_full_propagation() {
        let mut l = link(8, 3);
        for b in 0..3 {
            let w: Vec<f64> = (0..8).map(|i| 0.6 - 0.15 * (i + b) as f64).collect();
            l.set_weights(b, &w).unwrap();
        }
        let compiled = l.compile();
        let x: Vec<f64> = (0..8).map(|i| (i as f64) / 8.0).collect();
        let full = l.mac_ideal(&x).unwrap();
        let fast = compiled.mac_ideal(&x).unwrap();
        for (a, b) in full.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-12, "full {a} vs compiled {b}");
        }
    }

    #[test]
    fn compiled_link_checks_lengths() {
        let l = link(4, 1);
        let c = l.compile();
        assert_eq!(c.channels(), 4);
        assert_eq!(c.banks(), 1);
        assert!(c.mac_ideal(&[0.0; 3]).is_err());
    }

    #[test]
    fn compiled_noisy_mac_is_unbiased() {
        let mut l = link(4, 1);
        l.set_weights(0, &[0.4, -0.2, 0.6, -0.8]).unwrap();
        let c = l.compile();
        let x = [0.5, 0.5, 0.5, 0.5];
        let ideal = c.mac_ideal(&x).unwrap()[0];
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| c.mac_noisy(&x, &mut rng).unwrap()[0])
            .sum::<f64>()
            / n as f64;
        assert!((mean - ideal).abs() < 0.01);
    }
}
