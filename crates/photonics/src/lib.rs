//! Silicon-photonic device substrate for the PCNNA reproduction.
//!
//! The paper's compute fabric is the broadcast-and-weight architecture of
//! Tait et al. (Scientific Reports 2017): inputs ride on WDM wavelengths,
//! microring-resonator (MRR) weight banks scale each wavelength in amplitude,
//! and a balanced photodiode pair sums the result into a photocurrent — an
//! analog multiply-and-accumulate. The paper treats this fabric as a given;
//! since no physical hardware (nor any Rust photonics ecosystem) is
//! available, this crate simulates it at device level:
//!
//! * [`wavelength`] — WDM grids on the ITU C band.
//! * [`microring`] — Lorentzian add-drop ring model with thermal tuning and
//!   quantized drive.
//! * [`weight_bank`] — serial MRR banks with inter-channel crosstalk and an
//!   iterative calibration loop.
//! * [`modulator`] — Mach-Zehnder intensity modulators with pre-distortion.
//! * [`laser`] — laser diode arrays with relative-intensity noise.
//! * [`photodiode`] — responsivity, shot and thermal noise, balanced pairs.
//! * [`thermal`] — heater crosstalk, ambient drift, closed-loop recovery.
//! * [`degradation`] — hardware fault models (thermal drift over time,
//!   laser aging, dead converter channels) as seedable, deterministic
//!   [`DegradationTimeline`]s for resilience studies.
//! * [`waveguide`] — propagation/splitter losses and link power budgets.
//! * [`link`] — the end-to-end broadcast-and-weight MAC datapath.
//! * [`spectrum`] — transmission-spectrum scans (lab-style diagnostics).
//! * [`noise`] — SNR/ENOB aggregation helpers.
//! * [`power`] — electrical/optical power accounting.
//!
//! All physical quantities are SI (`f64`): watts, meters, seconds, amperes;
//! wavelengths are expressed in meters (helpers accept nanometres).
//!
//! # Example: a 4-input photonic dot product
//!
//! ```
//! use pcnna_photonics::link::{BroadcastWeightLink, LinkConfig};
//!
//! let mut link = BroadcastWeightLink::new(LinkConfig::default(), 4, 1).unwrap();
//! link.set_weights(0, &[0.5, -0.25, 1.0, 0.0]).unwrap();
//! let out = link.mac_ideal(&[0.2, 0.4, 0.6, 0.8]).unwrap();
//! let expect = 0.5 * 0.2 - 0.25 * 0.4 + 1.0 * 0.6;
//! assert!((out[0] - expect).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `if !(x > 0.0)` in parameter validation is deliberate: unlike `x <= 0.0`
// it also rejects NaN, which must never enter a physical model.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod degradation;
pub mod laser;
pub mod link;
pub mod microring;
pub mod modulator;
pub mod noise;
pub mod photodiode;
pub mod power;
pub mod spectrum;
pub mod thermal;
pub mod waveguide;
pub mod wavelength;
pub mod weight_bank;

pub use degradation::{DegradationLimits, DegradationTimeline, FaultProfile, HealthState};
pub use link::{BroadcastWeightLink, LinkConfig};
pub use microring::Microring;
pub use wavelength::WdmGrid;
pub use weight_bank::MrrWeightBank;

/// Errors produced by the photonic substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PhotonicError {
    /// A requested weight is outside the physically realisable range.
    WeightOutOfRange {
        /// The offending weight.
        weight: f64,
        /// Lower bound of the realisable range for this configuration.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// A vector length did not match the device channel count.
    ChannelCountMismatch {
        /// Channels the device provides.
        expected: usize,
        /// Values supplied.
        actual: usize,
    },
    /// A bank index was out of range.
    BankOutOfRange {
        /// Requested index.
        index: usize,
        /// Number of banks.
        banks: usize,
    },
    /// Calibration failed to converge to the requested tolerance.
    CalibrationDiverged {
        /// Residual max weight error when iteration stopped.
        residual: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// A device parameter is physically meaningless (negative power, zero Q…).
    InvalidParameter {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl core::fmt::Display for PhotonicError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PhotonicError::WeightOutOfRange { weight, min, max } => {
                write!(f, "weight {weight} outside realisable range [{min}, {max}]")
            }
            PhotonicError::ChannelCountMismatch { expected, actual } => {
                write!(f, "expected {expected} channel values, got {actual}")
            }
            PhotonicError::BankOutOfRange { index, banks } => {
                write!(f, "bank index {index} out of range for {banks} banks")
            }
            PhotonicError::CalibrationDiverged {
                residual,
                tolerance,
            } => write!(
                f,
                "weight-bank calibration stopped at residual {residual:.3e} > tolerance {tolerance:.3e}"
            ),
            PhotonicError::InvalidParameter { reason } => {
                write!(f, "invalid photonic parameter: {reason}")
            }
        }
    }
}

impl std::error::Error for PhotonicError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, PhotonicError>;

/// Physical constants used across the crate.
pub mod constants {
    /// Speed of light in vacuum, m/s.
    pub const SPEED_OF_LIGHT: f64 = 2.997_924_58e8;
    /// Elementary charge, C.
    pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;
    /// Boltzmann constant, J/K.
    pub const BOLTZMANN: f64 = 1.380_649e-23;
    /// Room temperature, K.
    pub const ROOM_TEMPERATURE: f64 = 300.0;
    /// Centre of the ITU C band, metres (1550 nm).
    pub const C_BAND_CENTER_M: f64 = 1550e-9;
}
