//! MRR weight banks: one serial bank of rings per kernel (neuron).
//!
//! In broadcast-and-weight, every kernel owns a bank of `N` rings, one per
//! input carrier. All carriers traverse the bank's through bus in series;
//! each ring splits its carrier (and, parasitically, its neighbours'
//! Lorentzian tails) between the drop bus and the through bus. A balanced
//! photodiode pair subtracts the two bus powers, yielding
//! `I ∝ Σ_j P_j · w_eff(j)`.
//!
//! Because ring `i` also touches channel `j ≠ i`, the *effective* weights
//! deviate from the per-ring settings. [`MrrWeightBank::calibrate`] runs the
//! fixed-point correction loop a hardware controller would run (Tait et al.
//! calibrate their banks the same way, with photodetector feedback).

use crate::microring::{Microring, RingParams};
use crate::wavelength::WdmGrid;
use crate::{PhotonicError, Result};
use serde::{Deserialize, Serialize};

/// A serial bank of microrings weighting the channels of a [`WdmGrid`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrrWeightBank {
    grid: WdmGrid,
    rings: Vec<Microring>,
}

/// Result of a calibration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final maximum absolute error between target and effective weights.
    pub residual: f64,
}

impl MrrWeightBank {
    /// Builds a bank with one ring per grid channel, all parked (weight ≈ −1).
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation failures from [`Microring::new`].
    pub fn new(grid: WdmGrid, params: RingParams) -> Result<Self> {
        let rings = grid
            .wavelengths_m()
            .into_iter()
            .map(|wl| Microring::new(params, wl))
            .collect::<Result<Vec<_>>>()?;
        Ok(MrrWeightBank { grid, rings })
    }

    /// Number of rings (= channels).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Whether the bank has no rings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// The WDM grid this bank weights.
    #[must_use]
    pub fn grid(&self) -> &WdmGrid {
        &self.grid
    }

    /// Access to the individual rings.
    #[must_use]
    pub fn rings(&self) -> &[Microring] {
        &self.rings
    }

    /// Realisable weight range `(min, max)` common to all rings.
    #[must_use]
    pub fn weight_range(&self) -> (f64, f64) {
        let min = self
            .rings
            .iter()
            .map(Microring::min_weight)
            .fold(f64::NEG_INFINITY, f64::max);
        let max = self
            .rings
            .iter()
            .map(Microring::max_weight)
            .fold(f64::INFINITY, f64::min);
        (min, max)
    }

    /// Splits the per-channel input powers between the drop and through
    /// buses, returning `(drop_powers, through_powers)` per channel.
    ///
    /// Channel `j` passes every ring in series: ring `i` diverts
    /// `T_drop,i(λ_j)` of the *remaining* power to the drop bus and passes
    /// `T_thru,i(λ_j)` onward — the crosstalk-exact propagation.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] if `powers_w` length
    /// differs from the channel count.
    pub fn propagate(&self, powers_w: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        if powers_w.len() != self.rings.len() {
            return Err(PhotonicError::ChannelCountMismatch {
                expected: self.rings.len(),
                actual: powers_w.len(),
            });
        }
        let wavelengths = self.grid.wavelengths_m();
        let mut drops = vec![0.0f64; powers_w.len()];
        let mut thrus = vec![0.0f64; powers_w.len()];
        for (j, (&p, &wl)) in powers_w.iter().zip(&wavelengths).enumerate() {
            let mut remaining = p;
            let mut dropped = 0.0f64;
            for ring in &self.rings {
                let d = ring.drop_transmission(wl);
                let t = ring.through_transmission(wl);
                dropped += remaining * d;
                remaining *= t;
            }
            drops[j] = dropped;
            thrus[j] = remaining;
        }
        Ok((drops, thrus))
    }

    /// The effective signed weight each channel currently experiences,
    /// including crosstalk: `w_eff(j) = drop_j − thru_j` for unit input power.
    #[must_use]
    pub fn effective_weights(&self) -> Vec<f64> {
        let unit = vec![1.0; self.rings.len()];
        let (drops, thrus) = self
            .propagate(&unit)
            .expect("unit vector length matches by construction");
        drops.iter().zip(&thrus).map(|(&d, &t)| d - t).collect()
    }

    /// Naively sets each ring to its target weight, ignoring crosstalk.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] on a length mismatch
    /// or [`PhotonicError::WeightOutOfRange`] if any weight is unrealisable.
    pub fn set_weights_uncalibrated(&mut self, weights: &[f64]) -> Result<()> {
        if weights.len() != self.rings.len() {
            return Err(PhotonicError::ChannelCountMismatch {
                expected: self.rings.len(),
                actual: weights.len(),
            });
        }
        for (ring, &w) in self.rings.iter_mut().zip(weights) {
            ring.set_weight(w)?;
        }
        Ok(())
    }

    /// Sets target weights and runs the feedback calibration loop until the
    /// effective weights match within `tolerance` (max-norm) or `max_iters`
    /// is reached.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] /
    /// [`PhotonicError::WeightOutOfRange`] as in
    /// [`Self::set_weights_uncalibrated`], or
    /// [`PhotonicError::CalibrationDiverged`] if the loop cannot reach the
    /// tolerance (e.g. channel spacing too tight for the ring Q).
    pub fn calibrate(
        &mut self,
        targets: &[f64],
        tolerance: f64,
        max_iters: usize,
    ) -> Result<CalibrationReport> {
        self.set_weights_uncalibrated(targets)?;
        let (lo, hi) = self.weight_range();
        let mut corrected: Vec<f64> = targets.to_vec();
        let mut residual = f64::INFINITY;
        for iter in 0..max_iters {
            let effective = self.effective_weights();
            residual = effective
                .iter()
                .zip(targets)
                .map(|(&e, &t)| (e - t).abs())
                .fold(0.0, f64::max);
            if residual <= tolerance {
                return Ok(CalibrationReport {
                    iterations: iter,
                    residual,
                });
            }
            for ((c, &e), &t) in corrected.iter_mut().zip(&effective).zip(targets) {
                // move the per-ring setpoint opposite the observed error,
                // damped for stability
                *c = (*c + 0.8 * (t - e)).clamp(lo, hi);
            }
            for (ring, &c) in self.rings.iter_mut().zip(&corrected) {
                ring.set_weight(c)?;
            }
        }
        if residual <= tolerance {
            Ok(CalibrationReport {
                iterations: max_iters,
                residual,
            })
        } else {
            Err(PhotonicError::CalibrationDiverged {
                residual,
                tolerance,
            })
        }
    }

    /// Total heater power of all rings, watts.
    #[must_use]
    pub fn heater_power_w(&self) -> f64 {
        self.rings.iter().map(Microring::heater_power_w).sum()
    }

    /// Applies per-ring analog detuning perturbations (thermal effects).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] on a length mismatch.
    pub fn perturb_detunings(&mut self, deltas_m: &[f64]) -> Result<()> {
        if deltas_m.len() != self.rings.len() {
            return Err(PhotonicError::ChannelCountMismatch {
                expected: self.rings.len(),
                actual: deltas_m.len(),
            });
        }
        for (ring, &d) in self.rings.iter_mut().zip(deltas_m) {
            ring.perturb(d);
        }
        Ok(())
    }

    /// The thermal tuning shift each ring's heater imposes, metres.
    #[must_use]
    pub fn tuning_shifts_m(&self) -> Vec<f64> {
        self.rings.iter().map(Microring::tuning_shift_m).collect()
    }

    /// Per-channel linear transfer coefficients `(drop, through)`: the bank
    /// is linear in the input powers, so `propagate(p)[j] = (p_j·drop_j,
    /// p_j·thru_j)`. Precomputing these turns a per-evaluation `O(N²)`
    /// propagation into `O(N)` — the functional simulator's fast path.
    #[must_use]
    pub fn channel_coefficients(&self) -> (Vec<f64>, Vec<f64>) {
        let unit = vec![1.0; self.rings.len()];
        self.propagate(&unit)
            .expect("unit vector length matches by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(n: usize) -> MrrWeightBank {
        let grid = WdmGrid::dense_50ghz(n).unwrap();
        let params = RingParams {
            tuning_bits: None,
            ..RingParams::default()
        };
        MrrWeightBank::new(grid, params).unwrap()
    }

    #[test]
    fn bank_has_one_ring_per_channel() {
        let b = bank(8);
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
        assert_eq!(b.rings().len(), b.grid().channels());
    }

    #[test]
    fn parked_bank_weights_near_minus_one() {
        let b = bank(4);
        for w in b.effective_weights() {
            assert!(w < -0.95, "parked weight {w}");
        }
    }

    #[test]
    fn propagate_validates_length() {
        let b = bank(4);
        assert!(b.propagate(&[1.0; 3]).is_err());
        assert!(b.propagate(&[1.0; 4]).is_ok());
    }

    #[test]
    fn propagate_conserves_or_loses_power() {
        // drop + through ≤ input (ring insertion loss dissipates the rest)
        let mut b = bank(4);
        b.set_weights_uncalibrated(&[0.5, -0.5, 0.8, 0.0]).unwrap();
        let powers = [1.0e-3; 4];
        let (drops, thrus) = b.propagate(&powers).unwrap();
        for j in 0..4 {
            assert!(drops[j] + thrus[j] <= powers[j] + 1e-12);
            assert!(drops[j] >= 0.0 && thrus[j] >= 0.0);
        }
    }

    #[test]
    fn uncalibrated_weights_show_crosstalk_error() {
        let mut b = bank(8);
        let targets = vec![0.7; 8];
        b.set_weights_uncalibrated(&targets).unwrap();
        let eff = b.effective_weights();
        let err = eff
            .iter()
            .zip(&targets)
            .map(|(&e, &t)| (e - t).abs())
            .fold(0.0, f64::max);
        assert!(err > 1e-4, "expected visible crosstalk, err {err}");
    }

    #[test]
    fn calibration_reduces_crosstalk_error() {
        let mut b = bank(8);
        let targets: Vec<f64> = (0..8).map(|i| -0.8 + 0.2 * i as f64).collect();
        let report = b.calibrate(&targets, 1e-6, 100).unwrap();
        assert!(report.residual <= 1e-6);
        let eff = b.effective_weights();
        for (e, t) in eff.iter().zip(&targets) {
            assert!((e - t).abs() < 1e-5, "calibrated {e} vs {t}");
        }
    }

    #[test]
    fn calibration_handles_extreme_weights() {
        let mut b = bank(6);
        let (lo, hi) = b.weight_range();
        let targets = vec![lo * 0.99, hi * 0.99, 0.0, lo * 0.5, hi * 0.5, 0.1];
        let report = b.calibrate(&targets, 1e-5, 200).unwrap();
        assert!(report.residual <= 1e-5);
    }

    #[test]
    fn calibration_rejects_unrealisable() {
        let mut b = bank(4);
        assert!(b.calibrate(&[2.0, 0.0, 0.0, 0.0], 1e-6, 50).is_err());
    }

    #[test]
    fn weighted_sum_matches_targets_after_calibration() {
        let mut b = bank(5);
        let targets = [0.3, -0.6, 0.8, -0.1, 0.0];
        b.calibrate(&targets, 1e-7, 200).unwrap();
        let powers = [0.2e-3, 0.4e-3, 0.6e-3, 0.8e-3, 1.0e-3];
        let (drops, thrus) = b.propagate(&powers).unwrap();
        let balanced: f64 = drops.iter().sum::<f64>() - thrus.iter().sum::<f64>();
        let ideal: f64 = powers.iter().zip(&targets).map(|(&p, &w)| p * w).sum();
        assert!(
            (balanced - ideal).abs() < 1e-8,
            "balanced {balanced} vs ideal {ideal}"
        );
    }

    #[test]
    fn heater_power_grows_with_positive_weights() {
        let mut b = bank(4);
        let parked = b.heater_power_w();
        b.set_weights_uncalibrated(&[0.8; 4]).unwrap();
        assert!(b.heater_power_w() > parked);
    }

    #[test]
    fn quantized_bank_calibrates_to_looser_tolerance() {
        let grid = WdmGrid::dense_50ghz(6).unwrap();
        let b = MrrWeightBank::new(grid, RingParams::default());
        let mut b = b.unwrap();
        let targets = [0.5, -0.5, 0.25, -0.25, 0.0, 0.75];
        // 10-bit heaters can't hit 1e-6; 1e-2 (≈ the heater LSB in weight
        // units) is attainable.
        let report = b.calibrate(&targets, 1e-2, 300).unwrap();
        assert!(report.residual <= 1e-2);
    }
}
