//! Transmission-spectrum scans — the diagnostic a photonics lab would run.
//!
//! Sweeping a probe laser across a weight bank's through/drop ports reveals
//! every ring's resonance position and depth; it is how real banks are
//! characterised before calibration (Tait et al.'s figures are exactly such
//! scans). Used by the noise-study example and tests to verify that the
//! bank's spectral structure matches its programmed weights.

use crate::weight_bank::MrrWeightBank;
use serde::{Deserialize, Serialize};

/// One point of a spectrum scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectrumPoint {
    /// Probe wavelength, metres.
    pub wavelength_m: f64,
    /// Aggregate through-bus transmission at this wavelength.
    pub through: f64,
    /// Aggregate drop-bus transmission at this wavelength.
    pub drop: f64,
}

/// Scans a bank's through/drop response over `[start_m, stop_m]` with
/// `points` samples (a single unit-power probe, swept).
#[must_use]
pub fn scan_bank(
    bank: &MrrWeightBank,
    start_m: f64,
    stop_m: f64,
    points: usize,
) -> Vec<SpectrumPoint> {
    let n = points.max(2);
    (0..n)
        .map(|i| {
            let wl = start_m + (stop_m - start_m) * i as f64 / (n - 1) as f64;
            let mut through = 1.0f64;
            let mut drop = 0.0f64;
            for ring in bank.rings() {
                let d = ring.drop_transmission(wl);
                let t = ring.through_transmission(wl);
                drop += through * d;
                through *= t;
            }
            SpectrumPoint {
                wavelength_m: wl,
                through,
                drop,
            }
        })
        .collect()
}

/// Finds local minima of the through-port scan deeper than `threshold`
/// (resonance dips), returning their wavelengths.
#[must_use]
pub fn find_resonances(scan: &[SpectrumPoint], threshold: f64) -> Vec<f64> {
    let mut dips = Vec::new();
    for w in scan.windows(3) {
        let (a, b, c) = (w[0].through, w[1].through, w[2].through);
        if b < a && b < c && b < threshold {
            dips.push(w[1].wavelength_m);
        }
    }
    dips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microring::RingParams;
    use crate::wavelength::WdmGrid;

    fn bank(n: usize, weights: &[f64]) -> MrrWeightBank {
        let grid = WdmGrid::dense_50ghz(n).unwrap();
        let params = RingParams {
            tuning_bits: None,
            ..RingParams::default()
        };
        let mut bank = MrrWeightBank::new(grid, params).unwrap();
        bank.calibrate(weights, 1e-5, 200).unwrap();
        bank
    }

    #[test]
    fn scan_spans_requested_range() {
        let b = bank(3, &[0.5, 0.5, 0.5]);
        let scan = scan_bank(&b, 1549e-9, 1551e-9, 101);
        assert_eq!(scan.len(), 101);
        assert!((scan[0].wavelength_m - 1549e-9).abs() < 1e-15);
        assert!((scan[100].wavelength_m - 1551e-9).abs() < 1e-15);
    }

    #[test]
    fn transmissions_are_physical_everywhere() {
        let b = bank(4, &[0.8, -0.3, 0.1, -0.9]);
        for p in scan_bank(&b, 1548e-9, 1552e-9, 500) {
            assert!((0.0..=1.0).contains(&p.through), "through {}", p.through);
            assert!(p.drop >= 0.0);
            assert!(p.through + p.drop <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn on_resonance_rings_carve_dips_at_their_carriers() {
        // Program strong positive weights: rings near resonance → deep
        // through-port dips near each carrier.
        let b = bank(3, &[0.8, 0.8, 0.8]);
        let carriers = b.grid().wavelengths_m();
        let scan = scan_bank(&b, carriers[2] - 0.2e-9, carriers[0] + 0.2e-9, 4001);
        let dips = find_resonances(&scan, 0.5);
        assert_eq!(dips.len(), 3, "expected 3 resonance dips, got {dips:?}");
        // each dip sits within half a linewidth of a carrier
        for dip in dips {
            let nearest = carriers
                .iter()
                .map(|c| (c - dip).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 50e-12, "dip {dip} too far from any carrier");
        }
    }

    #[test]
    fn parked_bank_has_no_deep_dips_at_carriers() {
        let grid = WdmGrid::dense_50ghz(3).unwrap();
        let params = RingParams {
            tuning_bits: None,
            ..RingParams::default()
        };
        let b = MrrWeightBank::new(grid, params).unwrap(); // parked
        let carriers = b.grid().wavelengths_m();
        let scan = scan_bank(&b, carriers[2], carriers[0], 2001);
        // through stays high at every carrier (rings are detuned away)
        for &c in &carriers {
            let nearest = scan
                .iter()
                .min_by(|a, b| {
                    (a.wavelength_m - c)
                        .abs()
                        .total_cmp(&(b.wavelength_m - c).abs())
                })
                .unwrap();
            assert!(
                nearest.through > 0.9,
                "carrier {c} through {}",
                nearest.through
            );
        }
    }
}
