//! Hardware degradation: fault models and deterministic timelines.
//!
//! PCNNA's datapath is physically fragile in ways an electronic
//! accelerator is not: microring resonances ride on temperature
//! (~75 pm/K against a ~15 pm half-linewidth — see [`thermal`]), laser
//! diodes lose output power as they age, and the DAC/ADC channel arrays
//! at the electro-optic boundary fail stuck-at like any mixed-signal
//! part. The paper assumes pristine hardware forever; a serving fleet
//! cannot. This module gives the rest of the workspace one vocabulary
//! for "how broken is this device right now":
//!
//! * [`HealthState`] — an instantaneous snapshot (ambient drift since
//!   the last ring lock, laser power factor, dead converter channels).
//! * [`DegradationLimits`] — the serviceability envelope: how much
//!   drift the weight tolerance allows (derivable from the real
//!   bank physics via [`DegradationLimits::from_bank`]) and the laser
//!   floor below which the link SNR is gone.
//! * [`FaultProfile`] / [`DegradationTimeline`] — seedable generators
//!   of a device's physical story over a horizon: heat waves, laser
//!   aging, channel-loss bursts. Same seed ⇒ byte-identical timeline,
//!   which is what makes fleet chaos scenarios reproducible in CI.
//!
//! [`thermal`]: crate::thermal

use crate::microring::RingParams;
use crate::thermal::ThermalModel;
use crate::weight_bank::MrrWeightBank;
use crate::{PhotonicError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An instantaneous health snapshot of one PCNNA device.
///
/// `ambient_delta_k` is measured **relative to the last ring lock**: a
/// thermal recalibration re-tunes every ring at the then-current
/// ambient, so the drift that matters afterwards is the excursion since
/// that lock, not since the factory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthState {
    /// Ambient temperature excursion since the last ring lock, kelvin.
    pub ambient_delta_k: f64,
    /// Emitted laser power as a fraction of nominal (1.0 = new diode).
    pub laser_power_factor: f64,
    /// Stuck/dead input-DAC channels (reduce input parallelism).
    pub dead_input_channels: usize,
    /// Stuck/dead output-ADC channels (reduce readout parallelism).
    pub dead_output_channels: usize,
}

impl Default for HealthState {
    fn default() -> Self {
        HealthState::nominal()
    }
}

impl HealthState {
    /// Factory-fresh hardware: locked rings, full laser power, every
    /// converter channel alive.
    #[must_use]
    pub fn nominal() -> Self {
        HealthState {
            ambient_delta_k: 0.0,
            laser_power_factor: 1.0,
            dead_input_channels: 0,
            dead_output_channels: 0,
        }
    }

    /// Whether this snapshot is exactly nominal.
    #[must_use]
    pub fn is_nominal(&self) -> bool {
        *self == HealthState::nominal()
    }

    /// The state after a thermal recalibration: rings re-lock at the
    /// current ambient (drift resets to zero), but aged lasers and dead
    /// converter channels are hardware — recalibration cannot bring
    /// them back.
    #[must_use]
    pub fn recalibrated(&self) -> Self {
        HealthState {
            ambient_delta_k: 0.0,
            ..*self
        }
    }

    /// Validates the snapshot (finite drift, factor in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] on non-finite drift
    /// or a laser factor outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !self.ambient_delta_k.is_finite() {
            return Err(PhotonicError::InvalidParameter {
                reason: format!(
                    "ambient excursion must be finite, got {}",
                    self.ambient_delta_k
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.laser_power_factor) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!(
                    "laser power factor must be in [0, 1], got {}",
                    self.laser_power_factor
                ),
            });
        }
        Ok(())
    }

    /// Whether a device in this state can serve correct results under
    /// `limits`: drift within the weight tolerance and laser above the
    /// SNR floor. Dead channels never make a device unserviceable by
    /// themselves — they slow it down (the serving quote prices that)
    /// until the *last* channel dies, which the quote reports as
    /// infeasible.
    #[must_use]
    pub fn serviceable(&self, limits: &DegradationLimits) -> bool {
        self.ambient_delta_k.abs() <= limits.max_ambient_excursion_k
            && self.laser_power_factor >= limits.min_laser_power_factor
    }
}

/// The serviceability envelope a fleet holds its accelerators to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationLimits {
    /// Largest ambient excursion (kelvin, since the last ring lock) the
    /// weight tolerance allows. Beyond it the programmed weights are
    /// wrong and the device must recalibrate before serving again.
    pub max_ambient_excursion_k: f64,
    /// Smallest laser power factor at which the link still closes its
    /// SNR budget.
    pub min_laser_power_factor: f64,
}

impl Default for DegradationLimits {
    /// A 0.2 K drift budget and a 0.5 laser floor (−3 dB optical
    /// ≈ −6 dB electrical SNR, the margin the default link budget
    /// carries). 0.2 K models a bank whose heaters run a closed-loop
    /// dither lock: the loop absorbs sub-budget excursions and only a
    /// swing past its capture range forces a full recalibration. An
    /// *uncompensated* bank is far more fragile — at 1% weight
    /// tolerance [`DegradationLimits::from_bank`] derives millikelvin
    /// budgets (see `derived_budget_tightens_with_tolerance`) — which
    /// is exactly why real weight banks close the loop.
    fn default() -> Self {
        DegradationLimits {
            max_ambient_excursion_k: 0.2,
            min_laser_power_factor: 0.5,
        }
    }
}

impl DegradationLimits {
    /// Derives the drift budget from the real bank physics: the largest
    /// excursion a calibrated `bank` tolerates before any effective
    /// weight moves by more than `weight_tolerance` (bisection via
    /// [`ThermalModel::tolerable_excursion_k`]).
    #[must_use]
    pub fn from_bank(
        thermal: &ThermalModel,
        bank: &MrrWeightBank,
        weight_tolerance: f64,
        min_laser_power_factor: f64,
    ) -> Self {
        DegradationLimits {
            max_ambient_excursion_k: thermal.tolerable_excursion_k(bank, weight_tolerance),
            min_laser_power_factor,
        }
    }

    /// The drift budget expressed in ring half-linewidths — how many
    /// HWHM a worst-case tolerable excursion moves a resonance. A
    /// useful sanity figure: budgets beyond ~1 linewidth mean the
    /// weight tolerance is looser than the ring selectivity.
    #[must_use]
    pub fn excursion_in_linewidths(&self, thermal: &ThermalModel, ring: &RingParams) -> f64 {
        ring.shift_in_linewidths(thermal.drift_m_per_k * self.max_ambient_excursion_k)
    }
}

/// A generator shape for one device's physical degradation story.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// An ambient excursion that ramps up, holds, and ramps back — a
    /// datacenter cooling event compressed to the simulated horizon.
    /// Onset jitters uniformly within `onset_jitter_s` of `onset_s`.
    HeatWave {
        /// Mean onset time, seconds.
        onset_s: f64,
        /// Uniform onset jitter half-width, seconds.
        onset_jitter_s: f64,
        /// Ramp-up (and ramp-down) duration, seconds.
        ramp_s: f64,
        /// Plateau duration at the peak, seconds.
        hold_s: f64,
        /// Peak ambient excursion, kelvin.
        peak_delta_k: f64,
        /// Sample points per ramp (the timeline is piecewise-constant).
        steps: usize,
    },
    /// Exponential laser output decay: `factor(t) = exp(−t / tau_s)`,
    /// with per-device rate jitter of ±`tau_jitter_frac`.
    LaserAging {
        /// Mean decay time constant, seconds (simulation-compressed).
        tau_s: f64,
        /// Relative jitter on the time constant, in `[0, 1)`.
        tau_jitter_frac: f64,
        /// Checkpoints over the horizon.
        steps: usize,
    },
    /// A burst of converter-channel failures at a jittered instant.
    ChannelLossBurst {
        /// Mean burst time, seconds.
        at_s: f64,
        /// Uniform time jitter half-width, seconds.
        jitter_s: f64,
        /// Input-DAC channels lost in the burst.
        input_channels: usize,
        /// Output-ADC channels lost in the burst.
        output_channels: usize,
    },
}

/// One device's health over time: a chronological list of piecewise-
/// constant [`HealthState`] snapshots, deterministically generated from
/// a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationTimeline {
    events: Vec<(f64, HealthState)>,
}

impl DegradationTimeline {
    /// Generates the composed timeline of `profiles` over `horizon_s`.
    /// Deterministic: the same `(profiles, horizon_s, seed)` triple
    /// always produces the same snapshots. Profiles compose — a heat
    /// wave and a channel burst yield snapshots carrying both effects.
    #[must_use]
    pub fn generate(profiles: &[FaultProfile], horizon_s: f64, seed: u64) -> Self {
        // Per-field change points; folded into running state below.
        enum Change {
            Ambient(f64),
            Laser(f64),
            DeadChannels { input: usize, output: usize },
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDE6A_DE0D);
        let mut changes: Vec<(f64, Change)> = Vec::new();
        for profile in profiles {
            match *profile {
                FaultProfile::HeatWave {
                    onset_s,
                    onset_jitter_s,
                    ramp_s,
                    hold_s,
                    peak_delta_k,
                    steps,
                } => {
                    let jitter = if onset_jitter_s > 0.0 {
                        rng.gen_range(-onset_jitter_s..onset_jitter_s)
                    } else {
                        0.0
                    };
                    let onset = (onset_s + jitter).max(0.0);
                    let steps = steps.max(1);
                    // up-ramp: steps points climbing to the peak
                    for k in 1..=steps {
                        let frac = k as f64 / steps as f64;
                        changes.push((onset + frac * ramp_s, Change::Ambient(peak_delta_k * frac)));
                    }
                    // down-ramp after the hold
                    let fall_start = onset + ramp_s + hold_s;
                    for k in 1..=steps {
                        let frac = k as f64 / steps as f64;
                        changes.push((
                            fall_start + frac * ramp_s,
                            Change::Ambient(peak_delta_k * (1.0 - frac)),
                        ));
                    }
                }
                FaultProfile::LaserAging {
                    tau_s,
                    tau_jitter_frac,
                    steps,
                } => {
                    let jitter = if tau_jitter_frac > 0.0 {
                        rng.gen_range(-tau_jitter_frac..tau_jitter_frac)
                    } else {
                        0.0
                    };
                    let tau = (tau_s * (1.0 + jitter)).max(f64::MIN_POSITIVE);
                    let steps = steps.max(1);
                    for k in 1..=steps {
                        let t = horizon_s * k as f64 / steps as f64;
                        changes.push((t, Change::Laser((-t / tau).exp())));
                    }
                }
                FaultProfile::ChannelLossBurst {
                    at_s,
                    jitter_s,
                    input_channels,
                    output_channels,
                } => {
                    let jitter = if jitter_s > 0.0 {
                        rng.gen_range(-jitter_s..jitter_s)
                    } else {
                        0.0
                    };
                    changes.push((
                        (at_s + jitter).max(0.0),
                        Change::DeadChannels {
                            input: input_channels,
                            output: output_channels,
                        },
                    ));
                }
            }
        }
        changes.retain(|(t, _)| *t <= horizon_s);
        // Stable sort keeps same-instant changes in profile order, so
        // generation stays deterministic under composition.
        changes.sort_by(|(a, _), (b, _)| a.total_cmp(b));

        let mut state = HealthState::nominal();
        let events = changes
            .into_iter()
            .map(|(t, change)| {
                match change {
                    Change::Ambient(k) => state.ambient_delta_k = k,
                    Change::Laser(f) => state.laser_power_factor = f.clamp(0.0, 1.0),
                    Change::DeadChannels { input, output } => {
                        state.dead_input_channels += input;
                        state.dead_output_channels += output;
                    }
                }
                (t, state)
            })
            .collect();
        DegradationTimeline { events }
    }

    /// The chronological `(time_s, state)` snapshots.
    #[must_use]
    pub fn events(&self) -> &[(f64, HealthState)] {
        &self.events
    }

    /// The health in force at time `t` (nominal before the first
    /// snapshot).
    #[must_use]
    pub fn state_at(&self, t: f64) -> HealthState {
        self.events
            .iter()
            .take_while(|(et, _)| *et <= t)
            .last()
            .map_or_else(HealthState::nominal, |&(_, s)| s)
    }

    /// Whether the timeline holds no snapshots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavelength::WdmGrid;

    fn heat_wave() -> FaultProfile {
        FaultProfile::HeatWave {
            onset_s: 0.2,
            onset_jitter_s: 0.05,
            ramp_s: 0.1,
            hold_s: 0.2,
            peak_delta_k: 0.8,
            steps: 4,
        }
    }

    #[test]
    fn health_validation_and_nominal() {
        assert!(HealthState::nominal().validate().is_ok());
        assert!(HealthState::nominal().is_nominal());
        assert!(HealthState {
            ambient_delta_k: f64::NAN,
            ..HealthState::nominal()
        }
        .validate()
        .is_err());
        assert!(HealthState {
            laser_power_factor: 1.2,
            ..HealthState::nominal()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn recalibration_fixes_drift_not_hardware() {
        let h = HealthState {
            ambient_delta_k: 0.5,
            laser_power_factor: 0.8,
            dead_input_channels: 2,
            dead_output_channels: 1,
        };
        let r = h.recalibrated();
        assert_eq!(r.ambient_delta_k, 0.0);
        assert_eq!(r.laser_power_factor, 0.8);
        assert_eq!(r.dead_input_channels, 2);
        assert_eq!(r.dead_output_channels, 1);
    }

    #[test]
    fn serviceability_thresholds() {
        let limits = DegradationLimits::default();
        assert!(HealthState::nominal().serviceable(&limits));
        assert!(!HealthState {
            ambient_delta_k: 0.3,
            ..HealthState::nominal()
        }
        .serviceable(&limits));
        assert!(!HealthState {
            laser_power_factor: 0.4,
            ..HealthState::nominal()
        }
        .serviceable(&limits));
        // dead channels alone never trip serviceability
        assert!(HealthState {
            dead_input_channels: 9,
            dead_output_channels: 31,
            ..HealthState::nominal()
        }
        .serviceable(&limits));
    }

    #[test]
    fn derived_budget_tightens_with_tolerance() {
        // An uncompensated bank's drift budget comes straight from the
        // ring physics: sub-kelvin always, and monotone in the weight
        // tolerance (a looser tolerance buys a larger excursion).
        let grid = WdmGrid::dense_50ghz(5).unwrap();
        let params = RingParams {
            tuning_bits: None,
            ..RingParams::default()
        };
        let mut bank = MrrWeightBank::new(grid, params).unwrap();
        let targets = [-0.6, -0.2, 0.1, 0.4, 0.7];
        bank.calibrate(&targets, 1e-6, 200).unwrap();
        let tm = ThermalModel::default();
        let tight = DegradationLimits::from_bank(&tm, &bank, 0.01, 0.5);
        let loose = DegradationLimits::from_bank(&tm, &bank, 0.2, 0.5);
        let (kt, kl) = (tight.max_ambient_excursion_k, loose.max_ambient_excursion_k);
        assert!(kt > 0.0 && kt < 1.0, "tight budget {kt} K");
        assert!(kl > kt, "loose {kl} K must exceed tight {kt} K");
        // in linewidths: the loose budget moves resonances by a
        // physically sane sub-handful of HWHMs
        let lw = loose.excursion_in_linewidths(&tm, &params);
        assert!(lw > 0.0 && lw < 10.0, "budget is {lw} linewidths");
    }

    #[test]
    fn timeline_is_seed_deterministic() {
        let profiles = [
            heat_wave(),
            FaultProfile::LaserAging {
                tau_s: 5.0,
                tau_jitter_frac: 0.2,
                steps: 6,
            },
        ];
        let a = DegradationTimeline::generate(&profiles, 1.0, 42);
        let b = DegradationTimeline::generate(&profiles, 1.0, 42);
        let c = DegradationTimeline::generate(&profiles, 1.0, 43);
        assert_eq!(a, b, "same seed must reproduce the timeline");
        assert_ne!(a, c, "different seeds should jitter differently");
    }

    #[test]
    fn heat_wave_rises_holds_and_falls() {
        let t = DegradationTimeline::generate(&[heat_wave()], 2.0, 7);
        assert!(!t.is_empty());
        let peak = t
            .events()
            .iter()
            .map(|(_, s)| s.ambient_delta_k)
            .fold(0.0, f64::max);
        assert!((peak - 0.8).abs() < 1e-12, "peak {peak}");
        // the final snapshot is back at (or near) zero excursion
        let last = t.events().last().unwrap().1;
        assert!(last.ambient_delta_k.abs() < 1e-12);
        // times are non-decreasing
        let times: Vec<f64> = t.events().iter().map(|(t, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn laser_aging_decays_monotonically() {
        let t = DegradationTimeline::generate(
            &[FaultProfile::LaserAging {
                tau_s: 2.0,
                tau_jitter_frac: 0.0,
                steps: 8,
            }],
            1.0,
            0,
        );
        let factors: Vec<f64> = t
            .events()
            .iter()
            .map(|(_, s)| s.laser_power_factor)
            .collect();
        assert!(factors.windows(2).all(|w| w[1] < w[0]));
        assert!(*factors.last().unwrap() > 0.0);
    }

    #[test]
    fn channel_bursts_accumulate() {
        let burst = |at_s| FaultProfile::ChannelLossBurst {
            at_s,
            jitter_s: 0.0,
            input_channels: 2,
            output_channels: 1,
        };
        let t = DegradationTimeline::generate(&[burst(0.1), burst(0.5)], 1.0, 3);
        assert_eq!(t.state_at(0.05), HealthState::nominal());
        assert_eq!(t.state_at(0.2).dead_input_channels, 2);
        assert_eq!(t.state_at(0.9).dead_input_channels, 4);
        assert_eq!(t.state_at(0.9).dead_output_channels, 2);
    }

    #[test]
    fn state_at_is_piecewise_constant_from_the_left() {
        let t = DegradationTimeline::generate(&[heat_wave()], 2.0, 11);
        let (first_t, first_s) = t.events()[0];
        assert_eq!(t.state_at(first_t), first_s);
        assert!(t.state_at(first_t - 1e-9).is_nominal());
    }

    #[test]
    fn events_past_horizon_are_dropped() {
        let t = DegradationTimeline::generate(
            &[FaultProfile::ChannelLossBurst {
                at_s: 5.0,
                jitter_s: 0.0,
                input_channels: 1,
                output_channels: 0,
            }],
            1.0,
            0,
        );
        assert!(t.is_empty());
    }
}
