//! Waveguide propagation and splitting losses; link power budgets.
//!
//! Broadcast-and-weight bundles all carriers onto one waveguide and
//! *broadcasts* them to every weight bank — each of the `K` kernels' banks
//! taps the bus through a splitter. Loss therefore scales with both the
//! physical route length and the fan-out, and it is what ultimately bounds
//! how many kernels can share one broadcast bus at a given laser power.

use serde::{Deserialize, Serialize};

use crate::{PhotonicError, Result};

/// Converts dB to a linear power factor.
#[must_use]
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power factor to dB.
#[must_use]
pub fn linear_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Passive-loss model of an on-chip optical route.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveguideModel {
    /// Propagation loss, dB/cm.
    pub loss_db_per_cm: f64,
    /// Excess loss per splitter stage, dB (on top of the 3 dB split).
    pub splitter_excess_db: f64,
    /// Per-coupler (bank tap) insertion loss, dB.
    pub coupler_loss_db: f64,
}

impl Default for WaveguideModel {
    /// Typical SOI strip waveguide: 2 dB/cm, 0.2 dB splitter excess,
    /// 0.5 dB per coupler.
    fn default() -> Self {
        WaveguideModel {
            loss_db_per_cm: 2.0,
            splitter_excess_db: 0.2,
            coupler_loss_db: 0.5,
        }
    }
}

impl WaveguideModel {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] for negative losses.
    pub fn validate(&self) -> Result<()> {
        if self.loss_db_per_cm < 0.0 || self.splitter_excess_db < 0.0 || self.coupler_loss_db < 0.0
        {
            return Err(PhotonicError::InvalidParameter {
                reason: "losses must be non-negative dB".to_owned(),
            });
        }
        Ok(())
    }

    /// Linear transmission of a straight run of `length_cm`.
    #[must_use]
    pub fn propagation_transmission(&self, length_cm: f64) -> f64 {
        db_to_linear(-self.loss_db_per_cm * length_cm.max(0.0))
    }

    /// Total loss (dB) of a 1-to-`fanout` broadcast tree built from 1x2
    /// splitters: `ceil(log2 fanout)` stages of (3 dB + excess).
    #[must_use]
    pub fn broadcast_loss_db(&self, fanout: usize) -> f64 {
        if fanout <= 1 {
            return 0.0;
        }
        let stages = (fanout as f64).log2().ceil();
        stages * (3.0 + self.splitter_excess_db)
    }

    /// Linear transmission of the full path from laser to one weight bank:
    /// propagation over `length_cm`, broadcast to `fanout` banks, one
    /// coupler into the bank.
    #[must_use]
    pub fn path_transmission(&self, length_cm: f64, fanout: usize) -> f64 {
        self.propagation_transmission(length_cm)
            * db_to_linear(-self.broadcast_loss_db(fanout))
            * db_to_linear(-self.coupler_loss_db)
    }
}

/// End-to-end optical link budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Launched per-channel power, dBm.
    pub launch_dbm: f64,
    /// Total passive loss, dB.
    pub loss_db: f64,
    /// Receiver sensitivity (minimum detectable per-channel power), dBm.
    pub sensitivity_dbm: f64,
}

impl LinkBudget {
    /// Received power, dBm.
    #[must_use]
    pub fn received_dbm(&self) -> f64 {
        self.launch_dbm - self.loss_db
    }

    /// Margin above sensitivity, dB. Negative = link does not close.
    #[must_use]
    pub fn margin_db(&self) -> f64 {
        self.received_dbm() - self.sensitivity_dbm
    }

    /// Whether the link closes.
    #[must_use]
    pub fn closes(&self) -> bool {
        self.margin_db() >= 0.0
    }
}

/// Converts watts to dBm.
#[must_use]
pub fn watts_to_dbm(power_w: f64) -> f64 {
    10.0 * (power_w / 1e-3).log10()
}

/// Converts dBm to watts.
#[must_use]
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * 10f64.powf(dbm / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_conversions_roundtrip() {
        for &db in &[-30.0, -3.0, 0.0, 3.0, 10.0] {
            let lin = db_to_linear(db);
            assert!((linear_to_db(lin) - db).abs() < 1e-9);
        }
        assert!((db_to_linear(-3.0) - 0.501).abs() < 1e-3);
    }

    #[test]
    fn dbm_conversions() {
        assert!((watts_to_dbm(1e-3) - 0.0).abs() < 1e-12);
        assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-12);
        assert!((dbm_to_watts(-30.0) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn validation_rejects_negative_losses() {
        assert!(WaveguideModel {
            loss_db_per_cm: -1.0,
            ..WaveguideModel::default()
        }
        .validate()
        .is_err());
        assert!(WaveguideModel::default().validate().is_ok());
    }

    #[test]
    fn propagation_loss_compounds_with_length() {
        let wg = WaveguideModel::default();
        let t1 = wg.propagation_transmission(1.0);
        let t2 = wg.propagation_transmission(2.0);
        assert!((t2 - t1 * t1).abs() < 1e-12);
        assert_eq!(wg.propagation_transmission(0.0), 1.0);
        assert_eq!(wg.propagation_transmission(-5.0), 1.0);
    }

    #[test]
    fn broadcast_loss_grows_logarithmically() {
        let wg = WaveguideModel::default();
        assert_eq!(wg.broadcast_loss_db(1), 0.0);
        let l2 = wg.broadcast_loss_db(2);
        let l4 = wg.broadcast_loss_db(4);
        let l96 = wg.broadcast_loss_db(96); // AlexNet conv1's K
        assert!((l2 - 3.2).abs() < 1e-12);
        assert!((l4 - 6.4).abs() < 1e-12);
        assert!((l96 - 7.0 * 3.2).abs() < 1e-12); // ceil(log2 96) = 7
    }

    #[test]
    fn path_transmission_combines_all_terms() {
        let wg = WaveguideModel::default();
        let t = wg.path_transmission(0.5, 4);
        let expect = db_to_linear(-(2.0 * 0.5) - 6.4 - 0.5);
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn link_budget_margin_and_closure() {
        let lb = LinkBudget {
            launch_dbm: 0.0,
            loss_db: 15.0,
            sensitivity_dbm: -20.0,
        };
        assert!((lb.received_dbm() + 15.0).abs() < 1e-12);
        assert!((lb.margin_db() - 5.0).abs() < 1e-12);
        assert!(lb.closes());
        let bad = LinkBudget {
            loss_db: 25.0,
            ..lb
        };
        assert!(!bad.closes());
    }
}
