//! Electrical/optical power accounting for the photonic core.
//!
//! The paper motivates filtering non-receptive-field values partly by power:
//! fewer rings means fewer heaters and fewer carriers means fewer lasers.
//! [`PhotonicPowerBudget`] aggregates the front-end draw so the core crate
//! can report energy per inference alongside execution time.

use serde::{Deserialize, Serialize};

/// Itemised electrical power of the photonic subsystem, watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhotonicPowerBudget {
    /// Laser wall-plug power.
    pub lasers_w: f64,
    /// Microring heater power.
    pub heaters_w: f64,
    /// Modulator driver power.
    pub modulators_w: f64,
    /// Receiver (TIA) power.
    pub receivers_w: f64,
}

impl PhotonicPowerBudget {
    /// Total power, watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.lasers_w + self.heaters_w + self.modulators_w + self.receivers_w
    }

    /// Energy consumed over a time window, joules.
    #[must_use]
    pub fn energy_j(&self, seconds: f64) -> f64 {
        self.total_w() * seconds.max(0.0)
    }

    /// Sums two budgets item-wise.
    #[must_use]
    pub fn combined(&self, other: &PhotonicPowerBudget) -> PhotonicPowerBudget {
        PhotonicPowerBudget {
            lasers_w: self.lasers_w + other.lasers_w,
            heaters_w: self.heaters_w + other.heaters_w,
            modulators_w: self.modulators_w + other.modulators_w,
            receivers_w: self.receivers_w + other.receivers_w,
        }
    }

    /// The dominant item as `(name, watts)`.
    #[must_use]
    pub fn dominant(&self) -> (&'static str, f64) {
        let items = [
            ("lasers", self.lasers_w),
            ("heaters", self.heaters_w),
            ("modulators", self.modulators_w),
            ("receivers", self.receivers_w),
        ];
        items
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("items is non-empty")
    }
}

/// Simple estimate of modulator driver power: `C·V²·f` dynamic switching per
/// modulator.
#[must_use]
pub fn mzm_driver_power_w(capacitance_f: f64, v_swing: f64, clock_hz: f64, count: usize) -> f64 {
    capacitance_f * v_swing * v_swing * clock_hz * count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_energy() {
        let b = PhotonicPowerBudget {
            lasers_w: 0.1,
            heaters_w: 0.05,
            modulators_w: 0.02,
            receivers_w: 0.03,
        };
        assert!((b.total_w() - 0.2).abs() < 1e-12);
        assert!((b.energy_j(2.0) - 0.4).abs() < 1e-12);
        assert_eq!(b.energy_j(-1.0), 0.0);
    }

    #[test]
    fn combine_adds_itemwise() {
        let a = PhotonicPowerBudget {
            lasers_w: 1.0,
            ..Default::default()
        };
        let b = PhotonicPowerBudget {
            heaters_w: 2.0,
            ..Default::default()
        };
        let c = a.combined(&b);
        assert_eq!(c.lasers_w, 1.0);
        assert_eq!(c.heaters_w, 2.0);
        assert!((c.total_w() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dominant_item() {
        let b = PhotonicPowerBudget {
            lasers_w: 0.5,
            heaters_w: 0.7,
            modulators_w: 0.1,
            receivers_w: 0.2,
        };
        assert_eq!(b.dominant(), ("heaters", 0.7));
    }

    #[test]
    fn mzm_driver_power_scales() {
        // 100 fF, 2 V swing, 5 GHz, 10 modulators → 20 mW
        let p = mzm_driver_power_w(100e-15, 2.0, 5e9, 10);
        assert!((p - 0.02).abs() < 1e-12);
    }
}
