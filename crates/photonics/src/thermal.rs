//! Thermal effects on microring weight banks.
//!
//! Thermal tuning is how PCNNA sets its weights, and it is also the
//! technology's Achilles heel: a ring's heater warms its neighbours
//! (**crosstalk**), and ambient temperature excursions shift *every*
//! resonance (**drift**, ~70–80 pm/K in silicon). The paper is silent on
//! both; real weight banks (Tait et al.) close a feedback loop around them.
//! This module models both disturbances and demonstrates the closed-loop
//! recovery, quantifying how often a PCNNA controller would need to
//! recalibrate.

use crate::weight_bank::MrrWeightBank;
use crate::{PhotonicError, Result};
use serde::{Deserialize, Serialize};

/// First-order thermal disturbance model for a linear bank layout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Fraction of a ring's own thermal shift that leaks into its nearest
    /// neighbour; decays geometrically with ring distance.
    pub neighbor_coupling: f64,
    /// Resonance shift per kelvin of ambient change, metres/K (silicon:
    /// ~75 pm/K).
    pub drift_m_per_k: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel {
            neighbor_coupling: 0.05,
            drift_m_per_k: 75e-12,
        }
    }
}

impl ThermalModel {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] for coupling outside
    /// `[0, 1)` or negative drift.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..1.0).contains(&self.neighbor_coupling) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!(
                    "neighbor coupling must be in [0, 1), got {}",
                    self.neighbor_coupling
                ),
            });
        }
        if self.drift_m_per_k < 0.0 {
            return Err(PhotonicError::InvalidParameter {
                reason: "drift must be non-negative".to_owned(),
            });
        }
        Ok(())
    }

    /// The crosstalk-induced detuning perturbation each ring sees from the
    /// other rings' heaters: `Δ_j = Σ_{i≠j} c^{|i−j|} · shift_i` (same sign
    /// as the ring's own tuning — heat moves every resonance the same way,
    /// i.e. it *reduces* the victim's detuning).
    #[must_use]
    pub fn crosstalk_perturbations_m(&self, bank: &MrrWeightBank) -> Vec<f64> {
        let shifts = bank.tuning_shifts_m();
        let n = shifts.len();
        let mut deltas = vec![0.0f64; n];
        for (j, delta) in deltas.iter_mut().enumerate() {
            for (i, &shift) in shifts.iter().enumerate() {
                if i == j {
                    continue;
                }
                let distance = i.abs_diff(j) as i32;
                *delta -= self.neighbor_coupling.powi(distance) * shift;
            }
        }
        deltas
    }

    /// Applies heater crosstalk to a calibrated bank, returning the maximum
    /// absolute effective-weight error it caused.
    ///
    /// # Errors
    ///
    /// Propagates length mismatches (impossible for internally generated
    /// perturbations).
    pub fn apply_crosstalk(&self, bank: &mut MrrWeightBank) -> Result<f64> {
        let before = bank.effective_weights();
        let deltas = self.crosstalk_perturbations_m(bank);
        bank.perturb_detunings(&deltas)?;
        let after = bank.effective_weights();
        Ok(before
            .iter()
            .zip(&after)
            .map(|(&b, &a)| (b - a).abs())
            .fold(0.0, f64::max))
    }

    /// Applies an ambient temperature excursion of `delta_k` kelvin: every
    /// resonance shifts by `drift · ΔT`, reducing each ring's carrier
    /// detuning by the same amount. Returns the max weight error caused.
    ///
    /// # Errors
    ///
    /// Propagates length mismatches (impossible for internally generated
    /// perturbations).
    pub fn apply_ambient(&self, bank: &mut MrrWeightBank, delta_k: f64) -> Result<f64> {
        let before = bank.effective_weights();
        let n = bank.len();
        let delta = -self.drift_m_per_k * delta_k;
        bank.perturb_detunings(&vec![delta; n])?;
        let after = bank.effective_weights();
        Ok(before
            .iter()
            .zip(&after)
            .map(|(&b, &a)| (b - a).abs())
            .fold(0.0, f64::max))
    }

    /// The maximum absolute effective-weight error an ambient excursion
    /// of `delta_k` kelvin would cause on `bank`, without mutating it —
    /// the probe the degradation models use to map a temperature story
    /// onto weight corruption.
    #[must_use]
    pub fn ambient_weight_error(&self, bank: &MrrWeightBank, delta_k: f64) -> f64 {
        let mut probe = bank.clone();
        self.apply_ambient(&mut probe, delta_k)
            .expect("internally sized perturbation")
    }

    /// The largest ambient excursion (kelvin) a bank tolerates before any
    /// weight drifts by more than `tolerance`, found by bisection on a
    /// cloned bank.
    #[must_use]
    pub fn tolerable_excursion_k(&self, bank: &MrrWeightBank, tolerance: f64) -> f64 {
        let (mut lo, mut hi) = (0.0f64, 50.0f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let mut probe = bank.clone();
            let err = self
                .apply_ambient(&mut probe, mid)
                .expect("internally sized perturbation");
            if err > tolerance {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microring::RingParams;
    use crate::wavelength::WdmGrid;

    fn calibrated_bank(n: usize) -> (MrrWeightBank, Vec<f64>) {
        let grid = WdmGrid::dense_50ghz(n).unwrap();
        let params = RingParams {
            tuning_bits: None,
            ..RingParams::default()
        };
        let mut bank = MrrWeightBank::new(grid, params).unwrap();
        let targets: Vec<f64> = (0..n).map(|i| -0.7 + 1.4 * i as f64 / n as f64).collect();
        bank.calibrate(&targets, 1e-6, 200).unwrap();
        (bank, targets)
    }

    #[test]
    fn validation() {
        assert!(ThermalModel {
            neighbor_coupling: 1.5,
            ..ThermalModel::default()
        }
        .validate()
        .is_err());
        assert!(ThermalModel {
            drift_m_per_k: -1.0,
            ..ThermalModel::default()
        }
        .validate()
        .is_err());
        assert!(ThermalModel::default().validate().is_ok());
    }

    #[test]
    fn crosstalk_decays_with_distance() {
        let (bank, _) = calibrated_bank(6);
        let tm = ThermalModel::default();
        let deltas = tm.crosstalk_perturbations_m(&bank);
        // every ring sees some perturbation
        assert!(deltas.iter().all(|&d| d != 0.0));
        // a middle ring sees more aggregate crosstalk than an end ring with
        // similar neighbours
        assert!(deltas[2].abs() > deltas[0].abs() * 0.8);
    }

    #[test]
    fn crosstalk_perturbs_weights_measurably() {
        let (mut bank, _) = calibrated_bank(8);
        let tm = ThermalModel::default();
        // 5% of a full-range neighbour shift is ~10 pm ≈ 0.65 linewidths:
        // thermal crosstalk genuinely wrecks uncompensated weights (which
        // is why real weight banks calibrate with the thermal field in the
        // loop — demonstrated by `recalibration_recovers_from_crosstalk`).
        let err = tm.apply_crosstalk(&mut bank).unwrap();
        assert!(err > 0.01, "crosstalk err {err} suspiciously small");
        assert!(err <= 2.0, "weight error cannot exceed the weight range");
    }

    #[test]
    fn zero_coupling_is_harmless() {
        let (mut bank, _) = calibrated_bank(6);
        let tm = ThermalModel {
            neighbor_coupling: 0.0,
            ..ThermalModel::default()
        };
        let err = tm.apply_crosstalk(&mut bank).unwrap();
        assert_eq!(err, 0.0);
    }

    #[test]
    fn ambient_drift_scales_with_excursion() {
        let tm = ThermalModel::default();
        let (bank, _) = calibrated_bank(5);
        let mut b1 = bank.clone();
        let mut b2 = bank.clone();
        let e1 = tm.apply_ambient(&mut b1, 0.1).unwrap();
        let e2 = tm.apply_ambient(&mut b2, 1.0).unwrap();
        assert!(e2 > e1, "1 K must hurt more than 0.1 K ({e2} vs {e1})");
    }

    #[test]
    fn one_kelvin_breaks_an_uncompensated_bank() {
        // 75 pm/K vs a 15.5 pm HWHM: a 1 K excursion moves resonances by
        // ~5 linewidths — weights are destroyed without a control loop.
        let tm = ThermalModel::default();
        let (mut bank, _) = calibrated_bank(5);
        let err = tm.apply_ambient(&mut bank, 1.0).unwrap();
        assert!(err > 0.3, "1 K drift only cost {err}?");
    }

    #[test]
    fn ambient_weight_error_probe_is_non_mutating() {
        let tm = ThermalModel::default();
        let (bank, _) = calibrated_bank(5);
        let before = bank.effective_weights();
        let err = tm.ambient_weight_error(&bank, 0.5);
        assert!(err > 0.0);
        assert_eq!(bank.effective_weights(), before, "probe must not mutate");
        // agrees with the mutating path
        let mut mutated = bank.clone();
        assert_eq!(err, tm.apply_ambient(&mut mutated, 0.5).unwrap());
    }

    #[test]
    fn recalibration_recovers_from_crosstalk() {
        let (mut bank, targets) = calibrated_bank(8);
        let tm = ThermalModel::default();
        tm.apply_crosstalk(&mut bank).unwrap();
        let report = bank.calibrate(&targets, 1e-6, 200).unwrap();
        assert!(report.residual <= 1e-6);
    }

    #[test]
    fn tolerable_excursion_is_sub_kelvin() {
        let tm = ThermalModel::default();
        let (bank, _) = calibrated_bank(5);
        let tol_k = tm.tolerable_excursion_k(&bank, 0.01);
        assert!(
            tol_k > 0.0 && tol_k < 1.0,
            "1% weight tolerance should be a sub-kelvin budget, got {tol_k} K"
        );
    }
}
