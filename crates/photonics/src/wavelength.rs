//! WDM wavelength grids.
//!
//! Broadcast-and-weight assigns every neuron output (here: every receptive-
//! field value) a distinct carrier wavelength. PCNNA's ring-count savings
//! (paper eq. (5)) are exactly savings in *wavelength demand*: filtering the
//! non-receptive-field values means only `Nkernel` carriers are needed.
//! [`WdmGrid`] models the carrier comb: uniformly spaced channels around a
//! centre wavelength on the C band.

use crate::constants::SPEED_OF_LIGHT;
use crate::{PhotonicError, Result};
use serde::{Deserialize, Serialize};

/// Conventional C-band limits (metres).
pub const C_BAND_MIN_M: f64 = 1530e-9;
/// Upper C-band edge (metres).
pub const C_BAND_MAX_M: f64 = 1565e-9;

/// A uniform WDM channel grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WdmGrid {
    center_m: f64,
    spacing_hz: f64,
    channels: usize,
}

impl WdmGrid {
    /// Creates a grid of `channels` carriers spaced `spacing_hz` apart in
    /// optical frequency, centred (in frequency) on `center_m`.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] for zero channels,
    /// non-positive spacing, or a non-positive centre wavelength.
    pub fn new(center_m: f64, spacing_hz: f64, channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(PhotonicError::InvalidParameter {
                reason: "grid must have at least one channel".to_owned(),
            });
        }
        if !(spacing_hz > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("channel spacing must be positive, got {spacing_hz} Hz"),
            });
        }
        if !(center_m > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("centre wavelength must be positive, got {center_m} m"),
            });
        }
        Ok(WdmGrid {
            center_m,
            spacing_hz,
            channels,
        })
    }

    /// The standard dense-WDM grid the links in this crate default to:
    /// 1550 nm centre, 50 GHz spacing.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] only for zero channels.
    pub fn dense_50ghz(channels: usize) -> Result<Self> {
        WdmGrid::new(1550e-9, 50e9, channels)
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Channel spacing in Hz.
    #[must_use]
    pub fn spacing_hz(&self) -> f64 {
        self.spacing_hz
    }

    /// Centre wavelength in metres.
    #[must_use]
    pub fn center_m(&self) -> f64 {
        self.center_m
    }

    /// Optical frequency of channel `i` (Hz). Channels are indexed from the
    /// lowest frequency; the comb is centred on the centre wavelength.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] for an out-of-range
    /// index.
    pub fn frequency_hz(&self, i: usize) -> Result<f64> {
        if i >= self.channels {
            return Err(PhotonicError::ChannelCountMismatch {
                expected: self.channels,
                actual: i,
            });
        }
        let f_center = SPEED_OF_LIGHT / self.center_m;
        let offset = i as f64 - (self.channels as f64 - 1.0) / 2.0;
        Ok(f_center + offset * self.spacing_hz)
    }

    /// Wavelength of channel `i` in metres.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::ChannelCountMismatch`] for an out-of-range
    /// index.
    pub fn wavelength_m(&self, i: usize) -> Result<f64> {
        Ok(SPEED_OF_LIGHT / self.frequency_hz(i)?)
    }

    /// All channel wavelengths, metres, in channel order.
    #[must_use]
    pub fn wavelengths_m(&self) -> Vec<f64> {
        (0..self.channels)
            .map(|i| {
                self.wavelength_m(i)
                    .expect("index in range by construction")
            })
            .collect()
    }

    /// Total occupied optical bandwidth in Hz (zero for one channel).
    #[must_use]
    pub fn occupied_bandwidth_hz(&self) -> f64 {
        self.spacing_hz * (self.channels.saturating_sub(1)) as f64
    }

    /// Whether every channel lies within the conventional C band.
    #[must_use]
    pub fn fits_c_band(&self) -> bool {
        let lo = self
            .wavelength_m(self.channels - 1)
            .expect("last index valid");
        let hi = self.wavelength_m(0).expect("first index valid");
        lo >= C_BAND_MIN_M && hi <= C_BAND_MAX_M
    }

    /// The maximum number of channels at this spacing that fit in the C band
    /// around this grid's centre.
    #[must_use]
    pub fn c_band_capacity(&self) -> usize {
        let f_lo = SPEED_OF_LIGHT / C_BAND_MAX_M;
        let f_hi = SPEED_OF_LIGHT / C_BAND_MIN_M;
        ((f_hi - f_lo) / self.spacing_hz).floor() as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(WdmGrid::new(1550e-9, 50e9, 0).is_err());
        assert!(WdmGrid::new(1550e-9, 0.0, 4).is_err());
        assert!(WdmGrid::new(-1.0, 50e9, 4).is_err());
        assert!(WdmGrid::new(1550e-9, 50e9, 4).is_ok());
    }

    #[test]
    fn single_channel_sits_at_center() {
        let g = WdmGrid::dense_50ghz(1).unwrap();
        let wl = g.wavelength_m(0).unwrap();
        assert!((wl - 1550e-9).abs() < 1e-15);
    }

    #[test]
    fn channels_are_uniform_in_frequency() {
        let g = WdmGrid::dense_50ghz(8).unwrap();
        for i in 1..8 {
            let df = g.frequency_hz(i).unwrap() - g.frequency_hz(i - 1).unwrap();
            assert!((df - 50e9).abs() < 1.0, "spacing {df}");
        }
    }

    #[test]
    fn comb_is_centered() {
        let g = WdmGrid::dense_50ghz(5).unwrap();
        let f_center = SPEED_OF_LIGHT / 1550e-9;
        assert!((g.frequency_hz(2).unwrap() - f_center).abs() < 1.0);
    }

    #[test]
    fn wavelengths_descend_with_index() {
        // higher frequency = shorter wavelength
        let g = WdmGrid::dense_50ghz(4).unwrap();
        let wls = g.wavelengths_m();
        for w in wls.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn out_of_range_channel_rejected() {
        let g = WdmGrid::dense_50ghz(4).unwrap();
        assert!(g.frequency_hz(4).is_err());
        assert!(g.wavelength_m(100).is_err());
    }

    #[test]
    fn occupied_bandwidth() {
        let g = WdmGrid::dense_50ghz(9).unwrap();
        assert!((g.occupied_bandwidth_hz() - 400e9).abs() < 1.0);
        let one = WdmGrid::dense_50ghz(1).unwrap();
        assert_eq!(one.occupied_bandwidth_hz(), 0.0);
    }

    #[test]
    fn small_grid_fits_c_band_huge_grid_does_not() {
        assert!(WdmGrid::dense_50ghz(64).unwrap().fits_c_band());
        // C band is ~4.4 THz wide; 50 GHz spacing fits < 90 channels.
        assert!(!WdmGrid::dense_50ghz(200).unwrap().fits_c_band());
    }

    #[test]
    fn c_band_capacity_is_about_88_at_50ghz() {
        let g = WdmGrid::dense_50ghz(4).unwrap();
        let cap = g.c_band_capacity();
        assert!(
            (80..=95).contains(&cap),
            "expected ~88 channels at 50 GHz, got {cap}"
        );
    }
}
