//! Add-drop microring resonator model.
//!
//! A microring weighting element (Tait et al. 2017, the device PCNNA builds
//! on) sits between a *through* bus and a *drop* bus. Near resonance its
//! drop-port transmission is well approximated by a Lorentzian of the
//! laser-resonance detuning δ = λ − λres:
//!
//! ```text
//! L(δ)      = 1 / (1 + (δ / δ½)²)         δ½ = λres / (2Q)   (HWHM)
//! T_drop(δ) = A_d · L(δ)                  A_d = 1 − insertion loss
//! T_thru(δ) = 1 − (1 − ε) · L(δ)          ε   = 10^(−ER/10)
//! ```
//!
//! Weighting tunes the ring thermally: shifting λres changes δ for the fixed
//! carrier and thereby the split of carrier power between the drop bus
//! (positive photodiode of a balanced pair) and the through bus (negative
//! photodiode). The *effective weight* of a carrier is
//! `w = T_drop(δ) − T_thru(δ) ∈ [−1, A_d − ε]`, giving signed weights from a
//! purely positive optical quantity — the key trick of broadcast-and-weight.

use crate::{PhotonicError, Result};
use serde::{Deserialize, Serialize};

/// Physical parameters of one add-drop microring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingParams {
    /// Loaded quality factor.
    pub q_factor: f64,
    /// Drop-port peak transmission (1 − insertion loss), in (0, 1].
    pub drop_peak: f64,
    /// Through-port extinction ratio in dB (how deep the notch is).
    pub extinction_db: f64,
    /// Resonance-shift tuning range as a fraction of λres (thermal tuning
    /// can typically cover a full FSR; we only need a few linewidths).
    pub tuning_range_frac: f64,
    /// Resolution of the heater DAC driving the tuner, in bits.
    /// `None` models an ideal continuous tuner.
    pub tuning_bits: Option<u8>,
    /// Heater power to shift one full linewidth (2·δ½), watts.
    pub heater_power_per_linewidth_w: f64,
}

impl Default for RingParams {
    /// Literature-typical silicon weight-bank MRR: Q = 5·10⁴ (HWHM
    /// ≈ 15.5 pm at 1550 nm), 0.5 dB drop insertion loss, 20 dB extinction,
    /// 10-bit heater DAC, ~0.2 mW per linewidth of thermal shift. The
    /// tuning range (± ≈ 200 pm, half a 50 GHz channel spacing) parks a
    /// ring ≈ 13 linewidths off its carrier — weight ≈ −0.99 — without
    /// colliding with the neighbouring channel's carrier.
    fn default() -> Self {
        RingParams {
            q_factor: 5.0e4,
            drop_peak: 0.89, // ~0.5 dB insertion loss
            extinction_db: 20.0,
            tuning_range_frac: 1.3e-4,
            tuning_bits: Some(10),
            heater_power_per_linewidth_w: 2.0e-4,
        }
    }
}

impl RingParams {
    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] for non-positive Q,
    /// out-of-range drop peak, or negative extinction.
    pub fn validate(&self) -> Result<()> {
        if !(self.q_factor > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("Q factor must be positive, got {}", self.q_factor),
            });
        }
        if !(self.drop_peak > 0.0 && self.drop_peak <= 1.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("drop peak must be in (0, 1], got {}", self.drop_peak),
            });
        }
        if !(self.extinction_db > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("extinction must be positive dB, got {}", self.extinction_db),
            });
        }
        if !(self.tuning_range_frac > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: "tuning range must be positive".to_owned(),
            });
        }
        Ok(())
    }

    /// Residual through-port transmission on resonance, `ε = 10^(−ER/10)`.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        10f64.powf(-self.extinction_db / 10.0)
    }

    /// HWHM at a given carrier wavelength, `λ / (2Q)`, metres.
    #[must_use]
    pub fn hwhm_at_m(&self, carrier_m: f64) -> f64 {
        carrier_m / (2.0 * self.q_factor)
    }

    /// A resonance shift expressed in half-linewidths at the C-band
    /// centre — the unit thermal-drift budgets are naturally judged in
    /// (one HWHM of drift roughly halves an on-resonance weight).
    #[must_use]
    pub fn shift_in_linewidths(&self, shift_m: f64) -> f64 {
        shift_m.abs() / self.hwhm_at_m(crate::constants::C_BAND_CENTER_M)
    }
}

/// One tunable add-drop microring assigned to a carrier wavelength.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microring {
    params: RingParams,
    /// Carrier wavelength this ring weights, metres.
    carrier_m: f64,
    /// Current detuning of the carrier from resonance, metres
    /// (positive = ring tuned below the carrier).
    detuning_m: f64,
}

impl Microring {
    /// Creates a ring for the given carrier, parked far off resonance
    /// (maximum detuning, i.e. weight ≈ −1).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] for invalid parameters or
    /// a non-positive carrier wavelength.
    pub fn new(params: RingParams, carrier_m: f64) -> Result<Self> {
        params.validate()?;
        if !(carrier_m > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("carrier wavelength must be positive, got {carrier_m}"),
            });
        }
        let max_detuning = params.tuning_range_frac * carrier_m;
        Ok(Microring {
            params,
            carrier_m,
            detuning_m: max_detuning,
        })
    }

    /// The ring's parameters.
    #[must_use]
    pub fn params(&self) -> &RingParams {
        &self.params
    }

    /// The carrier wavelength, metres.
    #[must_use]
    pub fn carrier_m(&self) -> f64 {
        self.carrier_m
    }

    /// Lorentzian half-width at half-maximum in wavelength, `λres / (2Q)`.
    #[must_use]
    pub fn hwhm_m(&self) -> f64 {
        self.carrier_m / (2.0 * self.params.q_factor)
    }

    /// Current detuning (metres).
    #[must_use]
    pub fn detuning_m(&self) -> f64 {
        self.detuning_m
    }

    /// Lorentzian lineshape at a given detuning.
    #[must_use]
    pub fn lorentzian(&self, detuning_m: f64) -> f64 {
        let x = detuning_m / self.hwhm_m();
        1.0 / (1.0 + x * x)
    }

    /// Drop-port power transmission for a probe at `wavelength_m`, given the
    /// ring's current tuning state.
    #[must_use]
    pub fn drop_transmission(&self, wavelength_m: f64) -> f64 {
        let delta = wavelength_m - (self.carrier_m - self.detuning_m);
        self.params.drop_peak * self.lorentzian(delta)
    }

    /// Through-port power transmission for a probe at `wavelength_m`.
    #[must_use]
    pub fn through_transmission(&self, wavelength_m: f64) -> f64 {
        let delta = wavelength_m - (self.carrier_m - self.detuning_m);
        1.0 - (1.0 - self.params.epsilon()) * self.lorentzian(delta)
    }

    /// The effective signed weight this ring applies to *its own* carrier:
    /// `T_drop − T_thru` at the carrier wavelength.
    #[must_use]
    pub fn effective_weight(&self) -> f64 {
        self.drop_transmission(self.carrier_m) - self.through_transmission(self.carrier_m)
    }

    /// Smallest weight this device can realise (carrier fully off
    /// resonance within the tuning range).
    #[must_use]
    pub fn min_weight(&self) -> f64 {
        let max_det = self.params.tuning_range_frac * self.carrier_m;
        let l = self.lorentzian(max_det);
        (self.params.drop_peak + 1.0 - self.params.epsilon()) * l - 1.0
    }

    /// Largest weight this device can realise (on resonance):
    /// `A_d − ε`.
    #[must_use]
    pub fn max_weight(&self) -> f64 {
        self.params.drop_peak - self.params.epsilon()
    }

    /// Directly sets the detuning, clamping to the tuning range and rounding
    /// to the heater-DAC grid when quantized tuning is configured.
    pub fn set_detuning(&mut self, detuning_m: f64) {
        let max_det = self.params.tuning_range_frac * self.carrier_m;
        let clamped = detuning_m.clamp(0.0, max_det);
        self.detuning_m = match self.params.tuning_bits {
            None => clamped,
            Some(bits) => {
                let levels = (1u64 << bits) - 1;
                let step = max_det / levels as f64;
                (clamped / step).round() * step
            }
        };
    }

    /// Tunes the ring so its own carrier sees the target signed weight.
    ///
    /// Solves `(A_d + 1 − ε)·L(δ) − 1 = w` for δ analytically, then applies
    /// heater quantization. Returns the *achieved* weight (which differs
    /// from the target by quantization and clamping).
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::WeightOutOfRange`] if `weight` is outside
    /// `[min_weight(), max_weight()]`.
    pub fn set_weight(&mut self, weight: f64) -> Result<f64> {
        let (lo, hi) = (self.min_weight(), self.max_weight());
        if !(weight >= lo - 1e-12 && weight <= hi + 1e-12) {
            return Err(PhotonicError::WeightOutOfRange {
                weight,
                min: lo,
                max: hi,
            });
        }
        let gain = self.params.drop_peak + 1.0 - self.params.epsilon();
        let l = ((weight + 1.0) / gain).clamp(f64::MIN_POSITIVE, 1.0);
        // L(δ) = 1/(1+(δ/δ½)²)  ⇒  δ = δ½·sqrt(1/L − 1)
        let detuning = self.hwhm_m() * (1.0 / l - 1.0).max(0.0).sqrt();
        self.set_detuning(detuning);
        Ok(self.effective_weight())
    }

    /// Applies an *analog* detuning perturbation (thermal crosstalk, ambient
    /// drift): unlike [`Microring::set_detuning`] this bypasses the heater
    /// DAC quantization — physics is not quantized — but still clamps to the
    /// physical range.
    pub fn perturb(&mut self, delta_m: f64) {
        let max_det = self.params.tuning_range_frac * self.carrier_m;
        self.detuning_m = (self.detuning_m + delta_m).clamp(0.0, max_det);
    }

    /// The thermal shift this ring's heater currently imposes (metres of
    /// resonance shift away from the parked position) — the quantity that
    /// leaks into neighbouring rings as thermal crosstalk.
    #[must_use]
    pub fn tuning_shift_m(&self) -> f64 {
        let max_det = self.params.tuning_range_frac * self.carrier_m;
        max_det - self.detuning_m
    }

    /// The ring's free spectral range at its carrier for a given physical
    /// circumference and group index: `FSR = λ² / (n_g · L)`. Rings resonate
    /// periodically — only carriers within one FSR can be weighted
    /// independently, a constraint the paper does not discuss (see the
    /// `pcnna-core` feasibility module).
    #[must_use]
    pub fn free_spectral_range_m(&self, circumference_m: f64, group_index: f64) -> f64 {
        self.carrier_m * self.carrier_m / (group_index * circumference_m)
    }

    /// Heater power currently dissipated, from the linear shift/power model.
    #[must_use]
    pub fn heater_power_w(&self) -> f64 {
        // Parked = max detuning costs zero; tuning toward resonance costs
        // power proportional to the shift from parked position.
        let max_det = self.params.tuning_range_frac * self.carrier_m;
        let shift = max_det - self.detuning_m;
        let linewidth = 2.0 * self.hwhm_m();
        self.params.heater_power_per_linewidth_w * (shift / linewidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Microring {
        Microring::new(RingParams::default(), 1550e-9).unwrap()
    }

    fn ideal_ring() -> Microring {
        let params = RingParams {
            tuning_bits: None,
            ..RingParams::default()
        };
        Microring::new(params, 1550e-9).unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(RingParams {
            q_factor: 0.0,
            ..RingParams::default()
        }
        .validate()
        .is_err());
        assert!(RingParams {
            drop_peak: 1.5,
            ..RingParams::default()
        }
        .validate()
        .is_err());
        assert!(RingParams {
            extinction_db: -3.0,
            ..RingParams::default()
        }
        .validate()
        .is_err());
        assert!(RingParams::default().validate().is_ok());
    }

    #[test]
    fn lorentzian_peaks_at_zero_detuning() {
        let r = ring();
        assert!((r.lorentzian(0.0) - 1.0).abs() < 1e-12);
        assert!((r.lorentzian(r.hwhm_m()) - 0.5).abs() < 1e-12);
        assert!(r.lorentzian(10.0 * r.hwhm_m()) < 0.01);
    }

    #[test]
    fn on_resonance_drop_is_peak_through_is_epsilon() {
        let mut r = ideal_ring();
        r.set_detuning(0.0);
        assert!((r.drop_transmission(1550e-9) - r.params().drop_peak).abs() < 1e-12);
        assert!((r.through_transmission(1550e-9) - r.params().epsilon()).abs() < 1e-12);
    }

    #[test]
    fn far_off_resonance_passes_through() {
        let r = ring(); // parked far off resonance by construction
        assert!(r.through_transmission(1550e-9) > 0.99);
        assert!(r.drop_transmission(1550e-9) < 0.01);
        assert!(r.effective_weight() < -0.98);
    }

    #[test]
    fn weight_range_endpoints() {
        let r = ring();
        assert!(r.min_weight() < -0.98);
        let expect_max = r.params().drop_peak - r.params().epsilon();
        assert!((r.max_weight() - expect_max).abs() < 1e-12);
    }

    #[test]
    fn set_weight_achieves_target_continuous() {
        let mut r = ideal_ring();
        for target in [-0.9, -0.5, 0.0, 0.3, 0.7, r.max_weight()] {
            let achieved = r.set_weight(target).unwrap();
            assert!(
                (achieved - target).abs() < 1e-9,
                "target {target} achieved {achieved}"
            );
        }
    }

    #[test]
    fn set_weight_quantized_error_bounded() {
        let mut r = ring(); // 10-bit heater DAC
        for i in 0..50 {
            let target = -0.95 + 1.6 * (i as f64) / 49.0;
            let achieved = r.set_weight(target).unwrap();
            // 10-bit tuning over the range keeps weight error small but
            // nonzero; bound empirically at 2%.
            assert!(
                (achieved - target).abs() < 0.02,
                "target {target} achieved {achieved}"
            );
        }
    }

    #[test]
    fn set_weight_rejects_out_of_range() {
        let mut r = ring();
        assert!(matches!(
            r.set_weight(1.5),
            Err(PhotonicError::WeightOutOfRange { .. })
        ));
        assert!(r.set_weight(-1.5).is_err());
    }

    #[test]
    fn weight_monotone_in_detuning() {
        let mut r = ideal_ring();
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let det = r.hwhm_m() * i as f64 / 2.0;
            r.set_detuning(det);
            let w = r.effective_weight();
            assert!(w < prev, "weight must fall as ring detunes");
            prev = w;
        }
    }

    #[test]
    fn heater_power_zero_when_parked_positive_on_resonance() {
        let mut r = ideal_ring();
        let parked = r.params().tuning_range_frac * r.carrier_m();
        r.set_detuning(parked);
        assert!(r.heater_power_w().abs() < 1e-15);
        r.set_detuning(0.0);
        assert!(r.heater_power_w() > 0.0);
    }

    #[test]
    fn neighbor_channel_sees_weak_crosstalk() {
        // 50 GHz neighbour at 1550 nm is ~0.4 nm away; with Q=5e4
        // (HWHM 15.5 pm) the Lorentzian tail is small but nonzero.
        let mut r = ideal_ring();
        r.set_detuning(0.0);
        let neighbour = 1550e-9 + 0.4e-9;
        let xt = r.drop_transmission(neighbour);
        assert!(xt > 0.0 && xt < 0.05, "crosstalk {xt}");
    }

    #[test]
    fn set_detuning_clamps_to_range() {
        let mut r = ideal_ring();
        let max_det = r.params().tuning_range_frac * r.carrier_m();
        r.set_detuning(10.0 * max_det);
        assert!((r.detuning_m() - max_det).abs() < 1e-18);
        r.set_detuning(-1.0);
        assert_eq!(r.detuning_m(), 0.0);
    }
}
