//! Photodiodes and balanced detection.
//!
//! "A photodiode sums up all the incoming wavelengths into an aggregate
//! photo-current" (paper §III) — the accumulate half of the optical MAC.
//! The paper notes integrated photodiodes run at "tens of GHz if not
//! hundreds" at zero bias, so detection is never the bottleneck; what the
//! functional simulation needs from this model is the photocurrent and its
//! noise (shot + thermal), which set the analog precision of the MAC.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::constants::{BOLTZMANN, ELEMENTARY_CHARGE, ROOM_TEMPERATURE};
use crate::{PhotonicError, Result};

/// A PIN photodiode with a transimpedance load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Photodiode {
    /// Responsivity, A/W.
    pub responsivity_a_w: f64,
    /// Dark current, A.
    pub dark_current_a: f64,
    /// Load (transimpedance) resistance, ohms.
    pub load_ohms: f64,
    /// Detection temperature, K.
    pub temperature_k: f64,
}

impl Default for Photodiode {
    /// 1 A/W responsivity, 10 nA dark current, 50 Ω load at room temperature.
    fn default() -> Self {
        Photodiode {
            responsivity_a_w: 1.0,
            dark_current_a: 10e-9,
            load_ohms: 50.0,
            temperature_k: ROOM_TEMPERATURE,
        }
    }
}

impl Photodiode {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] for non-positive
    /// responsivity, load, or temperature.
    pub fn validate(&self) -> Result<()> {
        if !(self.responsivity_a_w > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!(
                    "responsivity must be positive, got {}",
                    self.responsivity_a_w
                ),
            });
        }
        if !(self.load_ohms > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("load must be positive, got {}", self.load_ohms),
            });
        }
        if !(self.temperature_k > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("temperature must be positive, got {}", self.temperature_k),
            });
        }
        Ok(())
    }

    /// Mean photocurrent for a total incident optical power (watts):
    /// `I = R·P + I_dark`.
    #[must_use]
    pub fn photocurrent_a(&self, power_w: f64) -> f64 {
        self.responsivity_a_w * power_w.max(0.0) + self.dark_current_a
    }

    /// Shot-noise current variance over bandwidth `bw_hz`: `2·q·I·B`.
    #[must_use]
    pub fn shot_noise_variance(&self, current_a: f64, bw_hz: f64) -> f64 {
        2.0 * ELEMENTARY_CHARGE * current_a.abs() * bw_hz
    }

    /// Thermal (Johnson) noise current variance over `bw_hz`: `4·kB·T·B/R`.
    #[must_use]
    pub fn thermal_noise_variance(&self, bw_hz: f64) -> f64 {
        4.0 * BOLTZMANN * self.temperature_k * bw_hz / self.load_ohms
    }

    /// Samples a noisy photocurrent for incident power `power_w` over
    /// detection bandwidth `bw_hz`.
    pub fn sample_current_a(&self, power_w: f64, bw_hz: f64, rng: &mut impl Rng) -> f64 {
        let mean = self.photocurrent_a(power_w);
        let var = self.shot_noise_variance(mean, bw_hz) + self.thermal_noise_variance(bw_hz);
        mean + var.sqrt() * gaussian(rng)
    }
}

/// A balanced photodiode pair: output = I(+) − I(−).
///
/// Broadcast-and-weight realises *signed* weights by steering carrier power
/// between a drop bus (detected by the + diode) and a through bus (the −
/// diode); the differential current is proportional to the signed weighted
/// sum, and common-mode terms (dark current) cancel.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BalancedPair {
    /// The (identical) diodes of the pair.
    pub diode: Photodiode,
}

impl BalancedPair {
    /// Mean differential current for `(plus_power, minus_power)` in watts.
    #[must_use]
    pub fn differential_current_a(&self, plus_w: f64, minus_w: f64) -> f64 {
        // dark currents cancel in the difference
        self.diode.responsivity_a_w * (plus_w.max(0.0) - minus_w.max(0.0))
    }

    /// Noise variance of the differential current: both diodes contribute
    /// shot noise (variances add) and both loads contribute thermal noise.
    #[must_use]
    pub fn noise_variance(&self, plus_w: f64, minus_w: f64, bw_hz: f64) -> f64 {
        let i_plus = self.diode.photocurrent_a(plus_w);
        let i_minus = self.diode.photocurrent_a(minus_w);
        self.diode.shot_noise_variance(i_plus, bw_hz)
            + self.diode.shot_noise_variance(i_minus, bw_hz)
            + 2.0 * self.diode.thermal_noise_variance(bw_hz)
    }

    /// Samples a noisy differential current.
    pub fn sample_differential_a(
        &self,
        plus_w: f64,
        minus_w: f64,
        bw_hz: f64,
        rng: &mut impl Rng,
    ) -> f64 {
        let mean = self.differential_current_a(plus_w, minus_w);
        let sigma = self.noise_variance(plus_w, minus_w, bw_hz).sqrt();
        mean + sigma * gaussian(rng)
    }
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(Photodiode {
            responsivity_a_w: 0.0,
            ..Photodiode::default()
        }
        .validate()
        .is_err());
        assert!(Photodiode {
            load_ohms: -1.0,
            ..Photodiode::default()
        }
        .validate()
        .is_err());
        assert!(Photodiode::default().validate().is_ok());
    }

    #[test]
    fn photocurrent_is_linear_in_power() {
        let pd = Photodiode::default();
        let i1 = pd.photocurrent_a(1e-3) - pd.dark_current_a;
        let i2 = pd.photocurrent_a(2e-3) - pd.dark_current_a;
        assert!((i2 / i1 - 2.0).abs() < 1e-12);
        // negative power clamps to dark current only
        assert!((pd.photocurrent_a(-1.0) - pd.dark_current_a).abs() < 1e-18);
    }

    #[test]
    fn shot_noise_matches_formula() {
        let pd = Photodiode::default();
        let var = pd.shot_noise_variance(1e-3, 5e9);
        let expect = 2.0 * ELEMENTARY_CHARGE * 1e-3 * 5e9;
        assert!((var - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn thermal_noise_matches_formula() {
        let pd = Photodiode::default();
        let var = pd.thermal_noise_variance(5e9);
        let expect = 4.0 * BOLTZMANN * 300.0 * 5e9 / 50.0;
        assert!((var - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn sampled_current_mean_is_unbiased() {
        let pd = Photodiode::default();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| pd.sample_current_a(1e-3, 5e9, &mut rng))
            .sum::<f64>()
            / n as f64;
        let expect = pd.photocurrent_a(1e-3);
        assert!((mean - expect).abs() / expect < 0.02);
    }

    #[test]
    fn balanced_pair_cancels_dark_current() {
        let bp = BalancedPair::default();
        assert_eq!(bp.differential_current_a(1e-3, 1e-3), 0.0);
        let i = bp.differential_current_a(2e-3, 1e-3);
        assert!((i - 1e-3).abs() < 1e-12); // R = 1 A/W
    }

    #[test]
    fn balanced_pair_sign_follows_dominant_bus() {
        let bp = BalancedPair::default();
        assert!(bp.differential_current_a(2e-3, 1e-3) > 0.0);
        assert!(bp.differential_current_a(1e-3, 2e-3) < 0.0);
    }

    #[test]
    fn balanced_noise_exceeds_single_diode_noise() {
        let bp = BalancedPair::default();
        let single = bp
            .diode
            .shot_noise_variance(bp.diode.photocurrent_a(1e-3), 5e9)
            + bp.diode.thermal_noise_variance(5e9);
        let pair = bp.noise_variance(1e-3, 1e-3, 5e9);
        assert!(pair > single);
    }

    #[test]
    fn snr_improves_with_power() {
        let bp = BalancedPair::default();
        let snr = |p: f64| {
            let sig = bp.differential_current_a(p, 0.0);
            sig * sig / bp.noise_variance(p, 0.0, 5e9)
        };
        assert!(snr(1e-3) > snr(1e-5));
    }
}
