//! Noise aggregation: SNR and effective-number-of-bits (ENOB) estimation.
//!
//! The paper's precision story is implicit — it stores 16-bit values and
//! uses 16-bit converters, but the analog optical MAC has its own noise
//! floor. This module turns the variances reported by the device models
//! into the two numbers architects actually compare: SNR (dB) and ENOB.

use serde::{Deserialize, Serialize};

/// An additive noise budget: named variance contributions against a signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseBudget {
    /// Full-scale signal amplitude (same unit family as the noise terms'
    /// square roots; e.g. amperes).
    pub signal: f64,
    /// Named variance contributions (unit²).
    pub contributions: Vec<(String, f64)>,
}

impl NoiseBudget {
    /// Creates an empty budget for a given full-scale signal.
    #[must_use]
    pub fn new(signal: f64) -> Self {
        NoiseBudget {
            signal,
            contributions: Vec::new(),
        }
    }

    /// Adds a named variance contribution (negative values are clamped to 0).
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, variance: f64) -> Self {
        self.contributions.push((name.into(), variance.max(0.0)));
        self
    }

    /// Total noise variance.
    #[must_use]
    pub fn total_variance(&self) -> f64 {
        self.contributions.iter().map(|(_, v)| v).sum()
    }

    /// Linear SNR (`∞` if noiseless).
    #[must_use]
    pub fn snr(&self) -> f64 {
        let var = self.total_variance();
        if var == 0.0 {
            f64::INFINITY
        } else {
            self.signal * self.signal / var
        }
    }

    /// SNR in dB.
    #[must_use]
    pub fn snr_db(&self) -> f64 {
        10.0 * self.snr().log10()
    }

    /// Effective number of bits: `(SNR_dB − 1.76) / 6.02`.
    #[must_use]
    pub fn enob(&self) -> f64 {
        (self.snr_db() - 1.76) / 6.02
    }

    /// The dominant noise contribution `(name, variance)`, if any.
    #[must_use]
    pub fn dominant(&self) -> Option<(&str, f64)> {
        self.contributions
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, v)| (n.as_str(), *v))
    }
}

/// Converts a linear SNR to ENOB.
#[must_use]
pub fn snr_to_enob(snr_linear: f64) -> f64 {
    (10.0 * snr_linear.log10() - 1.76) / 6.02
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_budget_is_noiseless() {
        let b = NoiseBudget::new(1.0);
        assert_eq!(b.total_variance(), 0.0);
        assert!(b.snr().is_infinite());
    }

    #[test]
    fn contributions_accumulate() {
        let b = NoiseBudget::new(1.0)
            .with("shot", 1e-6)
            .with("thermal", 3e-6);
        assert!((b.total_variance() - 4e-6).abs() < 1e-18);
        assert!((b.snr() - 2.5e5).abs() / 2.5e5 < 1e-12);
    }

    #[test]
    fn negative_variances_are_clamped() {
        let b = NoiseBudget::new(1.0).with("bogus", -5.0);
        assert_eq!(b.total_variance(), 0.0);
    }

    #[test]
    fn dominant_finds_largest() {
        let b = NoiseBudget::new(1.0)
            .with("shot", 1e-6)
            .with("thermal", 3e-6)
            .with("rin", 2e-6);
        assert_eq!(b.dominant().unwrap().0, "thermal");
    }

    #[test]
    fn enob_matches_classic_formula() {
        // SNR of 98.08 dB ↔ 16 bits
        let snr_linear = 10f64.powf(98.08 / 10.0);
        let enob = snr_to_enob(snr_linear);
        assert!((enob - 16.0).abs() < 0.01, "enob {enob}");
    }

    #[test]
    fn six_db_per_bit() {
        // doubling the signal adds 20·log10(2)/6.02 ≈ 1.0001 bits
        let b1 = NoiseBudget::new(1.0).with("n", 1e-6);
        let b2 = NoiseBudget::new(2.0).with("n", 1e-6);
        assert!((b2.enob() - b1.enob() - 1.0).abs() < 1e-3);
    }
}
