//! Noise aggregation: SNR and effective-number-of-bits (ENOB) estimation.
//!
//! The paper's precision story is implicit — it stores 16-bit values and
//! uses 16-bit converters, but the analog optical MAC has its own noise
//! floor. This module turns the variances reported by the device models
//! into the two numbers architects actually compare: SNR (dB) and ENOB.

use crate::degradation::HealthState;
use serde::{Deserialize, Serialize};

/// Ring detuning per kelvin of uncompensated ambient drift, in ring
/// half-linewidths: the ~75 pm/K silicon thermo-optic walk-off over the
/// ~15 pm half-linewidth of the default ring (see [`thermal`] and
/// [`microring`]). One kelvin of drift past the lock point pushes a
/// resonance five HWHM off its carrier.
///
/// [`thermal`]: crate::thermal
/// [`microring`]: crate::microring
pub const RING_DETUNE_HWHM_PER_K: f64 = 5.0;

/// Fractional crosstalk noise added per dead converter channel when its
/// traffic is remapped onto the surviving neighbours (denser wavelength
/// reuse on the remaining rings).
pub const DEAD_CHANNEL_CROSSTALK: f64 = 0.12;

/// The electrical SNR penalty (dB, ≤ 0) a degraded [`HealthState`]
/// costs the analog readout, relative to nominal hardware:
///
/// * **Laser aging** scales the optical carrier power by
///   `laser_power_factor`; photocurrent is linear in optical power, so
///   electrical signal power — and SNR against a fixed receiver noise
///   floor — falls as the square: `20·log10(factor)`. The −3 dB optical
///   floor of the default [`DegradationLimits`] is the −6 dB electrical
///   margin its docs quote.
/// * **Thermal drift** detunes every ring off its carrier by
///   [`RING_DETUNE_HWHM_PER_K`] half-linewidths per kelvin; the
///   Lorentzian transmission `1/(1 + d²)` attenuates the signal power,
///   costing `20·log10(1 + d²)` electrically.
/// * **Dead converter channels** force wavelength reuse on the
///   survivors, adding [`DEAD_CHANNEL_CROSSTALK`] of crosstalk variance
///   per lost channel: `10·log10(1 + x·dead)`.
///
/// Monotone non-increasing in every degradation axis, and exactly 0 dB
/// at [`HealthState::nominal`] — the invariants the accuracy-quote
/// property tests pin.
///
/// [`DegradationLimits`]: crate::degradation::DegradationLimits
#[must_use]
pub fn health_snr_penalty_db(health: &HealthState) -> f64 {
    let laser_db = 20.0 * health.laser_power_factor.max(1e-9).log10();
    let detune = RING_DETUNE_HWHM_PER_K * health.ambient_delta_k.abs();
    let detune_db = -20.0 * (1.0 + detune * detune).log10();
    let dead = (health.dead_input_channels + health.dead_output_channels) as f64;
    let crosstalk_db = -10.0 * (1.0 + DEAD_CHANNEL_CROSSTALK * dead).log10();
    laser_db + detune_db + crosstalk_db
}

/// An additive noise budget: named variance contributions against a signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseBudget {
    /// Full-scale signal amplitude (same unit family as the noise terms'
    /// square roots; e.g. amperes).
    pub signal: f64,
    /// Named variance contributions (unit²).
    pub contributions: Vec<(String, f64)>,
}

impl NoiseBudget {
    /// Creates an empty budget for a given full-scale signal.
    #[must_use]
    pub fn new(signal: f64) -> Self {
        NoiseBudget {
            signal,
            contributions: Vec::new(),
        }
    }

    /// Adds a named variance contribution (negative values are clamped to 0).
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, variance: f64) -> Self {
        self.contributions.push((name.into(), variance.max(0.0)));
        self
    }

    /// Total noise variance.
    #[must_use]
    pub fn total_variance(&self) -> f64 {
        self.contributions.iter().map(|(_, v)| v).sum()
    }

    /// Linear SNR (`∞` if noiseless).
    #[must_use]
    pub fn snr(&self) -> f64 {
        let var = self.total_variance();
        if var == 0.0 {
            f64::INFINITY
        } else {
            self.signal * self.signal / var
        }
    }

    /// SNR in dB.
    #[must_use]
    pub fn snr_db(&self) -> f64 {
        10.0 * self.snr().log10()
    }

    /// Effective number of bits: `(SNR_dB − 1.76) / 6.02`.
    #[must_use]
    pub fn enob(&self) -> f64 {
        (self.snr_db() - 1.76) / 6.02
    }

    /// The dominant noise contribution `(name, variance)`, if any.
    #[must_use]
    pub fn dominant(&self) -> Option<(&str, f64)> {
        self.contributions
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, v)| (n.as_str(), *v))
    }
}

/// Converts a linear SNR to ENOB.
#[must_use]
pub fn snr_to_enob(snr_linear: f64) -> f64 {
    (10.0 * snr_linear.log10() - 1.76) / 6.02
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_budget_is_noiseless() {
        let b = NoiseBudget::new(1.0);
        assert_eq!(b.total_variance(), 0.0);
        assert!(b.snr().is_infinite());
    }

    #[test]
    fn contributions_accumulate() {
        let b = NoiseBudget::new(1.0)
            .with("shot", 1e-6)
            .with("thermal", 3e-6);
        assert!((b.total_variance() - 4e-6).abs() < 1e-18);
        assert!((b.snr() - 2.5e5).abs() / 2.5e5 < 1e-12);
    }

    #[test]
    fn negative_variances_are_clamped() {
        let b = NoiseBudget::new(1.0).with("bogus", -5.0);
        assert_eq!(b.total_variance(), 0.0);
    }

    #[test]
    fn dominant_finds_largest() {
        let b = NoiseBudget::new(1.0)
            .with("shot", 1e-6)
            .with("thermal", 3e-6)
            .with("rin", 2e-6);
        assert_eq!(b.dominant().unwrap().0, "thermal");
    }

    #[test]
    fn enob_matches_classic_formula() {
        // SNR of 98.08 dB ↔ 16 bits
        let snr_linear = 10f64.powf(98.08 / 10.0);
        let enob = snr_to_enob(snr_linear);
        assert!((enob - 16.0).abs() < 0.01, "enob {enob}");
    }

    #[test]
    fn nominal_health_costs_nothing() {
        assert_eq!(health_snr_penalty_db(&HealthState::nominal()), 0.0);
    }

    #[test]
    fn laser_floor_is_six_electrical_db() {
        // −3 dB optical (factor 0.5) ≈ −6 dB electrical, the margin the
        // DegradationLimits docs quote.
        let h = HealthState {
            laser_power_factor: 0.5,
            ..HealthState::nominal()
        };
        let db = health_snr_penalty_db(&h);
        assert!((db + 6.02).abs() < 0.01, "penalty {db}");
    }

    #[test]
    fn penalty_is_monotone_per_axis() {
        let base = HealthState::nominal();
        let mut prev = health_snr_penalty_db(&base);
        for i in 1..=10 {
            let h = HealthState {
                ambient_delta_k: 0.1 * f64::from(i),
                ..base
            };
            let db = health_snr_penalty_db(&h);
            assert!(db < prev, "drift axis not monotone at step {i}");
            prev = db;
        }
        prev = health_snr_penalty_db(&base);
        for i in 1..=9 {
            let h = HealthState {
                laser_power_factor: 1.0 - 0.1 * f64::from(i),
                ..base
            };
            let db = health_snr_penalty_db(&h);
            assert!(db < prev, "laser axis not monotone at step {i}");
            prev = db;
        }
        prev = health_snr_penalty_db(&base);
        for i in 1..=8usize {
            let h = HealthState {
                dead_input_channels: i,
                dead_output_channels: i / 2,
                ..base
            };
            let db = health_snr_penalty_db(&h);
            assert!(db < prev, "dead-channel axis not monotone at step {i}");
            prev = db;
        }
    }

    #[test]
    fn drift_is_sign_symmetric() {
        let warm = HealthState {
            ambient_delta_k: 0.7,
            ..HealthState::nominal()
        };
        let cold = HealthState {
            ambient_delta_k: -0.7,
            ..HealthState::nominal()
        };
        assert_eq!(health_snr_penalty_db(&warm), health_snr_penalty_db(&cold));
    }

    #[test]
    fn six_db_per_bit() {
        // doubling the signal adds 20·log10(2)/6.02 ≈ 1.0001 bits
        let b1 = NoiseBudget::new(1.0).with("n", 1e-6);
        let b2 = NoiseBudget::new(2.0).with("n", 1e-6);
        assert!((b2.enob() - b1.enob() - 1.0).abs() < 1e-3);
    }
}
