//! Mach-Zehnder intensity modulators.
//!
//! The paper drives its input carriers with MZMs: "analog input values from
//! DAC modulate the laser beams with Mach Zehnder Modulators (MZM), which
//! are usually faster than the 5GHz clock" (§V-B). An MZM's intensity
//! transfer is the raised cosine `T(v) = sin²(π·v / (2·Vπ))`; to impose a
//! *linear* intensity x the driver pre-distorts with
//! `v = (2·Vπ/π)·asin(√x)`, which this model implements, including the
//! finite resolution of the driving DAC and the modulator's insertion loss
//! and extinction floor.

use crate::{PhotonicError, Result};
use serde::{Deserialize, Serialize};

/// A Mach-Zehnder intensity modulator with pre-distorted drive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mzm {
    /// Half-wave voltage, volts.
    pub v_pi: f64,
    /// Insertion loss as a linear power factor in (0, 1].
    pub insertion: f64,
    /// Extinction ratio in dB (floor transmission = insertion·10^(−ER/10)).
    pub extinction_db: f64,
    /// Analog 3 dB bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Drive-DAC resolution in bits; `None` = ideal continuous drive.
    pub drive_bits: Option<u8>,
}

impl Default for Mzm {
    /// Typical silicon MZM: Vπ = 2 V, 3 dB insertion loss, 25 dB extinction,
    /// 20 GHz bandwidth ("usually faster than the 5 GHz clock"), driven by
    /// the paper's 16-bit DAC.
    fn default() -> Self {
        Mzm {
            v_pi: 2.0,
            insertion: 0.5,
            extinction_db: 25.0,
            bandwidth_hz: 20e9,
            drive_bits: Some(16),
        }
    }
}

impl Mzm {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidParameter`] on non-physical values.
    pub fn validate(&self) -> Result<()> {
        if !(self.v_pi > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("Vπ must be positive, got {}", self.v_pi),
            });
        }
        if !(self.insertion > 0.0 && self.insertion <= 1.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: format!("insertion must be in (0,1], got {}", self.insertion),
            });
        }
        if !(self.bandwidth_hz > 0.0) {
            return Err(PhotonicError::InvalidParameter {
                reason: "bandwidth must be positive".to_owned(),
            });
        }
        Ok(())
    }

    /// Raw intensity transfer at drive voltage `v`:
    /// `insertion · sin²(π v / (2 Vπ))`, floored by the extinction ratio.
    #[must_use]
    pub fn transmission(&self, v: f64) -> f64 {
        let t = (core::f64::consts::PI * v / (2.0 * self.v_pi))
            .sin()
            .powi(2);
        let floor = 10f64.powf(-self.extinction_db / 10.0);
        self.insertion * t.max(floor)
    }

    /// Pre-distorted drive voltage that would produce normalized intensity
    /// `x ∈ [0, 1]` through the sine-squared transfer.
    #[must_use]
    pub fn drive_voltage(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        (2.0 * self.v_pi / core::f64::consts::PI) * x.sqrt().asin()
    }

    /// Modulates a normalized intensity `x ∈ [0, 1]`: pre-distorts, applies
    /// the (possibly quantized) drive, and returns the achieved normalized
    /// output intensity — `insertion · x` up to DAC rounding and the
    /// extinction floor.
    #[must_use]
    pub fn modulate(&self, x: f64) -> f64 {
        let mut v = self.drive_voltage(x);
        if let Some(bits) = self.drive_bits {
            let levels = ((1u64 << bits) - 1) as f64;
            let step = self.v_pi / levels;
            v = (v / step).round() * step;
        }
        self.transmission(v)
    }

    /// Whether this modulator can keep up with a given symbol clock.
    #[must_use]
    pub fn supports_clock(&self, clock_hz: f64) -> bool {
        self.bandwidth_hz >= clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal() -> Mzm {
        Mzm {
            drive_bits: None,
            insertion: 1.0,
            extinction_db: 300.0, // effectively a perfect null
            ..Mzm::default()
        }
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(Mzm {
            v_pi: -1.0,
            ..Mzm::default()
        }
        .validate()
        .is_err());
        assert!(Mzm {
            insertion: 0.0,
            ..Mzm::default()
        }
        .validate()
        .is_err());
        assert!(Mzm {
            bandwidth_hz: 0.0,
            ..Mzm::default()
        }
        .validate()
        .is_err());
        assert!(Mzm::default().validate().is_ok());
    }

    #[test]
    fn transfer_is_sine_squared() {
        let m = ideal();
        assert!(m.transmission(0.0) < 1e-5);
        assert!((m.transmission(m.v_pi) - 1.0).abs() < 1e-12);
        assert!((m.transmission(m.v_pi / 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predistortion_linearises_exactly() {
        let m = ideal();
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let y = m.modulate(x);
            assert!((y - x).abs() < 1e-9, "x={x} y={y}");
        }
    }

    #[test]
    fn insertion_loss_scales_output() {
        let m = Mzm {
            drive_bits: None,
            insertion: 0.5,
            ..ideal()
        };
        assert!((m.modulate(0.8) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn quantized_drive_error_is_small_for_16_bits() {
        let m = Mzm {
            insertion: 1.0,
            extinction_db: 60.0,
            ..Mzm::default()
        };
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let y = m.modulate(x);
            assert!((y - x).abs() < 1e-3, "x={x} y={y}");
        }
    }

    #[test]
    fn extinction_floor_limits_zero() {
        let m = Mzm {
            drive_bits: None,
            insertion: 1.0,
            extinction_db: 25.0,
            ..Mzm::default()
        };
        let floor = 10f64.powf(-2.5);
        assert!((m.modulate(0.0) - floor).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let m = ideal();
        assert!((m.modulate(1.7) - 1.0).abs() < 1e-9);
        assert!(m.modulate(-0.3) < 1e-5);
    }

    #[test]
    fn bandwidth_check_matches_paper_claim() {
        // §V-B: MZMs are "usually faster than the 5GHz clock".
        let m = Mzm::default();
        assert!(m.supports_clock(5e9));
        assert!(!m.supports_clock(50e9));
    }
}
