//! The common interface of all accelerator baselines.

use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;

/// An accelerator that can execute a convolution layer.
pub trait AcceleratorModel {
    /// Engine name for reports (e.g. `"eyeriss"`).
    fn name(&self) -> &str;

    /// Estimated execution time of one conv layer.
    fn layer_time(&self, g: &ConvGeometry) -> SimTime;

    /// Estimated energy of one conv layer, joules. Default: derived from
    /// [`AcceleratorModel::average_power_w`].
    fn layer_energy_j(&self, g: &ConvGeometry) -> f64 {
        self.layer_time(g).as_secs_f64() * self.average_power_w()
    }

    /// Average power draw while computing, watts.
    fn average_power_w(&self) -> f64;

    /// Total time over a list of layers.
    fn network_time(&self, layers: &[(&str, ConvGeometry)]) -> SimTime {
        layers.iter().map(|(_, g)| self.layer_time(g)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl AcceleratorModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn layer_time(&self, _g: &ConvGeometry) -> SimTime {
            SimTime::from_us(10)
        }
        fn average_power_w(&self) -> f64 {
            0.5
        }
    }

    #[test]
    fn default_energy_and_network_time() {
        let m = Fixed;
        let g = ConvGeometry::new(8, 3, 1, 1, 2, 4).unwrap();
        assert!((m.layer_energy_j(&g) - 5e-6).abs() < 1e-12);
        let layers = [("a", g), ("b", g)];
        assert_eq!(m.network_time(&layers), SimTime::from_us(20));
    }
}
