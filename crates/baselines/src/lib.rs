//! Baseline electronic CNN accelerator models.
//!
//! The paper's Figure 6 compares PCNNA's per-layer execution time against
//! two published electronic accelerators: **Eyeriss** (Chen et al., ISSCC/
//! ISCA 2016 — a 12×14 row-stationary PE array at 200 MHz) and **YodaNN**
//! (Andri et al., ISVLSI 2016 — a binary-weight accelerator at up to
//! 480 MHz). Neither chip is available here (nor was it to the paper's
//! authors), and the paper reads their numbers off the published charts; we
//! substitute *analytical throughput models* calibrated to each chip's
//! published architecture parameters, which reproduce the ordering and the
//! orders-of-magnitude gaps Figure 6 shows (see DESIGN.md, "Simulated
//! substitutions").
//!
//! All models implement [`AcceleratorModel`] so the figure harnesses can
//! treat engines uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eyeriss;
pub mod model;
pub mod mzi_mesh;
pub mod roofline;
pub mod yodann;

pub use eyeriss::Eyeriss;
pub use model::AcceleratorModel;
pub use mzi_mesh::MziMesh;
pub use roofline::Roofline;
pub use yodann::YodaNn;
