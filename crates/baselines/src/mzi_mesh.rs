//! Coherent MZI-mesh photonic baseline (the paper's reference \[11\],
//! Shen et al., *Nature Photonics* 2017).
//!
//! The other photonic approach of the era: an `N×N` triangular/rectangular
//! mesh of Mach-Zehnder interferometers realises an arbitrary `N×N` unitary
//! (two meshes + attenuators give any matrix via SVD), computing one
//! `N`-vector matrix-vector product per clock. Unlike broadcast-and-weight
//! it has no WDM parallelism: a convolution is im2col'd into matvecs and
//! streamed through. Comparing PCNNA against it shows what the MRR/WDM
//! architecture specifically buys.

use crate::model::AcceleratorModel;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// An MZI-mesh accelerator of fixed port count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MziMesh {
    /// Mesh port count `N` (Shen et al. demonstrated 4; proposals reach 64+).
    pub ports: usize,
    /// Vector clock, Hz (limited by the same DAC/ADC wall as PCNNA).
    pub clock_hz: f64,
    /// Average electrical+optical power, watts.
    pub power_w: f64,
}

impl Default for MziMesh {
    /// A generously scaled-up mesh: 64 ports at the same 5 GHz I/O clock.
    fn default() -> Self {
        MziMesh {
            ports: 64,
            clock_hz: 5e9,
            power_w: 10.0,
        }
    }
}

impl MziMesh {
    /// Matrix-vector products needed for one layer: the `K × Nkernel`
    /// weight matrix is tiled into `⌈K/N⌉·⌈Nkernel/N⌉` blocks, each
    /// streamed over all `Nlocs` locations.
    #[must_use]
    pub fn matvecs(&self, g: &ConvGeometry) -> u64 {
        let n = self.ports as u64;
        let row_tiles = (g.kernels() as u64).div_ceil(n);
        let col_tiles = g.n_kernel().div_ceil(n);
        row_tiles * col_tiles * g.n_locations()
    }
}

impl AcceleratorModel for MziMesh {
    fn name(&self) -> &str {
        "mzi-mesh"
    }

    fn layer_time(&self, g: &ConvGeometry) -> SimTime {
        SimTime::from_secs_f64(self.matvecs(g) as f64 / self.clock_hz)
    }

    fn average_power_w(&self) -> f64 {
        self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    #[test]
    fn matvec_count_for_conv4() {
        // conv4: K=384, Nkernel=3456, Nlocs=169; 64 ports →
        // 6 row tiles × 54 col tiles × 169 = 54_756 matvecs.
        let mesh = MziMesh::default();
        let g = zoo::alexnet_conv_layers()[3].1;
        assert_eq!(mesh.matvecs(&g), 6 * 54 * 169);
    }

    #[test]
    fn mesh_is_slower_than_pcnna_optical_core() {
        // PCNNA computes all K kernels per location in one cycle; the mesh
        // needs ⌈K/N⌉·⌈Nkernel/N⌉ cycles per location — 12× on conv1 (small
        // K, small field) up to >300× on conv4.
        let mesh = MziMesh::default();
        for (name, g) in zoo::alexnet_conv_layers() {
            let pcnna_o_cycles = g.n_locations();
            let mesh_cycles = mesh.matvecs(&g);
            assert!(
                mesh_cycles >= 10 * pcnna_o_cycles,
                "{name}: mesh {mesh_cycles} vs PCNNA(O) {pcnna_o_cycles}"
            );
        }
        let conv4 = zoo::alexnet_conv_layers()[3].1;
        assert!(mesh.matvecs(&conv4) > 300 * conv4.n_locations());
    }

    #[test]
    fn more_ports_fewer_matvecs() {
        let small = MziMesh {
            ports: 16,
            ..MziMesh::default()
        };
        let big = MziMesh {
            ports: 128,
            ..MziMesh::default()
        };
        let g = zoo::alexnet_conv_layers()[2].1;
        assert!(big.matvecs(&g) < small.matvecs(&g));
    }

    #[test]
    fn layer_time_matches_matvec_count() {
        let mesh = MziMesh::default();
        let g = zoo::alexnet_conv_layers()[0].1;
        let t = mesh.layer_time(&g).as_secs_f64();
        assert!((t - mesh.matvecs(&g) as f64 / 5e9).abs() < 1e-12);
    }
}
