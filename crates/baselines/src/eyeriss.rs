//! Eyeriss-like row-stationary accelerator model.
//!
//! Eyeriss (Chen, Krishna, Emer, Sze — ISSCC/ISCA 2016) computes 2-D
//! convolutions on a 12×14 array of processing elements at 200 MHz with the
//! *row-stationary* dataflow: a logical PE set of `m` rows (one kernel row
//! each) by `e` columns (one output row each) computes one 2-D convolution
//! plane; the physical array fits `⌊12/m⌋·⌊14/e'⌋`-ish replicas of that set,
//! and the `K·nc` required 2-D planes are streamed over it in passes.
//!
//! This model reproduces that mapping at first order: spatial utilisation
//! from the set-fitting arithmetic, temporal throughput of one MAC per PE
//! per cycle, plus a fixed mapping efficiency covering drain/fill and
//! memory stalls (calibrated so dense AlexNet conv layers land at the
//! published few-ms scale; Eyeriss reports 115.3 ms total at 34.7 fps... on
//! the conv layers of AlexNet with batch 4 — our per-frame numbers sit in
//! the same regime).

use crate::model::AcceleratorModel;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// Eyeriss-like accelerator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Eyeriss {
    /// PE array rows (kernel-row dimension).
    pub pe_rows: usize,
    /// PE array columns (output-row dimension).
    pub pe_cols: usize,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Fixed mapping/memory efficiency factor in (0, 1].
    pub efficiency: f64,
    /// Average core power, watts (chip reports ~278 mW).
    pub power_w: f64,
}

impl Default for Eyeriss {
    fn default() -> Self {
        Eyeriss {
            pe_rows: 12,
            pe_cols: 14,
            clock_hz: 200e6,
            efficiency: 0.8,
            power_w: 0.278,
        }
    }
}

impl Eyeriss {
    /// Spatial utilisation of the PE array for a layer: how many PEs a
    /// row-stationary mapping keeps busy.
    #[must_use]
    pub fn utilization(&self, g: &ConvGeometry) -> f64 {
        let total_pes = (self.pe_rows * self.pe_cols) as f64;
        let m = g.kernel_side().min(self.pe_rows);
        // Output rows mapped across the column dimension; wide outputs are
        // tiled, narrow outputs under-fill.
        let e = g.output_side().min(self.pe_cols);
        let set = m * e;
        // Replicate the logical set across leftover rows (filter reuse).
        let replicas = ((self.pe_rows / m).max(1)) * ((self.pe_cols / e).max(1));
        let used = (set * replicas).min(self.pe_rows * self.pe_cols);
        used as f64 / total_pes
    }

    /// Cycles to execute a layer.
    #[must_use]
    pub fn layer_cycles(&self, g: &ConvGeometry) -> u64 {
        let peak = (self.pe_rows * self.pe_cols) as f64;
        let effective = peak * self.utilization(g) * self.efficiency;
        (g.macs() as f64 / effective).ceil() as u64
    }
}

impl AcceleratorModel for Eyeriss {
    fn name(&self) -> &str {
        "eyeriss"
    }

    fn layer_time(&self, g: &ConvGeometry) -> SimTime {
        SimTime::from_secs_f64(self.layer_cycles(g) as f64 / self.clock_hz)
    }

    fn average_power_w(&self) -> f64 {
        self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    #[test]
    fn utilization_is_in_unit_interval() {
        let e = Eyeriss::default();
        for (_, g) in zoo::alexnet_conv_layers() {
            let u = e.utilization(&g);
            assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        }
    }

    #[test]
    fn small_kernels_underutilize_less_with_replication() {
        let e = Eyeriss::default();
        // 3x3 kernel on 13x13 outputs: 3 rows used, replicated 4x → 12 rows.
        let g = zoo::alexnet_conv_layers()[3].1;
        assert!(e.utilization(&g) > 0.8);
    }

    #[test]
    fn alexnet_layer_times_are_milliseconds() {
        // Eyeriss processes AlexNet conv layers in the millisecond regime
        // (published: 115.3 ms for the 5 conv layers at batch 4, i.e. a few
        // ms per layer per frame).
        let e = Eyeriss::default();
        for (name, g) in zoo::alexnet_conv_layers() {
            let t = e.layer_time(&g).as_ms_f64();
            assert!(
                (0.5..30.0).contains(&t),
                "{name}: {t} ms outside the published regime"
            );
        }
    }

    #[test]
    fn alexnet_total_is_tens_of_milliseconds() {
        let e = Eyeriss::default();
        let total = e.network_time(&zoo::alexnet_conv_layers()).as_ms_f64();
        assert!((5.0..60.0).contains(&total), "total {total} ms");
    }

    #[test]
    fn time_scales_with_macs() {
        let e = Eyeriss::default();
        let g = zoo::alexnet_conv_layers()[2].1;
        let g2 = g.with_kernels(g.kernels() * 2).unwrap();
        let t1 = e.layer_time(&g).as_secs_f64();
        let t2 = e.layer_time(&g2).as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 0.05);
    }

    #[test]
    fn energy_uses_chip_power() {
        let e = Eyeriss::default();
        let g = zoo::alexnet_conv_layers()[0].1;
        let j = e.layer_energy_j(&g);
        assert!(j > 0.0);
        assert!((j / e.layer_time(&g).as_secs_f64() - 0.278).abs() < 1e-9);
    }
}
