//! YodaNN-like binary-weight accelerator model.
//!
//! YodaNN (Andri, Cavigelli, Rossi, Benini — ISVLSI 2016) trades weight
//! precision for throughput: binary weights turn multipliers into sign
//! flips, letting a small UMC-65 core stream a 32×32 sum-of-products array
//! at up to 480 MHz and reach ~1.5 TOp/s peak. Per MAC it is roughly an
//! order of magnitude faster than Eyeriss, which is exactly how it sits in
//! the paper's Figure 6.

use crate::model::AcceleratorModel;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// YodaNN-like accelerator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YodaNn {
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Parallel sum-of-product units (MACs per cycle at full utilisation).
    pub macs_per_cycle: u64,
    /// Supported kernel size of the hardware window (7×7 in the chip);
    /// layers with other kernel sizes pay a padding penalty.
    pub native_kernel: usize,
    /// Fixed mapping efficiency in (0, 1].
    pub efficiency: f64,
    /// Average core power, watts (chip: ~153 mW at nominal voltage).
    pub power_w: f64,
}

impl Default for YodaNn {
    fn default() -> Self {
        YodaNn {
            clock_hz: 480e6,
            macs_per_cycle: 32 * 32,
            native_kernel: 7,
            efficiency: 0.75,
            power_w: 0.153,
        }
    }
}

impl YodaNn {
    /// Window utilisation: the fixed 7×7 datapath computes any m ≤ 7 kernel
    /// but only m²/49 of its adders contribute.
    #[must_use]
    pub fn window_utilization(&self, g: &ConvGeometry) -> f64 {
        let m = g.kernel_side().min(self.native_kernel);
        (m * m) as f64 / (self.native_kernel * self.native_kernel) as f64
    }

    /// Cycles for a layer.
    #[must_use]
    pub fn layer_cycles(&self, g: &ConvGeometry) -> u64 {
        let effective = self.macs_per_cycle as f64 * self.window_utilization(g) * self.efficiency;
        (g.macs() as f64 / effective).ceil() as u64
    }
}

impl AcceleratorModel for YodaNn {
    fn name(&self) -> &str {
        "yodann"
    }

    fn layer_time(&self, g: &ConvGeometry) -> SimTime {
        SimTime::from_secs_f64(self.layer_cycles(g) as f64 / self.clock_hz)
    }

    fn average_power_w(&self) -> f64 {
        self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eyeriss::Eyeriss;
    use pcnna_cnn::zoo;

    #[test]
    fn faster_than_eyeriss_on_every_alexnet_layer() {
        let y = YodaNn::default();
        let e = Eyeriss::default();
        for (name, g) in zoo::alexnet_conv_layers() {
            assert!(
                y.layer_time(&g) < e.layer_time(&g),
                "{name}: YodaNN should beat Eyeriss"
            );
        }
    }

    #[test]
    fn alexnet_layers_are_sub_millisecond_to_millisecond() {
        let y = YodaNn::default();
        for (name, g) in zoo::alexnet_conv_layers() {
            let t = y.layer_time(&g).as_ms_f64();
            assert!((0.05..5.0).contains(&t), "{name}: {t} ms");
        }
    }

    #[test]
    fn window_utilization_penalises_small_kernels() {
        let y = YodaNn::default();
        let g3 = zoo::alexnet_conv_layers()[2].1; // 3x3
        let g5 = zoo::alexnet_conv_layers()[1].1; // 5x5
        assert!(y.window_utilization(&g3) < y.window_utilization(&g5));
        assert!((y.window_utilization(&g3) - 9.0 / 49.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_larger_than_native_clamps() {
        let y = YodaNn::default();
        let g11 = zoo::alexnet_conv_layers()[0].1; // 11x11
        assert!((y.window_utilization(&g11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn peak_throughput_is_terascale() {
        // 1024 MACs × 480 MHz ≈ 0.49 TMAC/s ≈ 1 TOp/s — the chip's claim.
        let y = YodaNn::default();
        let peak_ops = 2.0 * y.macs_per_cycle as f64 * y.clock_hz;
        assert!(peak_ops > 0.9e12);
    }
}
