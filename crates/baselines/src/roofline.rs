//! Generic roofline baseline.
//!
//! A catch-all electronic engine characterised only by peak compute and
//! memory bandwidth — useful in the design-space example to ask "how fast
//! would *any* electronic engine with X TOp/s and Y GB/s be on this layer?"

use crate::model::AcceleratorModel;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// Peak-compute + bandwidth roofline engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Engine label.
    pub label: &'static str,
    /// Peak MACs per second.
    pub peak_macs_per_s: f64,
    /// Memory bandwidth, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Bytes per weight/activation value.
    pub bytes_per_value: u64,
    /// Average power, watts.
    pub power_w: f64,
}

impl Roofline {
    /// A desktop-GPU-class roofline (10 TMAC/s, 500 GB/s).
    #[must_use]
    pub fn gpu_class() -> Self {
        Roofline {
            label: "gpu-roofline",
            peak_macs_per_s: 10e12,
            bandwidth_bytes_per_s: 500e9,
            bytes_per_value: 2,
            power_w: 250.0,
        }
    }

    /// A mobile-NPU-class roofline (1 TMAC/s, 25 GB/s).
    #[must_use]
    pub fn npu_class() -> Self {
        Roofline {
            label: "npu-roofline",
            peak_macs_per_s: 1e12,
            bandwidth_bytes_per_s: 25e9,
            bytes_per_value: 2,
            power_w: 5.0,
        }
    }

    /// Bytes a layer must move at minimum: inputs + weights + outputs once.
    #[must_use]
    pub fn layer_bytes(&self, g: &ConvGeometry) -> u64 {
        (g.n_input() + g.weight_count() + g.n_output()) * self.bytes_per_value
    }

    /// Compute-bound time.
    #[must_use]
    pub fn compute_time(&self, g: &ConvGeometry) -> SimTime {
        SimTime::from_secs_f64(g.macs() as f64 / self.peak_macs_per_s)
    }

    /// Memory-bound time.
    #[must_use]
    pub fn memory_time(&self, g: &ConvGeometry) -> SimTime {
        SimTime::from_secs_f64(self.layer_bytes(g) as f64 / self.bandwidth_bytes_per_s)
    }
}

impl AcceleratorModel for Roofline {
    fn name(&self) -> &str {
        self.label
    }

    fn layer_time(&self, g: &ConvGeometry) -> SimTime {
        self.compute_time(g).max(self.memory_time(g))
    }

    fn average_power_w(&self) -> f64 {
        self.power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    #[test]
    fn layer_time_is_max_of_roofs() {
        let r = Roofline::gpu_class();
        for (_, g) in zoo::alexnet_conv_layers() {
            let t = r.layer_time(&g);
            assert!(t >= r.compute_time(&g));
            assert!(t >= r.memory_time(&g));
        }
    }

    #[test]
    fn conv_layers_are_compute_bound_on_gpu() {
        // Dense conv layers have high arithmetic intensity.
        let r = Roofline::gpu_class();
        for (name, g) in zoo::alexnet_conv_layers() {
            assert!(
                r.compute_time(&g) >= r.memory_time(&g),
                "{name} should be compute-bound"
            );
        }
    }

    #[test]
    fn npu_is_slower_than_gpu() {
        let gpu = Roofline::gpu_class();
        let npu = Roofline::npu_class();
        let g = zoo::alexnet_conv_layers()[1].1;
        assert!(npu.layer_time(&g) > gpu.layer_time(&g));
    }

    #[test]
    fn bytes_accounting() {
        let r = Roofline::gpu_class();
        let g = pcnna_cnn::geometry::ConvGeometry::new(8, 3, 0, 1, 2, 4).unwrap();
        let expect = (g.n_input() + g.weight_count() + g.n_output()) * 2;
        assert_eq!(r.layer_bytes(&g), expect);
    }
}
