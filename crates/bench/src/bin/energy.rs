//! Energy harness (reproduction extension): prices PCNNA's per-layer power
//! and energy (lasers, heaters, modulators, converters, DRAM) next to the
//! Eyeriss-like and YodaNN-like baselines — the paper claims a power
//! advantage qualitatively; this quantifies where it does and does not hold.

use pcnna_baselines::{AcceleratorModel, Eyeriss, YodaNn};
use pcnna_cnn::zoo;
use pcnna_core::config::PcnnaConfig;
use pcnna_core::power::{PowerAssumptions, PowerModel};

fn main() {
    let layers = zoo::alexnet_conv_layers();
    let model = PowerModel::new(PcnnaConfig::default(), PowerAssumptions::default())
        .expect("default config is valid");
    let eyeriss = Eyeriss::default();
    let yodann = YodaNn::default();

    println!("== PCNNA per-layer power breakdown (Filtered allocation) ==");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "layer", "lasers(W)", "heaters(W)", "elec(W)", "total(W)", "dominant"
    );
    let rows = model.network_power(&layers).expect("alexnet fits");
    for p in &rows {
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12}",
            p.name,
            p.photonic.lasers_w,
            p.photonic.heaters_w,
            p.electronic_w,
            p.total_w,
            p.photonic.dominant().0
        );
    }
    println!();

    println!("== energy per layer execution (µJ) and efficiency ==");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>16}",
        "layer", "PCNNA", "Eyeriss", "YodaNN", "PCNNA GMAC/J"
    );
    for (p, (name, g)) in rows.iter().zip(&layers) {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>16.1}",
            name,
            p.energy.total_j() * 1e6,
            eyeriss.layer_energy_j(g) * 1e6,
            yodann.layer_energy_j(g) * 1e6,
            p.macs_per_joule / 1e9,
        );
    }
    println!();
    println!("caveat (see EXPERIMENTS.md 'Power reality check'): under verbatim");
    println!("eq. (5) allocation, deep layers carry >1M rings whose heater budget");
    println!("alone reaches ~100 W — static photonic power, not converter energy,");
    println!("decides whether PCNNA's energy story holds.");
}
