//! Closed-loop control bench: SLO-attainment-per-watt with and without
//! the fleet control plane, across diurnal/MMPP arrivals and the four
//! chaos scenarios — run with `cargo run --release --bin control`.
//!
//! Flags: `--smoke` shrinks the fleet/horizon to CI size, `--seed <n>`
//! overrides the scenario seed, and `--check` turns the improvement
//! claims into hard exit-code gates (CI's control-smoke job): the
//! controlled fleet must beat the uncontrolled baseline on
//! SLO-per-watt under the diurnal arrivals (both policies) and under
//! at least one chaos scenario.
//!
//! Determinism: the whole measurement pass runs **twice** in-process
//! and the two JSON payloads are asserted byte-identical before
//! anything is written — same seed + same policy ⇒ byte-identical
//! `BENCH_control.json` (no wall-clock fields). The pass also asserts
//! the controller-on-shards=1 oracle: a `Hold` policy at full
//! provision must reproduce `simulate()` bit for bit (the controlled
//! driver runs the whole-fleet single cell — see the `control` module
//! docs for the consistency model).

use pcnna_bench::report::{assert_books, chaos_config, json_f, serving_classes, write_artifact};
use pcnna_core::PcnnaConfig;
use pcnna_fleet::prelude::*;
use std::time::Instant;

struct Args {
    smoke: bool,
    check: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        check: false,
        seed: 7,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--check" => args.check = true,
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other:?} (known: --smoke, --check, --seed <n>)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The served mix: the scenarios-bin fleet with a 10:1 diurnal swing
/// (and an MMPP twin), sized so the peak needs most of the fleet while
/// the trough leaves most of it idle — the regime autoscaling exists
/// for.
fn base_scenario(smoke: bool, seed: u64) -> FleetScenario {
    let (fleet, peak_rps, horizon_s, period_s) = if smoke {
        (6, 60_000.0, 0.08, 0.08)
    } else {
        (8, 90_000.0, 0.4, 0.2)
    };
    FleetScenario {
        classes: serving_classes(),
        arrival: ArrivalProcess::Diurnal {
            base_rps: 0.1 * peak_rps,
            peak_rps,
            period_s,
        },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); fleet],
        max_batch: 32,
        queue_capacity: 100_000,
        horizon_s,
        seed,
        ..FleetScenario::default()
    }
}

fn mmpp_arrival(smoke: bool) -> ArrivalProcess {
    let peak_rps = if smoke { 60_000.0 } else { 90_000.0 };
    ArrivalProcess::Mmpp {
        low_rps: 0.1 * peak_rps,
        high_rps: peak_rps,
        dwell_low_s: if smoke { 0.02 } else { 0.06 },
        dwell_high_s: if smoke { 0.01 } else { 0.03 },
    }
}

fn control_config() -> ControlConfig {
    ControlConfig {
        window_s: 0.002,
        boot_s: 0.004,
        min_active: 1,
        initial_active: usize::MAX,
        max_step: 4,
        idle_power_w: 2.0,
    }
}

/// One measured (arrival × policy) cell.
struct Row {
    arrival: &'static str,
    policy: String,
    offered: u64,
    completed: u64,
    shed: u64,
    throttled: u64,
    unserved: u64,
    scale_ups: u64,
    scale_downs: u64,
    slo_attainment: f64,
    p99_ms: f64,
    mean_active: f64,
    power: PowerMetrics,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "{{\"arrival\":\"{}\",\"policy\":\"{}\",\"offered\":{},\"completed\":{},\
             \"shed\":{},\"throttled\":{},\"unserved\":{},\"scale_ups\":{},\
             \"scale_downs\":{},\"slo_attainment\":{},\"p99_ms\":{},\"goodput\":{},\
             \"mean_active\":{},\"mean_power_w\":{},\"slo_per_watt\":{}}}",
            self.arrival,
            self.policy,
            self.offered,
            self.completed,
            self.shed,
            self.throttled,
            self.unserved,
            self.scale_ups,
            self.scale_downs,
            json_f(self.slo_attainment),
            json_f(self.p99_ms),
            json_f(self.power.goodput),
            json_f(self.mean_active),
            json_f(self.power.mean_power_w),
            json_f(self.power.slo_per_watt),
        )
    }
}

fn open_loop_row(arrival: &'static str, scenario: &FleetScenario, cfg: &ControlConfig) -> Row {
    let report = scenario.simulate().expect("scenario is valid");
    assert_books(&report, arrival);
    let power = uncontrolled_power_metrics(&report, scenario.instances.len(), cfg.idle_power_w);
    Row {
        arrival,
        policy: "none".to_owned(),
        offered: report.offered,
        completed: report.completed,
        shed: 0,
        throttled: 0,
        unserved: report.resilience.unserved,
        scale_ups: 0,
        scale_downs: 0,
        slo_attainment: report.slo_attainment,
        p99_ms: 1e3 * report.latency.p99_s,
        mean_active: scenario.instances.len() as f64,
        power,
    }
}

fn controlled_row(
    arrival: &'static str,
    scenario: &FleetScenario,
    cfg: &ControlConfig,
    policy: &mut dyn ControlPolicy,
) -> Row {
    let r = scenario
        .simulate_controlled(cfg, policy)
        .expect("scenario is valid");
    let label = format!("{arrival}/{}", r.policy);
    assert_books(&r.report, &label);
    let mean_active = if r.report.makespan_s > 0.0 {
        r.power.powered_instance_s / r.report.makespan_s
    } else {
        0.0
    };
    Row {
        arrival,
        policy: r.policy.clone(),
        offered: r.report.offered,
        completed: r.report.completed,
        shed: r.report.resilience.shed,
        throttled: r.throttled,
        unserved: r.report.resilience.unserved,
        scale_ups: r.scale_ups,
        scale_downs: r.scale_downs,
        slo_attainment: r.report.slo_attainment,
        p99_ms: 1e3 * r.report.latency.p99_s,
        mean_active,
        power: r.power,
    }
}

/// One full measurement pass: every row, in a fixed order, as the
/// final JSON payload. Runs twice for the byte-identity assert.
fn measure(args: &Args) -> (String, Vec<Row>) {
    let base = base_scenario(args.smoke, args.seed);
    let cfg = control_config();

    // Controller-on-shards=1 oracle: a non-acting controller at full
    // provision must reproduce the open-loop engine bit for bit.
    let oracle = base.simulate().expect("scenario is valid");
    let held = base
        .simulate_controlled(&cfg, &mut Hold)
        .expect("scenario is valid");
    assert_eq!(
        held.report, oracle,
        "Hold at full provision must reproduce simulate() exactly"
    );

    let mmpp = FleetScenario {
        arrival: mmpp_arrival(args.smoke),
        ..base.clone()
    };
    let mut rows = Vec::new();
    for (name, scenario) in [("diurnal", &base), ("mmpp", &mmpp)] {
        rows.push(open_loop_row(name, scenario, &cfg));
        rows.push(controlled_row(
            name,
            scenario,
            &cfg,
            &mut ReactivePolicy::new(),
        ));
        rows.push(controlled_row(
            name,
            scenario,
            &cfg,
            &mut PredictivePolicy::new(),
        ));
    }

    // Chaos × control: the four named degradation scenarios on the
    // diurnal workload, uncontrolled vs reactive.
    let chaos_cfg = chaos_config(args.smoke, args.seed);
    let mut chaos_rows = Vec::new();
    for kind in ChaosKind::ALL {
        let scenario = FleetScenario {
            faults: chaos_timeline(kind, &base.instances, base.horizon_s, &chaos_cfg),
            ..base.clone()
        };
        chaos_rows.push((kind.name(), open_loop_row("diurnal", &scenario, &cfg)));
        chaos_rows.push((
            kind.name(),
            controlled_row("diurnal", &scenario, &cfg, &mut ReactivePolicy::new()),
        ));
    }

    let row_json: Vec<String> = rows.iter().map(Row::json).collect();
    let chaos_json: Vec<String> = chaos_rows
        .iter()
        .map(|(name, row)| format!("{{\"scenario\":\"{}\",\"row\":{}}}", name, row.json()))
        .collect();
    let json = format!(
        "{{\"bench\":\"control\",\"mode\":\"{}\",\"seed\":{},\"fleet\":{},\
         \"peak_rps\":{},\"horizon_s\":{},\"window_ms\":{},\"boot_ms\":{},\
         \"idle_power_w\":{},\"oracle\":\"hold-equals-simulate\",\
         \"rows\":[{}],\"chaos\":[{}]}}\n",
        if args.smoke { "smoke" } else { "full" },
        args.seed,
        base.instances.len(),
        json_f(base.arrival.peak_rate_rps()),
        json_f(base.horizon_s),
        json_f(1e3 * cfg.window_s),
        json_f(1e3 * cfg.boot_s),
        json_f(cfg.idle_power_w),
        row_json.join(","),
        chaos_json.join(","),
    );
    rows.extend(chaos_rows.into_iter().map(|(_, r)| r));
    (json, rows)
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    println!(
        "control bench: closed-loop vs open-loop, seed {} ({} mode)",
        args.seed,
        if args.smoke { "smoke" } else { "full" },
    );

    // In-run double-simulate byte-identity: the entire pass, twice.
    let (json, rows) = measure(&args);
    let (json_again, _) = measure(&args);
    assert_eq!(
        json, json_again,
        "two in-process passes must emit byte-identical payloads"
    );

    println!(
        "  {:<8} {:<22} {:>9} {:>8} {:>7} {:>7} {:>8} {:>8} {:>8} {:>9}",
        "arrival",
        "policy",
        "offered",
        "SLO %",
        "shed",
        "thrtl",
        "avg inst",
        "watts",
        "p99 ms",
        "SLO/W"
    );
    for r in &rows {
        println!(
            "  {:<8} {:<22} {:>9} {:>8.2} {:>7} {:>7} {:>8.2} {:>8.1} {:>8.3} {:>9.5}",
            r.arrival,
            r.policy,
            r.offered,
            100.0 * r.slo_attainment,
            r.shed,
            r.throttled,
            r.mean_active,
            r.power.mean_power_w,
            r.p99_ms,
            r.power.slo_per_watt,
        );
    }

    // The improvement claims. rows layout: per arrival, [none,
    // reactive, predictive]; then chaos pairs [none, reactive] × 4.
    let slo_w = |arrival: &str, policy: &str| {
        rows.iter()
            .find(|r| r.arrival == arrival && r.policy == policy)
            .map(|r| r.power.slo_per_watt)
            .expect("row exists")
    };
    let diurnal_reactive_gain = slo_w("diurnal", "reactive") / slo_w("diurnal", "none");
    let diurnal_predictive_gain = slo_w("diurnal", "predictive") / slo_w("diurnal", "none");
    let mmpp_reactive_gain = slo_w("mmpp", "reactive") / slo_w("mmpp", "none");
    // chaos rows live at the tail: 4 kinds × (none, reactive)
    let chaos_pairs: Vec<(f64, f64)> = rows[6..]
        .chunks(2)
        .map(|pair| (pair[0].power.slo_per_watt, pair[1].power.slo_per_watt))
        .collect();
    let chaos_improved = chaos_pairs.iter().filter(|(none, ctl)| ctl > none).count();
    println!();
    println!(
        "SLO-per-watt gains: diurnal reactive {diurnal_reactive_gain:.2}x, \
         predictive {diurnal_predictive_gain:.2}x; mmpp reactive {mmpp_reactive_gain:.2}x; \
         chaos improved {chaos_improved}/4"
    );

    write_artifact("BENCH_control.json", &json);

    if args.check {
        let mut failed = false;
        let mut gate = |label: &str, ok: bool| {
            println!("  gate {:<44} {}", label, if ok { "PASS" } else { "FAIL" });
            failed |= !ok;
        };
        gate(
            "diurnal: reactive SLO/W beats no-control",
            diurnal_reactive_gain > 1.0,
        );
        gate(
            "diurnal: predictive SLO/W beats no-control",
            diurnal_predictive_gain > 1.0,
        );
        gate(
            "chaos: control improves ≥ 1 of 4 scenarios",
            chaos_improved >= 1,
        );
        if failed {
            eprintln!("control gates FAILED");
            std::process::exit(1);
        }
        println!("all control gates passed");
    }
    println!("control bench done in {:.2} s", t0.elapsed().as_secs_f64());
}
