//! Multi-network analysis (extension): the Figure 5/6-style evaluation the
//! paper runs on AlexNet, extended to the other networks it cites —
//! GoogLeNet (paper ref. 13), ResNet (paper ref. 1) — plus VGG-16. Layers whose
//! receptive fields exceed the paper's 8192-word SRAM are tiled via
//! `core::tiling` instead of rejected.

use pcnna_baselines::{AcceleratorModel, Eyeriss};
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::zoo;
use pcnna_core::accel::Pcnna;
use pcnna_core::config::PcnnaConfig;
use pcnna_core::tiling::{TileConstraints, TilingPlanner};
use pcnna_electronics::time::SimTime;

fn main() {
    let config = PcnnaConfig::default();
    let accel = Pcnna::new(config).expect("default config is valid");
    let planner = TilingPlanner::new(config).expect("default config is valid");
    let constraints = TileConstraints::from_config(&config);
    let eyeriss = Eyeriss::default();

    for (net, layers) in [
        ("AlexNet", zoo::alexnet_conv_layers()),
        ("GoogLeNet stem + 3a", zoo::googlenet_stem_conv_layers()),
        ("ResNet-18", zoo::resnet18_conv_layers()),
        ("VGG-16", zoo::vgg16_conv_layers()),
    ] {
        println!("== {net} ==");
        let mut pcnna_total = SimTime::ZERO;
        let mut eyeriss_total = SimTime::ZERO;
        let mut tiled_layers = 0usize;
        for (name, g) in &layers {
            let time = match accel.analyze_conv_layers(&[(name, *g)]) {
                Ok(report) => report.layers[0].full_system_time,
                Err(_) => {
                    // receptive field exceeds the SRAM: tile the channels
                    tiled_layers += 1;
                    planner
                        .plan(name, g, &constraints)
                        .expect("tiling always succeeds for m*m <= sram")
                        .full_system_time
                }
            };
            pcnna_total += time;
            eyeriss_total += eyeriss.layer_time(g);
        }
        let macs: u64 = layers.iter().map(|(_, g)| g.macs()).sum();
        println!("  conv layers        : {}", layers.len());
        println!("  conv MACs          : {:.2} G", macs as f64 / 1e9);
        println!("  tiled (SRAM)       : {tiled_layers}");
        println!("  PCNNA(O+E) total   : {pcnna_total}");
        println!("  Eyeriss-like total : {eyeriss_total}");
        println!(
            "  speedup            : {:.0}x",
            eyeriss_total.ratio(pcnna_total)
        );
        println!();
    }

    // FC layers mapped as degenerate convolutions (extension): AlexNet fc6
    // needs 9216 carriers — tiling handles what the SRAM cannot.
    println!("== AlexNet FC layers as degenerate convolutions ==");
    for (name, inputs, outputs) in [
        ("fc6", 9216usize, 4096usize),
        ("fc7", 4096, 4096),
        ("fc8", 4096, 1000),
    ] {
        let g = ConvGeometry::for_fully_connected(inputs, outputs).expect("fc dims are valid");
        let plan = planner
            .plan(name, &g, &constraints)
            .expect("fc tiling succeeds");
        println!(
            "  {name}: {} inputs -> {} tiles of {} channels, {} per pass",
            inputs, plan.tiles, plan.channels_per_tile, plan.full_system_time
        );
    }
}
