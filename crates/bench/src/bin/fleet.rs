//! Fleet serving sweep (beyond the paper): arrival process × scheduling
//! policy on a 4-instance PCNNA fleet serving AlexNet+LeNet mixed traffic
//! — run with `cargo run --release -p pcnna-bench --bin fleet`.
//!
//! Emits one row per (arrival, policy) cell: throughput, tail latency,
//! SLO attainment, weight reloads, and energy per request, plus a
//! load-scaling sweep and a seed-replicated tail-stability check.

use pcnna_core::PcnnaConfig;
use pcnna_fleet::metrics::mean_std;
use pcnna_fleet::prelude::*;

fn base_scenario() -> FleetScenario {
    FleetScenario {
        classes: vec![
            NetworkClass::alexnet(0.004, 1.0),
            NetworkClass::lenet5(0.0005, 3.0),
        ],
        instances: vec![PcnnaConfig::default(); 4],
        queue_capacity: 50_000,
        horizon_s: 2.0,
        seed: 42,
        ..FleetScenario::default()
    }
}

fn main() {
    let arrivals: [(&str, ArrivalProcess); 3] = [
        ("poisson", ArrivalProcess::Poisson { rate_rps: 40_000.0 }),
        (
            "mmpp   ",
            ArrivalProcess::Mmpp {
                low_rps: 10_000.0,
                high_rps: 90_000.0,
                dwell_low_s: 0.2,
                dwell_high_s: 0.1,
            },
        ),
        (
            "diurnal",
            ArrivalProcess::Diurnal {
                base_rps: 10_000.0,
                peak_rps: 70_000.0,
                period_s: 1.0,
            },
        ),
    ];
    let policies = [
        ("fifo    ", Policy::Fifo),
        ("edf     ", Policy::EarliestDeadlineFirst),
        ("affinity", Policy::NetworkAffinity),
    ];

    println!("sweep 1 — arrival × policy (4 instances, AlexNet + 3×LeNet mix)");
    println!(
        "  {:<8} {:<9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>10}",
        "arrival", "policy", "thpt r/s", "p99 ms", "p999 ms", "SLO %", "reloads", "mJ/req"
    );
    for (alabel, arrival) in arrivals {
        for (plabel, policy) in policies {
            let r = FleetScenario {
                arrival,
                policy,
                ..base_scenario()
            }
            .simulate()
            .expect("scenario is valid");
            println!(
                "  {:<8} {:<9} {:>9.0} {:>9.3} {:>9.3} {:>8.2} {:>8} {:>10.3}",
                alabel,
                plabel,
                r.throughput_rps,
                1e3 * r.latency.p99_s,
                1e3 * r.latency.p999_s,
                100.0 * r.slo_attainment,
                r.weight_reloads,
                1e3 * r.energy_per_request_j,
            );
        }
    }

    println!();
    println!("sweep 2 — load scaling under network affinity (Poisson)");
    println!(
        "  {:<10} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "rate r/s", "thpt r/s", "util %", "p50 ms", "p99 ms", "SLO %"
    );
    for rate in [5_000.0, 15_000.0, 30_000.0, 45_000.0, 60_000.0, 80_000.0] {
        let r = FleetScenario {
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            policy: Policy::NetworkAffinity,
            ..base_scenario()
        }
        .simulate()
        .expect("scenario is valid");
        println!(
            "  {:<10.0} {:>9.0} {:>8.1} {:>9.3} {:>9.3} {:>8.2}",
            rate,
            r.throughput_rps,
            100.0 * r.utilization,
            1e3 * r.latency.p50_s,
            1e3 * r.latency.p99_s,
            100.0 * r.slo_attainment,
        );
    }

    println!();
    println!("sweep 3 — tail stability across 8 seed replicas (parallel)");
    let scenario = FleetScenario {
        arrival: ArrivalProcess::Mmpp {
            low_rps: 10_000.0,
            high_rps: 90_000.0,
            dwell_low_s: 0.2,
            dwell_high_s: 0.1,
        },
        policy: Policy::NetworkAffinity,
        ..base_scenario()
    };
    let seeds: Vec<u64> = (0..8).collect();
    let reports = par::simulate_replicated(&scenario, &seeds).expect("replicas run");
    let (thpt_m, thpt_s) = mean_std(&reports, |r| r.throughput_rps);
    let (p99_m, p99_s) = mean_std(&reports, |r| 1e3 * r.latency.p99_s);
    let (slo_m, slo_s) = mean_std(&reports, |r| 100.0 * r.slo_attainment);
    println!("  throughput  {thpt_m:>9.0} ± {thpt_s:<6.0} req/s");
    println!("  p99 latency {p99_m:>9.3} ± {p99_s:<6.3} ms");
    println!("  SLO         {slo_m:>9.2} ± {slo_s:<6.2} %");
}
