//! Chaos scenario matrix: replays the named degradation scenarios
//! (heat wave, laser aging, channel-loss burst, rolling recalibration)
//! against a serving fleet and reports resilience figures next to a
//! fault-free baseline — run with `cargo run --release --bin scenarios`.
//!
//! Flags: `--smoke` shrinks the fleet/horizon to CI size,
//! `--scenario <name>` runs one named scenario (the CI matrix fans out
//! one job per name), `--seed <n>` overrides the chaos seed,
//! `--shards <n>` sets the shard-worker count (default 4),
//! `--file <path>` runs a declarative scenario file instead of the
//! named matrix, `--fuzz <n>` runs a seeded generative fuzz campaign
//! of `n` scenarios against the full oracle suite (emitting
//! `BENCH_fuzz.json`; violations are shrunk into `tests/regressions/`
//! and fail the run), and `--emit-files <dir>` regenerates the
//! canonical committed scenario files under `scenarios/`.
//!
//! Every report is produced by the **sharded engine** and asserted
//! bit-identical against its `shards = 1` oracle (run twice) — the
//! two-layer determinism contract CI relies on: same seed ⇒ same
//! report, at any shard count. The emitted artifacts deliberately
//! carry **no wall-clock measurements**, so two runs of the same
//! invocation — *at any `--shards` value* — produce byte-identical
//! files (the acceptance check `diff`s them across shard counts and
//! re-runs). In smoke mode at the default seed, each matrix leg is
//! additionally re-run from its committed `scenarios/<name>.json` file
//! and the resulting record asserted byte-identical to the hard-coded
//! generator's — the DSL-equivalence proof of ISSUE 8.

use pcnna_bench::report::{
    assert_books, chaos_config, json_f, matrix_spec, serving_classes, write_artifact,
};
use pcnna_core::PcnnaConfig;
use pcnna_fleet::prelude::*;
use std::time::Instant;

struct Args {
    smoke: bool,
    only: Option<ChaosKind>,
    seed: u64,
    shards: usize,
    file: Option<String>,
    fuzz: Option<u64>,
    emit_files: Option<String>,
    shrink_demo: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        only: None,
        seed: 7,
        shards: 4,
        file: None,
        fuzz: None,
        emit_files: None,
        shrink_demo: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--scenario" => {
                let name = it.next().unwrap_or_default();
                match ChaosKind::from_name(&name) {
                    Some(kind) => args.only = Some(kind),
                    None => {
                        eprintln!(
                            "unknown scenario {name:?}; known: {}",
                            ChaosKind::ALL
                                .iter()
                                .map(|k| k.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--shards" => {
                args.shards = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shards needs an integer ≥ 1");
                    std::process::exit(2);
                });
            }
            "--file" => {
                args.file = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--file needs a path to a scenario JSON file");
                    std::process::exit(2);
                }));
            }
            "--fuzz" => {
                args.fuzz = Some(it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fuzz needs a scenario count ≥ 1");
                    std::process::exit(2);
                }));
            }
            "--emit-files" => {
                args.emit_files = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--emit-files needs a directory");
                    std::process::exit(2);
                }));
            }
            "--shrink-demo" => {
                args.shrink_demo = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--shrink-demo needs a directory");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown flag {other:?} (known: --smoke, --scenario <name>, \
                     --seed <n>, --shards <n>, --file <path>, --fuzz <n>, \
                     --emit-files <dir>, --shrink-demo <dir>)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The serving workload every scenario runs against: a mixed
/// AlexNet/LeNet fleet under tight SLOs, loaded to where degradation
/// visibly moves the needle without saturating the healthy baseline.
fn base_scenario(smoke: bool, seed: u64) -> FleetScenario {
    let (fleet, rate_rps, horizon_s) = if smoke {
        (4, 45_000.0, 0.05)
    } else {
        (6, 90_000.0, 0.5)
    };
    FleetScenario {
        classes: serving_classes(),
        arrival: ArrivalProcess::Poisson { rate_rps },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); fleet],
        max_batch: 32,
        queue_capacity: 100_000,
        horizon_s,
        seed,
        ..FleetScenario::default()
    }
}

/// One deterministic JSON record of a chaos run (no wall-clock fields).
fn record_for(name: &str, report: &FleetReport, baseline: &FleetReport) -> String {
    let r = &report.resilience;
    format!(
        "{{\"name\":\"{}\",\"offered\":{},\"completed\":{},\"rejected\":{},\
         \"slo_attainment\":{},\"baseline_slo\":{},\"p99_ms\":{},\
         \"availability\":{},\"failed_over\":{},\"recalibrations\":{},\
         \"hard_failures\":{},\"fault_events\":{},\"unserved\":{},\
         \"energy_per_request_mj\":{},\"deterministic\":true}}",
        name,
        report.offered,
        report.completed,
        report.rejected,
        json_f(report.slo_attainment),
        json_f(baseline.slo_attainment),
        json_f(1e3 * report.latency.p99_s),
        json_f(r.availability),
        r.failed_over,
        r.recalibrations,
        r.hard_failures,
        r.fault_events,
        r.unserved,
        json_f(1e3 * report.energy_per_request_j),
    )
}

/// Simulates at the requested shard count and asserts the shards=1
/// oracle reproduces it bit-for-bit.
fn run_checked(scenario: &FleetScenario, shards: usize, label: &str) -> FleetReport {
    let report = scenario
        .simulate_sharded(shards, shards)
        .expect("scenario is valid");
    let oracle = scenario.simulate_sharded(1, 1).expect("scenario is valid");
    assert_eq!(
        report, oracle,
        "{label}: shards={shards} must reproduce the shards=1 oracle bit-for-bit"
    );
    report
}

/// The committed demo scenario the `fault_tolerance` example loads: the
/// smoke fleet under a longer heat wave with a 5 ms re-lock window.
fn demo_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "heat-wave-demo".to_owned(),
        horizon_s: 0.25,
        faults: FaultSpec::Chaos {
            kind: ChaosKind::HeatWave,
            recalibration_s: 5e-3,
            seed: 7,
        },
        ..matrix_spec(ChaosKind::HeatWave, true, 7)
    }
}

/// Regenerates the canonical committed scenario files.
fn emit_files(dir: &str) {
    std::fs::create_dir_all(dir).expect("create scenario dir");
    for kind in ChaosKind::ALL {
        let spec = matrix_spec(kind, true, 7);
        let path = format!("{dir}/{}.json", kind.name());
        std::fs::write(&path, spec.render()).expect("write scenario file");
        println!("wrote {path}");
    }
    let demo = demo_spec();
    let path = format!("{dir}/{}.json", demo.name);
    std::fs::write(&path, demo.render()).expect("write scenario file");
    println!("wrote {path}");
}

/// Runs one declarative scenario file: open loop against a fault-free
/// baseline (plus the controlled run when the file closes the loop),
/// with the same determinism asserts as the matrix.
fn run_file(path: &str, shards: usize) {
    let spec = ScenarioSpec::load(path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let compiled = spec.compile().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let scenario = &compiled.scenario;
    println!(
        "scenario file {}: {} class(es), {} instance(s), {:.0} req/s mean for {} ms, \
         {} fault event(s)",
        spec.name,
        scenario.classes.len(),
        scenario.instances.len(),
        scenario.arrival.mean_rate_rps(),
        (1e3 * scenario.horizon_s) as u64,
        scenario.faults.len(),
    );
    let baseline_scenario = FleetScenario {
        faults: FaultTimeline::new(),
        ..scenario.clone()
    };
    let baseline = run_checked(&baseline_scenario, shards, "baseline");
    let report = run_checked(scenario, shards, &spec.name);
    assert_books(&report, &spec.name);
    let r = &report.resilience;
    println!(
        "  SLO {:.2}% (baseline {:.2}%)  p99 {:.3} ms  availability {:.2}%  \
         {} failed over, {} recals, {} unserved",
        100.0 * report.slo_attainment,
        100.0 * baseline.slo_attainment,
        1e3 * report.latency.p99_s,
        100.0 * r.availability,
        r.failed_over,
        r.recalibrations,
        r.unserved,
    );
    if let Some(control) = &compiled.control {
        let mut policy = control.policy.build();
        let controlled = scenario
            .simulate_controlled(&control.config, policy.as_mut())
            .expect("scenario is valid");
        assert_books(&controlled.report, &format!("{} (controlled)", spec.name));
        println!(
            "  controlled ({}): SLO {:.2}%  {:.2} W mean  {} scale-ups, {} scale-downs, \
             {} shed",
            controlled.policy,
            100.0 * controlled.report.slo_attainment,
            controlled.power.mean_power_w,
            controlled.scale_ups,
            controlled.scale_downs,
            controlled.report.resilience.shed,
        );
    }
    let json = format!(
        "{{\"bench\":\"scenarios\",\"mode\":\"file\",\"seed\":{},\"instances\":{},\
         \"rate_rps\":{},\"horizon_s\":{},\"scenarios\":[{}]}}\n",
        scenario.seed,
        scenario.instances.len(),
        json_f(scenario.arrival.mean_rate_rps()),
        json_f(scenario.horizon_s),
        record_for(&spec.name, &report, &baseline),
    );
    write_artifact("BENCH_scenarios.json", &json);
}

/// Runs a seeded generative fuzz campaign against the full oracle
/// suite, shrinking any violation into `tests/regressions/` and
/// emitting the deterministic `BENCH_fuzz.json` summary.
fn run_fuzz(count: u64, seed: u64) {
    let t0 = Instant::now();
    let cfg = CampaignConfig {
        count,
        seed,
        regressions_dir: Some("tests/regressions".into()),
    };
    let oracles = default_oracles();
    println!(
        "fuzz campaign: {count} scenario(s), seed {seed}, oracles [{}]",
        oracles
            .iter()
            .map(|o| o.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let summary = run_campaign(&cfg, &oracles).expect("campaign I/O");
    let mut records = Vec::with_capacity(summary.outcomes.len());
    for o in &summary.outcomes {
        if !o.violations.is_empty() {
            eprintln!("VIOLATION in {}:", o.name);
            for v in &o.violations {
                eprintln!("  {v}");
            }
            if let Some(min) = &o.shrunk {
                let events = match &min.faults {
                    FaultSpec::Events(e) => e.len(),
                    FaultSpec::Chaos { .. } => usize::MAX,
                };
                eprintln!(
                    "  shrunk to {} fault event(s) → tests/regressions/{}.json",
                    events, min.name
                );
            }
        }
        let violations = o
            .violations
            .iter()
            .map(|v| format!("{{\"oracle\":\"{}\"}}", v.oracle))
            .collect::<Vec<_>>()
            .join(",");
        records.push(format!(
            "{{\"name\":\"{}\",\"fault_events\":{},\"offered\":{},\"completed\":{},\
             \"shed\":{},\"unserved\":{},\"violations\":[{}]}}",
            o.name, o.fault_events, o.offered, o.completed, o.shed, o.unserved, violations,
        ));
    }
    let total_offered: u64 = summary.outcomes.iter().map(|o| o.offered).sum();
    let total_completed: u64 = summary.outcomes.iter().map(|o| o.completed).sum();
    let json = format!(
        "{{\"bench\":\"fuzz\",\"seed\":{},\"count\":{},\"oracles\":[{}],\
         \"violations\":{},\"offered\":{},\"completed\":{},\"scenarios\":[{}]}}\n",
        summary.seed,
        summary.count,
        summary
            .oracles
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(","),
        summary.violations(),
        total_offered,
        total_completed,
        records.join(",")
    );
    write_artifact("BENCH_fuzz.json", &json);
    println!(
        "{} scenario(s), {} request(s) offered, {} violation(s); campaign done in {:.2} s",
        summary.count,
        total_offered,
        summary.violations(),
        t0.elapsed().as_secs_f64()
    );
    if !summary.is_green() {
        eprintln!("fuzz campaign found oracle violations — see tests/regressions/");
        std::process::exit(1);
    }
}

/// The shrinker walkthrough (and the regeneration path for the seed
/// regression file): inject an intentionally breakable oracle — "the
/// fleet never hard-fails" — find the first generated scenario that
/// violates it, and minimize that scenario into `dir`.
fn shrink_demo(dir: &str, seed: u64) {
    struct NoHardFailures;
    impl Oracle for NoHardFailures {
        fn name(&self) -> &'static str {
            "no-hard-failures"
        }
        fn check(&self, run: &RunArtifacts<'_>) -> Result<(), String> {
            if run.sharded.resilience.hard_failures > 0 {
                Err(format!(
                    "{} hard failures",
                    run.sharded.resilience.hard_failures
                ))
            } else {
                Ok(())
            }
        }
    }
    let oracles: Vec<Box<dyn Oracle>> = vec![Box::new(NoHardFailures)];
    let generator = ScenarioGen::new(seed);
    let victim = (0..64)
        .map(|i| generator.generate(i))
        .find(|s| !run_and_check(s, &oracles).violations.is_empty())
        .expect("the sample space contains hard failures");
    println!(
        "injected oracle \"no-hard-failures\" violated by {} ({} fault events)",
        victim.name,
        match victim.compile() {
            Ok(c) => c.scenario.faults.len(),
            Err(_) => 0,
        }
    );
    let minimized = shrink(&victim, &oracles);
    let events = match &minimized.faults {
        FaultSpec::Events(e) => e.len(),
        FaultSpec::Chaos { .. } => unreachable!("shrinker materializes chaos"),
    };
    std::fs::create_dir_all(dir).expect("create regression dir");
    let path = format!("{dir}/{}.json", minimized.name);
    std::fs::write(&path, minimized.render()).expect("write regression file");
    println!(
        "minimized to {} fault event(s), {} class(es), {} instance(s) → wrote {path}",
        events,
        minimized.classes.len(),
        minimized.n_instances()
    );
    assert!(events <= 5, "shrinker left {events} events");
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.emit_files {
        emit_files(dir);
        return;
    }
    if let Some(dir) = &args.shrink_demo {
        shrink_demo(dir, args.seed);
        return;
    }
    if let Some(count) = args.fuzz {
        run_fuzz(count, args.seed);
        return;
    }
    if let Some(path) = &args.file {
        run_file(path, args.shards);
        return;
    }
    let t0 = Instant::now();
    let base = base_scenario(args.smoke, args.seed);
    let chaos_cfg = chaos_config(args.smoke, args.seed);
    let kinds: Vec<ChaosKind> = match args.only {
        Some(k) => vec![k],
        None => ChaosKind::ALL.to_vec(),
    };
    println!(
        "chaos matrix: {} scenario(s) × {} instances, {:.0} req/s for {} ms \
         (seed {}, {} mode, {} shard(s))",
        kinds.len(),
        base.instances.len(),
        base.arrival.mean_rate_rps(),
        (1e3 * base.horizon_s) as u64,
        args.seed,
        if args.smoke { "smoke" } else { "full" },
        args.shards,
    );

    let baseline = run_checked(&base, args.shards, "baseline");
    println!(
        "baseline (no faults): SLO {:.2}%  p99 {:.3} ms  {:.3} mJ/req  availability 100.00%",
        100.0 * baseline.slo_attainment,
        1e3 * baseline.latency.p99_s,
        1e3 * baseline.energy_per_request_j,
    );
    println!();
    println!(
        "  {:<22} {:>7} {:>7} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "scenario",
        "SLO %",
        "ΔSLO",
        "avail %",
        "p99 ms",
        "f.over",
        "recals",
        "fails",
        "unserved",
        "mJ/req"
    );

    // The committed scenario files encode the smoke matrix at seed 7;
    // under that invocation each leg is re-run from its file and must
    // byte-match the hard-coded generator's record.
    let check_files = args.smoke && args.seed == 7;
    let mut records = Vec::new();
    for kind in kinds {
        let scenario = FleetScenario {
            faults: chaos_timeline(kind, &base.instances, base.horizon_s, &chaos_cfg),
            ..base.clone()
        };
        let report = run_checked(&scenario, args.shards, kind.name());
        // Cross-run determinism: a fresh simulation of the same seed
        // (the oracle comparison already happened inside `run_checked`).
        let again = scenario
            .simulate_sharded(args.shards, args.shards)
            .expect("scenario is valid");
        assert_eq!(
            report,
            again,
            "{}: two runs of the same seed must produce identical reports",
            kind.name()
        );
        let r = &report.resilience;
        println!(
            "  {:<22} {:>7.2} {:>+7.2} {:>8.2} {:>8.3} {:>7} {:>7} {:>7} {:>9} {:>9.3}",
            kind.name(),
            100.0 * report.slo_attainment,
            100.0 * (report.slo_attainment - baseline.slo_attainment),
            100.0 * r.availability,
            1e3 * report.latency.p99_s,
            r.failed_over,
            r.recalibrations,
            r.hard_failures,
            r.unserved,
            1e3 * report.energy_per_request_j,
        );
        assert_books(&report, kind.name());
        let record = record_for(kind.name(), &report, &baseline);
        if check_files {
            let path = format!(
                "{}/../../scenarios/{}.json",
                env!("CARGO_MANIFEST_DIR"),
                kind.name()
            );
            let spec = ScenarioSpec::load(&path).expect("committed scenario file");
            assert_eq!(
                spec,
                matrix_spec(kind, true, 7),
                "{}: committed file drifted from the canonical spec (regenerate \
                 with --emit-files scenarios)",
                kind.name()
            );
            let compiled = spec.compile().expect("committed scenario file compiles");
            assert_eq!(
                compiled.scenario,
                scenario,
                "{}: scenario file must compile to the hard-coded scenario",
                kind.name()
            );
            let file_report = run_checked(
                &compiled.scenario,
                args.shards,
                &format!("{} file", spec.name),
            );
            let file_record = record_for(&spec.name, &file_report, &baseline);
            assert_eq!(
                file_record,
                record,
                "{}: scenario-file record must byte-match the generator's",
                kind.name()
            );
            println!(
                "  {:<22} ↳ scenario file replays to a byte-identical record",
                ""
            );
        }
        records.push(record);
    }
    println!();

    // No wall-clock fields: the record must be byte-identical across
    // runs of the same invocation (CI's determinism check diffs it).
    let json = format!(
        "{{\"bench\":\"scenarios\",\"mode\":\"{}\",\"seed\":{},\"instances\":{},\
         \"rate_rps\":{},\"horizon_s\":{},\"scenarios\":[{}]}}\n",
        if args.smoke { "smoke" } else { "full" },
        args.seed,
        base.instances.len(),
        json_f(base.arrival.mean_rate_rps()),
        json_f(base.horizon_s),
        records.join(",")
    );
    write_artifact("BENCH_scenarios.json", &json);
    println!(
        "all scenarios deterministic; matrix done in {:.2} s",
        t0.elapsed().as_secs_f64()
    );
}
