//! Chaos scenario matrix: replays the named degradation scenarios
//! (heat wave, laser aging, channel-loss burst, rolling recalibration)
//! against a serving fleet and reports resilience figures next to a
//! fault-free baseline — run with `cargo run --release --bin scenarios`.
//!
//! Flags: `--smoke` shrinks the fleet/horizon to CI size,
//! `--scenario <name>` runs one named scenario (the CI matrix fans out
//! one job per name), `--seed <n>` overrides the chaos seed, and
//! `--shards <n>` sets the shard-worker count (default 4).
//!
//! Every report is produced by the **sharded engine** and asserted
//! bit-identical against its `shards = 1` oracle (run twice) — the
//! two-layer determinism contract CI relies on: same seed ⇒ same
//! report, at any shard count. The emitted `BENCH_scenarios.json`
//! deliberately carries **no wall-clock measurements**, so two runs of
//! the same invocation — *at any `--shards` value* — produce
//! byte-identical files (the acceptance check `diff`s them across
//! shard counts).

use pcnna_bench::report::{assert_books, chaos_config, json_f, serving_classes, write_artifact};
use pcnna_core::PcnnaConfig;
use pcnna_fleet::prelude::*;
use std::time::Instant;

struct Args {
    smoke: bool,
    only: Option<ChaosKind>,
    seed: u64,
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        only: None,
        seed: 7,
        shards: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--scenario" => {
                let name = it.next().unwrap_or_default();
                match ChaosKind::from_name(&name) {
                    Some(kind) => args.only = Some(kind),
                    None => {
                        eprintln!(
                            "unknown scenario {name:?}; known: {}",
                            ChaosKind::ALL
                                .iter()
                                .map(|k| k.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--shards" => {
                args.shards = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shards needs an integer ≥ 1");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown flag {other:?} (known: --smoke, --scenario <name>, \
                     --seed <n>, --shards <n>)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The serving workload every scenario runs against: a mixed
/// AlexNet/LeNet fleet under tight SLOs, loaded to where degradation
/// visibly moves the needle without saturating the healthy baseline.
fn base_scenario(smoke: bool, seed: u64) -> FleetScenario {
    let (fleet, rate_rps, horizon_s) = if smoke {
        (4, 45_000.0, 0.05)
    } else {
        (6, 90_000.0, 0.5)
    };
    FleetScenario {
        classes: serving_classes(),
        arrival: ArrivalProcess::Poisson { rate_rps },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); fleet],
        max_batch: 32,
        queue_capacity: 100_000,
        horizon_s,
        seed,
        ..FleetScenario::default()
    }
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let base = base_scenario(args.smoke, args.seed);
    let chaos_cfg = chaos_config(args.smoke, args.seed);
    let kinds: Vec<ChaosKind> = match args.only {
        Some(k) => vec![k],
        None => ChaosKind::ALL.to_vec(),
    };
    println!(
        "chaos matrix: {} scenario(s) × {} instances, {:.0} req/s for {} ms \
         (seed {}, {} mode, {} shard(s))",
        kinds.len(),
        base.instances.len(),
        base.arrival.mean_rate_rps(),
        (1e3 * base.horizon_s) as u64,
        args.seed,
        if args.smoke { "smoke" } else { "full" },
        args.shards,
    );

    // Every report comes from the sharded engine at the requested shard
    // count and is asserted against its shards = 1 oracle — so the JSON
    // below is byte-identical whatever --shards was.
    let run = |scenario: &FleetScenario, label: &str| {
        let report = scenario
            .simulate_sharded(args.shards, args.shards)
            .expect("scenario is valid");
        let oracle = scenario.simulate_sharded(1, 1).expect("scenario is valid");
        assert_eq!(
            report, oracle,
            "{label}: shards={} must reproduce the shards=1 oracle bit-for-bit",
            args.shards
        );
        report
    };

    let baseline = run(&base, "baseline");
    println!(
        "baseline (no faults): SLO {:.2}%  p99 {:.3} ms  {:.3} mJ/req  availability 100.00%",
        100.0 * baseline.slo_attainment,
        1e3 * baseline.latency.p99_s,
        1e3 * baseline.energy_per_request_j,
    );
    println!();
    println!(
        "  {:<22} {:>7} {:>7} {:>8} {:>8} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "scenario",
        "SLO %",
        "ΔSLO",
        "avail %",
        "p99 ms",
        "f.over",
        "recals",
        "fails",
        "unserved",
        "mJ/req"
    );

    let mut records = Vec::new();
    for kind in kinds {
        let scenario = FleetScenario {
            faults: chaos_timeline(kind, &base.instances, base.horizon_s, &chaos_cfg),
            ..base.clone()
        };
        let report = run(&scenario, kind.name());
        // Cross-run determinism: a fresh simulation of the same seed
        // (the oracle comparison already happened inside `run`).
        let again = scenario
            .simulate_sharded(args.shards, args.shards)
            .expect("scenario is valid");
        assert_eq!(
            report,
            again,
            "{}: two runs of the same seed must produce identical reports",
            kind.name()
        );
        let r = &report.resilience;
        println!(
            "  {:<22} {:>7.2} {:>+7.2} {:>8.2} {:>8.3} {:>7} {:>7} {:>7} {:>9} {:>9.3}",
            kind.name(),
            100.0 * report.slo_attainment,
            100.0 * (report.slo_attainment - baseline.slo_attainment),
            100.0 * r.availability,
            1e3 * report.latency.p99_s,
            r.failed_over,
            r.recalibrations,
            r.hard_failures,
            r.unserved,
            1e3 * report.energy_per_request_j,
        );
        assert_books(&report, kind.name());
        records.push(format!(
            "{{\"name\":\"{}\",\"offered\":{},\"completed\":{},\"rejected\":{},\
             \"slo_attainment\":{},\"baseline_slo\":{},\"p99_ms\":{},\
             \"availability\":{},\"failed_over\":{},\"recalibrations\":{},\
             \"hard_failures\":{},\"fault_events\":{},\"unserved\":{},\
             \"energy_per_request_mj\":{},\"deterministic\":true}}",
            kind.name(),
            report.offered,
            report.completed,
            report.rejected,
            json_f(report.slo_attainment),
            json_f(baseline.slo_attainment),
            json_f(1e3 * report.latency.p99_s),
            json_f(r.availability),
            r.failed_over,
            r.recalibrations,
            r.hard_failures,
            r.fault_events,
            r.unserved,
            json_f(1e3 * report.energy_per_request_j),
        ));
    }
    println!();

    // No wall-clock fields: the record must be byte-identical across
    // runs of the same invocation (CI's determinism check diffs it).
    let json = format!(
        "{{\"bench\":\"scenarios\",\"mode\":\"{}\",\"seed\":{},\"instances\":{},\
         \"rate_rps\":{},\"horizon_s\":{},\"scenarios\":[{}]}}\n",
        if args.smoke { "smoke" } else { "full" },
        args.seed,
        base.instances.len(),
        json_f(base.arrival.mean_rate_rps()),
        json_f(base.horizon_s),
        records.join(",")
    );
    write_artifact("BENCH_scenarios.json", &json);
    println!(
        "all scenarios deterministic; matrix done in {:.2} s",
        t0.elapsed().as_secs_f64()
    );
}
