//! Regenerates Figure 3: parallel execution of K kernels as they progress
//! sequentially over the input feature map, including the per-location
//! input-update counts the paper's eq. (8) estimates as `nc·m·s`.

use pcnna_cnn::geometry::ConvGeometry;
use pcnna_core::config::ScanOrder;
use pcnna_core::scheduler::LocationSchedule;

fn main() {
    // The paper's Figure 3 narrative: a 7x7 grid of locations → 49 cycles.
    let g = ConvGeometry::new(9, 3, 0, 1, 3, 4).expect("figure 3 geometry is valid");
    let sched = LocationSchedule::new(g, ScanOrder::RowMajor);
    let counts = sched.update_counts();

    println!("Figure 3 — kernel-location schedule for {g}");
    println!(
        "K = {} kernels execute in parallel at each of the {} locations:",
        g.kernels(),
        sched.locations().len()
    );
    println!();
    println!("location (oy,ox) -> newly loaded input values (exact)");
    let o = g.output_side();
    for (i, loc) in sched.locations().iter().enumerate() {
        print!("({},{}):{:<4}", loc.oy, loc.ox, counts[i]);
        if (i + 1) % o == 0 {
            println!();
        }
    }
    let stats = sched.stats();
    println!();
    println!(
        "first fill: {} values; paper steady-state estimate nc*m*s = {}",
        stats.first_loads, stats.paper_steady_estimate
    );
    println!(
        "exact total loads: {} (vs {} if every location reloaded the full field)",
        stats.total_loads,
        stats.locations * g.n_kernel()
    );

    let serp = LocationSchedule::new(g, ScanOrder::Serpentine).stats();
    println!(
        "serpentine scan (reproduction extension): {} total loads, worst step {}",
        serp.total_loads, serp.max_steady_loads
    );
}
