//! Perf-trajectory harness: pins the workspace's three hot paths to fixed
//! workloads, times them, and emits `BENCH_perf.json` — the machine-readable
//! record every perf-minded PR appends to (see `PERF.md` for the protocol).
//!
//! Run with `cargo run --release --bin perf -- --quick` (CI smoke) or with
//! no flag for the full-length run. `--check` additionally compares the
//! fresh numbers against the frozen `BASELINE_*` constants below (the
//! same numbers every emitted `BENCH_perf.json` records in its
//! `baseline` field) and exits nonzero on a >30% regression of any hot
//! path.
//!
//! The three hot paths:
//!
//! * **fleet** — one `FleetScenario::simulate` call (50k req/s Poisson,
//!   mixed AlexNet+LeNet traffic, 4 instances, network affinity), scored
//!   as simulated requests completed per wall-clock second.
//! * **dse** — a single-threaded AlexNet grid sweep over the full
//!   3 888-point `DesignSpace`, scored as candidate evaluations per second
//!   (single-threaded so the number tracks the evaluator, not the box's
//!   core count).
//! * **conv** — the blocked im2col/GEMM reference kernel on an
//!   AlexNet-conv3-shaped layer, scored in GFLOP/s.
//!
//! Plus the fleet-scale segment (`mega_fleet`, see `PERF.md`):
//!
//! * **mega_fleet** — a 1k-instance, 16-class fleet near saturation,
//!   run twice: once on the whole-fleet **single-shard engine**
//!   (`simulate()`: one global event loop, O(instances) placement
//!   scans) and once on the **sharded engine** at 8 shards × 8 threads
//!   (16 cells of ~64 instances each). `speedup` is sharded over
//!   single-shard; the harness also asserts the sharded report is
//!   **bit-identical** to its own shards = 1 oracle and records the
//!   verdict in `bit_identical_s1`. The same leg is re-run under a
//!   **hierarchical plan** (8 leaves per scheduling group,
//!   `simulate_sharded_shaped`) and byte-compared to the flat oracle —
//!   grouping is pure scheduling, so any divergence fails `--check`.
//!   A 10k-instance × ~1M-request datacenter leg is timed once
//!   (sharded) and recorded as `ten_k_wall_s`, and a **100k-instance
//!   planet-scale leg** exercises the streaming arrival path (arrivals
//!   are never materialized), recording wall time, its own peak RSS,
//!   and its shards = 1 bit-identity verdict. Flags `--mega-shards N` /
//!   `--mega-threads N` override the matrix leg CI fans out over.

use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::reference;
use pcnna_cnn::workload::Workload;
use pcnna_core::PcnnaConfig;
use pcnna_dse::prelude::*;
use pcnna_fleet::prelude::*;
use std::time::Instant;

/// Pre-PR hot-path numbers, measured with this same harness (quick mode,
/// three runs averaged) against the code as it stood before the
/// allocation-free rework: per-class latency `Vec`s + report-time sort in
/// the fleet engine, Debug-rendering fingerprints + per-layer model
/// rebuilds in the dse evaluator, and the unblocked single-row im2col
/// GEMM. Frozen when the measurement harness landed; see `PERF.md`
/// before editing.
const BASELINE_FLEET_REQ_PER_S: f64 = 6_650_000.0;
const BASELINE_DSE_EVALS_PER_S: f64 = 44_400.0;
const BASELINE_CONV_GFLOP_S: f64 = 11.1;

/// Pre-PR sharded mega-fleet rate (flat plan, 8×8, this harness) — the
/// floor the planet-scale rework is measured against. The `--check`
/// gate demands ≥ 70% of 4× this figure; the committed
/// `BENCH_perf.json` records the full ≥ 4× number.
const BASELINE_MEGA_SHARDED_REQ_PER_S: f64 = 2_067_964.0;
const MEGA_SPEEDUP_TARGET: f64 = 4.0;

struct Measurement {
    fleet_req_per_s: f64,
    fleet_completed: u64,
    dse_evals_per_s: f64,
    dse_evaluated: u64,
    conv_gflop_s: f64,
    telemetry: TelemetryMeasurement,
    accuracy: AccuracyMeasurement,
    mega: MegaMeasurement,
}

/// Accuracy-aware dispatch overhead on the fleet workload: the same
/// scenario with per-class top-1 floors and `accuracy_routing` on —
/// the full quote → effective-bits → proxy top-1 path runs for every
/// (class, instance) pair, and the dispatcher consults the
/// serviceability ledger on every placement. Floors sit below the
/// pristine quotes, so the workload served is identical and the ratio
/// isolates the bookkeeping cost.
struct AccuracyMeasurement {
    plain_req_per_s: f64,
    accuracy_req_per_s: f64,
    /// `accuracy / plain`: ≥ 0.90 means the path adds < 10% overhead.
    ratio: f64,
}

/// Enabled-vs-disabled telemetry overhead on the fleet workload (see
/// `PERF.md` for the protocol). `disabled` runs the sharded engine with
/// the zero-sized `NullSink` — the path every production caller takes —
/// and `traced` the same scenario with a default-stride `TracingSink`.
struct TelemetryMeasurement {
    disabled_req_per_s: f64,
    traced_req_per_s: f64,
    /// `disabled / traced`: how many × slower full tracing runs.
    overhead: f64,
    events_recorded: u64,
}

struct MegaMeasurement {
    instances: usize,
    classes: usize,
    completed: u64,
    mono_req_per_s: f64,
    sharded_req_per_s: f64,
    shards: usize,
    threads: usize,
    speedup: f64,
    bit_identical_s1: bool,
    ten_k_wall_s: f64,
    ten_k_completed: u64,
    /// Throughput of the same leg under a hierarchical plan
    /// (`group_width` leaves per scheduling group) — must be
    /// bit-identical to the flat oracle by construction.
    hier_req_per_s: f64,
    hier_group_width: usize,
    hier_bit_identical: bool,
    /// The planet-scale leg: 100k instances × ~1M requests, streamed
    /// (arrivals are never materialized), timed once, byte-compared to
    /// its own shards = 1 oracle, with the leg's peak RSS recorded.
    hundred_k_completed: u64,
    hundred_k_wall_s: f64,
    hundred_k_bit_identical_s1: bool,
    hundred_k_peak_rss_bytes: u64,
}

fn fleet_scenario(horizon_s: f64) -> FleetScenario {
    FleetScenario {
        classes: vec![
            NetworkClass::lenet5(0.005, 2.0),
            NetworkClass::alexnet(0.050, 1.0),
        ],
        arrival: ArrivalProcess::Poisson { rate_rps: 50_000.0 },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); 4],
        horizon_s,
        queue_capacity: 1_000_000,
        ..FleetScenario::default()
    }
}

/// The mega-fleet workload: a 1k-instance (or 10k-instance) fleet of
/// default configs serving 16 light traffic classes with staggered
/// SLOs, loaded near saturation so dispatch — not idle time — dominates.
/// 16 classes ⇒ the shard plan builds 16 cells; the single-shard engine
/// runs the same workload as one global event loop.
fn mega_scenario(n_instances: usize, rate_rps: f64, horizon_s: f64) -> FleetScenario {
    let classes = (0..16)
        .map(|i| NetworkClass::lenet5(0.002 + 0.001 * i as f64, 1.0))
        .collect();
    FleetScenario {
        classes,
        arrival: ArrivalProcess::Poisson { rate_rps },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); n_instances],
        max_batch: 32,
        queue_capacity: 1_000_000,
        horizon_s,
        seed: 42,
        ..FleetScenario::default()
    }
}

fn measure_mega(quick: bool, shards: usize, threads: usize, group_width: usize) -> MegaMeasurement {
    // More best-of draws than the small segments: the mega legs are
    // short (~0.1-0.25 s each), so co-tenant noise dominates any single
    // draw and the best-of estimator needs a deeper pool to converge.
    let segments = if quick { 3 } else { 6 };
    // ~1M requests against 1k instances near saturation.
    let scenario = mega_scenario(1_000, 10_000_000.0, if quick { 0.1 } else { 0.2 });
    // Bit-identity first (also warms up both paths): the sharded run
    // must reproduce its shards = 1 oracle exactly.
    let oracle = scenario.simulate_sharded(1, 1).expect("valid scenario");
    let sharded_once = scenario
        .simulate_sharded(shards, threads)
        .expect("valid scenario");
    let bit_identical_s1 = oracle == sharded_once;
    let completed = sharded_once.completed;
    let (mono_req_per_s, _) = best_rate(segments, || scenario.simulate().expect("valid").completed);
    let (sharded_req_per_s, _) = best_rate(segments, || {
        scenario
            .simulate_sharded(shards, threads)
            .expect("valid")
            .completed
    });
    // The hierarchical leg: same workload, same partition, but leaves
    // grouped `group_width` per scheduling unit. Grouping is pure
    // scheduling, so the report must match the flat oracle byte for
    // byte — asserted here on every run, not just in tests.
    let hier_shape = PlanShape { group_width };
    let hier_once = scenario
        .simulate_sharded_shaped(shards, threads, hier_shape)
        .expect("valid scenario");
    let hier_bit_identical = oracle == hier_once;
    let (hier_req_per_s, _) = best_rate(segments, || {
        scenario
            .simulate_sharded_shaped(shards, threads, hier_shape)
            .expect("valid")
            .completed
    });
    // The datacenter leg: 10k instances × ~1M requests, sharded, timed
    // once — the scenario the single-shard engine made impractical.
    let ten_k = mega_scenario(10_000, 10_000_000.0, 0.1);
    let t0 = Instant::now();
    let ten_k_report = ten_k.simulate_sharded(shards, threads).expect("valid");
    let ten_k_wall_s = t0.elapsed().as_secs_f64();
    // The planet-scale leg: 100k instances, arrivals streamed from the
    // generator in chunks (never materialized), so the leg's memory is
    // instance state — not the horizon's request count. Peak RSS is
    // reset (where the kernel allows) and re-read around the leg.
    let hundred_k = mega_scenario(100_000, 10_000_000.0, 0.1);
    reset_peak_rss();
    let t0 = Instant::now();
    let hundred_k_report = hundred_k.simulate_sharded(shards, threads).expect("valid");
    let hundred_k_wall_s = t0.elapsed().as_secs_f64();
    let hundred_k_peak_rss_bytes = peak_rss_bytes();
    let hundred_k_oracle = hundred_k.simulate_sharded(1, 1).expect("valid");
    let hundred_k_bit_identical_s1 = hundred_k_oracle == hundred_k_report;
    MegaMeasurement {
        instances: 1_000,
        classes: 16,
        completed,
        mono_req_per_s,
        sharded_req_per_s,
        shards,
        threads,
        speedup: sharded_req_per_s / mono_req_per_s.max(1e-9),
        bit_identical_s1,
        ten_k_wall_s,
        ten_k_completed: ten_k_report.completed,
        hier_req_per_s,
        hier_group_width: group_width,
        hier_bit_identical,
        hundred_k_completed: hundred_k_report.completed,
        hundred_k_wall_s,
        hundred_k_bit_identical_s1,
        hundred_k_peak_rss_bytes,
    }
}

/// Times `f` (which returns the work it did, in events) `segments` times
/// and reports the **best** events/second segment. Best-of-N is the
/// standard de-noising for shared machines: co-tenant interference only
/// ever slows a segment down, so the fastest segment is the closest
/// estimate of what the code can actually do.
fn best_rate(segments: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = 0.0f64;
    let mut total_work = 0u64;
    for _ in 0..segments {
        let t0 = Instant::now();
        let work = f();
        let dt = t0.elapsed().as_secs_f64();
        total_work += work;
        if dt > 0.0 {
            best = best.max(work as f64 / dt);
        }
    }
    (best, total_work)
}

fn measure(
    quick: bool,
    mega_shards: usize,
    mega_threads: usize,
    mega_group_width: usize,
) -> Measurement {
    let segments = if quick { 3 } else { 5 };

    // --- fleet ------------------------------------------------------
    let scenario = fleet_scenario(if quick { 1.0 } else { 4.0 });
    scenario.simulate().expect("valid scenario"); // warm-up
    let (fleet_req_per_s, fleet_completed) = best_rate(segments, || {
        scenario.simulate().expect("valid scenario").completed
    });

    // --- telemetry overhead ----------------------------------------
    // Same workload, sharded engine at (1, 1): the NullSink path must
    // monomorphize to the untraced engine (`--check` gates the ratio),
    // and the traced path's cost is recorded so PRs that touch the
    // sink hooks leave a measured trail.
    let tcfg = TraceConfig::default();
    let (disabled_req_per_s, _) = best_rate(segments, || {
        scenario.simulate_sharded(1, 1).expect("valid").completed
    });
    let mut events_recorded = 0u64;
    let (traced_req_per_s, _) = best_rate(segments, || {
        let (report, trace) = scenario
            .simulate_sharded_traced(1, 1, &tcfg)
            .expect("valid");
        events_recorded = trace.profile.events_recorded;
        report.completed
    });
    let telemetry = TelemetryMeasurement {
        disabled_req_per_s,
        traced_req_per_s,
        overhead: disabled_req_per_s / traced_req_per_s.max(1e-9),
        events_recorded,
    };

    // --- accuracy-aware dispatch overhead --------------------------
    // Same fleet workload with floors under every pristine quote
    // (lenet5 ≥ 0.5, alexnet ≥ 0.85 against 0.885+ quoted) and routing
    // on: nothing is refused, so plain and accuracy runs serve the same
    // traffic and the ratio is pure accuracy-bookkeeping cost.
    let accuracy_scenario = FleetScenario {
        classes: vec![
            NetworkClass::lenet5(0.005, 2.0).with_min_accuracy(0.5),
            NetworkClass::alexnet(0.050, 1.0).with_min_accuracy(0.85),
        ],
        accuracy_routing: true,
        ..fleet_scenario(if quick { 1.0 } else { 4.0 })
    };
    accuracy_scenario.simulate().expect("valid scenario"); // warm-up
    let (accuracy_req_per_s, accuracy_completed) = best_rate(segments, || {
        accuracy_scenario
            .simulate()
            .expect("valid scenario")
            .completed
    });
    assert_eq!(
        accuracy_completed, fleet_completed,
        "floors below the pristine quotes must not change the traffic served"
    );
    let accuracy = AccuracyMeasurement {
        plain_req_per_s: fleet_req_per_s,
        accuracy_req_per_s,
        ratio: accuracy_req_per_s / fleet_req_per_s.max(1e-9),
    };

    // --- dse --------------------------------------------------------
    let space = DesignSpace::default();
    let ev = Evaluator::alexnet();
    let (dse_evals_per_s, dse_evaluated) = best_rate(segments, || {
        grid_sweep(&space, &ev, 1)
            .expect("valid space")
            .stats
            .evaluated
    });

    // --- conv -------------------------------------------------------
    // AlexNet conv3 shape: 13×13 input, 3×3 kernels, 256→384 maps.
    let g = ConvGeometry::new(13, 3, 1, 1, 256, 384).expect("valid geometry");
    let wl = Workload::gaussian(&g, 7);
    let o = g.output_side();
    let flops = 2.0 * (g.kernels() * g.n_kernel() as usize * o * o) as f64;
    let conv_reps = if quick { 5 } else { 10 };
    let mut scratch = reference::ConvScratch::new();
    reference::conv2d_im2col_scratch(&g, &wl.input, &wl.kernels, &mut scratch).unwrap(); // warm-up
    let (conv_flop_s, _) = best_rate(segments, || {
        for _ in 0..conv_reps {
            reference::conv2d_im2col_scratch(&g, &wl.input, &wl.kernels, &mut scratch).unwrap();
            std::hint::black_box(scratch.output());
        }
        (flops * conv_reps as f64) as u64
    });

    Measurement {
        fleet_req_per_s,
        fleet_completed,
        dse_evals_per_s,
        dse_evaluated,
        conv_gflop_s: conv_flop_s / 1e9,
        telemetry,
        accuracy,
        mega: measure_mega(quick, mega_shards, mega_threads, mega_group_width),
    }
}

/// Resets the process's peak-RSS high-water mark (`VmHWM`) so a
/// subsequent [`peak_rss_bytes`] read isolates one leg. Writing `5` to
/// `/proc/self/clear_refs` is the documented Linux mechanism; where it
/// is unavailable (non-Linux, restricted containers) the read simply
/// stays a conservative whole-process peak.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size, bytes, from `/proc/self/status` (`VmHWM`).
/// Returns 0 where procfs is unavailable (non-Linux).
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|kb| kb.parse::<u64>().ok())
            })
        })
        .map_or(0, |kb| kb * 1024)
}

/// Parses `--flag <n>` from the argument list. A present flag with a
/// missing or unparseable value is a hard error — a CI matrix leg that
/// silently fell back to the default would measure (and upload an
/// artifact for) a configuration its name does not claim.
fn flag_value(args: &[String], flag: &str, default: usize) -> usize {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return default;
    };
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} needs an integer ≥ 1");
            std::process::exit(2);
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let mega_shards = flag_value(&args, "--mega-shards", 8);
    let mega_threads = flag_value(&args, "--mega-threads", 8);
    let mega_group_width = flag_value(&args, "--mega-group-width", 8);
    if mega_group_width == 0 {
        eprintln!("--mega-group-width needs an integer >= 1");
        std::process::exit(2);
    }

    let m = measure(quick, mega_shards, mega_threads, mega_group_width);
    let rss = peak_rss_bytes();

    println!(
        "fleet: {:.0} simulated req/s ({} completed)",
        m.fleet_req_per_s, m.fleet_completed
    );
    println!(
        "dse:   {:.0} evals/s ({} evaluated, 1 thread)",
        m.dse_evals_per_s, m.dse_evaluated
    );
    println!("conv:  {:.2} GFLOP/s (blocked im2col)", m.conv_gflop_s);
    println!(
        "telemetry: NullSink {:.0} req/s, traced {:.0} req/s \
         ({:.2}× overhead, {} events at default stride)",
        m.telemetry.disabled_req_per_s,
        m.telemetry.traced_req_per_s,
        m.telemetry.overhead,
        m.telemetry.events_recorded,
    );
    println!(
        "accuracy: plain {:.0} req/s, floors+routing {:.0} req/s (ratio {:.3})",
        m.accuracy.plain_req_per_s, m.accuracy.accuracy_req_per_s, m.accuracy.ratio,
    );
    let mega = &m.mega;
    println!(
        "mega_fleet: {} instances × {} classes, {} requests — \
         single-shard {:.2}M req/s, sharded({}×{}t) {:.2}M req/s, \
         speedup {:.2}×, bit-identical to S=1: {}",
        mega.instances,
        mega.classes,
        mega.completed,
        mega.mono_req_per_s / 1e6,
        mega.shards,
        mega.threads,
        mega.sharded_req_per_s / 1e6,
        mega.speedup,
        mega.bit_identical_s1,
    );
    println!(
        "mega_fleet hierarchical plan (group_width {}): {:.2}M req/s, \
         bit-identical to flat: {}",
        mega.hier_group_width,
        mega.hier_req_per_s / 1e6,
        mega.hier_bit_identical,
    );
    println!(
        "mega_fleet 10k-instance leg: {} requests in {:.2} s (sharded)",
        mega.ten_k_completed, mega.ten_k_wall_s
    );
    println!(
        "mega_fleet 100k-instance leg: {} requests in {:.2} s (streamed, \
         peak RSS {:.1} MiB, bit-identical to S=1: {})",
        mega.hundred_k_completed,
        mega.hundred_k_wall_s,
        mega.hundred_k_peak_rss_bytes as f64 / (1024.0 * 1024.0),
        mega.hundred_k_bit_identical_s1,
    );
    println!("peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));

    let json = format!(
        "{{\"bench\":\"perf\",\"mode\":\"{}\",\
         \"fleet_req_per_s\":{:.0},\"dse_evals_per_s\":{:.0},\
         \"conv_gflop_s\":{:.3},\"peak_rss_bytes\":{},\
         \"telemetry\":{{\"disabled_req_per_s\":{:.0},\"traced_req_per_s\":{:.0},\
         \"overhead\":{:.3},\"events_recorded\":{}}},\
         \"accuracy\":{{\"plain_req_per_s\":{:.0},\"accuracy_req_per_s\":{:.0},\
         \"ratio\":{:.3}}},\
         \"mega_fleet\":{{\"instances\":{},\"classes\":{},\"completed\":{},\
         \"mono_req_per_s\":{:.0},\"sharded_req_per_s\":{:.0},\
         \"shards\":{},\"threads\":{},\"speedup\":{:.2},\
         \"bit_identical_s1\":{},\"ten_k_completed\":{},\"ten_k_wall_s\":{:.3},\
         \"hier_req_per_s\":{:.0},\"hier_group_width\":{},\"hier_bit_identical\":{},\
         \"hundred_k_completed\":{},\"hundred_k_wall_s\":{:.3},\
         \"hundred_k_bit_identical_s1\":{},\"hundred_k_peak_rss_bytes\":{}}},\
         \"baseline\":{{\"fleet_req_per_s\":{:.0},\"dse_evals_per_s\":{:.0},\
         \"conv_gflop_s\":{:.3},\"mega_sharded_req_per_s\":{:.0}}},\
         \"speedup\":{{\"fleet\":{:.2},\"dse\":{:.2},\"conv\":{:.2}}}}}\n",
        if quick { "quick" } else { "full" },
        m.fleet_req_per_s,
        m.dse_evals_per_s,
        m.conv_gflop_s,
        rss,
        m.telemetry.disabled_req_per_s,
        m.telemetry.traced_req_per_s,
        m.telemetry.overhead,
        m.telemetry.events_recorded,
        m.accuracy.plain_req_per_s,
        m.accuracy.accuracy_req_per_s,
        m.accuracy.ratio,
        mega.instances,
        mega.classes,
        mega.completed,
        mega.mono_req_per_s,
        mega.sharded_req_per_s,
        mega.shards,
        mega.threads,
        mega.speedup,
        mega.bit_identical_s1,
        mega.ten_k_completed,
        mega.ten_k_wall_s,
        mega.hier_req_per_s,
        mega.hier_group_width,
        mega.hier_bit_identical,
        mega.hundred_k_completed,
        mega.hundred_k_wall_s,
        mega.hundred_k_bit_identical_s1,
        mega.hundred_k_peak_rss_bytes,
        BASELINE_FLEET_REQ_PER_S,
        BASELINE_DSE_EVALS_PER_S,
        BASELINE_CONV_GFLOP_S,
        BASELINE_MEGA_SHARDED_REQ_PER_S,
        m.fleet_req_per_s / BASELINE_FLEET_REQ_PER_S.max(1e-9),
        m.dse_evals_per_s / BASELINE_DSE_EVALS_PER_S.max(1e-9),
        m.conv_gflop_s / BASELINE_CONV_GFLOP_S.max(1e-9),
    );
    match std::fs::write("BENCH_perf.json", &json) {
        Ok(()) => println!("wrote BENCH_perf.json"),
        Err(e) => eprintln!("could not write BENCH_perf.json: {e}"),
    }

    if check {
        let mut failed = false;
        for (label, fresh, floor) in [
            ("fleet", m.fleet_req_per_s, BASELINE_FLEET_REQ_PER_S),
            ("dse", m.dse_evals_per_s, BASELINE_DSE_EVALS_PER_S),
            ("conv", m.conv_gflop_s, BASELINE_CONV_GFLOP_S),
        ] {
            // The gate: no hot path may fall below 70% of the checked-in
            // baseline (the pre-PR numbers this PR's speedups are vs).
            if fresh < 0.70 * floor {
                eprintln!("REGRESSION: {label} at {fresh:.0} < 70% of baseline {floor:.0}");
                failed = true;
            }
        }
        // The telemetry gate: the NullSink sharded path must stay inside
        // the same 30% envelope as the other hot paths — if the disabled
        // sink stops monomorphizing away (a hook that isn't
        // `if S::ENABLED`-guarded, a sink field that stops being
        // zero-sized), this is where it shows up. Gated against the
        // frozen fleet baseline: the sharded (1, 1) run of this workload
        // matched it when the telemetry layer landed.
        if m.telemetry.disabled_req_per_s < 0.70 * BASELINE_FLEET_REQ_PER_S {
            eprintln!(
                "REGRESSION: NullSink sharded path at {:.0} req/s < 70% of the \
                 fleet baseline ({BASELINE_FLEET_REQ_PER_S:.0} req/s) — the \
                 disabled sink is no longer free",
                m.telemetry.disabled_req_per_s
            );
            failed = true;
        }
        // The accuracy gate: floors + routing on a healthy fleet must
        // cost < 10% of the plain dispatch rate. Quotes are memoized
        // per (class, instance) health epoch, so the steady-state cost
        // is one ledger lookup per placement — if the ratio drops, a
        // quote stopped being cached or the dispatch scan grew.
        if m.accuracy.ratio < 0.90 {
            eprintln!(
                "REGRESSION: accuracy-aware dispatch at {:.3}× of the plain \
                 fleet rate (floor 0.90) — the accuracy path is no longer \
                 amortized",
                m.accuracy.ratio
            );
            failed = true;
        }
        // The mega gates: determinism is binary (any divergence fails);
        // the speedup floor is 70% of the 3× target — the architecture
        // win is core-count independent (the single-shard engine's
        // O(instances) scans are what it removes), so it must survive
        // slower CI hardware. The committed BENCH_perf.json records the
        // full-mode ≥3× figure.
        if !mega.bit_identical_s1 {
            eprintln!("REGRESSION: sharded mega_fleet report diverged from its shards=1 oracle");
            failed = true;
        }
        if !mega.hier_bit_identical {
            eprintln!(
                "REGRESSION: hierarchical-plan mega_fleet report diverged from \
                 the flat plan — grouping stopped being pure scheduling"
            );
            failed = true;
        }
        if !mega.hundred_k_bit_identical_s1 {
            eprintln!(
                "REGRESSION: 100k-instance mega_fleet report diverged from its \
                 shards=1 oracle"
            );
            failed = true;
        }
        if mega.speedup < 0.70 * 3.0 {
            eprintln!(
                "REGRESSION: mega_fleet speedup {:.2}× < 70% of the 3× target",
                mega.speedup
            );
            failed = true;
        }
        // The planet-scale throughput floor: the SoA + hierarchical-plan
        // rework is gated at 70% of 4× the pre-rework sharded rate
        // (same 30% CI-noise envelope as every other gate; the
        // committed BENCH_perf.json records the full ≥ 4× figure). The
        // best of the flat and hierarchical legs counts — which shape
        // wins is a property of the box, not of the engine.
        let mega_best = mega.sharded_req_per_s.max(mega.hier_req_per_s);
        let mega_floor = 0.70 * MEGA_SPEEDUP_TARGET * BASELINE_MEGA_SHARDED_REQ_PER_S;
        if mega_best < mega_floor {
            eprintln!(
                "REGRESSION: mega_fleet sharded at {mega_best:.0} req/s < 70% of \
                 {MEGA_SPEEDUP_TARGET}× the pre-rework rate \
                 ({BASELINE_MEGA_SHARDED_REQ_PER_S:.0} req/s)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("perf check passed (hot paths within 30% of baseline; mega_fleet deterministic)");
    }
}
