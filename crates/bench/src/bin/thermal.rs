//! Thermal-stability harness (reproduction extension): how heater
//! crosstalk and ambient drift disturb a calibrated weight bank, and what
//! the closed-loop recalibration the paper omits would have to deliver.

use pcnna_photonics::microring::RingParams;
use pcnna_photonics::thermal::ThermalModel;
use pcnna_photonics::wavelength::WdmGrid;
use pcnna_photonics::weight_bank::MrrWeightBank;

fn calibrated_bank(n: usize) -> (MrrWeightBank, Vec<f64>) {
    let grid = WdmGrid::dense_50ghz(n).expect("small grid is valid");
    let params = RingParams {
        tuning_bits: None,
        ..RingParams::default()
    };
    let mut bank = MrrWeightBank::new(grid, params).expect("params are valid");
    let targets: Vec<f64> = (0..n)
        .map(|i| -0.7 + 1.4 * i as f64 / (n - 1).max(1) as f64)
        .collect();
    bank.calibrate(&targets, 1e-6, 300)
        .expect("ideal tuners calibrate");
    (bank, targets)
}

fn main() {
    let tm = ThermalModel::default();
    println!(
        "thermal model: {:.0}% nearest-neighbour heater coupling,",
        tm.neighbor_coupling * 100.0
    );
    println!(
        "               {:.0} pm/K ambient drift",
        tm.drift_m_per_k * 1e12
    );
    println!();

    println!("== heater crosstalk on a calibrated 8-ring bank ==");
    let (mut bank, targets) = calibrated_bank(8);
    let err = tm.apply_crosstalk(&mut bank).expect("sizes match");
    println!("  max weight error after crosstalk : {err:.4}");
    let report = bank
        .calibrate(&targets, 1e-6, 300)
        .expect("recalibration converges");
    println!(
        "  after closed-loop recalibration    : {:.2e} ({} iterations)",
        report.residual, report.iterations
    );
    println!();

    println!("== ambient drift sensitivity ==");
    println!("{:<12} {:>18}", "excursion", "max weight error");
    for mk in [1.0f64, 10.0, 100.0, 1000.0] {
        let (mut b, _) = calibrated_bank(8);
        let e = tm.apply_ambient(&mut b, mk / 1000.0).expect("sizes match");
        println!("{:<12} {:>18.4}", format!("{mk} mK"), e);
    }
    println!();

    let (bank, _) = calibrated_bank(8);
    let budget_1pct = tm.tolerable_excursion_k(&bank, 0.01);
    println!(
        "temperature budget for 1% weight accuracy: ±{:.0} mK",
        budget_1pct * 1000.0
    );
    println!("(the control loop the paper's 'tuning' presumes must hold the bank");
    println!("within this band — standard practice in measured MRR weight banks)");
}
