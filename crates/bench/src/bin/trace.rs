//! Telemetry rendering bench: traces a chaos scenario through the
//! sharded engine and a controlled run through the control loop, and
//! proves the determinism contract in-process — run with
//! `cargo run --release --bin trace`.
//!
//! Flags: `--smoke` shrinks the fleet/horizon to CI size,
//! `--scenario <name>` picks the chaos kind (default `heat-wave`),
//! `--seed <n>` overrides the seed, and `--stride <n>` the per-class
//! sampling stride.
//!
//! The determinism contract this bin gates on:
//!
//! * the sharded trace is **byte-identical** across
//!   `(shards, threads) ∈ {(1,1), (4,2), (8,8)}` — cell decomposition
//!   never depends on who executes the cells;
//! * a re-run of the same seed reproduces both the sharded trace and
//!   the controlled-run telemetry byte for byte;
//! * the traced run's report equals the untraced run's report — the
//!   sink observes, it never steers.
//!
//! `BENCH_trace.jsonl` carries the sharded trace, then the controlled
//! run's trace and window timeline, with **no wall-clock fields** — CI
//! re-runs the bin and `diff`s the artifact.

use pcnna_bench::report::{assert_books, chaos_config, serving_classes, write_artifact};
use pcnna_core::PcnnaConfig;
use pcnna_fleet::prelude::*;
use std::time::Instant;

struct Args {
    smoke: bool,
    kind: ChaosKind,
    seed: u64,
    stride: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        kind: ChaosKind::HeatWave,
        seed: 7,
        stride: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--scenario" => {
                let name = it.next().unwrap_or_default();
                match ChaosKind::from_name(&name) {
                    Some(kind) => args.kind = kind,
                    None => {
                        eprintln!(
                            "unknown scenario {name:?}; known: {}",
                            ChaosKind::ALL
                                .iter()
                                .map(|k| k.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--stride" => {
                args.stride = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--stride needs an integer ≥ 1");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown flag {other:?} (known: --smoke, --scenario <name>, \
                     --seed <n>, --stride <n>)"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The scenarios-bin workload with the requested chaos timeline.
fn chaos_scenario(args: &Args) -> FleetScenario {
    let (fleet, rate_rps, horizon_s) = if args.smoke {
        (4, 45_000.0, 0.05)
    } else {
        (6, 90_000.0, 0.5)
    };
    let instances = vec![PcnnaConfig::default(); fleet];
    let faults = chaos_timeline(
        args.kind,
        &instances,
        horizon_s,
        &chaos_config(args.smoke, args.seed),
    );
    FleetScenario {
        classes: serving_classes(),
        arrival: ArrivalProcess::Poisson { rate_rps },
        policy: Policy::NetworkAffinity,
        instances,
        max_batch: 32,
        queue_capacity: 100_000,
        horizon_s,
        seed: args.seed,
        faults,
        ..FleetScenario::default()
    }
}

/// The control-bin workload: same mix under a 10:1 diurnal swing.
fn control_scenario(args: &Args) -> FleetScenario {
    let (fleet, peak_rps, horizon_s, period_s) = if args.smoke {
        (6, 60_000.0, 0.08, 0.08)
    } else {
        (8, 90_000.0, 0.4, 0.2)
    };
    FleetScenario {
        classes: serving_classes(),
        arrival: ArrivalProcess::Diurnal {
            base_rps: 0.1 * peak_rps,
            peak_rps,
            period_s,
        },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); fleet],
        max_batch: 32,
        queue_capacity: 100_000,
        horizon_s,
        seed: args.seed,
        ..FleetScenario::default()
    }
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let tcfg = TraceConfig {
        stride: args.stride,
        ..TraceConfig::default()
    };
    println!(
        "trace bench: scenario {} seed {} stride {} ({} mode)",
        args.kind.name(),
        args.seed,
        args.stride,
        if args.smoke { "smoke" } else { "full" },
    );

    // Sharded chaos trace: byte-identical across (shards, threads) and
    // invisible to the report.
    let scenario = chaos_scenario(&args);
    let plain = scenario.simulate_sharded(1, 1).expect("scenario is valid");
    let mut rendered: Option<String> = None;
    for (shards, threads) in [(1, 1), (4, 2), (8, 8)] {
        let (report, trace) = scenario
            .simulate_sharded_traced(shards, threads, &tcfg)
            .expect("scenario is valid");
        assert_eq!(
            report, plain,
            "tracing must not perturb the report (shards={shards}, threads={threads})"
        );
        assert_books(&report, args.kind.name());
        let jsonl = trace.render_jsonl();
        match &rendered {
            None => rendered = Some(jsonl),
            Some(first) => assert_eq!(
                first, &jsonl,
                "trace must be byte-identical at (shards={shards}, threads={threads})"
            ),
        }
    }
    let sharded_jsonl = rendered.expect("at least one layout ran");
    let (_, again) = scenario
        .simulate_sharded_traced(4, 2, &tcfg)
        .expect("scenario is valid");
    assert_eq!(
        sharded_jsonl,
        again.render_jsonl(),
        "re-running the same seed must reproduce the trace byte for byte"
    );
    let event_lines = sharded_jsonl.lines().count().saturating_sub(1);
    println!("  sharded trace: {event_lines} events, identical at (1,1)/(4,2)/(8,8) and re-run");

    // Controlled-run telemetry: trace + window timeline, re-run
    // byte-identical.
    let cfg = ControlConfig {
        window_s: 0.002,
        boot_s: 0.004,
        min_active: 1,
        initial_active: usize::MAX,
        max_step: 4,
        idle_power_w: 2.0,
    };
    let ctl = control_scenario(&args);
    let (controlled, telemetry) = ctl
        .simulate_controlled_traced(&cfg, &mut ReactivePolicy::new(), &tcfg)
        .expect("scenario is valid");
    assert_books(&controlled.report, "controlled/traced");
    let control_jsonl = telemetry.render_jsonl();
    let (_, telemetry_again) = ctl
        .simulate_controlled_traced(&cfg, &mut ReactivePolicy::new(), &tcfg)
        .expect("scenario is valid");
    assert_eq!(
        control_jsonl,
        telemetry_again.render_jsonl(),
        "controlled-run telemetry must be re-run byte-identical"
    );
    println!(
        "  controlled run: {} windows recorded ({} evicted), {} trace events, re-run identical",
        telemetry.timeline.samples().len(),
        telemetry.timeline.dropped(),
        telemetry.trace.events.len(),
    );
    let p = &telemetry.trace.profile;
    println!(
        "  profile: {} wheel pushes / {} pops, {} dispatch scans, {} quote lookups, \
         {} merge folds, {} requests sampled",
        p.wheel_pushes,
        p.wheel_pops,
        p.dispatch_scans,
        p.quote_lookups,
        p.merge_folds,
        p.requests_sampled,
    );

    // One artifact, no wall-clock fields: sharded trace then the
    // controlled run's trace + timeline.
    let payload = format!("{sharded_jsonl}{control_jsonl}");
    write_artifact("BENCH_trace.jsonl", &payload);
    println!("trace bench done in {:.2} s", t0.elapsed().as_secs_f64());
}
