//! Design-space sweep (beyond the paper): how the full-system time of the
//! largest AlexNet layer responds to the number of input DACs, the fast
//! clock, and the scan order — run with `cargo run -p pcnna-bench --bin
//! sweep`.

use pcnna_cnn::zoo;
use pcnna_core::accel::Pcnna;
use pcnna_core::config::{PcnnaConfig, ScanOrder};
use pcnna_core::simulator::PipelineSimulator;
use pcnna_electronics::clock::ClockDomain;

fn main() {
    let conv4 = zoo::alexnet_conv_layers()[3].1;

    println!("sweep 1 — input DAC count vs conv4 full-system time (analytical, DAC-only)");
    for n in [1usize, 2, 5, 10, 20, 50, 100] {
        let accel = Pcnna::new(PcnnaConfig::default().with_input_dacs(n)).expect("config is valid");
        let t = accel
            .analyze_conv_layers(&[("conv4", conv4)])
            .expect("conv4 fits")
            .layers[0]
            .full_system_time;
        println!("  NDAC = {n:>3}: {t}");
    }

    println!();
    println!("sweep 2 — fast clock vs conv4 optical-core time");
    for ghz in [1.0f64, 2.0, 5.0, 10.0, 20.0] {
        let clock = ClockDomain::new("fast", ghz * 1e9).expect("positive frequency");
        let accel =
            Pcnna::new(PcnnaConfig::default().with_fast_clock(clock)).expect("config is valid");
        let t = accel
            .analyze_conv_layers(&[("conv4", conv4)])
            .expect("conv4 fits")
            .layers[0]
            .optical_time;
        println!("  fclk = {ghz:>4} GHz: {t}");
    }

    println!();
    println!("sweep 3 — scan order vs exact input loads (pipeline simulation, conv4)");
    for (label, scan) in [
        ("row-major ", ScanOrder::RowMajor),
        ("serpentine", ScanOrder::Serpentine),
    ] {
        let sim = PipelineSimulator::new(PcnnaConfig::default().with_scan(scan))
            .expect("config is valid");
        let r = sim.simulate_layer("conv4", &conv4).expect("conv4 fits");
        println!(
            "  {label}: {} input loads, sim time {}, SRAM hit rate {:.1}%",
            r.total_input_loads,
            r.total_time,
            100.0 * r.cache.hit_rate()
        );
    }
}
