//! Design-space exploration harness (beyond the paper): sweeps the full
//! `PcnnaConfig` × `SpectralBudget` knob grid for two zoo networks, prints
//! the Pareto frontiers, demonstrates seeded-search determinism, and closes
//! the loop with a fleet co-design ranking — run with
//! `cargo run --release --bin dse` (add `--smoke` for the CI-sized grid).
//!
//! Emits `BENCH_dse.json` (throughput + frontier counters) so the perf
//! trajectory of the explorer itself is tracked across commits.

use pcnna_dse::prelude::*;
use pcnna_fleet::prelude::*;
use std::time::Instant;

fn print_frontier(frontier: &ParetoFrontier, limit: usize) {
    println!(
        "  {:<10} {:>5} {:>5} {:>5} {:>6} {:>6} {:>7} {:>7} {:>10} {:>10} {:>9} {:>8} {:>7}",
        "design",
        "ndac",
        "nadc",
        "bits",
        "clock",
        "alloc",
        "spc GHz",
        "rad µm",
        "lat ms",
        "energy mJ",
        "area mm²",
        "snr dB",
        "passes"
    );
    for e in frontier.sorted_by_latency().iter().take(limit) {
        let c = &e.candidate;
        let p = &e.point;
        println!(
            "  {:<10} {:>5} {:>5} {:>5} {:>6.1} {:>6} {:>7.0} {:>7.1} {:>10.4} {:>10.3} {:>9.1} {:>8.1} {:>7}",
            format!("{:08x}", (p.fingerprint >> 32) as u32),
            c.config.n_input_dacs,
            c.config.n_adcs,
            c.config.adc.bits,
            c.config.fast_clock.frequency_hz() / 1e9,
            c.config.allocation.label(),
            c.budget.channel_spacing_hz / 1e9,
            c.budget.ring_radius_m * 1e6,
            1e3 * p.latency_s,
            1e3 * p.energy_j,
            p.area_mm2,
            p.snr_headroom_db,
            p.spectral_passes,
        );
    }
    if frontier.len() > limit {
        println!(
            "  … and {} more non-dominated designs",
            frontier.len() - limit
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let threads = default_threads();
    let space = if smoke {
        DesignSpace::smoke()
    } else {
        DesignSpace::default()
    };
    println!(
        "design space: {} points × 2 networks ({} threads, {} mode)",
        space.cardinality(),
        threads,
        if smoke { "smoke" } else { "full" }
    );
    println!();

    // --- exhaustive grid sweep, two zoo networks ---------------------
    let t0 = Instant::now();
    let mut total_stats = SearchStats::default();
    let mut network_lines = Vec::new();
    let mut alexnet_frontier = None;
    for evaluator in [Evaluator::alexnet(), Evaluator::vgg16()] {
        let t = Instant::now();
        let out = grid_sweep(&space, &evaluator, threads).expect("space is valid");
        let dt = t.elapsed().as_secs_f64();
        println!(
            "== {} == {} evaluated ({} valid, {} infeasible) in {:.2} s → {} Pareto designs",
            evaluator.workload(),
            out.stats.evaluated,
            out.stats.valid,
            out.stats.invalid,
            dt,
            out.frontier.len()
        );
        print_frontier(&out.frontier, 10);
        println!();
        total_stats.evaluated += out.stats.evaluated;
        total_stats.valid += out.stats.valid;
        total_stats.invalid += out.stats.invalid;
        network_lines.push(format!(
            "{{\"name\":\"{}\",\"evaluated\":{},\"valid\":{},\"frontier\":{},\"elapsed_s\":{:.3}}}",
            evaluator.workload(),
            out.stats.evaluated,
            out.stats.valid,
            out.frontier.len(),
            dt
        ));
        if evaluator.workload() == "alexnet" {
            alexnet_frontier = Some(out.frontier);
        }
    }
    let sweep_elapsed = t0.elapsed().as_secs_f64();

    // --- seeded evolutionary search: determinism check ---------------
    let evo_cfg = EvolutionConfig {
        population: if smoke { 16 } else { 64 },
        generations: if smoke { 3 } else { 10 },
        seed: 42,
        threads,
        ..EvolutionConfig::default()
    };
    let ev = Evaluator::alexnet();
    let a = evolve(&space, &ev, &evo_cfg).expect("space is valid");
    let b = evolve(&space, &ev, &evo_cfg).expect("space is valid");
    let deterministic = a.frontier == b.frontier;
    assert!(
        deterministic,
        "seed {} must reproduce the frontier",
        evo_cfg.seed
    );
    println!(
        "evolutionary search (seed {}): {} evaluations ({} cache hits) → {} Pareto designs; \
         repeat run identical: {}",
        evo_cfg.seed,
        a.stats.evaluated,
        a.stats.cache_hits,
        a.frontier.len(),
        deterministic
    );
    println!();

    // --- fleet co-design over the AlexNet frontier -------------------
    let frontier = alexnet_frontier.expect("alexnet swept above");
    let codesign_cfg = CodesignConfig {
        top_k: 4,
        fleet_size: 4,
        arrival: ArrivalProcess::Poisson {
            rate_rps: if smoke { 4_000.0 } else { 20_000.0 },
        },
        horizon_s: if smoke { 0.05 } else { 0.5 },
        ..CodesignConfig::default()
    };
    let classes = vec![
        NetworkClass::alexnet(0.004, 1.0),
        NetworkClass::lenet5(0.0005, 3.0),
    ];
    let rows = co_design(&frontier, &classes, &codesign_cfg).expect("frontier is non-empty");
    println!(
        "fleet co-design: {} fleets of {} instances, {:.0} req/s mixed AlexNet+LeNet traffic",
        rows.len(),
        codesign_cfg.fleet_size,
        match codesign_cfg.arrival {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            _ => 0.0,
        }
    );
    println!(
        "  {:<18} {:>8} {:>9} {:>12} {:>10} {:>9} {:>9}",
        "fleet", "SLO %", "watts", "SLO%/watt", "thpt r/s", "p99 ms", "mJ/req"
    );
    for r in &rows {
        println!(
            "  {:<18} {:>8.2} {:>9.1} {:>12.5} {:>10.0} {:>9.3} {:>9.3}{}",
            r.label,
            100.0 * r.slo_attainment,
            r.mean_power_w,
            100.0 * r.slo_per_watt,
            r.throughput_rps,
            r.p99_ms,
            r.energy_per_request_mj,
            if r.spectrally_bound { "  *" } else { "" },
        );
    }
    if rows.iter().any(|r| r.spectrally_bound) {
        println!(
            "  * design is spectral-partition bound; serving quotes price the \
             electronic pipeline only, so these rows are optimistic"
        );
    }
    println!();

    // --- perf-trajectory record --------------------------------------
    let elapsed = t0.elapsed().as_secs_f64();
    let evals_per_s = if sweep_elapsed > 0.0 {
        total_stats.evaluated as f64 / sweep_elapsed
    } else {
        0.0
    };
    let json = format!(
        "{{\"bench\":\"dse\",\"mode\":\"{}\",\"threads\":{},\"elapsed_s\":{:.3},\
         \"configs_evaluated\":{},\"valid\":{},\"invalid\":{},\"evals_per_s\":{:.0},\
         \"networks\":[{}],\"evolution_frontier\":{},\"deterministic\":{},\
         \"codesign_fleets\":{},\"best_slo_per_watt\":{:.6}}}\n",
        if smoke { "smoke" } else { "full" },
        threads,
        elapsed,
        total_stats.evaluated,
        total_stats.valid,
        total_stats.invalid,
        evals_per_s,
        network_lines.join(","),
        a.frontier.len(),
        deterministic,
        rows.len(),
        rows.first().map_or(0.0, |r| r.slo_per_watt),
    );
    match std::fs::write("BENCH_dse.json", &json) {
        Ok(()) => println!("wrote BENCH_dse.json"),
        Err(e) => eprintln!("could not write BENCH_dse.json: {e}"),
    }
    println!(
        "total: {} configs evaluated ({} valid) in {:.2} s ({:.0} evals/s)",
        total_stats.evaluated, total_stats.valid, elapsed, evals_per_s
    );
}
