//! Regenerates Figure 5: total microrings per AlexNet convolutional layer,
//! Filtered vs. Not-Filtered, plus the §V-A inline checks (`--check`).

use pcnna_cnn::zoo;
use pcnna_core::config::AllocationPolicy;
use pcnna_core::mapping::{figure5, AreaModel, RingAllocation};
use pcnna_core::report::render_fig5;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let layers = zoo::alexnet_conv_layers();
    let rows = figure5(&layers, &AreaModel::default());
    println!("Figure 5 — microrings per AlexNet conv layer");
    println!();
    print!("{}", render_fig5(&rows));

    if check {
        println!();
        println!("paper §V-A inline checks:");
        let conv1 = layers[0].1;
        let unf = RingAllocation::for_layer(&conv1, AllocationPolicy::Unfiltered);
        let fil = RingAllocation::for_layer(&conv1, AllocationPolicy::Filtered);
        println!(
            "  conv1 unfiltered rings = {} (paper: ~5.2 billion)",
            unf.rings
        );
        println!(
            "  conv1 filtered rings   = {} (paper: ~35 thousand)",
            fil.rings
        );
        println!(
            "  saving                 = {:.0}x (paper: >150k x)",
            fil.saving_vs_unfiltered(&conv1)
        );
        let conv4 = layers[3].1;
        let seq = RingAllocation::for_layer(&conv4, AllocationPolicy::FilteredChannelSequential);
        let area = AreaModel::default();
        println!(
            "  conv4 channel-sequential rings = {} -> {:.2} mm^2 (paper: 3456 rings, 2.2 mm^2)",
            seq.rings,
            area.rings_area_mm2(seq.rings)
        );
    }
}
