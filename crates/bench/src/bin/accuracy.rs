//! Functional-accuracy harness (extension experiment E1): runs the conv
//! layers of the CIFAR-small network through the photonic device models
//! under four conditions and prints the SNR table EXPERIMENTS.md records.
//!
//! `--serving` instead runs the joint (latency, accuracy) QoS bench:
//! heat-wave and laser-aging chaos under **loosened** serviceability
//! limits (drift budget 1.0 K, laser floor 0.1), so drifted instances
//! keep serving instead of failing over — and what they serve is
//! quoted below the strict class's accuracy floor. Each leg runs with
//! accuracy routing off and on; the bench asserts that routing off
//! serves a nonzero count below floor and that routing on strictly
//! reduces it, that every report is bit-identical across
//! (shards, threads) ∈ {1, 4} × {1, 8} plus a re-run, and writes the
//! wall-clock-free `BENCH_accuracy.json` artifact.

use pcnna_bench::report::{assert_books, json_f, write_artifact};
use pcnna_cnn::workload::Workload;
use pcnna_cnn::zoo;
use pcnna_core::config::PcnnaConfig;
use pcnna_core::functional::{FunctionalOptions, PhotonicConvExecutor};
use pcnna_fleet::prelude::*;

/// The serving mix of the joint-QoS bench: a strict class whose 0.85
/// top-1 floor sits just below the pristine proxy accuracy (0.89), and
/// a loose class that tolerates heavy quantization (0.50).
fn qos_scenario(kind: ChaosKind, accuracy_routing: bool, seed: u64) -> FleetScenario {
    // Loosened envelope: degradations the default limits would refuse
    // stay serviceable, so accuracy — not serviceability — is what the
    // chaos attacks.
    let limits = DegradationLimits {
        max_ambient_excursion_k: 1.0,
        min_laser_power_factor: 0.1,
    };
    let instances = vec![PcnnaConfig::default(); 4];
    let horizon_s = 0.05;
    // Laser aging emits its deepest decay step at the very end of the
    // generation horizon — compress it into the first half of the run
    // so the fastest diodes serve deep-decay (5-bit) quotes while
    // traffic is still arriving. Heat-wave peaks mid-run already.
    let chaos_horizon_s = match kind {
        ChaosKind::LaserAging => horizon_s / 2.0,
        _ => horizon_s,
    };
    FleetScenario {
        classes: vec![
            NetworkClass::alexnet(0.004, 1.0).with_min_accuracy(0.85),
            NetworkClass::lenet5(0.001, 3.0).with_min_accuracy(0.5),
        ],
        arrival: ArrivalProcess::Poisson { rate_rps: 45_000.0 },
        policy: Policy::NetworkAffinity,
        faults: chaos_timeline(
            kind,
            &instances,
            chaos_horizon_s,
            &ChaosConfig {
                limits,
                recalibration_s: 2e-3,
                seed,
            },
        ),
        instances,
        max_batch: 32,
        queue_capacity: 100_000,
        horizon_s,
        seed,
        limits,
        accuracy_routing,
        ..FleetScenario::default()
    }
}

/// Runs one leg across the (shards, threads) identity grid plus a
/// re-run and asserts every report is bit-identical.
fn run_identical(scenario: &FleetScenario, label: &str) -> FleetReport {
    let oracle = scenario.simulate_sharded(1, 1).expect("scenario is valid");
    for (shards, threads) in [(1, 8), (4, 1), (4, 8), (1, 1)] {
        let report = scenario
            .simulate_sharded(shards, threads)
            .expect("scenario is valid");
        assert_eq!(
            report, oracle,
            "{label}: shards={shards} threads={threads} must reproduce the \
             shards=1 oracle bit-for-bit"
        );
    }
    oracle
}

fn qos_record(kind: ChaosKind, routing: bool, report: &FleetReport) -> String {
    format!(
        "{{\"name\":\"{}\",\"accuracy_routing\":{},\"offered\":{},\"completed\":{},\
         \"below_accuracy\":{},\"accuracy_attainment\":{},\"slo_attainment\":{},\
         \"unserved\":{},\"availability\":{},\"deterministic\":true}}",
        kind.name(),
        routing,
        report.offered,
        report.completed,
        report.resilience.below_accuracy,
        json_f(report.accuracy_attainment),
        json_f(report.slo_attainment),
        report.resilience.unserved,
        json_f(report.resilience.availability),
    )
}

fn run_serving(seed: u64) {
    println!("joint (latency, accuracy) serving bench — seed {seed}, loosened limits");
    println!(
        "  {:<22} {:>8} {:>10} {:>10} {:>8} {:>8} {:>9}",
        "scenario", "routing", "completed", "below-acc", "acc %", "SLO %", "unserved"
    );
    let mut records = Vec::new();
    for kind in [ChaosKind::HeatWave, ChaosKind::LaserAging] {
        let mut below = [0u64; 2];
        for (i, routing) in [false, true].into_iter().enumerate() {
            let scenario = qos_scenario(kind, routing, seed);
            let label = format!("{} routing={routing}", kind.name());
            let report = run_identical(&scenario, &label);
            assert_books(&report, &label);
            assert_eq!(
                report.completed,
                report.per_class.iter().map(|c| c.on_accuracy).sum::<u64>()
                    + report.resilience.below_accuracy,
                "{label}: on/below accuracy must partition completed"
            );
            below[i] = report.resilience.below_accuracy;
            println!(
                "  {:<22} {:>8} {:>10} {:>10} {:>8.2} {:>8.2} {:>9}",
                kind.name(),
                routing,
                report.completed,
                report.resilience.below_accuracy,
                100.0 * report.accuracy_attainment,
                100.0 * report.slo_attainment,
                report.resilience.unserved,
            );
            records.push(qos_record(kind, routing, &report));
        }
        assert!(
            below[0] > 0,
            "{}: without routing, drifted instances must serve below floor",
            kind.name()
        );
        assert!(
            below[1] < below[0],
            "{}: accuracy routing must reduce served-below-accuracy ({} -> {})",
            kind.name(),
            below[0],
            below[1]
        );
    }
    let json = format!(
        "{{\"bench\":\"accuracy\",\"mode\":\"serving\",\"seed\":{seed},\
         \"scenarios\":[{}]}}\n",
        records.join(",")
    );
    write_artifact("BENCH_accuracy.json", &json);
    println!("all legs bit-identical across (shards, threads) in {{1,4}}x{{1,8}} and re-runs");
}

fn main() {
    let mut serving = false;
    let mut seed = 7u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--serving" => serving = true,
            "--seed" => {
                seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown flag {other:?} (known: --serving, --seed <n>)");
                std::process::exit(2);
            }
        }
    }
    if serving {
        run_serving(seed);
        return;
    }
    let exec = PhotonicConvExecutor::new(PcnnaConfig::default()).expect("default config is valid");
    let net = zoo::cifar_small();

    let conditions: [(&str, FunctionalOptions); 4] = [
        (
            "analog only",
            FunctionalOptions {
                noise: false,
                adc_quantization: false,
                dac_quantization: false,
                seed: 0,
            },
        ),
        ("quantized I/O", FunctionalOptions::default()),
        (
            "quantized + noise",
            FunctionalOptions {
                noise: true,
                seed: 42,
                ..FunctionalOptions::default()
            },
        ),
        (
            "noise only",
            FunctionalOptions {
                noise: true,
                seed: 42,
                adc_quantization: false,
                dac_quantization: false,
            },
        ),
    ];

    println!("E1 — photonic convolution accuracy vs the digital reference");
    println!("network: {} (conv layers)", net.name());
    println!();
    print!("{:<22}", "condition");
    for conv in net.conv_layers() {
        print!(" {:>12}", conv.name);
    }
    println!();
    for (label, opts) in &conditions {
        print!("{label:<22}");
        for (i, conv) in net.conv_layers().enumerate() {
            let wl = Workload::uniform(&conv.geometry, 300 + i as u64);
            let run = exec
                .run_layer(&conv.geometry, &wl.input, &wl.kernels, opts)
                .expect("layer fits the photonic link");
            print!(" {:>9.1} dB", run.accuracy.snr_db);
        }
        println!();
    }
    println!();
    println!("rows: device non-idealities only / + 16b DAC & 10b ADC quantization /");
    println!("      + shot, thermal, RIN noise at 1 mW per carrier / noise without quantization");
}
