//! Functional-accuracy harness (extension experiment E1): runs the conv
//! layers of the CIFAR-small network through the photonic device models
//! under four conditions and prints the SNR table EXPERIMENTS.md records.

use pcnna_cnn::workload::Workload;
use pcnna_cnn::zoo;
use pcnna_core::config::PcnnaConfig;
use pcnna_core::functional::{FunctionalOptions, PhotonicConvExecutor};

fn main() {
    let exec = PhotonicConvExecutor::new(PcnnaConfig::default()).expect("default config is valid");
    let net = zoo::cifar_small();

    let conditions: [(&str, FunctionalOptions); 4] = [
        (
            "analog only",
            FunctionalOptions {
                noise: false,
                adc_quantization: false,
                dac_quantization: false,
                seed: 0,
            },
        ),
        ("quantized I/O", FunctionalOptions::default()),
        (
            "quantized + noise",
            FunctionalOptions {
                noise: true,
                seed: 42,
                ..FunctionalOptions::default()
            },
        ),
        (
            "noise only",
            FunctionalOptions {
                noise: true,
                seed: 42,
                adc_quantization: false,
                dac_quantization: false,
            },
        ),
    ];

    println!("E1 — photonic convolution accuracy vs the digital reference");
    println!("network: {} (conv layers)", net.name());
    println!();
    print!("{:<22}", "condition");
    for conv in net.conv_layers() {
        print!(" {:>12}", conv.name);
    }
    println!();
    for (label, opts) in &conditions {
        print!("{label:<22}");
        for (i, conv) in net.conv_layers().enumerate() {
            let wl = Workload::uniform(&conv.geometry, 300 + i as u64);
            let run = exec
                .run_layer(&conv.geometry, &wl.input, &wl.kernels, opts)
                .expect("layer fits the photonic link");
            print!(" {:>9.1} dB", run.accuracy.snr_db);
        }
        println!();
    }
    println!();
    println!("rows: device non-idealities only / + 16b DAC & 10b ADC quantization /");
    println!("      + shot, thermal, RIN noise at 1 mW per carrier / noise without quantization");
}
