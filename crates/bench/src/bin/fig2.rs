//! Regenerates Figure 2: the receptive-field-filtering example — a 16×16
//! input feature map and five 3×3 kernels, with and without filtering of
//! the non-receptive-field values.

use pcnna_cnn::geometry::ConvGeometry;
use pcnna_core::config::AllocationPolicy;
use pcnna_core::mapping::{AreaModel, RingAllocation};

fn main() {
    let g = ConvGeometry::new(16, 3, 0, 1, 1, 5).expect("figure 2 geometry is valid");
    let area = AreaModel::default();
    println!("Figure 2 — MRR bank for a 16x16 input feature map, 5 kernels of 3x3");
    println!();
    for (label, policy) in [
        ("(a) without filtering", AllocationPolicy::Unfiltered),
        ("(b) with filtering   ", AllocationPolicy::Filtered),
    ] {
        let alloc = RingAllocation::for_layer(&g, policy);
        println!(
            "{label}: {:>6} wavelengths on the bus, {:>5} rings/bank x {} banks = {:>6} rings ({:.3} mm^2)",
            alloc.wavelengths,
            alloc.rings_per_bank,
            alloc.banks,
            alloc.rings,
            area.rings_area_mm2(alloc.rings),
        );
    }
    let unf = RingAllocation::for_layer(&g, AllocationPolicy::Unfiltered);
    let fil = RingAllocation::for_layer(&g, AllocationPolicy::Filtered);
    println!();
    println!(
        "filtering saves {:.1}x rings and {:.1}x wavelengths on this example",
        unf.rings as f64 / fil.rings as f64,
        unf.wavelengths as f64 / fil.wavelengths as f64,
    );
}
