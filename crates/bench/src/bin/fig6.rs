//! Regenerates Figure 6: per-layer execution time of AlexNet convolutions
//! on PCNNA(O), PCNNA(O+E), Eyeriss-like and YodaNN-like engines, with the
//! eq. (8) detail and the paper's two headline speedup claims.

use pcnna_bench::{figure6_alexnet, render_fig6};
use pcnna_cnn::zoo;
use pcnna_core::accel::Pcnna;
use pcnna_core::config::{BottleneckModel, PcnnaConfig};

fn main() {
    println!("Figure 6 — execution time of AlexNet conv layers");
    println!();
    let rows = figure6_alexnet();
    print!("{}", render_fig6(&rows));
    println!();

    // eq. (8) detail for the largest layer
    let layers = zoo::alexnet_conv_layers();
    let accel = Pcnna::new(PcnnaConfig::default()).expect("default config is valid");
    let report = accel
        .analyze_conv_layers(&layers)
        .expect("alexnet fits the paper design point");
    let conv4 = &report.layers[3];
    println!(
        "eq. (8) check, conv4: nc*m*s = {} updates / 10 DACs -> {} per location",
        conv4.timing.updates_per_location, conv4.timing.dac_time_per_location
    );

    let best_oe = rows
        .iter()
        .map(|r| r.speedup_oe_vs_eyeriss())
        .fold(0.0, f64::max);
    let best_o = rows
        .iter()
        .map(|r| r.speedup_o_vs_eyeriss())
        .fold(0.0, f64::max);
    println!();
    println!("paper claims:");
    println!("  full system  > 3 orders of magnitude: best O+E speedup = {best_oe:.0}x");
    println!("  optical core > 5 orders of magnitude: best O   speedup = {best_o:.0}x");

    // Reproduction extension: what the fuller bottleneck model says.
    let fuller = Pcnna::new(PcnnaConfig::default().with_bottleneck(BottleneckModel::MaxOfStages))
        .expect("config is valid");
    let full_report = fuller
        .analyze_conv_layers(&layers)
        .expect("alexnet fits the paper design point");
    println!();
    println!("reproduction extension — max-of-stages bottleneck model:");
    for l in &full_report.layers {
        println!(
            "  {:<7} {:>12}  bound by {}",
            l.name,
            l.full_system_time.to_string(),
            l.bottleneck
        );
    }
}
