//! Regenerates Figure 4: the high-level PCNNA architecture — pipeline
//! stages, the two clock domains, and a pipeline-simulation excerpt showing
//! the buffers isolating the fast optical core from the slow environment.

use pcnna_cnn::geometry::ConvGeometry;
use pcnna_core::config::PcnnaConfig;
use pcnna_core::simulator::PipelineSimulator;

fn main() {
    let cfg = PcnnaConfig::default();
    println!("Figure 4 — PCNNA hardware architecture");
    println!();
    println!("slow (main) clock domain:");
    println!("  off-chip DRAM  <-> kernel-weights buffer / input buffer / output buffer");
    println!(
        "fast clock domain ({} GHz):",
        cfg.fast_clock.frequency_hz() / 1e9
    );
    println!(
        "  SRAM cache ({} x 16b words, {} access)",
        cfg.sram.capacity_words(),
        cfg.sram.access_time
    );
    println!(
        "  {} input DACs + {} weight DAC @ {} GSa/s ({} bits)",
        cfg.n_input_dacs,
        cfg.n_weight_dacs,
        cfg.input_dac.rate_sps / 1e9,
        cfg.input_dac.bits
    );
    println!("  LD array -> MZMs -> MRR weight-bank repository -> photodiodes");
    println!("  {} ADCs @ {} GSa/s", cfg.n_adcs, cfg.adc.rate_sps / 1e9);
    println!();

    // A small layer's pipeline run to show the stage interplay.
    let g = ConvGeometry::new(12, 3, 1, 1, 4, 8).expect("demo geometry is valid");
    let sim = PipelineSimulator::new(cfg).expect("default config is valid");
    let r = sim.simulate_layer("demo", &g).expect("demo layer fits");
    println!("pipeline simulation of a demo layer ({g}):");
    println!("  total            : {}", r.total_time);
    println!("  front-end busy   : {}", r.busy.front_end);
    println!("  optical busy     : {}", r.busy.optical);
    println!("  back-end busy    : {}", r.busy.back_end);
    println!(
        "  optical core util: {:.1}% (idles waiting on electronic I/O — the paper's point)",
        100.0 * r.optical_utilization()
    );
    println!("  SRAM hit rate    : {:.1}%", 100.0 * r.cache.hit_rate());
}
