//! Spectral-feasibility harness (reproduction extension): checks every
//! layer of AlexNet, VGG-16, GoogLeNet-stem and ResNet-18 against the
//! C-band and microring-FSR carrier budgets the paper never discusses,
//! and reports the spectral-partitioning correction to eq. (7).

use pcnna_cnn::zoo;
use pcnna_core::config::PcnnaConfig;
use pcnna_core::feasibility::{render_feasibility, FeasibilityModel, SpectralBudget};

fn main() {
    let budget = SpectralBudget::default();
    let model =
        FeasibilityModel::new(PcnnaConfig::default(), budget).expect("default config is valid");
    println!(
        "spectral budgets at {} GHz spacing:",
        budget.channel_spacing_hz / 1e9
    );
    println!("  C band        : {} channels", budget.c_band_channels());
    println!(
        "  ring FSR      : {} channels ({:.1} nm FSR at 10 um radius)",
        budget.fsr_channels(),
        budget.fsr_hz() * 1550e-9 * 1550e-9 / 2.997_924_58e8 * 1e9,
    );
    println!(
        "  usable        : {} simultaneous carriers",
        budget.usable_channels()
    );
    println!();

    for (net, layers) in [
        ("AlexNet", zoo::alexnet_conv_layers()),
        ("GoogLeNet stem + 3a", zoo::googlenet_stem_conv_layers()),
        ("ResNet-18", zoo::resnet18_conv_layers()),
        ("VGG-16", zoo::vgg16_conv_layers()),
    ] {
        println!("== {net} ==");
        print!("{}", render_feasibility(&model.network(&layers)));
        let rows = model.network(&layers);
        let single = rows.iter().filter(|r| r.single_pass).count();
        println!(
            "{single}/{} layers run single-pass as the paper assumes\n",
            rows.len()
        );
    }
}
