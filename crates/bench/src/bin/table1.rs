//! Regenerates Table I: the convolution-layer parameter nomenclature,
//! instantiated for every AlexNet conv layer.

use pcnna_cnn::zoo;

fn main() {
    println!("Table I — convolution layer parameters (AlexNet instantiation)");
    println!();
    println!(
        "{:<8} {:>5} {:>4} {:>3} {:>3} {:>5} {:>5} {:>10} {:>10} {:>9}",
        "layer", "n", "m", "p", "s", "nc", "K", "Ninput", "Noutput", "Nkernel"
    );
    for (name, g) in zoo::alexnet_conv_layers() {
        println!(
            "{:<8} {:>5} {:>4} {:>3} {:>3} {:>5} {:>5} {:>10} {:>10} {:>9}",
            name,
            g.input_side(),
            g.kernel_side(),
            g.padding(),
            g.stride(),
            g.channels(),
            g.kernels(),
            g.n_input(),
            g.n_output(),
            g.n_kernel(),
        );
    }
    println!();
    println!("n: input side  m: kernel side  p: padding  s: stride");
    println!("nc: input channels  K: kernels");
    println!("Ninput = n*n*nc (eq.1)  Nkernel = m*m*nc (eq.2)");
    println!("Noutput = ((n+2p-m)/s + 1)^2 * K (eq.3)");
}
