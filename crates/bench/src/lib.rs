//! Figure/table regeneration harness for the PCNNA reproduction.
//!
//! One binary per paper artifact (see DESIGN.md §3 for the index):
//!
//! | target | artifact |
//! |--------|----------|
//! | `table1` | Table I — conv-layer parameters for AlexNet |
//! | `fig2`   | Figure 2 — filtering example, 16×16 input / five 3×3 kernels |
//! | `fig3`   | Figure 3 — kernel-location schedule |
//! | `fig4`   | Figure 4 — architecture stages and clock domains |
//! | `fig5`   | Figure 5 — microring counts per AlexNet layer |
//! | `fig6`   | Figure 6 — execution times vs. Eyeriss and YodaNN |
//! | `sweep`  | design-space sweep (beyond the paper) |
//!
//! The Criterion benches (`cargo bench`) time the *models themselves*
//! (reference conv, photonic MAC, mapping, analytical framework, pipeline
//! simulator) and re-emit the fig5/fig6 data as benchmark-attached output so
//! a CI run regenerates every number in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use pcnna_baselines::{AcceleratorModel, Eyeriss, YodaNn};
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::zoo;
use pcnna_core::accel::Pcnna;
use pcnna_core::config::PcnnaConfig;
use pcnna_electronics::time::SimTime;

/// One row of the Figure 6 comparison.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Layer name.
    pub layer: String,
    /// Eyeriss-like execution time.
    pub eyeriss: SimTime,
    /// YodaNN-like execution time.
    pub yodann: SimTime,
    /// PCNNA full system (optical + electronic I/O).
    pub pcnna_oe: SimTime,
    /// PCNNA optical core only.
    pub pcnna_o: SimTime,
}

impl Fig6Row {
    /// Speedup of the full PCNNA system over Eyeriss.
    #[must_use]
    pub fn speedup_oe_vs_eyeriss(&self) -> f64 {
        self.eyeriss.ratio(self.pcnna_oe)
    }

    /// Speedup of the optical core over Eyeriss.
    #[must_use]
    pub fn speedup_o_vs_eyeriss(&self) -> f64 {
        self.eyeriss.ratio(self.pcnna_o)
    }
}

/// Computes the Figure 6 rows for a set of layers under a config.
///
/// # Panics
///
/// Panics if a layer exceeds the configured hardware — the AlexNet layers
/// used by every caller are validated by construction.
#[must_use]
pub fn figure6_rows(config: PcnnaConfig, layers: &[(&str, ConvGeometry)]) -> Vec<Fig6Row> {
    let accel = Pcnna::new(config).expect("config is valid");
    let report = accel
        .analyze_conv_layers(layers)
        .expect("layers fit the paper design point");
    let eyeriss = Eyeriss::default();
    let yodann = YodaNn::default();
    report
        .layers
        .iter()
        .zip(layers)
        .map(|(row, (name, g))| Fig6Row {
            layer: (*name).to_owned(),
            eyeriss: eyeriss.layer_time(g),
            yodann: yodann.layer_time(g),
            pcnna_oe: row.full_system_time,
            pcnna_o: row.optical_time,
        })
        .collect()
}

/// The AlexNet Figure 6 with the default (paper) configuration.
#[must_use]
pub fn figure6_alexnet() -> Vec<Fig6Row> {
    let layers = zoo::alexnet_conv_layers();
    figure6_rows(PcnnaConfig::default(), &layers)
}

/// Renders Figure 6 rows as an aligned table with speedup columns.
#[must_use]
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>12} {:>12} {:>14} {:>12} {:>12} {:>12}\n",
        "layer", "Eyeriss", "YodaNN", "PCNNA(O+E)", "PCNNA(O)", "O+E-speedup", "O-speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>12} {:>12} {:>14} {:>12} {:>11.0}x {:>11.0}x\n",
            r.layer,
            r.eyeriss.to_string(),
            r.yodann.to_string(),
            r.pcnna_oe.to_string(),
            r.pcnna_o.to_string(),
            r.speedup_oe_vs_eyeriss(),
            r.speedup_o_vs_eyeriss(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_has_five_rows_with_expected_ordering() {
        let rows = figure6_alexnet();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            // Figure 6 ordering: Eyeriss slowest, then YodaNN, then
            // PCNNA(O+E), then PCNNA(O).
            assert!(r.eyeriss > r.yodann, "{}", r.layer);
            assert!(r.yodann > r.pcnna_oe, "{}", r.layer);
            assert!(r.pcnna_oe > r.pcnna_o, "{}", r.layer);
        }
    }

    #[test]
    fn paper_claim_full_system_3_orders() {
        // "3 orders of magnitude execution time improvement over
        // electronic engines" — at least one layer reaches 1000×.
        let rows = figure6_alexnet();
        let best = rows
            .iter()
            .map(Fig6Row::speedup_oe_vs_eyeriss)
            .fold(0.0, f64::max);
        assert!(best > 1000.0, "best O+E speedup {best}");
    }

    #[test]
    fn paper_claim_optical_5_orders() {
        // "its optical core potentially offer more than 5 order of
        // magnitude speedup"
        let rows = figure6_alexnet();
        let best = rows
            .iter()
            .map(Fig6Row::speedup_o_vs_eyeriss)
            .fold(0.0, f64::max);
        assert!(best > 100_000.0, "best optical speedup {best}");
    }

    #[test]
    fn render_contains_all_layers() {
        let s = render_fig6(&figure6_alexnet());
        for l in ["conv1", "conv2", "conv3", "conv4", "conv5"] {
            assert!(s.contains(l));
        }
    }
}
