//! Shared report plumbing for the fleet bench binaries.
//!
//! The `scenarios`, `control`, and `trace` bins all emit deterministic
//! JSON artifacts under the same contract — no wall-clock fields,
//! fixed-precision floats, conservation asserted before anything is
//! written. This module is the single home for that contract so the
//! bins cannot drift apart: number formatting ([`json_f`]), the
//! bookkeeping invariant ([`assert_books`]), the shared serving mix
//! ([`serving_classes`], [`chaos_config`]), and artifact writing
//! ([`write_artifact`]).

use pcnna_fleet::prelude::{
    ArrivalProcess, ChaosConfig, ChaosKind, ClassSpec, FaultSpec, FleetReport, InstanceSpec,
    NetworkClass, Policy, ScenarioSpec,
};

/// Formats a float for a deterministic JSON artifact: fixed six-digit
/// precision keeps records compact, and `f64` formatting itself is
/// deterministic, so the byte-identity contract holds either way.
#[must_use]
pub fn json_f(v: f64) -> String {
    format!("{v:.6}")
}

/// Asserts the fleet ledger balances: every offered request was
/// admitted or rejected, and every admitted request reached exactly
/// one terminal state (`admitted = completed + unserved + shed`).
/// Open-loop runs have `shed = 0`, so the same invariant covers both
/// bench paths.
///
/// # Panics
///
/// Panics (with `label` in the message) if either book is off — a
/// dropped or duplicated request anywhere in the engine.
pub fn assert_books(report: &FleetReport, label: &str) {
    assert_eq!(
        report.offered,
        report.admitted + report.rejected,
        "{label}: offered/admitted/rejected books must balance"
    );
    assert_eq!(
        report.admitted,
        report.completed + report.resilience.unserved + report.resilience.shed,
        "{label}: conservation (admitted = completed + unserved + shed)"
    );
}

/// The serving mix every fleet bench runs: a latency-tight AlexNet
/// class against a cheap, heavily weighted LeNet class — enough
/// contrast that scheduling and degradation visibly move per-class
/// numbers.
#[must_use]
pub fn serving_classes() -> Vec<NetworkClass> {
    vec![
        NetworkClass::alexnet(0.004, 1.0),
        NetworkClass::lenet5(0.001, 3.0),
    ]
}

/// The chaos generator settings the bench bins share: a recalibration
/// window sized to the mode's horizon and the run's seed, everything
/// else at defaults.
#[must_use]
pub fn chaos_config(smoke: bool, seed: u64) -> ChaosConfig {
    ChaosConfig {
        recalibration_s: if smoke { 2e-3 } else { 10e-3 },
        seed,
        ..ChaosConfig::default()
    }
}

/// [`serving_classes`] as scenario-file class specs — the DSL form of
/// the same mix, used by the committed `scenarios/*.json` files.
#[must_use]
pub fn serving_class_specs() -> Vec<ClassSpec> {
    vec![
        ClassSpec {
            network: "alexnet".to_owned(),
            slo_s: 0.004,
            weight: 1.0,
            min_accuracy: 0.0,
        },
        ClassSpec {
            network: "lenet5".to_owned(),
            slo_s: 0.001,
            weight: 3.0,
            min_accuracy: 0.0,
        },
    ]
}

/// The scenario-file form of one chaos-matrix leg: compiles to exactly
/// the `FleetScenario` the scenarios bin hard-codes for `(kind, smoke,
/// seed)` — the equivalence the bin asserts in-run before anything
/// depends on the DSL.
#[must_use]
pub fn matrix_spec(kind: ChaosKind, smoke: bool, seed: u64) -> ScenarioSpec {
    let (fleet, rate_rps, horizon_s) = if smoke {
        (4, 45_000.0, 0.05)
    } else {
        (6, 90_000.0, 0.5)
    };
    ScenarioSpec {
        name: kind.name().to_owned(),
        classes: serving_class_specs(),
        arrival: ArrivalProcess::Poisson { rate_rps },
        policy: Policy::NetworkAffinity,
        instances: vec![InstanceSpec::defaults(fleet)],
        max_batch: 32,
        queue_capacity: 100_000,
        resident_weights: true,
        accuracy_routing: false,
        horizon_s,
        seed,
        limits: pcnna_photonics::degradation::DegradationLimits::default(),
        faults: FaultSpec::Chaos {
            kind,
            recalibration_s: chaos_config(smoke, seed).recalibration_s,
            seed,
        },
        control: None,
    }
}

/// Writes a bench artifact, reporting success on stdout and failure on
/// stderr without aborting the run — CI treats the artifact as
/// best-effort and gates on the in-process asserts instead.
pub fn write_artifact(path: &str, payload: &str) {
    match std::fs::write(path, payload) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f_is_fixed_precision() {
        assert_eq!(json_f(0.5), "0.500000");
        assert_eq!(json_f(1.0 / 3.0), "0.333333");
    }

    #[test]
    fn serving_classes_mix_is_stable() {
        let classes = serving_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].name, "alexnet");
        assert_eq!(classes[1].name, "lenet5");
    }

    #[test]
    fn matrix_specs_are_valid_and_mode_scaled() {
        for kind in ChaosKind::ALL {
            let smoke = matrix_spec(kind, true, 7);
            assert!(smoke.validate().is_ok(), "{kind:?} smoke spec invalid");
            assert_eq!(smoke.n_instances(), 4);
            let full = matrix_spec(kind, false, 7);
            assert!(full.validate().is_ok(), "{kind:?} full spec invalid");
            assert_eq!(full.n_instances(), 6);
            assert!(full.horizon_s > smoke.horizon_s);
        }
    }

    #[test]
    fn chaos_config_scales_recalibration_with_mode() {
        assert!(chaos_config(true, 7).recalibration_s < chaos_config(false, 7).recalibration_s);
        assert_eq!(chaos_config(true, 9).seed, 9);
    }
}
