//! Benchmarks the kernel-location scheduler: exact update-set computation
//! (the simulator's hot loop) across layer shapes and scan orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcnna_cnn::zoo;
use pcnna_core::config::ScanOrder;
use pcnna_core::scheduler::LocationSchedule;

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    for (name, g) in zoo::alexnet_conv_layers() {
        group.bench_with_input(BenchmarkId::new("update_counts", name), &g, |b, g| {
            let sched = LocationSchedule::new(*g, ScanOrder::RowMajor);
            b.iter(|| sched.update_counts())
        });
    }
    let conv4 = zoo::alexnet_conv_layers()[3].1;
    for (label, scan) in [
        ("row_major", ScanOrder::RowMajor),
        ("serpentine", ScanOrder::Serpentine),
    ] {
        group.bench_with_input(BenchmarkId::new("stats", label), &conv4, |b, g| {
            let sched = LocationSchedule::new(*g, scan);
            b.iter(|| sched.stats())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
