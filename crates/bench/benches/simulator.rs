//! Benchmarks the cycle-approximate pipeline simulator, including a full
//! AlexNet pass (all 4261 kernel locations with exact update sets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::zoo;
use pcnna_core::config::{PcnnaConfig, ScanOrder};
use pcnna_core::simulator::PipelineSimulator;

fn bench_simulator(c: &mut Criterion) {
    let sim = PipelineSimulator::new(PcnnaConfig::default()).unwrap();

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    let small = ConvGeometry::new(16, 3, 1, 1, 8, 16).unwrap();
    group.bench_function("small_layer", |b| {
        b.iter(|| sim.simulate_layer("small", &small).unwrap())
    });

    let conv4 = zoo::alexnet_conv_layers()[3].1;
    group.bench_function("alexnet_conv4", |b| {
        b.iter(|| sim.simulate_layer("conv4", &conv4).unwrap())
    });

    let alexnet = zoo::alexnet_conv_layers();
    group.bench_function("alexnet_all_layers", |b| {
        b.iter(|| sim.simulate_network(&alexnet).unwrap())
    });

    for (label, scan) in [
        ("row_major", ScanOrder::RowMajor),
        ("serpentine", ScanOrder::Serpentine),
    ] {
        let s = PipelineSimulator::new(PcnnaConfig::default().with_scan(scan)).unwrap();
        group.bench_with_input(BenchmarkId::new("scan_order", label), &conv4, |b, g| {
            b.iter(|| s.simulate_layer("conv4", g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
