//! Benchmarks the ring-allocation mapper and Figure 5 assembly over the
//! model zoo (AlexNet, VGG-16).

use criterion::{criterion_group, criterion_main, Criterion};
use pcnna_cnn::zoo;
use pcnna_core::config::AllocationPolicy;
use pcnna_core::mapping::{figure5, AreaModel, RingAllocation};

fn bench_mapping(c: &mut Criterion) {
    let alexnet = zoo::alexnet_conv_layers();
    let vgg = zoo::vgg16_conv_layers();

    c.bench_function("mapping/alexnet_fig5", |b| {
        b.iter(|| figure5(&alexnet, &AreaModel::default()))
    });

    c.bench_function("mapping/vgg16_all_policies", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for (_, g) in &vgg {
                for policy in [
                    AllocationPolicy::Unfiltered,
                    AllocationPolicy::Filtered,
                    AllocationPolicy::FilteredChannelSequential,
                ] {
                    total += RingAllocation::for_layer(g, policy).rings;
                }
            }
            total
        })
    });
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
