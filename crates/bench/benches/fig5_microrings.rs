//! Figure 5 regeneration bench: times the full Figure 5 computation and
//! prints the regenerated table once so `cargo bench` leaves the paper
//! artifact in its log (EXPERIMENTS.md quotes this output).

use criterion::{criterion_group, criterion_main, Criterion};
use pcnna_cnn::zoo;
use pcnna_core::mapping::{figure5, AreaModel};
use pcnna_core::report::render_fig5;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn bench_fig5(c: &mut Criterion) {
    let layers = zoo::alexnet_conv_layers();
    PRINT_ONCE.call_once(|| {
        println!("\n--- Figure 5 (regenerated) ---");
        print!("{}", render_fig5(&figure5(&layers, &AreaModel::default())));
        println!("------------------------------");
    });
    c.bench_function("fig5/regenerate", |b| {
        b.iter(|| figure5(&layers, &AreaModel::default()))
    });
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
