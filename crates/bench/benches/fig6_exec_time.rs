//! Figure 6 regeneration bench: times the full four-engine comparison and
//! prints the regenerated table once so `cargo bench` leaves the paper
//! artifact in its log (EXPERIMENTS.md quotes this output).

use criterion::{criterion_group, criterion_main, Criterion};
use pcnna_bench::{figure6_alexnet, figure6_rows, render_fig6};
use pcnna_cnn::zoo;
use pcnna_core::config::PcnnaConfig;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn bench_fig6(c: &mut Criterion) {
    PRINT_ONCE.call_once(|| {
        println!("\n--- Figure 6 (regenerated) ---");
        print!("{}", render_fig6(&figure6_alexnet()));
        println!("------------------------------");
    });
    let layers = zoo::alexnet_conv_layers();
    c.bench_function("fig6/regenerate", |b| {
        b.iter(|| figure6_rows(PcnnaConfig::default(), &layers))
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
