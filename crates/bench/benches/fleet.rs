//! Fleet-engine benches: the acceptance figure is the memoized hot loop
//! sustaining ≥ 100k simulated requests/second on one core (the whole
//! discrete-event simulation runs single-threaded inside `simulate`;
//! parallelism is only across replicas).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use pcnna_core::PcnnaConfig;
use pcnna_fleet::prelude::*;

fn scenario(rate_rps: f64, horizon_s: f64, policy: Policy) -> FleetScenario {
    FleetScenario {
        classes: vec![
            NetworkClass::lenet5(0.005, 2.0),
            NetworkClass::alexnet(0.050, 1.0),
        ],
        arrival: ArrivalProcess::Poisson { rate_rps },
        policy,
        instances: vec![PcnnaConfig::default(); 4],
        horizon_s,
        queue_capacity: 1_000_000,
        ..FleetScenario::default()
    }
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    // One-time setup cost: quoting instances × classes.
    group.bench_function("quote_table/4x2", |b| {
        let s = scenario(10_000.0, 0.1, Policy::Fifo);
        b.iter(|| s.quote_table().unwrap())
    });

    // The headline: simulated requests per wall-clock second. ~50k
    // requests per simulate() call at this rate/horizon.
    for policy in [
        Policy::Fifo,
        Policy::EarliestDeadlineFirst,
        Policy::NetworkAffinity,
    ] {
        let s = scenario(50_000.0, 1.0, policy);
        let completed = s.simulate().unwrap().completed;
        group.throughput(Throughput::Elements(completed));
        group.bench_with_input(
            BenchmarkId::new("simulate_50k", format!("{policy:?}")),
            &s,
            |b, s| b.iter(|| s.simulate().unwrap()),
        );
    }

    // Arrival-process shapes at a fixed policy.
    for (label, arrival) in [
        ("poisson", ArrivalProcess::Poisson { rate_rps: 50_000.0 }),
        (
            "mmpp",
            ArrivalProcess::Mmpp {
                low_rps: 10_000.0,
                high_rps: 90_000.0,
                dwell_low_s: 0.05,
                dwell_high_s: 0.05,
            },
        ),
        (
            "diurnal",
            ArrivalProcess::Diurnal {
                base_rps: 10_000.0,
                peak_rps: 90_000.0,
                period_s: 0.5,
            },
        ),
    ] {
        let s = FleetScenario {
            arrival,
            ..scenario(50_000.0, 1.0, Policy::NetworkAffinity)
        };
        let completed = s.simulate().unwrap().completed;
        group.throughput(Throughput::Elements(completed));
        group.bench_with_input(BenchmarkId::new("arrival", label), &s, |b, s| {
            b.iter(|| s.simulate().unwrap())
        });
    }

    group.finish();
}

/// Emits `BENCH_fleet.json` — the machine-readable record CI uploads
/// alongside the criterion output (one timed headline run: simulated
/// requests per wall-clock second on the 50k-rps affinity scenario).
fn write_record() {
    let s = scenario(50_000.0, 1.0, Policy::NetworkAffinity);
    let warm = s.simulate().unwrap();
    let t = std::time::Instant::now();
    let r = s.simulate().unwrap();
    let elapsed = t.elapsed().as_secs_f64();
    assert_eq!(warm.completed, r.completed, "same seed must reproduce");
    let sim_rps = if elapsed > 0.0 {
        r.completed as f64 / elapsed
    } else {
        0.0
    };
    let json = format!(
        "{{\"bench\":\"fleet\",\"scenario_rate_rps\":50000,\"horizon_s\":1.0,\
         \"policy\":\"NetworkAffinity\",\"completed\":{},\"elapsed_s\":{elapsed:.4},\
         \"sim_requests_per_s\":{sim_rps:.0},\"slo_attainment\":{:.6}}}\n",
        r.completed, r.slo_attainment
    );
    // cargo runs benches with CWD = the package dir; pin the record to
    // the workspace root where the other BENCH_*.json records live
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote BENCH_fleet.json ({sim_rps:.0} sim req/s)"),
        Err(e) => eprintln!("could not write BENCH_fleet.json: {e}"),
    }
}

criterion_group!(benches, bench_fleet);

fn main() {
    benches();
    write_record();
}
