//! Benchmarks the reference convolution kernels (the ground-truth engine
//! every other result is validated against): direct vs. im2col on
//! representative layer shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::reference::{conv2d_direct, conv2d_im2col, conv2d_im2col_scratch, ConvScratch};
use pcnna_cnn::winograd::{conv2d_winograd, supports};
use pcnna_cnn::workload::Workload;

fn bench_conv_reference(c: &mut Criterion) {
    let cases = [
        ("lenet_c1", ConvGeometry::new(28, 5, 2, 1, 1, 6).unwrap()),
        ("cifar_c2", ConvGeometry::new(16, 3, 1, 1, 8, 16).unwrap()),
        (
            "alex_c3_slice",
            ConvGeometry::new(13, 3, 1, 1, 64, 32).unwrap(),
        ),
    ];
    let mut group = c.benchmark_group("conv_reference");
    for (name, g) in cases {
        let wl = Workload::gaussian(&g, 1);
        group.bench_with_input(BenchmarkId::new("direct", name), &g, |b, g| {
            b.iter(|| conv2d_direct(g, &wl.input, &wl.kernels).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("im2col", name), &g, |b, g| {
            b.iter(|| conv2d_im2col(g, &wl.input, &wl.kernels).unwrap())
        });
        // The electronic-baseline steady state: warm caller-provided
        // scratch, blocked GEMM, zero allocation per convolution.
        group.bench_with_input(BenchmarkId::new("im2col_scratch", name), &g, |b, g| {
            let mut scratch = ConvScratch::new();
            conv2d_im2col_scratch(g, &wl.input, &wl.kernels, &mut scratch).unwrap();
            b.iter(|| {
                conv2d_im2col_scratch(g, &wl.input, &wl.kernels, &mut scratch).unwrap();
                scratch.output().len()
            })
        });
        if supports(&g) {
            group.bench_with_input(BenchmarkId::new("winograd", name), &g, |b, g| {
                b.iter(|| conv2d_winograd(g, &wl.input, &wl.kernels).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_conv_reference);
criterion_main!(benches);
