//! Benchmarks the functional photonic convolution executor: full layers of
//! the CIFAR-small network through the device models, ideal and noisy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::workload::Workload;
use pcnna_core::config::PcnnaConfig;
use pcnna_core::functional::{FunctionalOptions, PhotonicConvExecutor};

fn bench_functional(c: &mut Criterion) {
    let exec = PhotonicConvExecutor::new(PcnnaConfig::default()).unwrap();
    let mut group = c.benchmark_group("functional_conv");
    group.sample_size(10);

    let cases = [
        ("tiny_6x6", ConvGeometry::new(6, 3, 0, 1, 2, 3).unwrap()),
        ("cifar_c1", ConvGeometry::new(32, 3, 1, 1, 3, 8).unwrap()),
        ("lenet_c1", ConvGeometry::new(28, 5, 2, 1, 1, 6).unwrap()),
    ];
    for (name, g) in cases {
        let wl = Workload::uniform(&g, 1);
        group.bench_with_input(BenchmarkId::new("ideal", name), &g, |b, g| {
            b.iter(|| {
                exec.run_layer(g, &wl.input, &wl.kernels, &FunctionalOptions::default())
                    .unwrap()
            })
        });
        let noisy = FunctionalOptions {
            noise: true,
            seed: 2,
            ..FunctionalOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("noisy", name), &g, |b, g| {
            b.iter(|| exec.run_layer(g, &wl.input, &wl.kernels, &noisy).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_functional);
criterion_main!(benches);
