//! Benchmarks the photonic MAC datapath: weight-bank calibration, full
//! `O(N²)` propagation, and the compiled `O(N)` fast path, at receptive-
//! field sizes drawn from real layers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcnna_photonics::link::{BroadcastWeightLink, LinkConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_link(channels: usize, banks: usize, seed: u64) -> (BroadcastWeightLink, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut link = BroadcastWeightLink::new(LinkConfig::default(), channels, banks).unwrap();
    for b in 0..banks {
        let w: Vec<f64> = (0..channels).map(|_| rng.gen_range(-0.9..0.9)).collect();
        link.set_weights(b, &w).unwrap();
    }
    let x: Vec<f64> = (0..channels).map(|_| rng.gen_range(0.0..1.0)).collect();
    (link, x)
}

fn bench_photonic_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("photonic_mac");
    for &(channels, banks) in &[(9usize, 5usize), (25, 6), (75, 8)] {
        let (link, x) = make_link(channels, banks, 7);
        let compiled = link.compile();
        let label = format!("{channels}ch_{banks}k");
        group.bench_with_input(BenchmarkId::new("full", &label), &x, |b, x| {
            b.iter(|| link.mac_ideal(x).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("compiled", &label), &x, |b, x| {
            b.iter(|| compiled.mac_ideal(x).unwrap())
        });
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_with_input(BenchmarkId::new("compiled_noisy", &label), &x, |b, x| {
            b.iter(|| compiled.mac_noisy(x, &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("weight_bank_calibration");
    for &channels in &[9usize, 25, 75] {
        group.bench_with_input(
            BenchmarkId::from_parameter(channels),
            &channels,
            |b, &channels| {
                let mut rng = StdRng::seed_from_u64(1);
                let w: Vec<f64> = (0..channels).map(|_| rng.gen_range(-0.9..0.9)).collect();
                b.iter(|| {
                    let mut link =
                        BroadcastWeightLink::new(LinkConfig::default(), channels, 1).unwrap();
                    link.set_weights(0, &w).unwrap();
                    link
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_photonic_mac, bench_calibration);
criterion_main!(benches);
