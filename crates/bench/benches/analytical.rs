//! Benchmarks the analytical execution-time framework (eq. (6)–(8)) over
//! AlexNet and VGG-16, in both bottleneck models.

use criterion::{criterion_group, criterion_main, Criterion};
use pcnna_cnn::zoo;
use pcnna_core::accel::Pcnna;
use pcnna_core::config::{BottleneckModel, PcnnaConfig};

fn bench_analytical(c: &mut Criterion) {
    let alexnet = zoo::alexnet_conv_layers();
    let dac_only = Pcnna::new(PcnnaConfig::default()).unwrap();
    let fuller =
        Pcnna::new(PcnnaConfig::default().with_bottleneck(BottleneckModel::MaxOfStages)).unwrap();

    c.bench_function("analytical/alexnet_dac_only", |b| {
        b.iter(|| dac_only.analyze_conv_layers(&alexnet).unwrap())
    });
    c.bench_function("analytical/alexnet_max_of_stages", |b| {
        b.iter(|| fuller.analyze_conv_layers(&alexnet).unwrap())
    });

    // VGG-16 contains layers whose receptive fields exceed the paper's
    // SRAM; filter to the ones that fit, as a downstream user would.
    let vgg: Vec<_> = zoo::vgg16_conv_layers()
        .into_iter()
        .filter(|(_, g)| g.n_kernel() <= 8192)
        .collect();
    c.bench_function("analytical/vgg16_fitting_layers", |b| {
        b.iter(|| dac_only.analyze_conv_layers(&vgg).unwrap())
    });
}

criterion_group!(benches, bench_analytical);
criterion_main!(benches);
