//! Candidate evaluation: from a [`Candidate`] and a named CNN workload to
//! a multi-objective [`DesignPoint`].
//!
//! ## The four objectives
//!
//! | objective          | sense    | source |
//! |--------------------|----------|--------|
//! | `latency_s`        | minimize | per layer, the later of the electronic bound ([`AnalyticalModel`] full-system time) and the spectrally-partitioned optical bound ([`FeasibilityModel`] corrected optical time), summed over the network |
//! | `energy_j`         | minimize | [`PowerModel`] per-layer ledgers (converters, memories, lasers, heaters, modulators, receivers) at the analytical execution time |
//! | `area_mm2`         | minimize | converter die areas × counts + SRAM + the largest layer's MRR footprint at the configured ring pitch |
//! | `snr_headroom_db`  | maximize | photonic link full-scale SNR at the candidate's detection bandwidth, degraded by adjacent-channel crosstalk through the ring's Lorentzian response at the configured WDM spacing, minus the SNR an ideal `adc.bits`-bit quantizer demands (`6.02·bits + 1.76` dB) |
//!
//! The crosstalk term is what makes the wavelength knob a genuine
//! trade-off: tighter spacing buys more simultaneous carriers (fewer
//! spectral passes → lower latency) but parks the neighbours closer to
//! each ring's resonance (more interference → less headroom).
//!
//! ## Dominance rule
//!
//! All four objectives are folded into a minimized vector (headroom is
//! negated). `a` **dominates** `b` iff `a` is no worse in every component
//! and strictly better in at least one; **weak dominance** drops the
//! strictness requirement (so a point weakly dominates its own copy). The
//! Pareto frontier keeps exactly the points no other evaluated point
//! dominates.
//!
//! Candidates whose workload does not fit (SRAM working set, invalid
//! config) or whose objectives come out non-finite are *infeasible*:
//! [`Evaluator::evaluate`] returns `None` and the search counts them
//! without inserting anything.

use crate::space::Candidate;
use crate::{DseError, Result};
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::zoo;
use pcnna_core::analytical::AnalyticalModel;
use pcnna_core::feasibility::FeasibilityModel;
use pcnna_core::power::{PowerAssumptions, PowerModel};
use pcnna_photonics::constants::SPEED_OF_LIGHT;
use pcnna_photonics::link::BroadcastWeightLink;
use serde::{Deserialize, Serialize};

/// Power ratio of adjacent-channel crosstalk: the two nearest WDM
/// neighbours leak through a ring's Lorentzian drop response evaluated one
/// channel spacing off resonance (`T(δ) = 1 / (1 + (2δ/FWHM)²)`,
/// `FWHM = f₀/Q`).
#[must_use]
pub fn crosstalk_ratio(q_factor: f64, spacing_hz: f64, center_m: f64) -> f64 {
    let f0 = SPEED_OF_LIGHT / center_m;
    let fwhm = f0 / q_factor;
    2.0 / (1.0 + (2.0 * spacing_hz / fwhm).powi(2))
}

/// The evaluated objectives (plus diagnostics) of one candidate on one
/// workload. `Copy` + `PartialEq` so cache hits can be checked for
/// bit-identity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The evaluated candidate's fingerprint (cache key).
    pub fingerprint: u64,
    /// End-to-end single-frame latency over the workload, seconds
    /// (minimize).
    pub latency_s: f64,
    /// Energy per frame, joules (minimize).
    pub energy_j: f64,
    /// Die-area proxy, mm² (minimize).
    pub area_mm2: f64,
    /// Link SNR minus the ADC's quantization-SNR demand, dB (maximize).
    pub snr_headroom_db: f64,
    /// Simultaneous WDM carriers the spectral budget allows.
    pub usable_channels: u64,
    /// Total sequential spectral passes across the workload's layers.
    pub spectral_passes: u64,
    /// Whether any layer's latency was bound by spectral partitioning
    /// rather than the electronic pipeline. Consumers that price this
    /// design with electronics-only models (e.g. the fleet engine's
    /// serving quotes) underestimate its service time — the co-design
    /// stage flags such rows.
    pub spectrally_bound: bool,
    /// Convenience: `1 / latency_s`, frames/second.
    pub throughput_fps: f64,
}

impl DesignPoint {
    /// The minimized objective vector: `[latency, energy, area,
    /// -snr_headroom]`.
    #[must_use]
    pub fn objectives(&self) -> [f64; 4] {
        [
            self.latency_s,
            self.energy_j,
            self.area_mm2,
            -self.snr_headroom_db,
        ]
    }

    /// Whether every objective is finite (non-finite points never enter a
    /// frontier).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.objectives().iter().all(|v| v.is_finite())
    }

    /// Strict Pareto dominance: no worse everywhere, strictly better
    /// somewhere.
    #[must_use]
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let a = self.objectives();
        let b = other.objectives();
        let mut strictly_better = false;
        for (x, y) in a.iter().zip(&b) {
            if x > y {
                return false;
            }
            if x < y {
                strictly_better = true;
            }
        }
        strictly_better
    }

    /// Weak dominance: no worse everywhere (a point weakly dominates its
    /// own copy).
    #[must_use]
    pub fn weakly_dominates(&self, other: &DesignPoint) -> bool {
        self.objectives()
            .iter()
            .zip(&other.objectives())
            .all(|(x, y)| x <= y)
    }
}

/// Evaluates candidates against one named CNN workload.
#[derive(Debug, Clone)]
pub struct Evaluator {
    workload: String,
    layers: Vec<(String, ConvGeometry)>,
    assumptions: PowerAssumptions,
}

impl Evaluator {
    /// Builds an evaluator over explicit layers (zoo reference format).
    #[must_use]
    pub fn new(
        workload: impl Into<String>,
        layers: &[(&str, ConvGeometry)],
        assumptions: PowerAssumptions,
    ) -> Self {
        Evaluator {
            workload: workload.into(),
            layers: layers.iter().map(|(n, g)| ((*n).to_owned(), *g)).collect(),
            assumptions,
        }
    }

    /// AlexNet's five conv layers (the paper's evaluation network).
    #[must_use]
    pub fn alexnet() -> Self {
        Evaluator::new(
            "alexnet",
            &zoo::alexnet_conv_layers(),
            PowerAssumptions::default(),
        )
    }

    /// VGG-16's thirteen conv layers (the heavy workload).
    #[must_use]
    pub fn vgg16() -> Self {
        Evaluator::new(
            "vgg16",
            &zoo::vgg16_conv_layers(),
            PowerAssumptions::default(),
        )
    }

    /// LeNet-5's three conv layers (the light workload).
    #[must_use]
    pub fn lenet5() -> Self {
        let net = zoo::lenet5();
        let layers: Vec<(String, ConvGeometry)> = net
            .conv_layers()
            .map(|c| (c.name.clone(), c.geometry))
            .collect();
        let refs: Vec<(&str, ConvGeometry)> =
            layers.iter().map(|(n, g)| (n.as_str(), *g)).collect();
        Evaluator::new("lenet5", &refs, PowerAssumptions::default())
    }

    /// The workload name.
    #[must_use]
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// The workload's layers in borrowed (zoo) form.
    #[must_use]
    pub fn layer_refs(&self) -> Vec<(&str, ConvGeometry)> {
        self.layers.iter().map(|(n, g)| (n.as_str(), *g)).collect()
    }

    /// Evaluates a candidate, reporting *why* it is infeasible.
    ///
    /// # Errors
    ///
    /// Returns the underlying config/resource/photonic failure, or
    /// [`DseError::NonFiniteObjective`] if a model produces a non-finite
    /// objective value.
    pub fn evaluate_detailed(&self, candidate: &Candidate) -> Result<DesignPoint> {
        self.evaluate_detailed_with(candidate, candidate.fingerprint())
    }

    /// [`evaluate_detailed`](Self::evaluate_detailed) with a
    /// caller-computed fingerprint, so search loops that already keyed
    /// their cache by the fingerprint do not hash the candidate twice.
    ///
    /// The body is the workspace's hottest analysis loop (a grid sweep
    /// runs it thousands of times per second), so it goes through the
    /// core models' lean per-layer entry points
    /// ([`AnalyticalModel::layer_full_system_time`],
    /// [`FeasibilityModel::layer_spectrum`],
    /// [`PowerModel::layer_energy_j`]) and iterates the evaluator's
    /// stored geometry directly: layer names were interned once at
    /// construction and no per-candidate map, vector, or string is built.
    ///
    /// # Errors
    ///
    /// As [`evaluate_detailed`](Self::evaluate_detailed).
    pub fn evaluate_detailed_with(
        &self,
        candidate: &Candidate,
        fingerprint: u64,
    ) -> Result<DesignPoint> {
        // Score every candidate under the same link/knob coupling,
        // whether it came from `DesignSpace::assemble` (already
        // harmonized — this is idempotent) or was built by hand. The
        // verdict keeps the *caller's* fingerprint so it stays consistent
        // with the cache key the search computed before evaluating.
        let candidate = candidate.harmonized();
        let config = &candidate.config;
        let analytical = AnalyticalModel::new(*config).map_err(DseError::Core)?;
        let feasibility =
            FeasibilityModel::new(*config, candidate.budget).map_err(DseError::Core)?;
        let power = PowerModel::new(*config, self.assumptions).map_err(DseError::Core)?;

        let mut latency_s = 0.0f64;
        let mut energy_j = 0.0f64;
        let mut spectral_passes = 0u64;
        let mut ring_area_mm2 = 0.0f64;
        let mut spectrally_bound = false;
        for (_, g) in &self.layers {
            let full = analytical
                .layer_full_system_time(g)
                .map_err(DseError::Core)?;
            let spectrum = feasibility.layer_spectrum(g);
            // The layer finishes when both the electronic pipeline and the
            // spectrally-partitioned optical core have: take the later.
            let electronic_s = full.as_secs_f64();
            let optical_s = spectrum.corrected_optical_time.as_secs_f64();
            latency_s += electronic_s.max(optical_s);
            spectrally_bound |= optical_s > electronic_s;
            spectral_passes += spectrum.spectral_passes;
            ring_area_mm2 = ring_area_mm2.max(spectrum.ring_area_mm2);
            energy_j += power.layer_energy_j(g, electronic_s);
        }

        // Full-scale link SNR is per-channel; one carrier and one bank
        // suffice to price it at this candidate's detection bandwidth.
        let link = BroadcastWeightLink::new(config.link, 1, 1).map_err(DseError::Photonic)?;
        let noise_snr = link.full_scale_snr();
        // With more than one simultaneous carrier, adjacent channels leak
        // through the ring's Lorentzian skirt; fold that interference in
        // as noise-like power.
        let usable = feasibility.budget().usable_channels();
        let xtalk = if usable > 1 {
            crosstalk_ratio(
                config.link.ring.q_factor,
                candidate.budget.channel_spacing_hz,
                candidate.budget.center_m,
            )
        } else {
            0.0
        };
        let snr_db = 10.0 * (1.0 / (1.0 / noise_snr + xtalk)).log10();
        let required_db = 6.02 * f64::from(config.adc.bits) + 1.76;

        let area_mm2 = config.input_dac.area_mm2
            * (config.n_input_dacs + config.n_weight_dacs) as f64
            + config.adc.area_mm2 * config.n_adcs as f64
            + config.sram.area_mm2
            + ring_area_mm2;

        let point = DesignPoint {
            fingerprint,
            latency_s,
            energy_j,
            area_mm2,
            snr_headroom_db: snr_db - required_db,
            usable_channels: usable,
            spectral_passes,
            spectrally_bound,
            throughput_fps: if latency_s > 0.0 {
                1.0 / latency_s
            } else {
                0.0
            },
        };
        if !point.is_finite() {
            return Err(DseError::NonFiniteObjective {
                fingerprint: point.fingerprint,
            });
        }
        Ok(point)
    }

    /// Evaluates a candidate; `None` means infeasible (the search filters
    /// it out and counts it).
    #[must_use]
    pub fn evaluate(&self, candidate: &Candidate) -> Option<DesignPoint> {
        self.evaluate_detailed(candidate).ok()
    }

    /// [`evaluate`](Self::evaluate) with a caller-computed fingerprint
    /// (the search hot path — avoids re-hashing candidates whose
    /// fingerprint the cache lookup already paid for).
    #[must_use]
    pub fn evaluate_with_fingerprint(
        &self,
        candidate: &Candidate,
        fingerprint: u64,
    ) -> Option<DesignPoint> {
        self.evaluate_detailed_with(candidate, fingerprint).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_core::config::PcnnaConfig;

    fn point(objs: [f64; 4]) -> DesignPoint {
        DesignPoint {
            fingerprint: 0,
            latency_s: objs[0],
            energy_j: objs[1],
            area_mm2: objs[2],
            snr_headroom_db: -objs[3],
            usable_channels: 1,
            spectral_passes: 1,
            spectrally_bound: false,
            throughput_fps: 0.0,
        }
    }

    #[test]
    fn dominance_is_strict_and_weak_includes_equality() {
        let a = point([1.0, 1.0, 1.0, 1.0]);
        let b = point([2.0, 1.0, 1.0, 1.0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&a));
        assert!(a.weakly_dominates(&a));
        assert!(a.weakly_dominates(&b));
        // trade-off: neither dominates
        let c = point([0.5, 2.0, 1.0, 1.0]);
        assert!(!a.dominates(&c) && !c.dominates(&a));
    }

    #[test]
    fn paper_design_point_is_feasible_on_alexnet() {
        let ev = Evaluator::alexnet();
        let p = ev
            .evaluate_detailed(&Candidate::paper_default())
            .expect("the paper's own design point must evaluate");
        assert!(p.latency_s > 0.0 && p.latency_s < 1.0, "{}", p.latency_s);
        assert!(p.energy_j > 0.0);
        assert!(p.area_mm2 > 0.0);
        assert!(p.snr_headroom_db.is_finite());
        assert!(p.usable_channels > 0);
        // every AlexNet layer needs spectral partitioning under Filtered
        assert!(p.spectral_passes > 5);
        assert!((p.throughput_fps * p.latency_s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tighter_spacing_trades_headroom_for_carriers() {
        use pcnna_core::feasibility::SpectralBudget;
        let ev = Evaluator::alexnet();
        let space = crate::space::DesignSpace::default();
        let at_spacing = |ghz: f64| {
            let mut s = space.clone();
            s.channel_spacing_ghz = vec![ghz];
            // knob order: [ndac, nadc, bits, clock, alloc, spacing, radius]
            ev.evaluate(&s.assemble(crate::space::KnobChoice([2, 2, 2, 1, 0, 0, 1])))
                .unwrap()
        };
        let tight = at_spacing(25.0);
        let loose = at_spacing(100.0);
        // more carriers → fewer spectral passes → faster …
        assert!(tight.usable_channels > loose.usable_channels);
        assert!(tight.latency_s < loose.latency_s);
        // … but the neighbours sit on the ring's skirt → less headroom
        assert!(tight.snr_headroom_db < loose.snr_headroom_db);
        // sanity on the crosstalk law itself
        let b = SpectralBudget::default();
        assert!(crosstalk_ratio(5e4, 25e9, b.center_m) > crosstalk_ratio(5e4, 100e9, b.center_m));
    }

    #[test]
    fn evaluation_is_deterministic_and_bit_identical() {
        let ev = Evaluator::vgg16();
        let c = Candidate::paper_default();
        let a = ev.evaluate(&c).unwrap();
        let b = ev.evaluate(&c).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_workload_is_infeasible_not_a_panic() {
        // A 4-word SRAM cannot cache any AlexNet receptive field.
        let mut config = PcnnaConfig::default();
        config.sram.capacity_bits = 64;
        let c = Candidate {
            config,
            ..Candidate::paper_default()
        };
        assert!(Evaluator::alexnet().evaluate(&c).is_none());
    }

    #[test]
    fn more_dacs_strictly_cut_alexnet_latency_when_the_dac_binds() {
        // At the default 50 GHz / 10 µm budget the spectrally-partitioned
        // optical time dominates every AlexNet layer, so the DAC knob is
        // latency-neutral (a finding the explorer surfaces!). Widen the
        // spectral budget (12.5 GHz spacing, 5 µm rings → ~180 usable
        // carriers) and the input DAC becomes the binding stage again.
        use pcnna_core::feasibility::SpectralBudget;
        let budget = SpectralBudget::default()
            .with_channel_spacing_hz(12.5e9)
            .with_ring_radius_m(5e-6);
        let ev = Evaluator::alexnet();
        let slow = Candidate {
            config: PcnnaConfig::default(),
            budget,
        };
        let fast = Candidate {
            config: PcnnaConfig::default().with_input_dacs(64),
            budget,
        };
        let ps = ev.evaluate(&slow).unwrap();
        let pf = ev.evaluate(&fast).unwrap();
        assert!(
            pf.latency_s < ps.latency_s,
            "{} vs {}",
            pf.latency_s,
            ps.latency_s
        );
        // but costs more area
        assert!(pf.area_mm2 > ps.area_mm2);
        // and at the paper budget the knob is indeed latency-neutral
        let ps0 = ev.evaluate(&Candidate::paper_default()).unwrap();
        let pf0 = ev
            .evaluate(&Candidate {
                config: PcnnaConfig::default().with_input_dacs(64),
                ..Candidate::paper_default()
            })
            .unwrap();
        assert_eq!(ps0.latency_s, pf0.latency_s);
    }
}
