//! Fleet co-design: from single-device Pareto designs to serving fleets.
//!
//! A frontier answers "which accelerator?"; a deployment also asks "which
//! *fleet* of them?". This stage takes the top frontier designs (by
//! single-frame latency), builds homogeneous fleets from each — plus one
//! heterogeneous fleet interleaving the top designs — replays the same
//! traffic against every fleet through the `pcnna-fleet` discrete-event
//! engine, and ranks the fleets by **SLO attainment per watt**: the
//! fraction of requests that met their deadline divided by the fleet's
//! mean service power (service energy over the simulated makespan). The
//! simulation seed is fixed per ranking, so co-design runs are as
//! reproducible as the searches that feed them.
//!
//! Two consequences of the fleet engine pricing batches from the
//! `PcnnaConfig` alone (its affine `ServiceQuote` covers the electronic
//! pipeline, not the spectral budget):
//!
//! * frontier entries that differ only in their `SpectralBudget` would
//!   build bit-identical fleets, so the top-k selection **dedupes by
//!   config** and fields each distinct hardware once;
//! * a design whose DSE latency was bound by spectral partitioning is
//!   served faster in the fleet simulation than the optics allow — such
//!   rows carry [`CodesignRow::spectrally_bound`] `= true` and should be
//!   read as optimistic upper bounds.

use crate::pareto::ParetoFrontier;
use crate::{DseError, Result};
use pcnna_fleet::prelude::*;
use pcnna_fleet::workload::NetworkClass;
use serde::{Deserialize, Serialize};

/// Parameters of a co-design ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodesignConfig {
    /// How many frontier designs (by ascending latency) to field.
    pub top_k: usize,
    /// Instances per fleet.
    pub fleet_size: usize,
    /// Offered traffic.
    pub arrival: ArrivalProcess,
    /// Batching admission policy.
    pub policy: Policy,
    /// Simulated arrival horizon, seconds.
    pub horizon_s: f64,
    /// Simulation seed (shared by every fleet in the ranking).
    pub seed: u64,
    /// Largest batch one dispatch may carry.
    pub max_batch: u64,
    /// Admission queue bound.
    pub queue_capacity: usize,
}

impl Default for CodesignConfig {
    fn default() -> Self {
        CodesignConfig {
            top_k: 4,
            fleet_size: 4,
            arrival: ArrivalProcess::Poisson { rate_rps: 20_000.0 },
            policy: Policy::NetworkAffinity,
            horizon_s: 0.5,
            seed: 7,
            max_batch: 32,
            queue_capacity: 50_000,
        }
    }
}

/// One ranked fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodesignRow {
    /// Human-readable fleet label (`uniform-xxxxxxxx` or `mixed`).
    pub label: String,
    /// Fingerprints of the frontier designs fielded, in instance order.
    pub fingerprints: Vec<u64>,
    /// Fraction of completed requests that met their SLO.
    pub slo_attainment: f64,
    /// Mean service power over the makespan, watts.
    pub mean_power_w: f64,
    /// The ranking key: `slo_attainment / mean_power_w` (0 when idle).
    pub slo_per_watt: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// p99 latency, milliseconds.
    pub p99_ms: f64,
    /// Energy per completed request, millijoules.
    pub energy_per_request_mj: f64,
    /// Whether any fielded design's DSE latency was bound by spectral
    /// partitioning: the fleet engine cannot price that optical
    /// correction, so this row's service times are optimistic.
    pub spectrally_bound: bool,
}

/// Builds, simulates, and ranks fleets from the frontier's top designs.
/// Rows come back sorted by descending SLO-attainment-per-watt.
///
/// # Errors
///
/// Returns [`DseError::EmptyFrontier`] if `frontier` has no designs, and
/// propagates scenario/quoting failures from the fleet engine.
pub fn co_design(
    frontier: &ParetoFrontier,
    classes: &[NetworkClass],
    config: &CodesignConfig,
) -> Result<Vec<CodesignRow>> {
    // Take the fastest top_k designs with *distinct serving hardware*.
    // The fleet engine's ServiceQuote depends on the electronic config
    // only — neither the spectral budget nor the functional link enters
    // it — so entries differing only in those fields would build fleets
    // with bit-identical serving stats. Compare configs with the link
    // normalized out to field each distinct quote once.
    let serving_key = |c: &pcnna_core::PcnnaConfig| pcnna_core::PcnnaConfig {
        link: pcnna_photonics::link::LinkConfig::default(),
        ..*c
    };
    let mut top: Vec<&crate::pareto::FrontierEntry> = Vec::new();
    for entry in frontier.sorted_by_latency() {
        if top.len() >= config.top_k.max(1) {
            break;
        }
        if top
            .iter()
            .any(|t| serving_key(&t.candidate.config) == serving_key(&entry.candidate.config))
        {
            continue;
        }
        top.push(entry);
    }
    if top.is_empty() {
        return Err(DseError::EmptyFrontier);
    }

    type Fleet = (String, Vec<u64>, Vec<pcnna_core::PcnnaConfig>, bool);
    let mut fleets: Vec<Fleet> = Vec::new();
    for entry in &top {
        let fp = entry.point.fingerprint;
        fleets.push((
            format!("uniform-{:08x}", (fp >> 32) as u32),
            vec![fp; config.fleet_size],
            vec![entry.candidate.config; config.fleet_size],
            entry.point.spectrally_bound,
        ));
    }
    if top.len() >= 2 {
        // One heterogeneous fleet: interleave the top designs round-robin.
        let fps: Vec<u64> = (0..config.fleet_size)
            .map(|i| top[i % top.len()].point.fingerprint)
            .collect();
        let configs: Vec<_> = (0..config.fleet_size)
            .map(|i| top[i % top.len()].candidate.config)
            .collect();
        let bound = top.iter().any(|t| t.point.spectrally_bound);
        fleets.push(("mixed".to_owned(), fps, configs, bound));
    }

    let mut rows = Vec::with_capacity(fleets.len());
    for (label, fingerprints, instances, spectrally_bound) in fleets {
        let report = FleetScenario {
            classes: classes.to_vec(),
            arrival: config.arrival,
            policy: config.policy,
            instances,
            max_batch: config.max_batch,
            queue_capacity: config.queue_capacity,
            horizon_s: config.horizon_s,
            seed: config.seed,
            ..FleetScenario::default()
        }
        .simulate()
        .map_err(DseError::Fleet)?;
        let mean_power_w = if report.makespan_s > 0.0 {
            report.energy_j / report.makespan_s
        } else {
            0.0
        };
        let slo_per_watt = if mean_power_w > 0.0 {
            report.slo_attainment / mean_power_w
        } else {
            0.0
        };
        rows.push(CodesignRow {
            label,
            fingerprints,
            slo_attainment: report.slo_attainment,
            mean_power_w,
            slo_per_watt,
            throughput_rps: report.throughput_rps,
            p99_ms: 1e3 * report.latency.p99_s,
            energy_per_request_mj: 1e3 * report.energy_per_request_j,
            spectrally_bound,
        });
    }
    rows.sort_by(|a, b| {
        b.slo_per_watt
            .total_cmp(&a.slo_per_watt)
            .then_with(|| a.label.cmp(&b.label))
    });
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::Evaluator;
    use crate::search::grid_sweep;
    use crate::space::DesignSpace;

    fn quick_frontier() -> ParetoFrontier {
        grid_sweep(&DesignSpace::smoke(), &Evaluator::alexnet(), 4)
            .unwrap()
            .frontier
    }

    fn quick_config() -> CodesignConfig {
        CodesignConfig {
            top_k: 3,
            fleet_size: 2,
            arrival: ArrivalProcess::Poisson { rate_rps: 4_000.0 },
            horizon_s: 0.05,
            ..CodesignConfig::default()
        }
    }

    #[test]
    fn co_design_ranks_fleets_and_reports_finite_rows() {
        let frontier = quick_frontier();
        assert!(frontier.len() >= 2, "smoke grid should leave a frontier");
        let classes = vec![
            NetworkClass::alexnet(0.050, 1.0),
            NetworkClass::lenet5(0.010, 2.0),
        ];
        let rows = co_design(&frontier, &classes, &quick_config()).unwrap();
        // up to top-3 uniform fleets (deduped by config) + the mixed fleet
        assert!(rows.len() >= 2 && rows.len() <= 4, "{}", rows.len());
        for w in rows.windows(2) {
            assert!(w[0].slo_per_watt >= w[1].slo_per_watt, "rows not sorted");
        }
        for r in &rows {
            assert!(r.slo_per_watt.is_finite(), "{}", r.label);
            assert!(r.mean_power_w > 0.0, "{}", r.label);
            assert!((0.0..=1.0).contains(&r.slo_attainment), "{}", r.label);
            assert_eq!(r.fingerprints.len(), 2);
        }
        assert!(rows.iter().any(|r| r.label == "mixed"));
    }

    #[test]
    fn co_design_is_deterministic() {
        let frontier = quick_frontier();
        let classes = vec![NetworkClass::lenet5(0.010, 1.0)];
        let cfg = quick_config();
        let a = co_design(&frontier, &classes, &cfg).unwrap();
        let b = co_design(&frontier, &classes, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn codesign_dedupes_identical_hardware() {
        use crate::objectives::DesignPoint;
        use crate::space::Candidate;
        // Two frontier entries with the same PcnnaConfig but different
        // spectral budgets: mutually non-dominated design *points*, yet
        // bit-identical serving hardware — co-design must field one fleet.
        let a = Candidate::paper_default();
        let b = Candidate {
            budget: a.budget.with_channel_spacing_hz(100e9),
            ..a
        };
        let point = |fp: u64, latency: f64, energy: f64| DesignPoint {
            fingerprint: fp,
            latency_s: latency,
            energy_j: energy,
            area_mm2: 1.0,
            snr_headroom_db: 0.0,
            usable_channels: 1,
            spectral_passes: 1,
            spectrally_bound: false,
            throughput_fps: 1.0 / latency,
        };
        let mut frontier = ParetoFrontier::new();
        assert!(frontier.insert(a, point(a.fingerprint(), 1.0, 2.0)));
        assert!(frontier.insert(b, point(b.fingerprint(), 2.0, 1.0)));
        assert_eq!(frontier.len(), 2);
        let rows = co_design(
            &frontier,
            &[NetworkClass::lenet5(0.010, 1.0)],
            &quick_config(),
        )
        .unwrap();
        // one uniform fleet, no mixed fleet (only one distinct config)
        assert_eq!(rows.len(), 1);
        assert_ne!(rows[0].label, "mixed");

        // Same through the harmonized path: assembled candidates differing
        // only in WDM spacing also differ in their *link* (the harmonizer
        // mirrors the budget into it), but still quote identically.
        use crate::space::{DesignSpace, KnobChoice};
        let space = DesignSpace::smoke();
        let a = space.assemble(KnobChoice([0, 0, 0, 0, 0, 0, 0]));
        let b = space.assemble(KnobChoice([0, 0, 0, 0, 0, 1, 0]));
        assert_ne!(a.config, b.config, "links must differ after harmonizing");
        let mut frontier = ParetoFrontier::new();
        assert!(frontier.insert(a, point(a.fingerprint(), 1.0, 2.0)));
        assert!(frontier.insert(b, point(b.fingerprint(), 2.0, 1.0)));
        let rows = co_design(
            &frontier,
            &[NetworkClass::lenet5(0.010, 1.0)],
            &quick_config(),
        )
        .unwrap();
        assert_eq!(rows.len(), 1, "link-only differences must dedupe");
    }

    #[test]
    fn empty_frontier_is_an_error() {
        let classes = vec![NetworkClass::lenet5(0.010, 1.0)];
        assert!(matches!(
            co_design(&ParetoFrontier::new(), &classes, &quick_config()),
            Err(DseError::EmptyFrontier)
        ));
    }
}
