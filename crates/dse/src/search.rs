//! Search drivers: exhaustive grid sweep and seeded evolutionary search.
//!
//! Both drivers evaluate candidates **in parallel** via
//! [`pcnna_fleet::par::par_map_slice`] (an ordered, order-preserving
//! thread map over warm reusable batch buffers), fold the results into a
//! [`ParetoFrontier`] **sequentially in input order**, and memoize every
//! verdict in an [`EvalCache`]. Because
//! the fold order is deterministic and all randomness flows from one
//! seeded [`StdRng`], repeated runs with the same seed produce identical
//! frontiers — across thread counts, too, since threading only changes
//! *where* an evaluation runs, never the order results are folded in.

use crate::cache::EvalCache;
use crate::objectives::Evaluator;
use crate::pareto::ParetoFrontier;
use crate::space::{Candidate, DesignSpace, KnobChoice};
use crate::{DseError, Result};
use pcnna_fleet::par::par_map_slice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counters describing one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Fresh (non-memoized) evaluations performed.
    pub evaluated: u64,
    /// Fresh evaluations that produced a feasible [`crate::DesignPoint`].
    pub valid: u64,
    /// Fresh evaluations that were infeasible.
    pub invalid: u64,
    /// Proposals answered from the cache (including within-batch repeats).
    pub cache_hits: u64,
}

/// The result of a search: the frontier plus run counters.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Non-dominated designs found.
    pub frontier: ParetoFrontier,
    /// Run counters.
    pub stats: SearchStats,
}

/// A sensible default worker count: every available core.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Reusable buffers for [`run_batch`]: an iterated search (the
/// evolutionary driver calls `run_batch` once per generation) clears and
/// refills these instead of reallocating the dedup set and the fresh-work
/// vector every batch.
#[derive(Debug, Default)]
struct BatchScratch {
    seen: std::collections::HashSet<u64>,
    fresh: Vec<(Candidate, u64)>,
}

/// Evaluates a batch of `(candidate, fingerprint)` pairs through the
/// cache: repeats (cached or within-batch) are answered from memory,
/// fresh designs fan out across `threads`, and every verdict folds into
/// `frontier` in batch order. Fingerprints are computed once by the
/// caller and threaded through to the evaluator.
fn run_batch(
    candidates: &[(Candidate, u64)],
    evaluator: &Evaluator,
    threads: usize,
    scratch: &mut BatchScratch,
    cache: &mut EvalCache,
    frontier: &mut ParetoFrontier,
    stats: &mut SearchStats,
) {
    scratch.seen.clear();
    scratch.fresh.clear();
    for &(cand, fp) in candidates {
        if cache.contains(fp) || !scratch.seen.insert(fp) {
            stats.cache_hits += 1;
        } else {
            scratch.fresh.push((cand, fp));
        }
    }
    let verdicts = par_map_slice(&scratch.fresh, threads, |(cand, fp)| {
        (cand, fp, evaluator.evaluate_with_fingerprint(&cand, fp))
    });
    for (cand, fp, verdict) in verdicts {
        cache.insert(fp, verdict);
        stats.evaluated += 1;
        match verdict {
            Some(point) => {
                stats.valid += 1;
                frontier.insert(cand, point);
            }
            None => stats.invalid += 1,
        }
    }
}

/// Exhaustively sweeps every grid point of `space`.
///
/// # Errors
///
/// Returns [`DseError::InvalidSpace`] for degenerate spaces.
pub fn grid_sweep(
    space: &DesignSpace,
    evaluator: &Evaluator,
    threads: usize,
) -> Result<SearchOutcome> {
    space.validate()?;
    let candidates: Vec<(Candidate, u64)> = space
        .grid_choices()
        .into_iter()
        .map(|c| {
            let cand = space.assemble(c);
            (cand, cand.fingerprint())
        })
        .collect();
    let mut scratch = BatchScratch::default();
    let mut cache = EvalCache::new();
    let mut frontier = ParetoFrontier::new();
    let mut stats = SearchStats::default();
    run_batch(
        &candidates,
        evaluator,
        threads,
        &mut scratch,
        &mut cache,
        &mut frontier,
        &mut stats,
    );
    Ok(SearchOutcome { frontier, stats })
}

/// Parameters of the seeded evolutionary search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolutionConfig {
    /// Candidates proposed per generation.
    pub population: usize,
    /// Number of generations (generation 0 is uniform random).
    pub generations: usize,
    /// Per-knob re-roll probability when mutating a parent.
    pub mutation_rate: f64,
    /// Probability a child is a fresh uniform sample instead of a mutant
    /// (keeps the search from collapsing onto one frontier basin).
    pub immigrant_rate: f64,
    /// RNG seed: same seed ⇒ same proposals ⇒ identical frontier.
    pub seed: u64,
    /// Worker threads for candidate evaluation.
    pub threads: usize,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig {
            population: 64,
            generations: 12,
            mutation_rate: 0.35,
            immigrant_rate: 0.2,
            seed: 0,
            threads: default_threads(),
        }
    }
}

/// Runs the evolutionary search: generation 0 samples uniformly; each
/// later generation mutates parents drawn uniformly from the current
/// frontier (or immigrates fresh samples), evaluates through the shared
/// cache, and folds survivors into the frontier.
///
/// # Errors
///
/// Returns [`DseError::InvalidSpace`] for degenerate spaces or
/// populations.
pub fn evolve(
    space: &DesignSpace,
    evaluator: &Evaluator,
    config: &EvolutionConfig,
) -> Result<SearchOutcome> {
    space.validate()?;
    if config.population == 0 || config.generations == 0 {
        return Err(DseError::InvalidSpace {
            reason: "population and generations must be nonzero".to_owned(),
        });
    }
    if !(0.0..=1.0).contains(&config.mutation_rate) || !(0.0..=1.0).contains(&config.immigrant_rate)
    {
        return Err(DseError::InvalidSpace {
            reason: "mutation/immigrant rates must be within [0, 1]".to_owned(),
        });
    }

    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0D5E_C0DE_0D5E_C0DE);
    let mut scratch = BatchScratch::default();
    let mut cache = EvalCache::new();
    let mut frontier = ParetoFrontier::new();
    let mut stats = SearchStats::default();
    // The frontier stores candidates; mutation needs the knob indices that
    // produced them, so remember each fingerprint's choice.
    let mut choice_of: HashMap<u64, KnobChoice> = HashMap::new();
    let mut parents: Vec<KnobChoice> = Vec::new();
    // Generation buffers, warmed once and refilled per generation (the
    // per-generation `collect()`s this replaces were the driver's only
    // steady-state allocations).
    let mut choices: Vec<KnobChoice> = Vec::with_capacity(config.population);
    let mut candidates: Vec<(Candidate, u64)> = Vec::with_capacity(config.population);

    for generation in 0..config.generations {
        choices.clear();
        candidates.clear();
        for _ in 0..config.population {
            choices.push(
                if generation == 0 || parents.is_empty() || rng.gen_bool(config.immigrant_rate) {
                    space.sample_choice(&mut rng)
                } else {
                    let parent = parents[rng.gen_range(0..parents.len())];
                    space.mutate_choice(&mut rng, parent, config.mutation_rate)
                },
            );
        }
        for &choice in &choices {
            let cand = space.assemble(choice);
            let fp = cand.fingerprint();
            candidates.push((cand, fp));
            choice_of.entry(fp).or_insert(choice);
        }
        run_batch(
            &candidates,
            evaluator,
            config.threads,
            &mut scratch,
            &mut cache,
            &mut frontier,
            &mut stats,
        );
        parents.clear();
        parents.extend(
            frontier
                .entries()
                .iter()
                .map(|e| choice_of[&e.point.fingerprint]),
        );
    }

    Ok(SearchOutcome { frontier, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_sweep_finds_a_frontier() {
        let space = DesignSpace::smoke();
        let out = grid_sweep(&space, &Evaluator::alexnet(), 4).unwrap();
        assert_eq!(out.stats.evaluated, space.cardinality());
        assert_eq!(out.stats.cache_hits, 0, "grid points are distinct");
        assert!(out.stats.valid > 0);
        assert!(!out.frontier.is_empty());
        assert!(out.frontier.invariant_holds());
        // the frontier is a subset of the valid evaluations
        assert!(out.frontier.len() as u64 <= out.stats.valid);
    }

    #[test]
    fn grid_sweep_is_thread_count_invariant() {
        let space = DesignSpace::smoke();
        let ev = Evaluator::lenet5();
        let a = grid_sweep(&space, &ev, 1).unwrap();
        let b = grid_sweep(&space, &ev, 8).unwrap();
        assert_eq!(a.frontier, b.frontier);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn evolution_is_seed_deterministic() {
        let space = DesignSpace::default();
        let ev = Evaluator::lenet5();
        let cfg = EvolutionConfig {
            population: 16,
            generations: 4,
            seed: 11,
            threads: 4,
            ..EvolutionConfig::default()
        };
        let a = evolve(&space, &ev, &cfg).unwrap();
        let b = evolve(&space, &ev, &cfg).unwrap();
        assert_eq!(a.frontier, b.frontier);
        assert_eq!(a.stats, b.stats);
        assert!(a.frontier.invariant_holds());
        // a different seed explores differently
        let c = evolve(&space, &ev, &EvolutionConfig { seed: 12, ..cfg }).unwrap();
        assert!(c.stats != a.stats || c.frontier != a.frontier);
    }

    #[test]
    fn evolution_memoizes_revisits() {
        let space = DesignSpace::smoke(); // 48 designs << proposals
        let ev = Evaluator::lenet5();
        let cfg = EvolutionConfig {
            population: 32,
            generations: 6,
            seed: 5,
            threads: 4,
            ..EvolutionConfig::default()
        };
        let out = evolve(&space, &ev, &cfg).unwrap();
        assert!(out.stats.evaluated <= space.cardinality());
        assert!(
            out.stats.cache_hits > 0,
            "192 proposals over 48 designs must repeat"
        );
        assert_eq!(
            out.stats.evaluated + out.stats.cache_hits,
            (cfg.population * cfg.generations) as u64
        );
    }

    #[test]
    fn degenerate_evolution_configs_are_rejected() {
        let space = DesignSpace::smoke();
        let ev = Evaluator::lenet5();
        for cfg in [
            EvolutionConfig {
                population: 0,
                ..EvolutionConfig::default()
            },
            EvolutionConfig {
                generations: 0,
                ..EvolutionConfig::default()
            },
            EvolutionConfig {
                mutation_rate: 1.5,
                ..EvolutionConfig::default()
            },
        ] {
            assert!(evolve(&space, &ev, &cfg).is_err());
        }
    }
}
