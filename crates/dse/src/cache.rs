//! Memoized candidate evaluation keyed by config fingerprint.
//!
//! Evaluating a candidate walks the analytical, feasibility, power, and
//! photonic-link models; an evolutionary search revisits designs
//! constantly (mutation is local), so results are memoized by
//! [`Candidate::fingerprint`]. A cached verdict is returned **bit
//! identical** — [`DesignPoint`] is `Copy` and is stored exactly as the
//! evaluator produced it — and infeasible candidates are cached too (as
//! `None`), so a design is never re-evaluated no matter how often the
//! search proposes it.

use crate::objectives::{DesignPoint, Evaluator};
use crate::space::Candidate;
use std::collections::HashMap;

/// Fingerprint-keyed evaluation memo. `None` records an infeasible design.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    map: HashMap<u64, Option<DesignPoint>>,
    hits: u64,
    misses: u64,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// Evaluates through the cache: a repeat fingerprint returns the
    /// stored verdict without touching the models.
    pub fn evaluate(
        &mut self,
        evaluator: &Evaluator,
        candidate: &Candidate,
    ) -> Option<DesignPoint> {
        let key = candidate.fingerprint();
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            return *cached;
        }
        self.misses += 1;
        let fresh = evaluator.evaluate(candidate);
        self.map.insert(key, fresh);
        fresh
    }

    /// The stored verdict for a fingerprint, if any (outer `None` = never
    /// evaluated; inner `None` = evaluated and infeasible).
    #[must_use]
    pub fn get(&self, fingerprint: u64) -> Option<Option<DesignPoint>> {
        self.map.get(&fingerprint).copied()
    }

    /// Whether a fingerprint has a stored verdict.
    #[must_use]
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.map.contains_key(&fingerprint)
    }

    /// Stores an externally computed verdict (used by the parallel search
    /// to fold `par_map` results in).
    pub fn insert(&mut self, fingerprint: u64, verdict: Option<DesignPoint>) {
        self.map.insert(fingerprint, verdict);
    }

    /// Cache hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (fresh evaluations) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct fingerprints stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_evaluation_hits_and_is_bit_identical() {
        let ev = Evaluator::alexnet();
        let mut cache = EvalCache::new();
        let c = Candidate::paper_default();
        let first = cache.evaluate(&ev, &c).expect("feasible");
        let second = cache.evaluate(&ev, &c).expect("feasible");
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn infeasible_verdicts_are_cached_too() {
        let ev = Evaluator::alexnet();
        let mut cache = EvalCache::new();
        let mut config = pcnna_core::PcnnaConfig::default();
        config.sram.capacity_bits = 64; // nothing fits
        let c = Candidate {
            config,
            ..Candidate::paper_default()
        };
        assert!(cache.evaluate(&ev, &c).is_none());
        assert!(cache.evaluate(&ev, &c).is_none());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.get(c.fingerprint()), Some(None));
    }
}
