//! Incremental Pareto frontier with dominance pruning.
//!
//! The frontier holds (candidate, point) pairs such that **no kept point
//! weakly dominates another**. [`ParetoFrontier::insert`] is the only way
//! in: a newcomer that is weakly dominated by any resident (including an
//! exact duplicate) is rejected as a no-op; otherwise every resident the
//! newcomer dominates is evicted and the newcomer is appended. Insertion
//! order is therefore deterministic given a deterministic evaluation
//! stream, which is what makes seeded searches reproduce bit-identical
//! frontiers.

use crate::objectives::DesignPoint;
use crate::space::Candidate;
use serde::{Deserialize, Serialize};

/// A non-dominated design and its evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierEntry {
    /// The design.
    pub candidate: Candidate,
    /// Its evaluated objectives.
    pub point: DesignPoint,
}

/// The set of mutually non-dominated designs seen so far.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParetoFrontier {
    entries: Vec<FrontierEntry>,
}

impl ParetoFrontier {
    /// An empty frontier.
    #[must_use]
    pub fn new() -> Self {
        ParetoFrontier::default()
    }

    /// Offers a design to the frontier. Returns `true` if it was admitted
    /// (possibly evicting residents it dominates), `false` if an existing
    /// entry weakly dominates it — in which case the frontier is unchanged.
    pub fn insert(&mut self, candidate: Candidate, point: DesignPoint) -> bool {
        if !point.is_finite() {
            return false;
        }
        if self
            .entries
            .iter()
            .any(|e| e.point.weakly_dominates(&point))
        {
            return false;
        }
        self.entries.retain(|e| !point.dominates(&e.point));
        self.entries.push(FrontierEntry { candidate, point });
        true
    }

    /// The frontier entries in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[FrontierEntry] {
        &self.entries
    }

    /// Number of non-dominated designs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the frontier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries sorted by ascending latency (ties broken by fingerprint so
    /// the order is total and reproducible).
    #[must_use]
    pub fn sorted_by_latency(&self) -> Vec<&FrontierEntry> {
        let mut out: Vec<&FrontierEntry> = self.entries.iter().collect();
        out.sort_by(|a, b| {
            a.point
                .latency_s
                .total_cmp(&b.point.latency_s)
                .then(a.point.fingerprint.cmp(&b.point.fingerprint))
        });
        out
    }

    /// Folds another frontier in (used to combine per-shard searches).
    pub fn merge(&mut self, other: &ParetoFrontier) {
        for e in &other.entries {
            self.insert(e.candidate, e.point);
        }
    }

    /// Checks the defining invariant: no entry weakly dominates another.
    /// (Exercised by the property tests; cheap enough to assert in
    /// debugging sessions.)
    #[must_use]
    pub fn invariant_holds(&self) -> bool {
        for (i, a) in self.entries.iter().enumerate() {
            for (j, b) in self.entries.iter().enumerate() {
                if i != j && a.point.weakly_dominates(&b.point) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(fp: u64, objs: [f64; 4]) -> DesignPoint {
        DesignPoint {
            fingerprint: fp,
            latency_s: objs[0],
            energy_j: objs[1],
            area_mm2: objs[2],
            snr_headroom_db: -objs[3],
            usable_channels: 1,
            spectral_passes: 1,
            spectrally_bound: false,
            throughput_fps: 0.0,
        }
    }

    fn cand() -> Candidate {
        Candidate::paper_default()
    }

    #[test]
    fn dominated_insert_is_a_noop() {
        let mut f = ParetoFrontier::new();
        assert!(f.insert(cand(), point(1, [1.0, 1.0, 1.0, 1.0])));
        let before = f.clone();
        assert!(!f.insert(cand(), point(2, [2.0, 2.0, 2.0, 2.0])));
        assert_eq!(f, before, "dominated insert must not change the frontier");
        // exact duplicate is weakly dominated → also a no-op
        assert!(!f.insert(cand(), point(3, [1.0, 1.0, 1.0, 1.0])));
        assert_eq!(f, before);
    }

    #[test]
    fn dominating_insert_evicts_residents() {
        let mut f = ParetoFrontier::new();
        f.insert(cand(), point(1, [2.0, 2.0, 2.0, 2.0]));
        f.insert(cand(), point(2, [3.0, 1.0, 3.0, 3.0]));
        assert_eq!(f.len(), 2);
        // dominates #1 but not #2
        assert!(f.insert(cand(), point(3, [1.0, 2.0, 1.0, 1.0])));
        assert_eq!(f.len(), 2);
        assert!(f.entries().iter().all(|e| e.point.fingerprint != 1));
        assert!(f.invariant_holds());
    }

    #[test]
    fn incomparable_points_accumulate() {
        let mut f = ParetoFrontier::new();
        for i in 0..5u64 {
            let x = i as f64;
            assert!(f.insert(cand(), point(i, [x, 4.0 - x, 1.0, 1.0])));
        }
        assert_eq!(f.len(), 5);
        assert!(f.invariant_holds());
    }

    #[test]
    fn non_finite_points_are_rejected() {
        let mut f = ParetoFrontier::new();
        assert!(!f.insert(cand(), point(1, [f64::NAN, 1.0, 1.0, 1.0])));
        assert!(!f.insert(cand(), point(2, [f64::INFINITY, 1.0, 1.0, 1.0])));
        assert!(f.is_empty());
    }

    #[test]
    fn sorted_by_latency_is_total_and_stable() {
        let mut f = ParetoFrontier::new();
        f.insert(cand(), point(2, [2.0, 1.0, 1.0, 1.0]));
        f.insert(cand(), point(1, [1.0, 2.0, 1.0, 1.0]));
        let sorted = f.sorted_by_latency();
        assert_eq!(sorted[0].point.fingerprint, 1);
        assert_eq!(sorted[1].point.fingerprint, 2);
    }

    #[test]
    fn merge_keeps_only_nondominated() {
        let mut a = ParetoFrontier::new();
        a.insert(cand(), point(1, [1.0, 3.0, 1.0, 1.0]));
        let mut b = ParetoFrontier::new();
        b.insert(cand(), point(2, [1.0, 1.0, 1.0, 1.0]));
        a.merge(&b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].point.fingerprint, 2);
    }
}
