//! # pcnna-dse — parallel multi-objective design-space exploration.
//!
//! The paper fixes one accelerator design point; the rest of this
//! workspace models a huge configuration space around it — converter
//! provisioning, clock domains, allocation policy, WDM spacing, microring
//! geometry. This crate turns those layers into a machine for answering
//! *"what accelerator (and what fleet of them) should we build for
//! workload X?"*:
//!
//! * [`space`] — the [`DesignSpace`]: enumerable / sampleable knob lists
//!   over [`PcnnaConfig`](pcnna_core::PcnnaConfig) ×
//!   [`SpectralBudget`](pcnna_core::feasibility::SpectralBudget), applied
//!   through `with_*` builders only, with a stable per-candidate
//!   fingerprint.
//! * [`objectives`] — the [`Evaluator`]: one named CNN workload from
//!   `pcnna_cnn::zoo`, four objectives per candidate (latency, energy,
//!   area proxy, SNR headroom — see the module docs for the exact sources
//!   and the dominance rule).
//! * [`pareto`] — the incremental [`ParetoFrontier`] with dominance
//!   pruning.
//! * [`cache`] — the fingerprint-keyed [`EvalCache`]; repeat designs
//!   return bit-identical verdicts without re-running the models.
//! * [`search`] — exhaustive [`grid_sweep`] and the seeded [`evolve`]
//!   evolutionary search, both fanning evaluations across threads via
//!   `pcnna_fleet::par::par_map_slice`.
//! * [`codesign`] — [`co_design`]: fields the top frontier designs as
//!   serving fleets (uniform and mixed), replays traffic through the
//!   `pcnna-fleet` engine, and ranks them by SLO attainment per watt.
//!
//! ## Determinism guarantees
//!
//! Exploration is reproducible by construction:
//!
//! 1. every model in the evaluation path is deterministic (no noise
//!    sampling — the SNR objective is the closed-form full-scale link
//!    SNR);
//! 2. all search randomness flows from one [`rand::rngs::StdRng`] seeded
//!    by the caller;
//! 3. parallel evaluation uses an order-preserving thread map and folds
//!    results into the frontier sequentially in proposal order, so thread
//!    count and scheduling cannot change the outcome;
//! 4. cached verdicts are returned bit-identical ([`DesignPoint`] is
//!    `Copy` and compared field-for-field in the property tests).
//!
//! Same seed ⇒ same frontier, across runs and across thread counts.
//!
//! ## Quickstart
//!
//! ```
//! use pcnna_dse::prelude::*;
//!
//! let space = DesignSpace::smoke();
//! let out = grid_sweep(&space, &Evaluator::alexnet(), 4).unwrap();
//! assert!(!out.frontier.is_empty());
//! for entry in out.frontier.sorted_by_latency().iter().take(3) {
//!     println!(
//!         "{:08x}: {:.3} ms, {:.1} mJ",
//!         (entry.point.fingerprint >> 32) as u32,
//!         1e3 * entry.point.latency_s,
//!         1e3 * entry.point.energy_j,
//!     );
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `if !(x > 0.0)` in parameter validation is deliberate: unlike `x <= 0.0`
// it also rejects NaN, which must never enter the models (same policy as
// pcnna-core).
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod cache;
pub mod codesign;
pub mod objectives;
pub mod pareto;
pub mod search;
pub mod space;

pub use cache::EvalCache;
pub use codesign::{co_design, CodesignConfig, CodesignRow};
pub use objectives::{DesignPoint, Evaluator};
pub use pareto::{FrontierEntry, ParetoFrontier};
pub use search::{evolve, grid_sweep, EvolutionConfig, SearchOutcome, SearchStats};
pub use space::{Candidate, DesignSpace, KnobChoice};

/// Errors produced by the design-space explorer.
#[derive(Debug)]
#[non_exhaustive]
pub enum DseError {
    /// A design space (or search configuration) is degenerate.
    InvalidSpace {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A model produced a non-finite objective for this candidate.
    NonFiniteObjective {
        /// The offending candidate's fingerprint.
        fingerprint: u64,
    },
    /// Co-design was asked to field an empty frontier.
    EmptyFrontier,
    /// An error bubbled up from the accelerator core models.
    Core(pcnna_core::CoreError),
    /// An error bubbled up from the photonic link models.
    Photonic(pcnna_photonics::PhotonicError),
    /// An error bubbled up from the fleet engine during co-design.
    Fleet(pcnna_fleet::FleetError),
}

impl core::fmt::Display for DseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DseError::InvalidSpace { reason } => write!(f, "invalid design space: {reason}"),
            DseError::NonFiniteObjective { fingerprint } => {
                write!(f, "non-finite objective for candidate {fingerprint:016x}")
            }
            DseError::EmptyFrontier => write!(f, "co-design needs a non-empty frontier"),
            DseError::Core(e) => write!(f, "core model error: {e}"),
            DseError::Photonic(e) => write!(f, "photonic model error: {e}"),
            DseError::Fleet(e) => write!(f, "fleet engine error: {e}"),
        }
    }
}

impl std::error::Error for DseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DseError::Core(e) => Some(e),
            DseError::Photonic(e) => Some(e),
            DseError::Fleet(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, DseError>;

/// One-stop imports for exploration drivers.
pub mod prelude {
    pub use crate::cache::EvalCache;
    pub use crate::codesign::{co_design, CodesignConfig, CodesignRow};
    pub use crate::objectives::{DesignPoint, Evaluator};
    pub use crate::pareto::{FrontierEntry, ParetoFrontier};
    pub use crate::search::{
        default_threads, evolve, grid_sweep, EvolutionConfig, SearchOutcome, SearchStats,
    };
    pub use crate::space::{Candidate, DesignSpace, KnobChoice};
}
