//! The explorable design space: knobs, candidates, and fingerprints.
//!
//! A [`Candidate`] is one complete accelerator description — a
//! [`PcnnaConfig`] paired with the [`SpectralBudget`] that bounds its WDM
//! carrier count. A [`DesignSpace`] is a set of per-knob value lists; a
//! [`KnobChoice`] indexes one value per knob, and
//! [`DesignSpace::assemble`] turns a choice into a candidate by applying
//! the workspace's `with_*` builders to a base design point (the search
//! code never reaches into raw struct fields).
//!
//! Knob coupling: assembly harmonizes the photonic
//! [`LinkConfig`](pcnna_photonics::link::LinkConfig) with the
//! rest of the candidate — the link inherits the budget's channel spacing,
//! and its detection bandwidth tracks the fast clock (a faster symbol rate
//! integrates more receiver noise, which is exactly the latency ↔ SNR
//! tension the explorer is meant to surface).

use crate::{DseError, Result};
use pcnna_core::config::{AllocationPolicy, PcnnaConfig};
use pcnna_core::feasibility::SpectralBudget;
use pcnna_electronics::adc::AdcModel;
use pcnna_electronics::clock::ClockDomain;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of knobs in a [`DesignSpace`].
pub const N_KNOBS: usize = 7;

/// One value index per knob, in [`DesignSpace`] field order:
/// `[n_input_dacs, n_adcs, adc_bits, fast_clock_ghz, allocations,
/// channel_spacing_ghz, ring_radius_um]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KnobChoice(pub [usize; N_KNOBS]);

/// One complete accelerator design: hardware config + spectral budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The hardware configuration.
    pub config: PcnnaConfig,
    /// The WDM carrier budget (C band + microring FSR).
    pub budget: SpectralBudget,
}

impl Candidate {
    /// The paper's design point under the default spectral budget.
    #[must_use]
    pub fn paper_default() -> Self {
        Candidate {
            config: PcnnaConfig::default(),
            budget: SpectralBudget::default(),
        }
    }

    /// Returns a copy whose photonic link mirrors the knobs it physically
    /// shares: the WDM grid spacing comes from the spectral budget, the
    /// receiver detection bandwidth from the fast (symbol) clock. The
    /// evaluator applies this to every candidate, so a hand-built
    /// `Candidate` is scored under the same coupling as one produced by
    /// [`DesignSpace::assemble`]. Idempotent.
    #[must_use]
    pub fn harmonized(&self) -> Self {
        let mut link = self.config.link;
        link.channel_spacing_hz = self.budget.channel_spacing_hz;
        link.detection_bandwidth_hz = self.config.fast_clock.frequency_hz();
        Candidate {
            config: self.config.with_link(link),
            budget: self.budget,
        }
    }

    /// A stable 64-bit key for memoization: FNV-1a over the exact `Debug`
    /// rendering of both halves. Two candidates collide only if every
    /// field (down to the f64 bit patterns `Debug` round-trips) agrees,
    /// which is precisely the "same design" equivalence the evaluation
    /// cache needs.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |text: &str| {
            for b in text.as_bytes() {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&format!("{:?}", self.config));
        eat(&format!("{:?}", self.budget));
        hash
    }
}

/// Enumerable/sampleable value lists for every explored knob, plus the
/// base design point the knobs are applied to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Parallel input-DAC counts.
    pub n_input_dacs: Vec<usize>,
    /// Parallel output-ADC counts.
    pub n_adcs: Vec<usize>,
    /// Output-ADC nominal resolutions, bits (drives the SNR requirement).
    pub adc_bits: Vec<u8>,
    /// Fast (optical-core) clock frequencies, GHz.
    pub fast_clock_ghz: Vec<f64>,
    /// Ring/wavelength allocation policies.
    pub allocations: Vec<AllocationPolicy>,
    /// WDM channel spacings, GHz (the wavelength-count knob).
    pub channel_spacing_ghz: Vec<f64>,
    /// Microring radii, µm (sets the FSR → the MRR bank-size knob).
    pub ring_radius_um: Vec<f64>,
    /// Base hardware configuration the knobs override.
    pub base_config: PcnnaConfig,
    /// Base spectral budget the knobs override.
    pub base_budget: SpectralBudget,
}

impl Default for DesignSpace {
    /// The full exploration space used by the `dse` harness: 3 888 points
    /// spanning converter provisioning, clocking, allocation policy, and
    /// the spectral budget.
    fn default() -> Self {
        DesignSpace {
            n_input_dacs: vec![4, 8, 10, 16, 32, 64],
            n_adcs: vec![8, 16, 32, 64],
            adc_bits: vec![6, 8, 10],
            fast_clock_ghz: vec![2.5, 5.0, 10.0],
            allocations: vec![
                AllocationPolicy::Filtered,
                AllocationPolicy::FilteredChannelSequential,
            ],
            channel_spacing_ghz: vec![25.0, 50.0, 100.0],
            ring_radius_um: vec![5.0, 10.0, 20.0],
            base_config: PcnnaConfig::default(),
            base_budget: SpectralBudget::default(),
        }
    }
}

impl DesignSpace {
    /// A deliberately tiny space (48 points) for CI smoke runs and tests.
    #[must_use]
    pub fn smoke() -> Self {
        DesignSpace {
            n_input_dacs: vec![4, 10, 32],
            n_adcs: vec![16, 32],
            adc_bits: vec![8, 10],
            fast_clock_ghz: vec![5.0],
            allocations: vec![
                AllocationPolicy::Filtered,
                AllocationPolicy::FilteredChannelSequential,
            ],
            channel_spacing_ghz: vec![50.0, 100.0],
            ring_radius_um: vec![10.0],
            ..DesignSpace::default()
        }
    }

    /// Validates the space: every knob list non-empty, every numeric value
    /// positive and finite, and the base design point itself valid.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidSpace`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: String| Err(DseError::InvalidSpace { reason });
        if self.n_input_dacs.is_empty()
            || self.n_adcs.is_empty()
            || self.adc_bits.is_empty()
            || self.fast_clock_ghz.is_empty()
            || self.allocations.is_empty()
            || self.channel_spacing_ghz.is_empty()
            || self.ring_radius_um.is_empty()
        {
            return fail("every knob needs at least one value".to_owned());
        }
        if self.n_input_dacs.contains(&0) || self.n_adcs.contains(&0) {
            return fail("converter counts must be nonzero".to_owned());
        }
        if self.adc_bits.contains(&0) {
            return fail("ADC resolutions must be nonzero".to_owned());
        }
        for (label, values) in [
            ("fast_clock_ghz", &self.fast_clock_ghz),
            ("channel_spacing_ghz", &self.channel_spacing_ghz),
            ("ring_radius_um", &self.ring_radius_um),
        ] {
            if values.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
                return fail(format!("{label} values must be finite and positive"));
            }
        }
        self.base_config.validate().map_err(DseError::Core)?;
        Ok(())
    }

    /// The per-knob list lengths, in [`KnobChoice`] order.
    #[must_use]
    pub fn knob_sizes(&self) -> [usize; N_KNOBS] {
        [
            self.n_input_dacs.len(),
            self.n_adcs.len(),
            self.adc_bits.len(),
            self.fast_clock_ghz.len(),
            self.allocations.len(),
            self.channel_spacing_ghz.len(),
            self.ring_radius_um.len(),
        ]
    }

    /// Total number of grid points (product of the knob list lengths).
    #[must_use]
    pub fn cardinality(&self) -> u64 {
        self.knob_sizes().iter().map(|&n| n as u64).product()
    }

    /// Builds the candidate a choice describes, through `with_*` builders
    /// only.
    ///
    /// # Panics
    ///
    /// Panics if an index in `choice` is out of range for its knob list —
    /// choices must come from this space's `grid_choices` /
    /// `sample_choice` / `mutate_choice`.
    #[must_use]
    pub fn assemble(&self, choice: KnobChoice) -> Candidate {
        let [di, ai, bi, ci, li, si, ri] = choice.0;
        let clock_hz = self.fast_clock_ghz[ci] * 1e9;
        let budget = self
            .base_budget
            .with_channel_spacing_hz(self.channel_spacing_ghz[si] * 1e9)
            .with_ring_radius_m(self.ring_radius_um[ri] * 1e-6);
        let config = self
            .base_config
            .with_input_dacs(self.n_input_dacs[di])
            .with_adcs(self.n_adcs[ai])
            .with_adc(AdcModel {
                bits: self.adc_bits[bi],
                ..self.base_config.adc
            })
            .with_fast_clock(
                ClockDomain::new("fast", clock_hz).expect("validated positive frequency"),
            )
            .with_allocation(self.allocations[li]);
        Candidate { config, budget }.harmonized()
    }

    /// Every choice in the grid, in a fixed odometer order (last knob
    /// fastest). Deterministic: two calls return identical vectors.
    #[must_use]
    pub fn grid_choices(&self) -> Vec<KnobChoice> {
        let sizes = self.knob_sizes();
        let total = self.cardinality() as usize;
        let mut out = Vec::with_capacity(total);
        let mut idx = [0usize; N_KNOBS];
        for _ in 0..total {
            out.push(KnobChoice(idx));
            for k in (0..N_KNOBS).rev() {
                idx[k] += 1;
                if idx[k] < sizes[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
        out
    }

    /// Draws a uniform random choice.
    pub fn sample_choice(&self, rng: &mut StdRng) -> KnobChoice {
        let sizes = self.knob_sizes();
        let mut idx = [0usize; N_KNOBS];
        for (slot, &size) in idx.iter_mut().zip(&sizes) {
            *slot = rng.gen_range(0..size);
        }
        KnobChoice(idx)
    }

    /// Mutates a parent choice: each knob independently re-rolls to a
    /// uniform random value with probability `rate` (knobs with a single
    /// value are left alone).
    pub fn mutate_choice(&self, rng: &mut StdRng, parent: KnobChoice, rate: f64) -> KnobChoice {
        let sizes = self.knob_sizes();
        let mut idx = parent.0;
        for (slot, &size) in idx.iter_mut().zip(&sizes) {
            if size > 1 && rng.gen_bool(rate.clamp(0.0, 1.0)) {
                *slot = rng.gen_range(0..size);
            }
        }
        KnobChoice(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_space_validates_and_counts() {
        let s = DesignSpace::default();
        assert!(s.validate().is_ok());
        assert_eq!(s.cardinality(), 6 * 4 * 3 * 3 * 2 * 3 * 3);
        assert_eq!(s.grid_choices().len() as u64, s.cardinality());
        assert!(DesignSpace::smoke().validate().is_ok());
        assert_eq!(DesignSpace::smoke().cardinality(), 48);
    }

    #[test]
    fn grid_choices_are_unique_and_in_range() {
        let s = DesignSpace::smoke();
        let choices = s.grid_choices();
        let sizes = s.knob_sizes();
        for c in &choices {
            for (i, &v) in c.0.iter().enumerate() {
                assert!(v < sizes[i]);
            }
        }
        let mut seen: Vec<_> = choices.clone();
        seen.sort_unstable_by_key(|c| c.0);
        seen.dedup();
        assert_eq!(seen.len(), choices.len());
    }

    #[test]
    fn assemble_applies_every_knob() {
        let s = DesignSpace::default();
        let c = s.assemble(KnobChoice([5, 3, 0, 2, 1, 0, 2]));
        assert_eq!(c.config.n_input_dacs, 64);
        assert_eq!(c.config.n_adcs, 64);
        assert_eq!(c.config.adc.bits, 6);
        assert_eq!(c.config.fast_clock.frequency_hz(), 10e9);
        assert_eq!(
            c.config.allocation,
            AllocationPolicy::FilteredChannelSequential
        );
        assert_eq!(c.budget.channel_spacing_hz, 25e9);
        // 20.0 * 1e-6 differs from the literal 20e-6 by one ulp
        assert!((c.budget.ring_radius_m - 20e-6).abs() < 1e-12);
        // link harmonization
        assert_eq!(c.config.link.channel_spacing_hz, 25e9);
        assert_eq!(c.config.link.detection_bandwidth_hz, 10e9);
        assert!(c.config.validate().is_ok());
    }

    #[test]
    fn fingerprints_separate_distinct_candidates() {
        let s = DesignSpace::smoke();
        let mut fps: Vec<u64> = s
            .grid_choices()
            .into_iter()
            .map(|c| s.assemble(c).fingerprint())
            .collect();
        fps.sort_unstable();
        let before = fps.len();
        fps.dedup();
        assert_eq!(fps.len(), before, "fingerprint collision in smoke grid");
        // and the fingerprint is a pure function of the candidate
        let c = Candidate::paper_default();
        assert_eq!(c.fingerprint(), Candidate::paper_default().fingerprint());
    }

    #[test]
    fn sampling_and_mutation_stay_in_range() {
        let s = DesignSpace::default();
        let sizes = s.knob_sizes();
        let mut rng = StdRng::seed_from_u64(3);
        let mut parent = s.sample_choice(&mut rng);
        for _ in 0..200 {
            parent = s.mutate_choice(&mut rng, parent, 0.5);
            for (i, &v) in parent.0.iter().enumerate() {
                assert!(v < sizes[i]);
            }
        }
    }

    #[test]
    fn zero_mutation_rate_is_identity() {
        let s = DesignSpace::default();
        let mut rng = StdRng::seed_from_u64(4);
        let parent = s.sample_choice(&mut rng);
        assert_eq!(s.mutate_choice(&mut rng, parent, 0.0), parent);
    }

    #[test]
    fn invalid_spaces_are_rejected() {
        assert!(DesignSpace {
            n_adcs: vec![],
            ..DesignSpace::default()
        }
        .validate()
        .is_err());
        assert!(DesignSpace {
            fast_clock_ghz: vec![0.0],
            ..DesignSpace::default()
        }
        .validate()
        .is_err());
        assert!(DesignSpace {
            n_input_dacs: vec![0],
            ..DesignSpace::default()
        }
        .validate()
        .is_err());
    }
}
