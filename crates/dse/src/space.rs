//! The explorable design space: knobs, candidates, and fingerprints.
//!
//! A [`Candidate`] is one complete accelerator description — a
//! [`PcnnaConfig`] paired with the [`SpectralBudget`] that bounds its WDM
//! carrier count. A [`DesignSpace`] is a set of per-knob value lists; a
//! [`KnobChoice`] indexes one value per knob, and
//! [`DesignSpace::assemble`] turns a choice into a candidate by applying
//! the workspace's `with_*` builders to a base design point (the search
//! code never reaches into raw struct fields).
//!
//! Knob coupling: assembly harmonizes the photonic
//! [`LinkConfig`](pcnna_photonics::link::LinkConfig) with the
//! rest of the candidate — the link inherits the budget's channel spacing,
//! and its detection bandwidth tracks the fast clock (a faster symbol rate
//! integrates more receiver noise, which is exactly the latency ↔ SNR
//! tension the explorer is meant to surface).

use crate::{DseError, Result};
use pcnna_core::config::{AllocationPolicy, PcnnaConfig};
use pcnna_core::feasibility::SpectralBudget;
use pcnna_electronics::adc::AdcModel;
use pcnna_electronics::clock::ClockDomain;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of knobs in a [`DesignSpace`].
pub const N_KNOBS: usize = 7;

/// One value index per knob, in [`DesignSpace`] field order:
/// `[n_input_dacs, n_adcs, adc_bits, fast_clock_ghz, allocations,
/// channel_spacing_ghz, ring_radius_um]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KnobChoice(pub [usize; N_KNOBS]);

/// One complete accelerator design: hardware config + spectral budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The hardware configuration.
    pub config: PcnnaConfig,
    /// The WDM carrier budget (C band + microring FSR).
    pub budget: SpectralBudget,
}

impl Candidate {
    /// The paper's design point under the default spectral budget.
    #[must_use]
    pub fn paper_default() -> Self {
        Candidate {
            config: PcnnaConfig::default(),
            budget: SpectralBudget::default(),
        }
    }

    /// Returns a copy whose photonic link mirrors the knobs it physically
    /// shares: the WDM grid spacing comes from the spectral budget, the
    /// receiver detection bandwidth from the fast (symbol) clock. The
    /// evaluator applies this to every candidate, so a hand-built
    /// `Candidate` is scored under the same coupling as one produced by
    /// [`DesignSpace::assemble`]. Idempotent.
    #[must_use]
    pub fn harmonized(&self) -> Self {
        let mut link = self.config.link;
        link.channel_spacing_hz = self.budget.channel_spacing_hz;
        link.detection_bandwidth_hz = self.config.fast_clock.frequency_hz();
        Candidate {
            config: self.config.with_link(link),
            budget: self.budget,
        }
    }

    /// A stable 64-bit key for memoization: word-wise FNV-1a over every
    /// semantic field of both halves (floats by IEEE bit pattern, enums by
    /// discriminant). Two candidates collide only if every field agrees,
    /// which is precisely the "same design" equivalence the evaluation
    /// cache needs. This runs in ~50 ns — it sits on the search hot path,
    /// where the `Debug`-rendering hash it replaced cost ~7 µs per call
    /// and dominated a grid sweep.
    ///
    /// Every struct is destructured without `..`, so adding a field to a
    /// config type without teaching the fingerprint about it is a compile
    /// error, not a silent collision.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        eat_config(&mut h, &self.config);
        eat_budget(&mut h, &self.budget);
        h.0
    }
}

/// Word-wise hash accumulator for [`Candidate::fingerprint`]: each field
/// is folded in through a splitmix64 finalizer, whose full-width
/// avalanche keeps correlated field differences (e.g. the budget spacing
/// and the link spacing the harmonizer mirrors from it) from cancelling —
/// a plain XOR-multiply chain measurably collided on the default grid.
struct Fnv(u64);

impl Fnv {
    const fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        let mut z = (self.0 ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }

    #[inline]
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    #[inline]
    fn opt_u8(&mut self, v: Option<u8>) {
        match v {
            None => self.u64(u64::MAX),
            Some(b) => self.u64(u64::from(b)),
        }
    }
}

fn eat_config(h: &mut Fnv, c: &PcnnaConfig) {
    use pcnna_core::config::{BottleneckModel, ScanOrder};
    // Exhaustive destructure: a new `PcnnaConfig` field fails to compile
    // here until the fingerprint covers it.
    let PcnnaConfig {
        fast_clock,
        input_dac,
        n_input_dacs,
        n_weight_dacs,
        adc,
        n_adcs,
        sram,
        dram,
        ring_pitch_m,
        allocation,
        scan,
        bottleneck,
        include_weight_load,
        link,
        bytes_per_value,
    } = c;
    // `ClockDomain` keeps its fields private; the name is a report label
    // ("frequency is the semantically meaningful part" — its docs), so
    // the frequency alone identifies the clock.
    h.f64(fast_clock.frequency_hz());
    let pcnna_electronics::dac::DacModel {
        rate_sps,
        bits,
        area_mm2,
        power_w,
    } = input_dac;
    h.f64(*rate_sps);
    h.u64(u64::from(*bits));
    h.f64(*area_mm2);
    h.f64(*power_w);
    h.u64(*n_input_dacs as u64);
    h.u64(*n_weight_dacs as u64);
    let AdcModel {
        rate_sps,
        bits,
        power_w,
        area_mm2,
    } = adc;
    h.f64(*rate_sps);
    h.u64(u64::from(*bits));
    h.f64(*power_w);
    h.f64(*area_mm2);
    h.u64(*n_adcs as u64);
    let pcnna_electronics::sram::SramModel {
        capacity_bits,
        word_bits,
        access_time,
        area_mm2,
        power_per_mhz_w,
    } = sram;
    h.u64(*capacity_bits);
    h.u64(u64::from(*word_bits));
    h.u64(access_time.as_ps());
    h.f64(*area_mm2);
    h.f64(*power_per_mhz_w);
    let pcnna_electronics::dram::DramModel {
        bandwidth_bytes_per_s,
        latency,
        energy_per_byte_j,
    } = dram;
    h.f64(*bandwidth_bytes_per_s);
    h.u64(latency.as_ps());
    h.f64(*energy_per_byte_j);
    h.f64(*ring_pitch_m);
    h.u64(match allocation {
        AllocationPolicy::Unfiltered => 0,
        AllocationPolicy::Filtered => 1,
        AllocationPolicy::FilteredChannelSequential => 2,
    });
    h.u64(match scan {
        ScanOrder::RowMajor => 0,
        ScanOrder::Serpentine => 1,
    });
    h.u64(match bottleneck {
        BottleneckModel::DacOnly => 0,
        BottleneckModel::MaxOfStages => 1,
    });
    h.u64(u64::from(*include_weight_load));
    eat_link(h, link);
    h.u64(*bytes_per_value);
}

fn eat_link(h: &mut Fnv, link: &pcnna_photonics::link::LinkConfig) {
    let pcnna_photonics::link::LinkConfig {
        ring,
        mzm,
        laser,
        receiver,
        waveguide,
        channel_spacing_hz,
        route_length_cm,
        detection_bandwidth_hz,
        calibration_tolerance,
        calibration_max_iters,
    } = link;
    let pcnna_photonics::microring::RingParams {
        q_factor,
        drop_peak,
        extinction_db,
        tuning_range_frac,
        tuning_bits,
        heater_power_per_linewidth_w,
    } = ring;
    h.f64(*q_factor);
    h.f64(*drop_peak);
    h.f64(*extinction_db);
    h.f64(*tuning_range_frac);
    h.opt_u8(*tuning_bits);
    h.f64(*heater_power_per_linewidth_w);
    let pcnna_photonics::modulator::Mzm {
        v_pi,
        insertion,
        extinction_db,
        bandwidth_hz,
        drive_bits,
    } = mzm;
    h.f64(*v_pi);
    h.f64(*insertion);
    h.f64(*extinction_db);
    h.f64(*bandwidth_hz);
    h.opt_u8(*drive_bits);
    let pcnna_photonics::laser::LaserDiode {
        power_w,
        rin_db_hz,
        wall_plug_efficiency,
    } = laser;
    h.f64(*power_w);
    h.f64(*rin_db_hz);
    h.f64(*wall_plug_efficiency);
    let pcnna_photonics::photodiode::BalancedPair { diode } = receiver;
    let pcnna_photonics::photodiode::Photodiode {
        responsivity_a_w,
        dark_current_a,
        load_ohms,
        temperature_k,
    } = diode;
    h.f64(*responsivity_a_w);
    h.f64(*dark_current_a);
    h.f64(*load_ohms);
    h.f64(*temperature_k);
    let pcnna_photonics::waveguide::WaveguideModel {
        loss_db_per_cm,
        splitter_excess_db,
        coupler_loss_db,
    } = waveguide;
    h.f64(*loss_db_per_cm);
    h.f64(*splitter_excess_db);
    h.f64(*coupler_loss_db);
    h.f64(*channel_spacing_hz);
    h.f64(*route_length_cm);
    h.f64(*detection_bandwidth_hz);
    h.f64(*calibration_tolerance);
    h.u64(*calibration_max_iters as u64);
}

fn eat_budget(h: &mut Fnv, b: &SpectralBudget) {
    let SpectralBudget {
        channel_spacing_hz,
        ring_radius_m,
        group_index,
        center_m,
    } = b;
    h.f64(*channel_spacing_hz);
    h.f64(*ring_radius_m);
    h.f64(*group_index);
    h.f64(*center_m);
}

/// Enumerable/sampleable value lists for every explored knob, plus the
/// base design point the knobs are applied to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Parallel input-DAC counts.
    pub n_input_dacs: Vec<usize>,
    /// Parallel output-ADC counts.
    pub n_adcs: Vec<usize>,
    /// Output-ADC nominal resolutions, bits (drives the SNR requirement).
    pub adc_bits: Vec<u8>,
    /// Fast (optical-core) clock frequencies, GHz.
    pub fast_clock_ghz: Vec<f64>,
    /// Ring/wavelength allocation policies.
    pub allocations: Vec<AllocationPolicy>,
    /// WDM channel spacings, GHz (the wavelength-count knob).
    pub channel_spacing_ghz: Vec<f64>,
    /// Microring radii, µm (sets the FSR → the MRR bank-size knob).
    pub ring_radius_um: Vec<f64>,
    /// Base hardware configuration the knobs override.
    pub base_config: PcnnaConfig,
    /// Base spectral budget the knobs override.
    pub base_budget: SpectralBudget,
}

impl Default for DesignSpace {
    /// The full exploration space used by the `dse` harness: 3 888 points
    /// spanning converter provisioning, clocking, allocation policy, and
    /// the spectral budget.
    fn default() -> Self {
        DesignSpace {
            n_input_dacs: vec![4, 8, 10, 16, 32, 64],
            n_adcs: vec![8, 16, 32, 64],
            adc_bits: vec![6, 8, 10],
            fast_clock_ghz: vec![2.5, 5.0, 10.0],
            allocations: vec![
                AllocationPolicy::Filtered,
                AllocationPolicy::FilteredChannelSequential,
            ],
            channel_spacing_ghz: vec![25.0, 50.0, 100.0],
            ring_radius_um: vec![5.0, 10.0, 20.0],
            base_config: PcnnaConfig::default(),
            base_budget: SpectralBudget::default(),
        }
    }
}

impl DesignSpace {
    /// A deliberately tiny space (48 points) for CI smoke runs and tests.
    #[must_use]
    pub fn smoke() -> Self {
        DesignSpace {
            n_input_dacs: vec![4, 10, 32],
            n_adcs: vec![16, 32],
            adc_bits: vec![8, 10],
            fast_clock_ghz: vec![5.0],
            allocations: vec![
                AllocationPolicy::Filtered,
                AllocationPolicy::FilteredChannelSequential,
            ],
            channel_spacing_ghz: vec![50.0, 100.0],
            ring_radius_um: vec![10.0],
            ..DesignSpace::default()
        }
    }

    /// Validates the space: every knob list non-empty, every numeric value
    /// positive and finite, and the base design point itself valid.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidSpace`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        let fail = |reason: String| Err(DseError::InvalidSpace { reason });
        if self.n_input_dacs.is_empty()
            || self.n_adcs.is_empty()
            || self.adc_bits.is_empty()
            || self.fast_clock_ghz.is_empty()
            || self.allocations.is_empty()
            || self.channel_spacing_ghz.is_empty()
            || self.ring_radius_um.is_empty()
        {
            return fail("every knob needs at least one value".to_owned());
        }
        if self.n_input_dacs.contains(&0) || self.n_adcs.contains(&0) {
            return fail("converter counts must be nonzero".to_owned());
        }
        if self.adc_bits.contains(&0) {
            return fail("ADC resolutions must be nonzero".to_owned());
        }
        for (label, values) in [
            ("fast_clock_ghz", &self.fast_clock_ghz),
            ("channel_spacing_ghz", &self.channel_spacing_ghz),
            ("ring_radius_um", &self.ring_radius_um),
        ] {
            if values.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
                return fail(format!("{label} values must be finite and positive"));
            }
        }
        self.base_config.validate().map_err(DseError::Core)?;
        Ok(())
    }

    /// The per-knob list lengths, in [`KnobChoice`] order.
    #[must_use]
    pub fn knob_sizes(&self) -> [usize; N_KNOBS] {
        [
            self.n_input_dacs.len(),
            self.n_adcs.len(),
            self.adc_bits.len(),
            self.fast_clock_ghz.len(),
            self.allocations.len(),
            self.channel_spacing_ghz.len(),
            self.ring_radius_um.len(),
        ]
    }

    /// Total number of grid points (product of the knob list lengths).
    #[must_use]
    pub fn cardinality(&self) -> u64 {
        self.knob_sizes().iter().map(|&n| n as u64).product()
    }

    /// Builds the candidate a choice describes, through `with_*` builders
    /// only.
    ///
    /// # Panics
    ///
    /// Panics if an index in `choice` is out of range for its knob list —
    /// choices must come from this space's `grid_choices` /
    /// `sample_choice` / `mutate_choice`.
    #[must_use]
    pub fn assemble(&self, choice: KnobChoice) -> Candidate {
        let [di, ai, bi, ci, li, si, ri] = choice.0;
        let clock_hz = self.fast_clock_ghz[ci] * 1e9;
        let budget = self
            .base_budget
            .with_channel_spacing_hz(self.channel_spacing_ghz[si] * 1e9)
            .with_ring_radius_m(self.ring_radius_um[ri] * 1e-6);
        let config = self
            .base_config
            .with_input_dacs(self.n_input_dacs[di])
            .with_adcs(self.n_adcs[ai])
            .with_adc(AdcModel {
                bits: self.adc_bits[bi],
                ..self.base_config.adc
            })
            .with_fast_clock(
                ClockDomain::new("fast", clock_hz).expect("validated positive frequency"),
            )
            .with_allocation(self.allocations[li]);
        Candidate { config, budget }.harmonized()
    }

    /// Every choice in the grid, in a fixed odometer order (last knob
    /// fastest). Deterministic: two calls return identical vectors.
    #[must_use]
    pub fn grid_choices(&self) -> Vec<KnobChoice> {
        let sizes = self.knob_sizes();
        let total = self.cardinality() as usize;
        let mut out = Vec::with_capacity(total);
        let mut idx = [0usize; N_KNOBS];
        for _ in 0..total {
            out.push(KnobChoice(idx));
            for k in (0..N_KNOBS).rev() {
                idx[k] += 1;
                if idx[k] < sizes[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
        out
    }

    /// Draws a uniform random choice.
    pub fn sample_choice(&self, rng: &mut StdRng) -> KnobChoice {
        let sizes = self.knob_sizes();
        let mut idx = [0usize; N_KNOBS];
        for (slot, &size) in idx.iter_mut().zip(&sizes) {
            *slot = rng.gen_range(0..size);
        }
        KnobChoice(idx)
    }

    /// Mutates a parent choice: each knob independently re-rolls to a
    /// uniform random value with probability `rate` (knobs with a single
    /// value are left alone).
    pub fn mutate_choice(&self, rng: &mut StdRng, parent: KnobChoice, rate: f64) -> KnobChoice {
        let sizes = self.knob_sizes();
        let mut idx = parent.0;
        for (slot, &size) in idx.iter_mut().zip(&sizes) {
            if size > 1 && rng.gen_bool(rate.clamp(0.0, 1.0)) {
                *slot = rng.gen_range(0..size);
            }
        }
        KnobChoice(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_space_validates_and_counts() {
        let s = DesignSpace::default();
        assert!(s.validate().is_ok());
        assert_eq!(s.cardinality(), 6 * 4 * 3 * 3 * 2 * 3 * 3);
        assert_eq!(s.grid_choices().len() as u64, s.cardinality());
        assert!(DesignSpace::smoke().validate().is_ok());
        assert_eq!(DesignSpace::smoke().cardinality(), 48);
    }

    #[test]
    fn grid_choices_are_unique_and_in_range() {
        let s = DesignSpace::smoke();
        let choices = s.grid_choices();
        let sizes = s.knob_sizes();
        for c in &choices {
            for (i, &v) in c.0.iter().enumerate() {
                assert!(v < sizes[i]);
            }
        }
        let mut seen: Vec<_> = choices.clone();
        seen.sort_unstable_by_key(|c| c.0);
        seen.dedup();
        assert_eq!(seen.len(), choices.len());
    }

    #[test]
    fn assemble_applies_every_knob() {
        let s = DesignSpace::default();
        let c = s.assemble(KnobChoice([5, 3, 0, 2, 1, 0, 2]));
        assert_eq!(c.config.n_input_dacs, 64);
        assert_eq!(c.config.n_adcs, 64);
        assert_eq!(c.config.adc.bits, 6);
        assert_eq!(c.config.fast_clock.frequency_hz(), 10e9);
        assert_eq!(
            c.config.allocation,
            AllocationPolicy::FilteredChannelSequential
        );
        assert_eq!(c.budget.channel_spacing_hz, 25e9);
        // 20.0 * 1e-6 differs from the literal 20e-6 by one ulp
        assert!((c.budget.ring_radius_m - 20e-6).abs() < 1e-12);
        // link harmonization
        assert_eq!(c.config.link.channel_spacing_hz, 25e9);
        assert_eq!(c.config.link.detection_bandwidth_hz, 10e9);
        assert!(c.config.validate().is_ok());
    }

    #[test]
    fn fingerprints_separate_full_default_grid() {
        // The full 3 888-point grid includes correlated knob pairs (the
        // harmonizer mirrors the budget spacing into the link), which a
        // weak word-wise hash demonstrably collided on — sweep them all.
        let s = DesignSpace::default();
        let mut fps: Vec<u64> = s
            .grid_choices()
            .into_iter()
            .map(|c| s.assemble(c).fingerprint())
            .collect();
        let before = fps.len();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), before, "fingerprint collision in default grid");
    }

    #[test]
    fn fingerprints_separate_distinct_candidates() {
        let s = DesignSpace::smoke();
        let mut fps: Vec<u64> = s
            .grid_choices()
            .into_iter()
            .map(|c| s.assemble(c).fingerprint())
            .collect();
        fps.sort_unstable();
        let before = fps.len();
        fps.dedup();
        assert_eq!(fps.len(), before, "fingerprint collision in smoke grid");
        // and the fingerprint is a pure function of the candidate
        let c = Candidate::paper_default();
        assert_eq!(c.fingerprint(), Candidate::paper_default().fingerprint());
    }

    #[test]
    fn sampling_and_mutation_stay_in_range() {
        let s = DesignSpace::default();
        let sizes = s.knob_sizes();
        let mut rng = StdRng::seed_from_u64(3);
        let mut parent = s.sample_choice(&mut rng);
        for _ in 0..200 {
            parent = s.mutate_choice(&mut rng, parent, 0.5);
            for (i, &v) in parent.0.iter().enumerate() {
                assert!(v < sizes[i]);
            }
        }
    }

    #[test]
    fn zero_mutation_rate_is_identity() {
        let s = DesignSpace::default();
        let mut rng = StdRng::seed_from_u64(4);
        let parent = s.sample_choice(&mut rng);
        assert_eq!(s.mutate_choice(&mut rng, parent, 0.0), parent);
    }

    #[test]
    fn invalid_spaces_are_rejected() {
        assert!(DesignSpace {
            n_adcs: vec![],
            ..DesignSpace::default()
        }
        .validate()
        .is_err());
        assert!(DesignSpace {
            fast_clock_ghz: vec![0.0],
            ..DesignSpace::default()
        }
        .validate()
        .is_err());
        assert!(DesignSpace {
            n_input_dacs: vec![0],
            ..DesignSpace::default()
        }
        .validate()
        .is_err());
    }
}
