//! Property-based invariants of the design-space explorer: Pareto
//! dominance, cache bit-identity, and seeded determinism.

use proptest::prelude::*;

use pcnna_dse::prelude::*;

/// Random objective vectors over a few orders of magnitude (all four
/// senses folded to "minimize" inside `DesignPoint::objectives`).
fn points() -> impl Strategy<Value = Vec<DesignPoint>> {
    proptest::collection::vec(
        (
            0.001f64..10.0,
            0.001f64..10.0,
            0.001f64..10.0,
            -30.0f64..30.0,
        ),
        1..60,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (latency, energy, area, headroom))| DesignPoint {
                fingerprint: i as u64,
                latency_s: latency,
                energy_j: energy,
                area_mm2: area,
                snr_headroom_db: headroom,
                usable_channels: 1,
                spectral_passes: 1,
                spectrally_bound: false,
                throughput_fps: 1.0 / latency,
            })
            .collect()
    })
}

/// Small random knob choices over the full default space.
fn choices() -> impl Strategy<Value = KnobChoice> {
    // index space of DesignSpace::default(): [6, 4, 3, 3, 2, 3, 3]
    (
        0usize..6,
        0usize..4,
        0usize..3,
        0usize..3,
        0usize..2,
        0usize..3,
        0usize..3,
    )
        .prop_map(|(a, b, c, d, e, f, g)| KnobChoice([a, b, c, d, e, f, g]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_frontier_point_dominates_another(pts in points()) {
        let cand = Candidate::paper_default();
        let mut frontier = ParetoFrontier::new();
        for p in &pts {
            frontier.insert(cand, *p);
        }
        prop_assert!(!frontier.is_empty());
        let entries = frontier.entries();
        for (i, a) in entries.iter().enumerate() {
            for (j, b) in entries.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !a.point.weakly_dominates(&b.point),
                        "frontier holds a dominated pair: {:?} vs {:?}",
                        a.point.objectives(),
                        b.point.objectives()
                    );
                }
            }
        }
    }

    #[test]
    fn inserting_a_dominated_point_is_a_noop(pts in points()) {
        let cand = Candidate::paper_default();
        let mut frontier = ParetoFrontier::new();
        for p in &pts {
            frontier.insert(cand, *p);
        }
        // A point strictly worse than some resident in every objective is
        // dominated; offering it must not change the frontier at all.
        let resident = frontier.entries()[0].point;
        let worse = DesignPoint {
            fingerprint: u64::MAX,
            latency_s: resident.latency_s * 2.0,
            energy_j: resident.energy_j * 2.0,
            area_mm2: resident.area_mm2 * 2.0,
            snr_headroom_db: resident.snr_headroom_db - 1.0,
            ..resident
        };
        let before = frontier.clone();
        prop_assert!(!frontier.insert(cand, worse));
        prop_assert_eq!(&frontier, &before);
        // Re-offering an exact resident copy is equally a no-op.
        prop_assert!(!frontier.insert(cand, resident));
        prop_assert_eq!(&frontier, &before);
    }

    #[test]
    fn every_insert_reports_membership_truthfully(pts in points()) {
        let cand = Candidate::paper_default();
        let mut frontier = ParetoFrontier::new();
        for p in &pts {
            let admitted = frontier.insert(cand, *p);
            let present = frontier
                .entries()
                .iter()
                .any(|e| e.point.fingerprint == p.fingerprint);
            prop_assert_eq!(admitted, present);
        }
    }

    #[test]
    fn cache_returns_bit_identical_points(choice in choices(), repeats in 2usize..5) {
        let space = DesignSpace::default();
        let ev = Evaluator::lenet5();
        let cand = space.assemble(choice);
        let mut cache = EvalCache::new();
        let first = cache.evaluate(&ev, &cand);
        for _ in 1..repeats {
            let again = cache.evaluate(&ev, &cand);
            // bit-identical: every f64 field compares exactly equal
            prop_assert_eq!(first, again);
        }
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), (repeats - 1) as u64);
        // and a fresh evaluator run agrees with the cached verdict
        prop_assert_eq!(first, ev.evaluate(&cand));
    }

    #[test]
    fn seeded_evolution_reproduces_frontiers(seed in 0u64..500) {
        let space = DesignSpace::smoke();
        let ev = Evaluator::lenet5();
        let cfg = EvolutionConfig {
            population: 12,
            generations: 3,
            seed,
            threads: 4,
            ..EvolutionConfig::default()
        };
        let a = evolve(&space, &ev, &cfg).unwrap();
        let b = evolve(&space, &ev, &cfg).unwrap();
        prop_assert_eq!(a.frontier, b.frontier);
        prop_assert_eq!(a.stats, b.stats);
    }
}
