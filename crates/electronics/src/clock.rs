//! Clock domains.
//!
//! "PCNNA runs on two clock domains, a fast clock domain (5GHz), which runs
//! the optical sub-systems and their immediate electronic circuitry, and a
//! main slower clock domain to interface with the external environment"
//! (paper §IV, Figure 4).

use crate::time::SimTime;
use crate::{ElectronicError, Result};
use serde::{Deserialize, Serialize};

/// A clock domain with a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    // The name is a static label for reports; deserialized configs get an
    // empty label (frequency is the semantically meaningful part).
    #[serde(skip_deserializing, default)]
    name: &'static str,
    frequency_hz: f64,
}

impl ClockDomain {
    /// Creates a clock domain.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] for a non-positive
    /// frequency.
    pub fn new(name: &'static str, frequency_hz: f64) -> Result<Self> {
        if !(frequency_hz > 0.0) {
            return Err(ElectronicError::InvalidParameter {
                reason: format!("clock frequency must be positive, got {frequency_hz}"),
            });
        }
        Ok(ClockDomain { name, frequency_hz })
    }

    /// The paper's 5 GHz fast (optical-core) clock.
    #[must_use]
    pub fn fast_5ghz() -> Self {
        ClockDomain {
            name: "fast",
            frequency_hz: 5e9,
        }
    }

    /// A representative slower main clock (1 GHz) for the external
    /// interface; the paper does not pin its frequency.
    #[must_use]
    pub fn main_1ghz() -> Self {
        ClockDomain {
            name: "main",
            frequency_hz: 1e9,
        }
    }

    /// Domain name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Frequency in Hz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Duration of one cycle.
    #[must_use]
    pub fn period(&self) -> SimTime {
        SimTime::from_secs_f64(1.0 / self.frequency_hz)
    }

    /// Duration of `n` cycles.
    #[must_use]
    pub fn cycles(&self, n: u64) -> SimTime {
        SimTime::from_secs_f64(n as f64 / self.frequency_hz)
    }

    /// Number of whole cycles needed to cover a duration (ceiling).
    #[must_use]
    pub fn cycles_to_cover(&self, t: SimTime) -> u64 {
        (t.as_secs_f64() * self.frequency_hz).ceil() as u64
    }

    /// Rounds a duration *up* to a whole number of cycles — what a
    /// synchronous handoff into this domain costs. Never returns less than
    /// the input even when the cycle count does not land on an integer
    /// picosecond.
    #[must_use]
    pub fn quantize_up(&self, t: SimTime) -> SimTime {
        self.cycles(self.cycles_to_cover(t)).max(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(ClockDomain::new("x", 0.0).is_err());
        assert!(ClockDomain::new("x", -5.0).is_err());
        assert!(ClockDomain::new("x", 1e9).is_ok());
    }

    #[test]
    fn fast_clock_is_200ps() {
        let fast = ClockDomain::fast_5ghz();
        assert_eq!(fast.period(), SimTime::from_ps(200));
        assert_eq!(fast.name(), "fast");
    }

    #[test]
    fn cycles_scale_linearly() {
        let fast = ClockDomain::fast_5ghz();
        // AlexNet conv1: 3025 locations at one location per fast cycle
        assert_eq!(fast.cycles(3025), SimTime::from_ps(3025 * 200));
    }

    #[test]
    fn cycles_to_cover_rounds_up() {
        let fast = ClockDomain::fast_5ghz();
        assert_eq!(fast.cycles_to_cover(SimTime::from_ps(200)), 1);
        assert_eq!(fast.cycles_to_cover(SimTime::from_ps(201)), 2);
        assert_eq!(fast.cycles_to_cover(SimTime::from_ps(399)), 2);
        assert_eq!(fast.cycles_to_cover(SimTime::ZERO), 0);
    }

    #[test]
    fn quantize_up_is_idempotent() {
        let fast = ClockDomain::fast_5ghz();
        let q = fast.quantize_up(SimTime::from_ps(450));
        assert_eq!(q, SimTime::from_ps(600));
        assert_eq!(fast.quantize_up(q), q);
    }

    #[test]
    fn sram_access_spans_35_fast_cycles() {
        // The paper's 7 ns SRAM access = 35 cycles of the 5 GHz clock.
        let fast = ClockDomain::fast_5ghz();
        assert_eq!(fast.cycles_to_cover(SimTime::from_ns(7)), 35);
    }
}
