//! On-chip SRAM cache.
//!
//! "Buffered inputs are cached in the SRAM memory \[15\], which has a 128kb
//! capacity that can store 8 thousand 16bit values. The access time for the
//! memory is 7ns and it has a footprint of 0.443mm²" (§V-B). Besides the
//! timing model, [`CacheSim`] tracks which receptive-field words are
//! resident so the scheduler's stride-reuse claims can be validated against
//! actual hit/miss counts.

use crate::time::SimTime;
use crate::{ElectronicError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::collections::VecDeque;

/// Timing/area/power model of the cache macro.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramModel {
    /// Capacity in bits.
    pub capacity_bits: u64,
    /// Word width in bits.
    pub word_bits: u32,
    /// Access time per word.
    pub access_time: SimTime,
    /// Footprint, mm².
    pub area_mm2: f64,
    /// Dynamic power per MHz of access rate, watts (the cited macro is
    /// 25 µW/MHz).
    pub power_per_mhz_w: f64,
}

impl Default for SramModel {
    /// The paper's reference \[15\]: 128 kb, 16-bit words, 7 ns access,
    /// 0.443 mm², 25 µW/MHz.
    fn default() -> Self {
        SramModel {
            capacity_bits: 128 * 1024,
            word_bits: 16,
            access_time: SimTime::from_ns(7),
            area_mm2: 0.443,
            power_per_mhz_w: 25e-6,
        }
    }
}

impl SramModel {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] for zero capacity or
    /// word width.
    pub fn validate(&self) -> Result<()> {
        if self.capacity_bits == 0 || self.word_bits == 0 {
            return Err(ElectronicError::InvalidParameter {
                reason: "SRAM capacity and word width must be nonzero".to_owned(),
            });
        }
        Ok(())
    }

    /// Number of words the macro stores — the paper's "8 thousand 16bit
    /// values".
    #[must_use]
    pub fn capacity_words(&self) -> u64 {
        self.capacity_bits / u64::from(self.word_bits)
    }

    /// Time to stream `n` words through one port.
    #[must_use]
    pub fn access_time_for(&self, n: u64) -> SimTime {
        self.access_time.saturating_mul(n)
    }

    /// Whether a working set of `n` words fits.
    #[must_use]
    pub fn fits(&self, n: u64) -> bool {
        n <= self.capacity_words()
    }

    /// Average power at a given access rate (accesses/second), watts.
    #[must_use]
    pub fn power_w(&self, accesses_per_sec: f64) -> f64 {
        self.power_per_mhz_w * (accesses_per_sec / 1e6)
    }
}

/// Hit/miss statistics of a [`CacheSim`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that found their word resident.
    pub hits: u64,
    /// Accesses that had to fill from the next level.
    pub misses: u64,
    /// Words evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (1 for no accesses).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A FIFO-replacement word cache over abstract addresses.
///
/// PCNNA's access pattern is a sliding window, for which FIFO replacement is
/// near-optimal (words leave the receptive field in the order they entered);
/// a full LRU would only complicate the model without changing the counts.
#[derive(Debug, Clone)]
pub struct CacheSim {
    capacity_words: usize,
    resident: HashSet<u64>,
    order: VecDeque<u64>,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates a cache holding `capacity_words` words.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] for zero capacity.
    pub fn new(capacity_words: usize) -> Result<Self> {
        if capacity_words == 0 {
            return Err(ElectronicError::InvalidParameter {
                reason: "cache capacity must be nonzero".to_owned(),
            });
        }
        Ok(CacheSim {
            capacity_words,
            resident: HashSet::new(),
            order: VecDeque::new(),
            stats: CacheStats::default(),
        })
    }

    /// Creates a cache sized to an [`SramModel`].
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] if the model holds zero
    /// words.
    pub fn for_model(model: &SramModel) -> Result<Self> {
        CacheSim::new(model.capacity_words() as usize)
    }

    /// Capacity in words.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity_words
    }

    /// Current resident word count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses one word; returns `true` on a hit. Misses fill the word,
    /// evicting FIFO if full.
    pub fn access(&mut self, addr: u64) -> bool {
        if self.resident.contains(&addr) {
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.resident.len() == self.capacity_words {
            if let Some(victim) = self.order.pop_front() {
                self.resident.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.resident.insert(addr);
        self.order.push_back(addr);
        false
    }

    /// Accesses a slice of words, returning the number of misses.
    pub fn access_all(&mut self, addrs: &[u64]) -> u64 {
        addrs.iter().filter(|&&a| !self.access(a)).count() as u64
    }

    /// Clears residency (layer switch) but keeps statistics.
    pub fn flush(&mut self) {
        self.resident.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_8k_words() {
        let m = SramModel::default();
        assert_eq!(m.capacity_words(), 8192);
        assert!(m.fits(8000));
        assert!(!m.fits(9000));
    }

    #[test]
    fn access_timing() {
        let m = SramModel::default();
        assert_eq!(m.access_time_for(1), SimTime::from_ns(7));
        assert_eq!(m.access_time_for(10), SimTime::from_ns(70));
        assert_eq!(m.access_time_for(0), SimTime::ZERO);
    }

    #[test]
    fn power_matches_25uw_per_mhz() {
        let m = SramModel::default();
        assert!((m.power_w(1e6) - 25e-6).abs() < 1e-18);
        assert!((m.power_w(100e6) - 2.5e-3).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(SramModel {
            capacity_bits: 0,
            ..SramModel::default()
        }
        .validate()
        .is_err());
        assert!(SramModel::default().validate().is_ok());
        assert!(CacheSim::new(0).is_err());
    }

    #[test]
    fn cold_cache_misses_then_hits() {
        let mut c = CacheSim::new(4).unwrap();
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1));
        assert!(c.access(2));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut c = CacheSim::new(2).unwrap();
        c.access(1);
        c.access(2);
        c.access(3); // evicts 1
        assert!(!c.access(1)); // 1 gone (this evicts 2)
        assert!(c.access(3)); // 3 still resident
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn sliding_window_mostly_hits() {
        // 3-wide window sliding over 100 addresses with stride 1: after the
        // first fill, each step misses exactly the 1 new address.
        let mut c = CacheSim::new(8).unwrap();
        let mut misses = 0;
        for start in 0..97u64 {
            let window = [start, start + 1, start + 2];
            misses += c.access_all(&window);
        }
        assert_eq!(misses, 99); // 3 cold + 96 new
        assert!(c.stats().hit_rate() > 0.6);
    }

    #[test]
    fn flush_clears_residency_keeps_stats() {
        let mut c = CacheSim::new(4).unwrap();
        c.access(1);
        c.flush();
        assert!(c.is_empty());
        assert!(!c.access(1));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn hit_rate_empty_is_one() {
        let c = CacheSim::new(4).unwrap();
        assert_eq!(c.stats().hit_rate(), 1.0);
        assert_eq!(c.capacity(), 4);
    }
}
