//! Off-chip DRAM model.
//!
//! PCNNA stores input feature maps, kernel weights and convolution results
//! in off-chip DRAM (paper §IV, Figure 4). The paper never pins a specific
//! part, so this is a classic first-order bandwidth + fixed-latency model
//! with traffic accounting — sufficient for the pipeline simulator to decide
//! whether DRAM, rather than the DAC, ever becomes the bottleneck.

use crate::time::SimTime;
use crate::{ElectronicError, Result};
use serde::{Deserialize, Serialize};

/// Bandwidth/latency model of the off-chip memory channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Sustained bandwidth, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed access latency per burst.
    pub latency: SimTime,
    /// Energy per byte transferred, joules (typ. ~20 pJ/byte for DDR4).
    pub energy_per_byte_j: f64,
}

impl Default for DramModel {
    /// A single-channel DDR4-like interface: 12.8 GB/s, 60 ns latency,
    /// 20 pJ/byte.
    fn default() -> Self {
        DramModel {
            bandwidth_bytes_per_s: 12.8e9,
            latency: SimTime::from_ns(60),
            energy_per_byte_j: 20e-12,
        }
    }
}

impl DramModel {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] on non-positive
    /// bandwidth.
    pub fn validate(&self) -> Result<()> {
        if !(self.bandwidth_bytes_per_s > 0.0) {
            return Err(ElectronicError::InvalidParameter {
                reason: format!(
                    "DRAM bandwidth must be positive, got {}",
                    self.bandwidth_bytes_per_s
                ),
            });
        }
        Ok(())
    }

    /// Time for one burst of `bytes`: latency + bytes/bandwidth.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.latency + SimTime::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_s)
    }

    /// Time for a *streamed* transfer of `bytes` (latency amortised away).
    #[must_use]
    pub fn streaming_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_s)
    }

    /// Energy to move `bytes`, joules.
    #[must_use]
    pub fn transfer_energy_j(&self, bytes: u64) -> f64 {
        self.energy_per_byte_j * bytes as f64
    }
}

/// Running totals of DRAM traffic, split by direction and purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Input-feature-map bytes read.
    pub input_reads: u64,
    /// Kernel-weight bytes read.
    pub weight_reads: u64,
    /// Output-feature-map bytes written.
    pub output_writes: u64,
}

impl DramTraffic {
    /// Total bytes moved.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.input_reads + self.weight_reads + self.output_writes
    }

    /// Adds another traffic record.
    #[must_use]
    pub fn combined(&self, other: &DramTraffic) -> DramTraffic {
        DramTraffic {
            input_reads: self.input_reads + other.input_reads,
            weight_reads: self.weight_reads + other.weight_reads,
            output_writes: self.output_writes + other.output_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DramModel {
            bandwidth_bytes_per_s: 0.0,
            ..DramModel::default()
        }
        .validate()
        .is_err());
        assert!(DramModel::default().validate().is_ok());
    }

    #[test]
    fn zero_transfer_is_free() {
        let d = DramModel::default();
        assert_eq!(d.transfer_time(0), SimTime::ZERO);
        assert_eq!(d.transfer_energy_j(0), 0.0);
    }

    #[test]
    fn small_transfer_dominated_by_latency() {
        let d = DramModel::default();
        let t = d.transfer_time(64);
        assert!(t >= d.latency);
        assert!(t.as_ns_f64() < 66.0);
    }

    #[test]
    fn streaming_hides_latency() {
        let d = DramModel::default();
        // 12.8 GB at 12.8 GB/s = 1 s
        let t = d.streaming_time(12_800_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!(d.streaming_time(64) < d.transfer_time(64));
    }

    #[test]
    fn energy_scales_with_bytes() {
        let d = DramModel::default();
        assert!((d.transfer_energy_j(1_000_000) - 20e-6).abs() < 1e-15);
    }

    #[test]
    fn traffic_accounting() {
        let a = DramTraffic {
            input_reads: 100,
            weight_reads: 50,
            output_writes: 25,
        };
        assert_eq!(a.total_bytes(), 175);
        let b = a.combined(&a);
        assert_eq!(b.total_bytes(), 350);
        assert_eq!(b.weight_reads, 100);
    }

    #[test]
    fn alexnet_conv1_input_stream_time_is_microseconds() {
        // 224·224·3 16-bit words ≈ 301 kB: trivially fast vs. compute.
        let d = DramModel::default();
        let bytes = 224 * 224 * 3 * 2u64;
        let t = d.streaming_time(bytes);
        assert!(t.as_us_f64() < 30.0, "{t}");
    }
}
