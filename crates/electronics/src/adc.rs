//! Analog-to-digital converters.
//!
//! "At the output, calculated convolutions are digitized with a 2.8GSa/s
//! Analog-to-Digital Converter (ADC) \[17\] and stored into the off-chip
//! DRAM through the output buffer" (§V-B). Each kernel location produces
//! `K` convolution results; the configured ADC array digitizes them.

use crate::time::SimTime;
use crate::{ElectronicError, Result};
use serde::{Deserialize, Serialize};

/// Nominal-minus-effective resolution of a multi-GSa/s converter, bits.
/// Aperture jitter and comparator noise at full rate cost roughly two
/// codes of SNDR: the paper's reference ADC \[17\] codes 10 bits but
/// measures ~50.9 dB SNDR ≈ 8 ENOB.
pub const ENOB_LOSS_BITS: u8 = 2;

/// One ADC: rate, effective resolution, power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdcModel {
    /// Conversion rate, samples/s.
    pub rate_sps: f64,
    /// Nominal resolution, bits.
    pub bits: u8,
    /// Power draw, watts.
    pub power_w: f64,
    /// Die area, mm².
    pub area_mm2: f64,
}

impl Default for AdcModel {
    /// The paper's reference \[17\]: 2.8 GSa/s time-interleaved ADC,
    /// 44.6 mW, ~50.9 dB SNDR (≈ 8 effective bits; nominal 10 b).
    fn default() -> Self {
        AdcModel {
            rate_sps: 2.8e9,
            bits: 10,
            power_w: 0.0446,
            area_mm2: 0.4,
        }
    }
}

impl AdcModel {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] on non-positive rate or
    /// zero bits.
    pub fn validate(&self) -> Result<()> {
        if !(self.rate_sps > 0.0) {
            return Err(ElectronicError::InvalidParameter {
                reason: format!("ADC rate must be positive, got {}", self.rate_sps),
            });
        }
        if self.bits == 0 {
            return Err(ElectronicError::InvalidParameter {
                reason: "ADC must have at least 1 bit".to_owned(),
            });
        }
        Ok(())
    }

    /// Effective resolution (ENOB) at full sample rate, bits. Nominal
    /// code width minus [`ENOB_LOSS_BITS`] of jitter/comparator noise,
    /// never below 1: the paper's reference converter codes 10 bits but
    /// delivers ~50.9 dB SNDR ≈ 8 effective bits at 2.8 GSa/s.
    #[must_use]
    pub fn effective_bits(&self) -> u8 {
        self.bits.saturating_sub(ENOB_LOSS_BITS).max(1)
    }

    /// Time for one conversion.
    #[must_use]
    pub fn sample_time(&self) -> SimTime {
        SimTime::from_secs_f64(1.0 / self.rate_sps)
    }

    /// Time for `n` sequential conversions.
    #[must_use]
    pub fn convert_time(&self, n: u64) -> SimTime {
        SimTime::from_secs_f64(n as f64 / self.rate_sps)
    }

    /// Energy for `n` conversions, joules.
    #[must_use]
    pub fn convert_energy_j(&self, n: u64) -> f64 {
        self.power_w * n as f64 / self.rate_sps
    }
}

/// A bank of identical ADCs digitizing a batch in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdcArray {
    /// Per-ADC model.
    pub adc: AdcModel,
    /// Number of parallel ADCs.
    pub count: usize,
}

impl AdcArray {
    /// Creates an array of `count` parallel ADCs.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] for zero count or an
    /// invalid per-ADC model.
    pub fn new(adc: AdcModel, count: usize) -> Result<Self> {
        adc.validate()?;
        if count == 0 {
            return Err(ElectronicError::InvalidParameter {
                reason: "ADC array needs at least one ADC".to_owned(),
            });
        }
        Ok(AdcArray { adc, count })
    }

    /// Sequential conversions per ADC for a batch of `n`.
    #[must_use]
    pub fn conversions_per_adc(&self, n: u64) -> u64 {
        n.div_ceil(self.count as u64)
    }

    /// Wall time to digitize a batch of `n` values.
    #[must_use]
    pub fn convert_time(&self, n: u64) -> SimTime {
        self.adc.convert_time(self.conversions_per_adc(n))
    }

    /// Energy to digitize a batch of `n` values, joules.
    #[must_use]
    pub fn convert_energy_j(&self, n: u64) -> f64 {
        self.adc.convert_energy_j(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(AdcModel {
            rate_sps: -1.0,
            ..AdcModel::default()
        }
        .validate()
        .is_err());
        assert!(AdcModel {
            bits: 0,
            ..AdcModel::default()
        }
        .validate()
        .is_err());
        assert!(AdcModel::default().validate().is_ok());
        assert!(AdcArray::new(AdcModel::default(), 0).is_err());
    }

    #[test]
    fn effective_bits_track_the_paper_reference() {
        assert_eq!(AdcModel::default().effective_bits(), 8);
        // never collapses to zero, even for a 1-bit converter
        assert_eq!(
            AdcModel {
                bits: 1,
                ..AdcModel::default()
            }
            .effective_bits(),
            1
        );
    }

    #[test]
    fn sample_time_at_2p8gsps() {
        let a = AdcModel::default();
        // 1/2.8 GHz ≈ 357 ps
        assert_eq!(a.sample_time(), SimTime::from_ps(357));
    }

    #[test]
    fn digitizing_alexnet_conv1_outputs_per_location() {
        // 96 kernels → 96 results per location; one ADC at 2.8 GSa/s
        let a = AdcModel::default();
        let t = a.convert_time(96);
        assert!((t.as_ns_f64() - 34.3).abs() < 0.1, "{t}");
    }

    #[test]
    fn array_divides_work() {
        let arr = AdcArray::new(AdcModel::default(), 4).unwrap();
        assert_eq!(arr.conversions_per_adc(96), 24);
        assert_eq!(arr.convert_time(96), AdcModel::default().convert_time(24));
    }

    #[test]
    fn energy_is_per_conversion() {
        let a = AdcModel::default();
        let e = a.convert_energy_j(2_800_000_000);
        // one second of conversions = power_w joules
        assert!((e - a.power_w).abs() < 1e-12);
    }

    #[test]
    fn zero_batch_is_free() {
        let arr = AdcArray::new(AdcModel::default(), 2).unwrap();
        assert_eq!(arr.convert_time(0), SimTime::ZERO);
    }
}
