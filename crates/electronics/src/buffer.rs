//! FIFO buffers between clock domains.
//!
//! "Buffers isolate the fast optical core from the outside slow clock
//! environment" (paper Figure 4 caption). [`FifoBuffer`] is an occupancy
//! model: the pipeline simulator pushes words in at one domain's rate and
//! drains them at the other's, and the buffer reports stalls (full on push,
//! empty on pop) which surface as pipeline bubbles.

use crate::{ElectronicError, Result};
use serde::{Deserialize, Serialize};

/// Occupancy statistics of a FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BufferStats {
    /// Successful pushes.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Pushes rejected because the buffer was full.
    pub overflow_stalls: u64,
    /// Pops rejected because the buffer was empty.
    pub underflow_stalls: u64,
    /// High-water mark of occupancy.
    pub max_occupancy: usize,
}

/// A bounded FIFO of abstract words.
#[derive(Debug, Clone)]
pub struct FifoBuffer {
    capacity: usize,
    occupancy: usize,
    stats: BufferStats,
}

impl FifoBuffer {
    /// Creates a FIFO holding up to `capacity` words.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] for zero capacity.
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(ElectronicError::InvalidParameter {
                reason: "buffer capacity must be nonzero".to_owned(),
            });
        }
        Ok(FifoBuffer {
            capacity,
            occupancy: 0,
            stats: BufferStats::default(),
        })
    }

    /// Capacity in words.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in words.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Free space in words.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity - self.occupancy
    }

    /// Whether the FIFO is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.occupancy == self.capacity
    }

    /// Whether the FIFO is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Pushes `n` words; returns the number actually accepted (the rest
    /// stall and are counted).
    pub fn push(&mut self, n: usize) -> usize {
        let accepted = n.min(self.free());
        self.occupancy += accepted;
        self.stats.pushes += accepted as u64;
        self.stats.overflow_stalls += (n - accepted) as u64;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.occupancy);
        accepted
    }

    /// Pops `n` words; returns the number actually delivered.
    pub fn pop(&mut self, n: usize) -> usize {
        let delivered = n.min(self.occupancy);
        self.occupancy -= delivered;
        self.stats.pops += delivered as u64;
        self.stats.underflow_stalls += (n - delivered) as u64;
        delivered
    }

    /// Pushes exactly `n` words or fails without side effects.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::BufferViolation`] if `n` exceeds free
    /// space.
    pub fn push_exact(&mut self, n: usize) -> Result<()> {
        if n > self.free() {
            return Err(ElectronicError::BufferViolation {
                reason: format!("push of {n} words into {} free", self.free()),
            });
        }
        self.push(n);
        Ok(())
    }

    /// Pops exactly `n` words or fails without side effects.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::BufferViolation`] if `n` exceeds
    /// occupancy.
    pub fn pop_exact(&mut self, n: usize) -> Result<()> {
        if n > self.occupancy {
            return Err(ElectronicError::BufferViolation {
                reason: format!("pop of {n} words from {} occupied", self.occupancy),
            });
        }
        self.pop(n);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(FifoBuffer::new(0).is_err());
        assert!(FifoBuffer::new(16).is_ok());
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut f = FifoBuffer::new(8).unwrap();
        assert_eq!(f.push(5), 5);
        assert_eq!(f.occupancy(), 5);
        assert_eq!(f.pop(3), 3);
        assert_eq!(f.occupancy(), 2);
        assert_eq!(f.free(), 6);
    }

    #[test]
    fn overflow_counts_stalls() {
        let mut f = FifoBuffer::new(4).unwrap();
        assert_eq!(f.push(6), 4);
        assert!(f.is_full());
        assert_eq!(f.stats().overflow_stalls, 2);
    }

    #[test]
    fn underflow_counts_stalls() {
        let mut f = FifoBuffer::new(4).unwrap();
        f.push(1);
        assert_eq!(f.pop(3), 1);
        assert!(f.is_empty());
        assert_eq!(f.stats().underflow_stalls, 2);
    }

    #[test]
    fn exact_variants_are_atomic() {
        let mut f = FifoBuffer::new(4).unwrap();
        assert!(f.push_exact(5).is_err());
        assert_eq!(f.occupancy(), 0);
        f.push_exact(3).unwrap();
        assert!(f.pop_exact(4).is_err());
        assert_eq!(f.occupancy(), 3);
        f.pop_exact(3).unwrap();
        assert!(f.is_empty());
    }

    #[test]
    fn high_water_mark() {
        let mut f = FifoBuffer::new(8).unwrap();
        f.push(3);
        f.pop(2);
        f.push(6);
        assert_eq!(f.stats().max_occupancy, 7);
    }
}
