//! Picosecond-resolution simulated time.
//!
//! The timescales in PCNNA span eight orders of magnitude — 200 ps fast-clock
//! cycles up to multi-millisecond layer executions — so time is kept as an
//! integer picosecond count ([`SimTime`]) to avoid floating-point drift in
//! long simulations, with `f64` conversions at the reporting boundary.

use serde::{Deserialize, Serialize};

/// An instant (or duration) in simulated time, in integer picoseconds.
///
/// `u64` picoseconds cover ~213 days of simulated time — ample for any layer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from (non-negative, finite) seconds, rounding to the
    /// nearest picosecond. Negative or non-finite inputs saturate to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((secs * 1e12).round() as u64)
    }

    /// Picosecond count.
    #[must_use]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Value in nanoseconds.
    #[must_use]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Value in microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Value in milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by a count.
    #[must_use]
    pub const fn saturating_mul(self, count: u64) -> SimTime {
        SimTime(self.0.saturating_mul(count))
    }

    /// The larger of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Ratio of this time to another (`other` must be nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn ratio(self, other: SimTime) -> f64 {
        assert!(other.0 != 0, "division by zero SimTime");
        self.0 as f64 / other.0 as f64
    }
}

impl core::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl core::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl core::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl core::fmt::Display for SimTime {
    /// Renders with an auto-selected unit: `745 ps`, `7.00 ns`, `1.21 us`,
    /// `3.41 ms`, `2.50 s`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let ps = self.0;
        if ps < 1_000 {
            write!(f, "{ps} ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.2} ns", self.as_ns_f64())
        } else if ps < 1_000_000_000 {
            write!(f, "{:.2} us", self.as_us_f64())
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.2} ms", self.as_ms_f64())
        } else {
            write!(f, "{:.2} s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_ns(7), SimTime::from_ps(7_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ps(1_000_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_ns(1_000_000));
    }

    #[test]
    fn secs_f64_roundtrip() {
        let t = SimTime::from_secs_f64(1.234e-6);
        assert!((t.as_secs_f64() - 1.234e-6).abs() < 1e-18);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(3);
        assert_eq!(a + b, SimTime::from_ns(8));
        assert_eq!(a.saturating_sub(b), SimTime::from_ns(2));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(b.saturating_mul(4), SimTime::from_ns(12));
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn add_assign_and_sum() {
        let mut t = SimTime::ZERO;
        t += SimTime::from_ps(250);
        t += SimTime::from_ps(750);
        assert_eq!(t, SimTime::from_ns(1));
        let total: SimTime = (0..4).map(|_| SimTime::from_ns(2)).sum();
        assert_eq!(total, SimTime::from_ns(8));
    }

    #[test]
    fn ratio() {
        assert!((SimTime::from_ns(10).ratio(SimTime::from_ns(4)) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn ratio_by_zero_panics() {
        let _ = SimTime::from_ns(1).ratio(SimTime::ZERO);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimTime::from_ps(745).to_string(), "745 ps");
        assert_eq!(SimTime::from_ns(7).to_string(), "7.00 ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12.00 us");
        assert_eq!(SimTime::from_ms(3).to_string(), "3.00 ms");
        assert_eq!(SimTime::from_secs_f64(2.5).to_string(), "2.50 s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(1) < SimTime::from_us(1));
        assert!(SimTime::ZERO <= SimTime::ZERO);
    }
}
