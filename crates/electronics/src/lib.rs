//! Mixed-signal electronic substrate for the PCNNA reproduction.
//!
//! The paper's full-system performance "is bound by the electronics, both at
//! the front-end and the back-end" (§V-B). This crate models exactly the
//! electronic components the paper enumerates, with the paper's cited
//! datapoints as defaults:
//!
//! * [`time`] — picosecond-resolution simulated time ([`time::SimTime`]).
//! * [`clock`] — the two clock domains of Figure 4 (5 GHz fast / slower main).
//! * [`dac`] — the 16-bit 6 GSa/s DAC of ref. \[16\] and DAC arrays
//!   (1 kernel-weight DAC + 10 input DACs).
//! * [`adc`] — the 2.8 GSa/s ADC of ref. \[17\].
//! * [`sram`] — the 7 ns, 128 kb SRAM cache of ref. \[15\].
//! * [`dram`] — off-chip DRAM bandwidth/latency and traffic accounting.
//! * [`buffer`] — FIFO buffers isolating the clock domains.
//! * [`energy`] — electrical energy bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `if !(x > 0.0)` in parameter validation is deliberate: unlike `x <= 0.0`
// it also rejects NaN, which must never enter a physical model.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod adc;
pub mod buffer;
pub mod clock;
pub mod dac;
pub mod dram;
pub mod energy;
pub mod sram;
pub mod time;

pub use adc::AdcModel;
pub use clock::ClockDomain;
pub use dac::{DacArray, DacModel};
pub use dram::DramModel;
pub use sram::SramModel;
pub use time::SimTime;

/// Errors produced by the electronic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ElectronicError {
    /// A model parameter is physically meaningless.
    InvalidParameter {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A buffer operation could not complete (overflow/underflow).
    BufferViolation {
        /// What went wrong.
        reason: String,
    },
    /// A capacity was exceeded (SRAM/DRAM sizing).
    CapacityExceeded {
        /// Requested amount.
        requested: u64,
        /// Available amount.
        available: u64,
        /// Unit label, e.g. "words".
        unit: &'static str,
    },
}

impl core::fmt::Display for ElectronicError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ElectronicError::InvalidParameter { reason } => {
                write!(f, "invalid electronic parameter: {reason}")
            }
            ElectronicError::BufferViolation { reason } => {
                write!(f, "buffer violation: {reason}")
            }
            ElectronicError::CapacityExceeded {
                requested,
                available,
                unit,
            } => write!(
                f,
                "capacity exceeded: requested {requested} {unit}, have {available}"
            ),
        }
    }
}

impl std::error::Error for ElectronicError {}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, ElectronicError>;
