//! Electrical energy bookkeeping.
//!
//! The paper argues photonics wins on power as well as speed but reports no
//! energy numbers; this ledger lets the core crate quantify the electronic
//! side (converters, SRAM, DRAM) next to the photonic budget so
//! EXPERIMENTS.md can report energy per layer as a stretch result.

use serde::{Deserialize, Serialize};

/// Itemised electrical energy, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Input + weight DAC conversion energy.
    pub dac_j: f64,
    /// Output ADC conversion energy.
    pub adc_j: f64,
    /// SRAM access energy.
    pub sram_j: f64,
    /// DRAM transfer energy.
    pub dram_j: f64,
    /// Photonic front end (lasers, heaters) — supplied by the photonics
    /// crate, stored here for a single total.
    pub photonic_j: f64,
}

impl EnergyLedger {
    /// Total energy, joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.dac_j + self.adc_j + self.sram_j + self.dram_j + self.photonic_j
    }

    /// Adds another ledger item-wise.
    #[must_use]
    pub fn combined(&self, other: &EnergyLedger) -> EnergyLedger {
        EnergyLedger {
            dac_j: self.dac_j + other.dac_j,
            adc_j: self.adc_j + other.adc_j,
            sram_j: self.sram_j + other.sram_j,
            dram_j: self.dram_j + other.dram_j,
            photonic_j: self.photonic_j + other.photonic_j,
        }
    }

    /// Energy efficiency for a given operation count, ops/J (0 if no
    /// energy was spent).
    #[must_use]
    pub fn ops_per_joule(&self, ops: u64) -> f64 {
        let total = self.total_j();
        if total <= 0.0 {
            0.0
        } else {
            ops as f64 / total
        }
    }

    /// The dominant item as `(name, joules)`.
    #[must_use]
    pub fn dominant(&self) -> (&'static str, f64) {
        let items = [
            ("dac", self.dac_j),
            ("adc", self.adc_j),
            ("sram", self.sram_j),
            ("dram", self.dram_j),
            ("photonic", self.photonic_j),
        ];
        items
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("items is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let e = EnergyLedger {
            dac_j: 1.0,
            adc_j: 2.0,
            sram_j: 3.0,
            dram_j: 4.0,
            photonic_j: 5.0,
        };
        assert!((e.total_j() - 15.0).abs() < 1e-12);
        assert_eq!(e.dominant(), ("photonic", 5.0));
    }

    #[test]
    fn combine_adds() {
        let a = EnergyLedger {
            dac_j: 1.0,
            ..Default::default()
        };
        let b = EnergyLedger {
            dram_j: 2.0,
            ..Default::default()
        };
        let c = a.combined(&b);
        assert!((c.total_j() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ops_per_joule() {
        let e = EnergyLedger {
            dac_j: 0.5,
            ..Default::default()
        };
        assert!((e.ops_per_joule(1_000_000) - 2e6).abs() < 1e-6);
        assert_eq!(EnergyLedger::default().ops_per_joule(100), 0.0);
    }
}
