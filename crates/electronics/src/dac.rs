//! Digital-to-analog converters.
//!
//! "In PCNNA DACs operate at a rate of 6GSa/s \[16\] while each takes up an
//! area of 0.52mm². Our design comprises 1 kernel weight DAC and 10 input
//! DACs." (§V-B). The DAC is the paper's declared full-system bottleneck:
//! eq. (8) divides the per-location input updates across the 10 input DACs.

use crate::time::SimTime;
use crate::{ElectronicError, Result};
use serde::{Deserialize, Serialize};

/// One DAC: rate, resolution, area, power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DacModel {
    /// Conversion rate, samples/s.
    pub rate_sps: f64,
    /// Resolution, bits.
    pub bits: u8,
    /// Die area, mm².
    pub area_mm2: f64,
    /// Power draw while converting, watts.
    pub power_w: f64,
}

impl Default for DacModel {
    /// The paper's reference \[16\]: 16-bit, 6 GSa/s, 0.52 mm² (power from
    /// the ISSCC'18 part, ~350 mW).
    fn default() -> Self {
        DacModel {
            rate_sps: 6e9,
            bits: 16,
            area_mm2: 0.52,
            power_w: 0.35,
        }
    }
}

impl DacModel {
    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] on non-positive rate or
    /// zero bits.
    pub fn validate(&self) -> Result<()> {
        if !(self.rate_sps > 0.0) {
            return Err(ElectronicError::InvalidParameter {
                reason: format!("DAC rate must be positive, got {}", self.rate_sps),
            });
        }
        if self.bits == 0 {
            return Err(ElectronicError::InvalidParameter {
                reason: "DAC must have at least 1 bit".to_owned(),
            });
        }
        Ok(())
    }

    /// Time for one conversion.
    #[must_use]
    pub fn sample_time(&self) -> SimTime {
        SimTime::from_secs_f64(1.0 / self.rate_sps)
    }

    /// Time for `n` sequential conversions on this one DAC.
    #[must_use]
    pub fn convert_time(&self, n: u64) -> SimTime {
        SimTime::from_secs_f64(n as f64 / self.rate_sps)
    }

    /// Energy for `n` conversions, joules.
    #[must_use]
    pub fn convert_energy_j(&self, n: u64) -> f64 {
        self.power_w * n as f64 / self.rate_sps
    }
}

/// A bank of identical DACs converting a batch in parallel.
///
/// The paper's input path has 10 of these; a batch of `n` values takes
/// `ceil(n / n_dacs)` sequential conversions — exactly eq. (8)'s
/// `nc·m·s / NDAC` when `n = nc·m·s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DacArray {
    /// Per-DAC model.
    pub dac: DacModel,
    /// Number of parallel DACs.
    pub count: usize,
}

impl DacArray {
    /// Creates an array of `count` parallel DACs.
    ///
    /// # Errors
    ///
    /// Returns [`ElectronicError::InvalidParameter`] for zero count or an
    /// invalid per-DAC model.
    pub fn new(dac: DacModel, count: usize) -> Result<Self> {
        dac.validate()?;
        if count == 0 {
            return Err(ElectronicError::InvalidParameter {
                reason: "DAC array needs at least one DAC".to_owned(),
            });
        }
        Ok(DacArray { dac, count })
    }

    /// Sequential conversions each DAC performs for a batch of `n` values:
    /// `ceil(n / count)` — the paper's eq. (8) numerator division.
    #[must_use]
    pub fn conversions_per_dac(&self, n: u64) -> u64 {
        n.div_ceil(self.count as u64)
    }

    /// Wall time to convert a batch of `n` values.
    #[must_use]
    pub fn convert_time(&self, n: u64) -> SimTime {
        self.dac.convert_time(self.conversions_per_dac(n))
    }

    /// Energy to convert a batch of `n` values (all DACs, joules).
    #[must_use]
    pub fn convert_energy_j(&self, n: u64) -> f64 {
        // n actual conversions happen in total regardless of distribution
        self.dac.convert_energy_j(n)
    }

    /// Total array area, mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.dac.area_mm2 * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DacModel {
            rate_sps: 0.0,
            ..DacModel::default()
        }
        .validate()
        .is_err());
        assert!(DacModel {
            bits: 0,
            ..DacModel::default()
        }
        .validate()
        .is_err());
        assert!(DacModel::default().validate().is_ok());
        assert!(DacArray::new(DacModel::default(), 0).is_err());
    }

    #[test]
    fn sample_time_at_6gsps() {
        let d = DacModel::default();
        // 1/6 GHz ≈ 166.7 ps
        assert_eq!(d.sample_time(), SimTime::from_ps(167));
    }

    #[test]
    fn paper_equation_8_division() {
        // eq. (8): 384·3·1 / 10 DACs ≈ 116 conversions per DAC.
        let arr = DacArray::new(DacModel::default(), 10).unwrap();
        assert_eq!(arr.conversions_per_dac(384 * 3), 116);
    }

    #[test]
    fn batch_time_matches_conversions() {
        let arr = DacArray::new(DacModel::default(), 10).unwrap();
        let t = arr.convert_time(1152);
        let expect = SimTime::from_secs_f64(116.0 / 6e9);
        assert_eq!(t, expect);
        // ~19.3 ns
        assert!((t.as_ns_f64() - 19.33).abs() < 0.1);
    }

    #[test]
    fn single_dac_array_is_sequential() {
        let arr = DacArray::new(DacModel::default(), 1).unwrap();
        assert_eq!(arr.conversions_per_dac(7), 7);
        assert_eq!(arr.convert_time(7), DacModel::default().convert_time(7));
    }

    #[test]
    fn zero_batch_is_free() {
        let arr = DacArray::new(DacModel::default(), 10).unwrap();
        assert_eq!(arr.convert_time(0), SimTime::ZERO);
        assert_eq!(arr.convert_energy_j(0), 0.0);
    }

    #[test]
    fn energy_counts_total_conversions() {
        let arr = DacArray::new(DacModel::default(), 10).unwrap();
        let e1 = arr.convert_energy_j(100);
        let e2 = arr.convert_energy_j(200);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn area_scales_with_count() {
        let arr = DacArray::new(DacModel::default(), 10).unwrap();
        assert!((arr.area_mm2() - 5.2).abs() < 1e-12);
    }
}
