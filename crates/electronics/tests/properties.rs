//! Property-based tests of the electronic substrate's timing and
//! bookkeeping invariants.

use proptest::prelude::*;

use pcnna_electronics::adc::{AdcArray, AdcModel};
use pcnna_electronics::buffer::FifoBuffer;
use pcnna_electronics::clock::ClockDomain;
use pcnna_electronics::dac::{DacArray, DacModel};
use pcnna_electronics::dram::DramModel;
use pcnna_electronics::sram::CacheSim;
use pcnna_electronics::time::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simtime_addition_is_commutative_and_monotone(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let ta = SimTime::from_ps(a);
        let tb = SimTime::from_ps(b);
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert!(ta + tb >= ta);
        prop_assert_eq!((ta + tb).saturating_sub(tb), ta);
    }

    #[test]
    fn clock_quantize_up_never_shrinks(freq_mhz in 1u64..10_000, ps in 0u64..1u64<<30) {
        let clock = ClockDomain::new("c", freq_mhz as f64 * 1e6).unwrap();
        let t = SimTime::from_ps(ps);
        let q = clock.quantize_up(t);
        prop_assert!(q >= t);
        // never overshoots by more than one cycle
        prop_assert!(q.saturating_sub(t) <= clock.period() + SimTime::from_ps(1));
        // re-quantizing stays within one further cycle (non-integer-ps
        // periods prevent exact idempotence)
        let q2 = clock.quantize_up(q);
        prop_assert!(q2 >= q);
        prop_assert!(q2.saturating_sub(q) <= clock.period() + SimTime::from_ps(1));
    }

    #[test]
    fn dac_array_batch_time_monotone(n1 in 0u64..10_000, n2 in 0u64..10_000, dacs in 1usize..64) {
        let arr = DacArray::new(DacModel::default(), dacs).unwrap();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(arr.convert_time(lo) <= arr.convert_time(hi));
        // more DACs never slower
        let arr2 = DacArray::new(DacModel::default(), dacs + 1).unwrap();
        prop_assert!(arr2.convert_time(hi) <= arr.convert_time(hi));
    }

    #[test]
    fn dac_conversions_per_dac_covers_batch(n in 0u64..100_000, dacs in 1usize..64) {
        let arr = DacArray::new(DacModel::default(), dacs).unwrap();
        let per = arr.conversions_per_dac(n);
        prop_assert!(per * dacs as u64 >= n);
        prop_assert!(per.saturating_sub(1) * dacs as u64 <= n.max(1) - u64::from(n > 0));
    }

    #[test]
    fn adc_array_scales_like_dac_array(n in 0u64..10_000, adcs in 1usize..64) {
        let arr = AdcArray::new(AdcModel::default(), adcs).unwrap();
        prop_assert!(arr.conversions_per_adc(n) * adcs as u64 >= n);
    }

    #[test]
    fn dram_streaming_beats_bursting(bytes in 1u64..1_000_000) {
        let d = DramModel::default();
        prop_assert!(d.streaming_time(bytes) <= d.transfer_time(bytes));
    }

    #[test]
    fn fifo_occupancy_bounded(ops in prop::collection::vec((any::<bool>(), 1usize..16), 1..200)) {
        let mut fifo = FifoBuffer::new(32).unwrap();
        for (push, n) in ops {
            if push {
                fifo.push(n);
            } else {
                fifo.pop(n);
            }
            prop_assert!(fifo.occupancy() <= fifo.capacity());
        }
        let stats = fifo.stats();
        // conservation: pops never exceed pushes
        prop_assert!(stats.pops <= stats.pushes);
        prop_assert_eq!(stats.pushes - stats.pops, fifo.occupancy() as u64);
    }

    #[test]
    fn cache_hits_plus_misses_equals_accesses(addrs in prop::collection::vec(0u64..64, 1..300)) {
        let mut cache = CacheSim::new(16).unwrap();
        for &a in &addrs {
            cache.access(a);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, addrs.len() as u64);
        prop_assert!(cache.len() <= cache.capacity());
        // misses at least the number of distinct addresses seen... no:
        // at least the number of distinct addresses MINUS re-fills; but
        // always at least min(distinct, capacity) cold misses is not tight
        // either under thrashing. Safe bound: misses ≥ 1 (first access).
        prop_assert!(stats.misses >= 1);
    }

    #[test]
    fn cache_within_capacity_never_evicts(addrs in prop::collection::vec(0u64..8, 1..100)) {
        let mut cache = CacheSim::new(8).unwrap();
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.stats().evictions, 0);
        // each distinct address misses exactly once
        let distinct: std::collections::HashSet<u64> = addrs.iter().copied().collect();
        prop_assert_eq!(cache.stats().misses, distinct.len() as u64);
    }
}
