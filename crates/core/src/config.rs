//! PCNNA hardware configuration.
//!
//! [`PcnnaConfig::default`] is the paper's design point, assembled from the
//! numbers in §IV and §V-B. Every knob is public so the design-space
//! examples can sweep them.

use crate::{CoreError, Result};
use pcnna_electronics::adc::AdcModel;
use pcnna_electronics::clock::ClockDomain;
use pcnna_electronics::dac::DacModel;
use pcnna_electronics::dram::DramModel;
use pcnna_electronics::sram::SramModel;
use pcnna_photonics::link::LinkConfig;
use serde::{Deserialize, Serialize};

/// How rings (and wavelengths) are allocated to a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// No receptive-field filtering — paper eq. (4):
    /// `Nrings = Ninput · K · Nkernel`. Shown only as the paper's baseline;
    /// physically absurd for real layers (billions of rings).
    Unfiltered,
    /// Receptive-field filtering — paper eq. (5): `Nrings = K · Nkernel`.
    /// All `nc` channels of the receptive field are weighted in parallel.
    Filtered,
    /// Receptive-field filtering with channel-sequential processing:
    /// `Nrings = K · m · m`; the `nc` input channels share rings across
    /// `nc` optical cycles. This is the policy implied by the paper's
    /// conv4 numbers (3456 rings, 2.2 mm²) — see DESIGN.md §3.
    FilteredChannelSequential,
}

impl AllocationPolicy {
    /// A short fixed-width tag for table rendering.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AllocationPolicy::Unfiltered => "unfilt",
            AllocationPolicy::Filtered => "filt",
            AllocationPolicy::FilteredChannelSequential => "chseq",
        }
    }
}

/// The order kernel locations are visited in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScanOrder {
    /// Row-major raster, as the paper's Figure 3 depicts. At each row wrap
    /// the receptive field changes almost entirely.
    RowMajor,
    /// Boustrophedon (serpentine) scan — an optimization this reproduction
    /// adds: consecutive locations always overlap, so the steady-state
    /// update count `nc·m·s` also holds at row turns.
    Serpentine,
}

/// Which electronic stages bound the full-system time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BottleneckModel {
    /// The paper's model: only the input-DAC constraint of eq. (8) limits
    /// the per-location rate ("the speed bottleneck of PCNNA is the DAC").
    DacOnly,
    /// This reproduction's fuller model: per-location time is the maximum
    /// of DAC, SRAM, optical, and ADC stage times (pipelined stages).
    MaxOfStages,
}

/// Complete PCNNA hardware description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcnnaConfig {
    /// Fast (optical-core) clock — paper: 5 GHz.
    pub fast_clock: ClockDomain,
    /// Input DAC model — paper \[16\]: 16 b, 6 GSa/s.
    pub input_dac: DacModel,
    /// Number of parallel input DACs — paper: 10.
    pub n_input_dacs: usize,
    /// Kernel-weight DAC count — paper: 1.
    pub n_weight_dacs: usize,
    /// Output ADC model — paper \[17\]: 2.8 GSa/s.
    pub adc: AdcModel,
    /// Number of parallel output ADCs. The paper writes "a 2.8GSa/s ADC"
    /// (singular) but its execution-time model assumes the back end never
    /// limits; 32 ADCs make that assumption true for every AlexNet layer.
    pub n_adcs: usize,
    /// Input cache — paper \[15\]: 128 kb, 7 ns.
    pub sram: SramModel,
    /// Off-chip memory model (unpinned by the paper).
    pub dram: DramModel,
    /// Microring pitch (square), metres — paper: 25 µm.
    pub ring_pitch_m: f64,
    /// Ring/wavelength allocation policy.
    pub allocation: AllocationPolicy,
    /// Kernel-location scan order.
    pub scan: ScanOrder,
    /// Electronic bottleneck model for full-system time.
    pub bottleneck: BottleneckModel,
    /// Whether per-layer kernel-weight loading (through the single weight
    /// DAC) is charged to execution time. The paper amortises/ignores it;
    /// the simulator can expose it.
    pub include_weight_load: bool,
    /// Photonic link configuration for functional simulation.
    pub link: LinkConfig,
    /// Bytes per stored value (16-bit words per §V-B).
    pub bytes_per_value: u64,
}

impl Default for PcnnaConfig {
    fn default() -> Self {
        PcnnaConfig {
            fast_clock: ClockDomain::fast_5ghz(),
            input_dac: DacModel::default(),
            n_input_dacs: 10,
            n_weight_dacs: 1,
            adc: AdcModel::default(),
            n_adcs: 32,
            sram: SramModel::default(),
            dram: DramModel::default(),
            ring_pitch_m: 25e-6,
            allocation: AllocationPolicy::Filtered,
            scan: ScanOrder::RowMajor,
            bottleneck: BottleneckModel::DacOnly,
            include_weight_load: false,
            link: LinkConfig::default(),
            bytes_per_value: 2,
        }
    }
}

impl PcnnaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero converter counts, a
    /// non-positive ring pitch, or invalid sub-models.
    pub fn validate(&self) -> Result<()> {
        if self.n_input_dacs == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "need at least one input DAC".to_owned(),
            });
        }
        if self.n_weight_dacs == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "need at least one weight DAC".to_owned(),
            });
        }
        if self.n_adcs == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "need at least one ADC".to_owned(),
            });
        }
        if !(self.ring_pitch_m > 0.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("ring pitch must be positive, got {}", self.ring_pitch_m),
            });
        }
        if self.bytes_per_value == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "bytes per value must be nonzero".to_owned(),
            });
        }
        self.input_dac.validate()?;
        self.adc.validate()?;
        self.sram.validate()?;
        self.dram.validate()?;
        Ok(())
    }

    /// Returns a copy with a different input-DAC count (design-space sweeps).
    #[must_use]
    pub fn with_input_dacs(mut self, n: usize) -> Self {
        self.n_input_dacs = n;
        self
    }

    /// Returns a copy with a different fast clock.
    #[must_use]
    pub fn with_fast_clock(mut self, clock: ClockDomain) -> Self {
        self.fast_clock = clock;
        self
    }

    /// Returns a copy with a different allocation policy.
    #[must_use]
    pub fn with_allocation(mut self, policy: AllocationPolicy) -> Self {
        self.allocation = policy;
        self
    }

    /// Returns a copy with a different scan order.
    #[must_use]
    pub fn with_scan(mut self, scan: ScanOrder) -> Self {
        self.scan = scan;
        self
    }

    /// Returns a copy with a different bottleneck model.
    #[must_use]
    pub fn with_bottleneck(mut self, model: BottleneckModel) -> Self {
        self.bottleneck = model;
        self
    }

    /// Returns a copy with a different input-DAC model (rate/bits/power).
    #[must_use]
    pub fn with_input_dac(mut self, dac: DacModel) -> Self {
        self.input_dac = dac;
        self
    }

    /// Returns a copy with a different weight-DAC count.
    #[must_use]
    pub fn with_weight_dacs(mut self, n: usize) -> Self {
        self.n_weight_dacs = n;
        self
    }

    /// Returns a copy with a different output-ADC count.
    #[must_use]
    pub fn with_adcs(mut self, n: usize) -> Self {
        self.n_adcs = n;
        self
    }

    /// Returns a copy with a different output-ADC model (rate/bits/power).
    #[must_use]
    pub fn with_adc(mut self, adc: AdcModel) -> Self {
        self.adc = adc;
        self
    }

    /// Returns a copy with a different input SRAM model.
    #[must_use]
    pub fn with_sram(mut self, sram: SramModel) -> Self {
        self.sram = sram;
        self
    }

    /// Returns a copy with a different off-chip DRAM model.
    #[must_use]
    pub fn with_dram(mut self, dram: DramModel) -> Self {
        self.dram = dram;
        self
    }

    /// Returns a copy with a different microring pitch (metres).
    #[must_use]
    pub fn with_ring_pitch(mut self, pitch_m: f64) -> Self {
        self.ring_pitch_m = pitch_m;
        self
    }

    /// Returns a copy with a different photonic link configuration.
    #[must_use]
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Returns a copy that charges (or stops charging) per-layer kernel
    /// weight loading to execution time.
    #[must_use]
    pub fn with_weight_load_charged(mut self, charge: bool) -> Self {
        self.include_weight_load = charge;
        self
    }

    /// Returns a copy with a different stored-value width, bytes.
    #[must_use]
    pub fn with_bytes_per_value(mut self, bytes: u64) -> Self {
        self.bytes_per_value = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_design_point() {
        let c = PcnnaConfig::default();
        assert_eq!(c.fast_clock.frequency_hz(), 5e9);
        assert_eq!(c.n_input_dacs, 10);
        assert_eq!(c.n_weight_dacs, 1);
        assert_eq!(c.input_dac.rate_sps, 6e9);
        assert_eq!(c.adc.rate_sps, 2.8e9);
        assert_eq!(c.sram.capacity_words(), 8192);
        assert_eq!(c.ring_pitch_m, 25e-6);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_zeros() {
        assert!(PcnnaConfig::default()
            .with_input_dacs(0)
            .validate()
            .is_err());
        let c = PcnnaConfig {
            n_adcs: 0,
            ..PcnnaConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PcnnaConfig {
            ring_pitch_m: 0.0,
            ..PcnnaConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PcnnaConfig {
            bytes_per_value: 0,
            ..PcnnaConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_helpers() {
        let c = PcnnaConfig::default()
            .with_input_dacs(20)
            .with_allocation(AllocationPolicy::FilteredChannelSequential)
            .with_scan(ScanOrder::Serpentine)
            .with_bottleneck(BottleneckModel::MaxOfStages);
        assert_eq!(c.n_input_dacs, 20);
        assert_eq!(c.allocation, AllocationPolicy::FilteredChannelSequential);
        assert_eq!(c.scan, ScanOrder::Serpentine);
        assert_eq!(c.bottleneck, BottleneckModel::MaxOfStages);
    }

    #[test]
    fn builders_cover_every_dse_knob() {
        // The design-space explorer mutates configs exclusively through
        // `with_*` builders — each must land on the right field and leave
        // the rest of the paper design point untouched.
        let adc = AdcModel {
            bits: 6,
            ..AdcModel::default()
        };
        let dac = DacModel {
            rate_sps: 12e9,
            ..DacModel::default()
        };
        let c = PcnnaConfig::default()
            .with_adcs(64)
            .with_adc(adc)
            .with_input_dac(dac)
            .with_weight_dacs(4)
            .with_ring_pitch(20e-6)
            .with_weight_load_charged(true)
            .with_bytes_per_value(4);
        assert_eq!(c.n_adcs, 64);
        assert_eq!(c.adc.bits, 6);
        assert_eq!(c.input_dac.rate_sps, 12e9);
        assert_eq!(c.n_weight_dacs, 4);
        assert_eq!(c.ring_pitch_m, 20e-6);
        assert!(c.include_weight_load);
        assert_eq!(c.bytes_per_value, 4);
        // untouched fields keep the paper design point
        assert_eq!(c.n_input_dacs, 10);
        assert_eq!(c.fast_clock.frequency_hz(), 5e9);
        assert!(c.validate().is_ok());
        let c = PcnnaConfig::default()
            .with_sram(SramModel::default())
            .with_dram(DramModel::default())
            .with_link(LinkConfig::default());
        assert_eq!(c, PcnnaConfig::default());
    }
}
