//! Kernel-location scheduling (paper Figure 3 and the eq. (8) numerator).
//!
//! PCNNA processes one receptive-field *location* per fast-clock cycle, all
//! `K` kernels in parallel, sequencing through the `Nlocs` locations of the
//! layer. Between consecutive locations "only a fraction of input feature
//! map values proportional to the size of the stride is required to be
//! loaded" (§IV) — the paper's steady-state estimate is `nc·m·s` values.
//!
//! [`LocationSchedule`] produces the exact visit order and, per location,
//! the exact set of *newly required* input elements (exclusive of zero
//! padding, which costs no load). The exact counts validate the paper's
//! approximation and feed the pipeline simulator; they also expose the
//! row-wrap penalty of raster scanning, which the serpentine scan order
//! (this reproduction's extension) removes.

use crate::config::ScanOrder;
use pcnna_cnn::geometry::ConvGeometry;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One kernel location: the output coordinate it produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Output row.
    pub oy: usize,
    /// Output column.
    pub ox: usize,
}

/// Summary of a schedule's input-loading behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Number of locations visited (= `Nlocs`).
    pub locations: u64,
    /// Input elements loaded at the first location.
    pub first_loads: u64,
    /// Exact total input loads across the layer.
    pub total_loads: u64,
    /// Largest per-location load after the first (the row-wrap peak under
    /// raster scan).
    pub max_steady_loads: u64,
    /// The paper's steady-state estimate, `nc·m·s`.
    pub paper_steady_estimate: u64,
}

/// The visit order of kernel locations plus exact incremental load sets.
#[derive(Debug, Clone)]
pub struct LocationSchedule {
    geometry: ConvGeometry,
    scan: ScanOrder,
    order: Vec<Location>,
}

impl LocationSchedule {
    /// Builds the schedule for a layer under a scan order.
    #[must_use]
    pub fn new(geometry: ConvGeometry, scan: ScanOrder) -> Self {
        let o = geometry.output_side();
        let mut order = Vec::with_capacity(o * o);
        for oy in 0..o {
            match scan {
                ScanOrder::RowMajor => {
                    for ox in 0..o {
                        order.push(Location { oy, ox });
                    }
                }
                ScanOrder::Serpentine => {
                    if oy % 2 == 0 {
                        for ox in 0..o {
                            order.push(Location { oy, ox });
                        }
                    } else {
                        for ox in (0..o).rev() {
                            order.push(Location { oy, ox });
                        }
                    }
                }
            }
        }
        LocationSchedule {
            geometry,
            scan,
            order,
        }
    }

    /// The layer geometry.
    #[must_use]
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geometry
    }

    /// The scan order.
    #[must_use]
    pub fn scan(&self) -> ScanOrder {
        self.scan
    }

    /// The visit order.
    #[must_use]
    pub fn locations(&self) -> &[Location] {
        &self.order
    }

    /// Linear addresses (`(c·n + y)·n + x`) of the *real* (non-padding)
    /// input elements in the receptive field of `loc`.
    #[must_use]
    pub fn required_inputs(&self, loc: Location) -> Vec<u64> {
        let g = &self.geometry;
        let (n, m, nc, s, p) = (
            g.input_side(),
            g.kernel_side(),
            g.channels(),
            g.stride(),
            g.padding() as isize,
        );
        let base_y = (loc.oy * s) as isize - p;
        let base_x = (loc.ox * s) as isize - p;
        let mut addrs = Vec::with_capacity(g.n_kernel() as usize);
        for c in 0..nc {
            for ky in 0..m {
                let y = base_y + ky as isize;
                if y < 0 || y as usize >= n {
                    continue;
                }
                for kx in 0..m {
                    let x = base_x + kx as isize;
                    if x < 0 || x as usize >= n {
                        continue;
                    }
                    addrs.push(((c * n + y as usize) * n + x as usize) as u64);
                }
            }
        }
        addrs
    }

    /// Per-location counts of newly required input elements, in visit order
    /// (the first entry is the cold-start fill).
    #[must_use]
    pub fn update_counts(&self) -> Vec<u64> {
        let mut counts = Vec::with_capacity(self.order.len());
        let mut previous: HashSet<u64> = HashSet::new();
        for &loc in &self.order {
            let required = self.required_inputs(loc);
            let new = required.iter().filter(|a| !previous.contains(a)).count() as u64;
            counts.push(new);
            previous = required.into_iter().collect();
        }
        counts
    }

    /// The paper's steady-state per-location update estimate, `nc·m·s`
    /// (numerator of eq. (8)).
    #[must_use]
    pub fn paper_steady_estimate(&self) -> u64 {
        self.geometry.updated_inputs_per_location()
    }

    /// Computes the schedule's loading statistics (walks every location).
    #[must_use]
    pub fn stats(&self) -> ScheduleStats {
        let counts = self.update_counts();
        let first = counts.first().copied().unwrap_or(0);
        let max_steady = counts.iter().skip(1).copied().max().unwrap_or(0);
        ScheduleStats {
            locations: counts.len() as u64,
            first_loads: first,
            total_loads: counts.iter().sum(),
            max_steady_loads: max_steady,
            paper_steady_estimate: self.paper_steady_estimate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize, m: usize, p: usize, s: usize, nc: usize) -> ConvGeometry {
        ConvGeometry::new(n, m, p, s, nc, 4).unwrap()
    }

    #[test]
    fn covers_every_location_exactly_once() {
        for scan in [ScanOrder::RowMajor, ScanOrder::Serpentine] {
            let sched = LocationSchedule::new(g(9, 3, 1, 2, 2), scan);
            let set: HashSet<(usize, usize)> =
                sched.locations().iter().map(|l| (l.oy, l.ox)).collect();
            assert_eq!(set.len(), sched.locations().len());
            assert_eq!(
                sched.locations().len() as u64,
                sched.geometry().n_locations()
            );
        }
    }

    #[test]
    fn figure3_has_49_cycles() {
        // Paper Figure 3 narrative: 49 receptive-field cycles.
        let sched = LocationSchedule::new(g(9, 3, 0, 1, 1), ScanOrder::RowMajor);
        assert_eq!(sched.locations().len(), 49);
    }

    #[test]
    fn first_location_loads_full_receptive_field() {
        let geometry = g(8, 3, 0, 1, 3);
        let sched = LocationSchedule::new(geometry, ScanOrder::RowMajor);
        let counts = sched.update_counts();
        assert_eq!(counts[0], geometry.n_kernel()); // no padding: full m·m·nc
    }

    #[test]
    fn padding_reduces_first_load() {
        // With p=1 the (0,0) receptive field hangs over the border: only
        // (m-1)² real values exist per channel.
        let geometry = g(8, 3, 1, 1, 2);
        let sched = LocationSchedule::new(geometry, ScanOrder::RowMajor);
        let counts = sched.update_counts();
        assert_eq!(counts[0], 2 * 2 * 2);
    }

    #[test]
    fn steady_state_matches_paper_estimate_interior() {
        // Interior column steps load exactly nc·m·s new values.
        let geometry = g(12, 3, 0, 1, 3);
        let sched = LocationSchedule::new(geometry, ScanOrder::RowMajor);
        let counts = sched.update_counts();
        let o = geometry.output_side();
        // location (0, 5) is mid-row: index 5
        assert_eq!(counts[5], geometry.updated_inputs_per_location());
        // mid-row of a later row too
        assert_eq!(counts[3 * o + 4], geometry.updated_inputs_per_location());
    }

    #[test]
    fn row_wrap_penalty_under_raster() {
        // Under raster scan, the first location of row 1 shares no columns
        // with the last location of row 0 (for small m) — near-full reload.
        let geometry = g(16, 3, 0, 1, 2);
        let sched = LocationSchedule::new(geometry, ScanOrder::RowMajor);
        let counts = sched.update_counts();
        let o = geometry.output_side();
        let wrap = counts[o]; // first location of row 1
        assert!(
            wrap > geometry.updated_inputs_per_location(),
            "row wrap {wrap} should exceed steady {}",
            geometry.updated_inputs_per_location()
        );
    }

    #[test]
    fn serpentine_removes_row_wrap_penalty() {
        let geometry = g(16, 3, 0, 1, 2);
        let raster = LocationSchedule::new(geometry, ScanOrder::RowMajor).stats();
        let serp = LocationSchedule::new(geometry, ScanOrder::Serpentine).stats();
        assert!(serp.total_loads < raster.total_loads);
        // serpentine: turning down by s only needs nc·m·s new values
        assert!(serp.max_steady_loads <= geometry.updated_inputs_per_location());
    }

    #[test]
    fn stride_scales_updates() {
        let s1 = LocationSchedule::new(g(16, 3, 0, 1, 1), ScanOrder::RowMajor);
        let s2 = LocationSchedule::new(g(16, 3, 0, 2, 1), ScanOrder::RowMajor);
        // interior steady-state: 3 vs 6 values
        assert_eq!(s1.update_counts()[5], 3);
        assert_eq!(s2.update_counts()[3], 6);
    }

    #[test]
    fn stride_beyond_kernel_reloads_everything() {
        // s > m: windows are disjoint; every location loads Nkernel.
        let geometry = ConvGeometry::new(16, 2, 0, 3, 1, 4).unwrap();
        let sched = LocationSchedule::new(geometry, ScanOrder::RowMajor);
        let counts = sched.update_counts();
        assert!(counts.iter().all(|&c| c == geometry.n_kernel()));
    }

    #[test]
    fn total_loads_bounded_by_locations_times_kernel() {
        let geometry = g(10, 3, 1, 1, 2);
        let stats = LocationSchedule::new(geometry, ScanOrder::RowMajor).stats();
        assert!(stats.total_loads <= stats.locations * geometry.n_kernel());
        assert!(stats.total_loads >= geometry.n_input() / 2);
        assert_eq!(stats.paper_steady_estimate, 6);
    }

    #[test]
    fn required_inputs_are_within_bounds_and_unique() {
        let geometry = g(7, 3, 2, 2, 2);
        let sched = LocationSchedule::new(geometry, ScanOrder::RowMajor);
        let n = geometry.input_side() as u64;
        let max_addr = geometry.channels() as u64 * n * n;
        for &loc in sched.locations() {
            let req = sched.required_inputs(loc);
            let set: HashSet<u64> = req.iter().copied().collect();
            assert_eq!(set.len(), req.len(), "duplicate addresses at {loc:?}");
            assert!(req.iter().all(|&a| a < max_addr));
        }
    }

    #[test]
    fn one_by_one_kernel_loads_each_input_once() {
        let geometry = ConvGeometry::new(6, 1, 0, 1, 2, 3).unwrap();
        let stats = LocationSchedule::new(geometry, ScanOrder::RowMajor).stats();
        assert_eq!(stats.total_loads, geometry.n_input());
    }
}
