//! Rendering of analysis results as aligned text tables.
//!
//! The fig/table binaries in `pcnna-bench` print through these helpers so
//! every harness emits the same, diffable format (EXPERIMENTS.md embeds
//! their output).

use crate::accel::NetworkReport;
use crate::mapping::Fig5Row;
use crate::simulator::SimResult;
use pcnna_electronics::time::SimTime;

/// Formats a count with thousands separators (`5_245_599_744` →
/// `5,245,599,744`).
#[must_use]
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, ch) in s.chars().enumerate() {
        if i != 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Renders Figure 5 (microring counts per layer) as a table.
#[must_use]
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>18} {:>14} {:>12} {:>12}\n",
        "layer", "not-filtered", "filtered", "chan-seq", "area(mm^2)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:>18} {:>14} {:>12} {:>12.3}\n",
            r.layer,
            group_digits(r.not_filtered),
            group_digits(r.filtered),
            group_digits(r.filtered_channel_sequential),
            r.filtered_area_mm2,
        ));
    }
    out
}

/// Renders the analytical network report (the PCNNA columns of Figure 6).
#[must_use]
pub fn render_timing(report: &NetworkReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>8} {:>12} {:>14} {:>10} {:>12}\n",
        "layer", "Nlocs", "PCNNA(O)", "PCNNA(O+E)", "bound-by", "IO-slowdown"
    ));
    for l in &report.layers {
        out.push_str(&format!(
            "{:<8} {:>8} {:>12} {:>14} {:>10} {:>11.1}x\n",
            l.name,
            l.locations,
            l.optical_time.to_string(),
            l.full_system_time.to_string(),
            l.bottleneck,
            l.timing.io_slowdown(),
        ));
    }
    out.push_str(&format!(
        "{:<8} {:>8} {:>12} {:>14}\n",
        "total",
        "",
        report.total_optical().to_string(),
        report.total_full_system().to_string(),
    ));
    out
}

/// Renders pipeline-simulation results.
#[must_use]
pub fn render_simulation(results: &[SimResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>12} {:>10} {:>10} {:>12} {:>12}\n",
        "layer", "sim-time", "opt-util", "hit-rate", "dram(bytes)", "energy(uJ)"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<8} {:>12} {:>9.1}% {:>9.1}% {:>12} {:>12.3}\n",
            r.name,
            r.total_time.to_string(),
            100.0 * r.optical_utilization(),
            100.0 * r.cache.hit_rate(),
            group_digits(r.traffic.total_bytes()),
            r.energy.total_j() * 1e6,
        ));
    }
    out
}

/// Renders a speedup comparison row set: layer name and per-engine times,
/// computing speedups against the first engine.
#[must_use]
pub fn render_comparison(engines: &[&str], rows: &[(String, Vec<SimTime>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<8}", "layer"));
    for e in engines {
        out.push_str(&format!(" {e:>14}"));
    }
    out.push_str(&format!(" {:>14}\n", "speedup(last)"));
    for (name, times) in rows {
        out.push_str(&format!("{name:<8}"));
        for t in times {
            out.push_str(&format!(" {:>14}", t.to_string()));
        }
        if let (Some(first), Some(last)) = (times.first(), times.last()) {
            if last.as_ps() > 0 {
                out.push_str(&format!(" {:>13.0}x", first.ratio(*last)));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::Pcnna;
    use crate::config::PcnnaConfig;
    use crate::mapping::{figure5, AreaModel};
    use pcnna_cnn::zoo;

    #[test]
    fn group_digits_formats() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(5_245_599_744), "5,245,599,744");
    }

    #[test]
    fn fig5_render_contains_headline_numbers() {
        let rows = figure5(&zoo::alexnet_conv_layers(), &AreaModel::default());
        let s = render_fig5(&rows);
        assert!(s.contains("conv1"));
        assert!(s.contains("5,245,599,744"));
        assert!(s.contains("34,848"));
        assert!(s.contains("3,456"));
    }

    #[test]
    fn timing_render_has_totals() {
        let accel = Pcnna::new(PcnnaConfig::default()).unwrap();
        let report = accel
            .analyze_conv_layers(&zoo::alexnet_conv_layers())
            .unwrap();
        let s = render_timing(&report);
        assert!(s.contains("total"));
        assert!(s.contains("PCNNA(O)"));
        assert!(s.lines().count() >= 7);
    }

    #[test]
    fn comparison_render_computes_speedup() {
        let rows = vec![(
            "conv1".to_owned(),
            vec![SimTime::from_ms(10), SimTime::from_us(10)],
        )];
        let s = render_comparison(&["eyeriss", "pcnna"], &rows);
        assert!(s.contains("1000x"));
    }
}
