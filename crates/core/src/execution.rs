//! Whole-network sequential execution (paper §IV: "convolution layers are
//! processed sequentially. Convolution result values of each layer are
//! stored back to the off-chip DRAM").
//!
//! The analytical and simulation models price single layers; this module
//! chains them the way the paper's single physical layer would actually
//! run a network: per layer, (optionally) load kernel weights, execute,
//! write the output feature map back to DRAM, and reload it as the next
//! layer's input. Produces end-to-end latency and frames/second — the
//! figure of merit Eyeriss and YodaNN publish.

use crate::analytical::AnalyticalModel;
use crate::config::PcnnaConfig;
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// One layer's slice of a network execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPhase {
    /// Layer name.
    pub name: String,
    /// Kernel-weight load into the MRR banks (charged per the config).
    pub weight_load: SimTime,
    /// Compute (full-system analytical time).
    pub compute: SimTime,
    /// Output feature map writeback to DRAM.
    pub writeback: SimTime,
    /// The phase's total contribution to network latency.
    pub total: SimTime,
}

/// A whole-network execution estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkExecution {
    /// Per-layer phases, in execution order.
    pub phases: Vec<ExecutionPhase>,
    /// End-to-end latency for one input frame.
    pub latency: SimTime,
}

impl NetworkExecution {
    /// Frames per second at this latency (single-frame, no batching).
    #[must_use]
    pub fn frames_per_second(&self) -> f64 {
        let secs = self.latency.as_secs_f64();
        if secs > 0.0 {
            1.0 / secs
        } else {
            0.0
        }
    }
}

/// Sequential network execution model.
#[derive(Debug, Clone)]
pub struct ExecutionModel {
    config: PcnnaConfig,
    analytical: AnalyticalModel,
}

impl ExecutionModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] for invalid configs.
    pub fn new(config: PcnnaConfig) -> Result<Self> {
        Ok(ExecutionModel {
            config,
            analytical: AnalyticalModel::new(config)?,
        })
    }

    /// Executes a list of conv layers sequentially.
    ///
    /// Weight loading is charged when `config.include_weight_load` is set
    /// (the paper amortises it; charging it is the honest whole-network
    /// accounting since every layer reprograms the single physical bank).
    ///
    /// # Errors
    ///
    /// Propagates per-layer resource failures.
    pub fn run(&self, layers: &[(&str, ConvGeometry)]) -> Result<NetworkExecution> {
        let mut phases = Vec::with_capacity(layers.len());
        let mut latency = SimTime::ZERO;
        for (name, g) in layers {
            let timing = self.analytical.layer_timing(name, g)?;
            let weight_load = if self.config.include_weight_load {
                // layer_timing already folds it into full_system_time when
                // configured; report it separately and avoid double count.
                timing.weight_load_time
            } else {
                SimTime::ZERO
            };
            let compute = if self.config.include_weight_load {
                timing
                    .full_system_time
                    .saturating_sub(timing.weight_load_time)
            } else {
                timing.full_system_time
            };
            let writeback = self
                .config
                .dram
                .streaming_time(g.n_output() * self.config.bytes_per_value);
            let total = weight_load + compute + writeback;
            latency += total;
            phases.push(ExecutionPhase {
                name: (*name).to_owned(),
                weight_load,
                compute,
                writeback,
                total,
            });
        }
        Ok(NetworkExecution { phases, latency })
    }
}

/// A batched execution estimate: `batch` frames processed layer-by-layer so
/// each layer's weights are programmed once per batch, not once per frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchedExecution {
    /// Frames in the batch.
    pub batch: u64,
    /// Total time for the whole batch.
    pub total: SimTime,
    /// Latency of the first frame (weights + one frame through every layer).
    pub first_frame_latency: SimTime,
}

impl BatchedExecution {
    /// Steady-state throughput, frames/second.
    #[must_use]
    pub fn frames_per_second(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs > 0.0 {
            self.batch as f64 / secs
        } else {
            0.0
        }
    }
}

impl ExecutionModel {
    /// Executes `batch` frames with layer-major ordering: for each layer,
    /// program weights once, then stream all `batch` frames' locations
    /// through it. This is the natural amortization the paper implies when
    /// it notes that "over the execution of one layer of a CNN the kernel
    /// weights do not change".
    ///
    /// # Errors
    ///
    /// Propagates per-layer resource failures.
    pub fn run_batched(
        &self,
        layers: &[(&str, ConvGeometry)],
        batch: u64,
    ) -> Result<BatchedExecution> {
        let mut total = SimTime::ZERO;
        let mut first_frame = SimTime::ZERO;
        for (name, g) in layers {
            let timing = self.analytical.layer_timing(name, g)?;
            // Weight programming always happens once per layer per batch in
            // this mode (regardless of include_weight_load, which governs
            // the per-frame accounting of `run`).
            let compute = if self.config.include_weight_load {
                timing
                    .full_system_time
                    .saturating_sub(timing.weight_load_time)
            } else {
                timing.full_system_time
            };
            let writeback = self
                .config
                .dram
                .streaming_time(g.n_output() * self.config.bytes_per_value);
            let per_frame = compute + writeback;
            total += timing.weight_load_time + per_frame.saturating_mul(batch);
            first_frame += timing.weight_load_time + per_frame;
        }
        Ok(BatchedExecution {
            batch,
            total,
            first_frame_latency: first_frame,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    #[test]
    fn alexnet_latency_is_sum_of_phases() {
        let m = ExecutionModel::new(PcnnaConfig::default()).unwrap();
        let run = m.run(&zoo::alexnet_conv_layers()).unwrap();
        let sum: SimTime = run.phases.iter().map(|p| p.total).sum();
        assert_eq!(sum, run.latency);
        assert_eq!(run.phases.len(), 5);
    }

    #[test]
    fn alexnet_conv_fps_is_high_without_weight_load() {
        // ~22 µs of compute plus ~100 µs of output writebacks → thousands
        // of frames/s for the conv stack alone. (Writeback, not the DAC,
        // dominates network-level latency at 12.8 GB/s — a reproduction
        // finding; see EXPERIMENTS.md.)
        let m = ExecutionModel::new(PcnnaConfig::default()).unwrap();
        let run = m.run(&zoo::alexnet_conv_layers()).unwrap();
        let fps = run.frames_per_second();
        assert!(fps > 5e3, "fps {fps}");
        let writeback: SimTime = run.phases.iter().map(|p| p.writeback).sum();
        assert!(
            writeback.ratio(run.latency) > 0.5,
            "writeback should dominate"
        );
    }

    #[test]
    fn charging_weight_load_collapses_throughput() {
        // The reproduction finding: reprogramming ~3.1 M ring set points per
        // frame through one 6 GSa/s DAC costs ~0.5 ms — it, not the DAC
        // input path, dominates whole-network latency.
        let cfg = PcnnaConfig {
            include_weight_load: true,
            ..PcnnaConfig::default()
        };
        let with = ExecutionModel::new(cfg)
            .unwrap()
            .run(&zoo::alexnet_conv_layers())
            .unwrap();
        let without = ExecutionModel::new(PcnnaConfig::default())
            .unwrap()
            .run(&zoo::alexnet_conv_layers())
            .unwrap();
        assert!(with.latency.as_us_f64() > 3.0 * without.latency.as_us_f64());
        // weight load phases dominate the frame latency
        let wl: SimTime = with.phases.iter().map(|p| p.weight_load).sum();
        assert!(
            wl.ratio(with.latency) > 0.7,
            "weight-load share {}",
            wl.ratio(with.latency)
        );
    }

    #[test]
    fn writeback_is_priced() {
        let m = ExecutionModel::new(PcnnaConfig::default()).unwrap();
        let run = m.run(&zoo::alexnet_conv_layers()).unwrap();
        for p in &run.phases {
            assert!(p.writeback > SimTime::ZERO, "{}", p.name);
        }
    }

    #[test]
    fn batching_amortizes_weight_load() {
        let m = ExecutionModel::new(PcnnaConfig::default()).unwrap();
        let layers = zoo::alexnet_conv_layers();
        let b1 = m.run_batched(&layers, 1).unwrap();
        let b64 = m.run_batched(&layers, 64).unwrap();
        let b1024 = m.run_batched(&layers, 1024).unwrap();
        // throughput improves with batch and saturates
        assert!(b64.frames_per_second() > 5.0 * b1.frames_per_second());
        assert!(b1024.frames_per_second() > b64.frames_per_second());
        // saturation: 1024 vs 64 gains less than 64 vs 1
        let gain_small = b64.frames_per_second() / b1.frames_per_second();
        let gain_large = b1024.frames_per_second() / b64.frames_per_second();
        assert!(gain_large < gain_small);
    }

    #[test]
    fn batched_first_frame_latency_includes_weights() {
        let m = ExecutionModel::new(PcnnaConfig::default()).unwrap();
        let layers = zoo::alexnet_conv_layers();
        let b = m.run_batched(&layers, 8).unwrap();
        let per_frame = m.run(&layers).unwrap().latency;
        assert!(b.first_frame_latency > per_frame);
        assert!(b.total >= b.first_frame_latency);
    }

    #[test]
    fn empty_network_has_zero_latency() {
        let m = ExecutionModel::new(PcnnaConfig::default()).unwrap();
        let run = m.run(&[]).unwrap();
        assert_eq!(run.latency, SimTime::ZERO);
        assert_eq!(run.frames_per_second(), 0.0);
    }
}
