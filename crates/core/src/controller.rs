//! Runtime calibration controller (reproduction extension).
//!
//! [`pcnna_photonics::thermal`] shows a PCNNA weight bank holds 1% weight
//! accuracy only within a ±2 mK ambient band. A real system therefore runs
//! a control loop: monitor (or dead-reckon) drift, and recalibrate before
//! the error budget is spent. This module sizes that loop — recalibration
//! period, per-recalibration cost through the weight DACs, and the duty
//! overhead it adds to layer execution — turning the thermal measurements
//! into a system-level number.

use crate::analytical::AnalyticalModel;
use crate::config::PcnnaConfig;
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use pcnna_photonics::microring::RingParams;
use pcnna_photonics::thermal::ThermalModel;
use serde::{Deserialize, Serialize};

/// Environment/requirement parameters of the control loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlRequirements {
    /// Ambient drift rate the package sees, kelvin/second (a chip without
    /// a TEC easily sees tens of mK/s during load transients).
    pub drift_k_per_s: f64,
    /// Maximum tolerated weight error before recalibration.
    pub weight_tolerance: f64,
    /// Calibration feedback iterations needed (from
    /// [`pcnna_photonics::weight_bank::CalibrationReport`]; ~6–10).
    pub calibration_iterations: u64,
}

impl Default for ControlRequirements {
    fn default() -> Self {
        ControlRequirements {
            drift_k_per_s: 0.01,
            weight_tolerance: 0.01,
            calibration_iterations: 8,
        }
    }
}

/// The sized control loop for one layer mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlPlan {
    /// Temperature excursion that spends the weight-error budget, kelvin.
    pub tolerable_excursion_k: f64,
    /// Recalibration period forced by the drift rate.
    pub recalibration_period: SimTime,
    /// Cost of one recalibration (every ring reprogrammed
    /// `calibration_iterations` times through the weight DACs).
    pub recalibration_cost: SimTime,
    /// Fraction of wall time spent recalibrating.
    pub duty_overhead: f64,
}

/// Sizes calibration control loops.
#[derive(Debug, Clone)]
pub struct CalibrationController {
    config: PcnnaConfig,
    thermal: ThermalModel,
    ring: RingParams,
}

impl CalibrationController {
    /// Builds a controller model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] /
    /// [`crate::CoreError::Photonic`] for invalid parameters.
    pub fn new(config: PcnnaConfig, thermal: ThermalModel) -> Result<Self> {
        config.validate()?;
        thermal.validate()?;
        let ring = config.link.ring;
        Ok(CalibrationController {
            config,
            thermal,
            ring,
        })
    }

    /// Analytic tolerable excursion: the ambient shift that moves a
    /// mid-scale ring's weight by `tolerance`. Uses the worst-case weight
    /// slope of the Lorentzian, `|dw/dδ|max = gain·(3√3/8)/δ½`.
    #[must_use]
    pub fn tolerable_excursion_k(&self, tolerance: f64) -> f64 {
        let carrier = 1550e-9f64;
        let hwhm = carrier / (2.0 * self.ring.q_factor);
        let gain = self.ring.drop_peak + 1.0 - self.ring.epsilon();
        let slope_per_m = gain * (3.0 * 3.0f64.sqrt() / 8.0) / hwhm;
        let budget_m = tolerance / slope_per_m;
        budget_m / self.thermal.drift_m_per_k.max(f64::MIN_POSITIVE)
    }

    /// Plans the loop for one layer.
    ///
    /// # Errors
    ///
    /// Propagates resource failures from the analytical model.
    pub fn plan(&self, g: &ConvGeometry, req: &ControlRequirements) -> Result<ControlPlan> {
        let analytical = AnalyticalModel::new(self.config)?;
        let excursion = self.tolerable_excursion_k(req.weight_tolerance);
        let period_s = excursion / req.drift_k_per_s.max(f64::MIN_POSITIVE);
        let period = SimTime::from_secs_f64(period_s);
        let cost = analytical
            .weight_load_time(g)
            .saturating_mul(req.calibration_iterations);
        let duty = if period_s > 0.0 {
            (cost.as_secs_f64() / (cost.as_secs_f64() + period_s)).min(1.0)
        } else {
            1.0
        };
        Ok(ControlPlan {
            tolerable_excursion_k: excursion,
            recalibration_period: period,
            recalibration_cost: cost,
            duty_overhead: duty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    fn controller() -> CalibrationController {
        CalibrationController::new(PcnnaConfig::default(), ThermalModel::default()).unwrap()
    }

    #[test]
    fn analytic_budget_matches_measured_order() {
        // thermal::tests measured ±~2 mK for 1% tolerance by bisection on a
        // real bank; the analytic worst-slope estimate must agree within ~3x.
        let c = controller();
        let k = c.tolerable_excursion_k(0.01);
        assert!(
            (0.5e-3..6e-3).contains(&k),
            "analytic budget {k} K vs measured ~2 mK"
        );
    }

    #[test]
    fn budget_scales_with_tolerance() {
        let c = controller();
        assert!(c.tolerable_excursion_k(0.02) > c.tolerable_excursion_k(0.01));
    }

    #[test]
    fn plan_for_conv4_is_feasible_but_costly() {
        let c = controller();
        let g = zoo::alexnet_conv_layers()[3].1;
        let plan = c.plan(&g, &ControlRequirements::default()).unwrap();
        // 10 mK/s drift over a ~2 mK budget: recalibrate every ~200 ms
        assert!(plan.recalibration_period.as_ms_f64() > 10.0);
        // 1.33M rings × 8 iterations through one DAC: ~1.8 ms per recal
        assert!(plan.recalibration_cost.as_ms_f64() > 0.5);
        // duty overhead well under 10%
        assert!(plan.duty_overhead < 0.1, "duty {}", plan.duty_overhead);
    }

    #[test]
    fn fast_drift_forces_high_duty() {
        let c = controller();
        let g = zoo::alexnet_conv_layers()[3].1;
        let harsh = ControlRequirements {
            drift_k_per_s: 10.0,
            ..ControlRequirements::default()
        };
        let plan = c.plan(&g, &harsh).unwrap();
        assert!(plan.duty_overhead > 0.5, "duty {}", plan.duty_overhead);
    }

    #[test]
    fn smaller_layers_recalibrate_cheaper() {
        let c = controller();
        let conv1 = zoo::alexnet_conv_layers()[0].1;
        let conv4 = zoo::alexnet_conv_layers()[3].1;
        let p1 = c.plan(&conv1, &ControlRequirements::default()).unwrap();
        let p4 = c.plan(&conv4, &ControlRequirements::default()).unwrap();
        assert!(p1.recalibration_cost < p4.recalibration_cost);
    }
}
