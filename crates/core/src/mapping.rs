//! Ring allocation and area: the paper's §V-A (equations (4)–(5), Figure 5).
//!
//! The core optimization of PCNNA is *receptive-field filtering*: instead of
//! assigning a wavelength (and a demultiplexing ring in every bank) to every
//! input feature-map value, only the `Nkernel` values under the kernel
//! window get carriers. The ring count collapses from
//! `Ninput · K · Nkernel` (eq. 4) to `K · Nkernel` (eq. 5) — for AlexNet
//! conv1, from ~5.2 billion to ~35 thousand, a >150 000× saving.

use crate::config::AllocationPolicy;
use pcnna_cnn::geometry::ConvGeometry;
use serde::{Deserialize, Serialize};

/// Ring/wavelength requirements of one conv layer under one policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingAllocation {
    /// The policy that produced this allocation.
    pub policy: AllocationPolicy,
    /// Total number of weighting microrings.
    pub rings: u64,
    /// Distinct WDM carriers required on the broadcast bus.
    pub wavelengths: u64,
    /// Rings per kernel bank.
    pub rings_per_bank: u64,
    /// Number of banks (= kernels weighted in parallel).
    pub banks: u64,
    /// Optical passes per kernel location (1, or `nc` when
    /// channel-sequential).
    pub passes_per_location: u64,
}

impl RingAllocation {
    /// Computes the allocation for a layer under a policy.
    #[must_use]
    pub fn for_layer(g: &ConvGeometry, policy: AllocationPolicy) -> Self {
        let k = g.kernels() as u64;
        match policy {
            AllocationPolicy::Unfiltered => RingAllocation {
                policy,
                // eq. (4): Ninput · K · Nkernel
                rings: g.n_input() * k * g.n_kernel(),
                wavelengths: g.n_input(),
                rings_per_bank: g.n_input() * g.n_kernel(),
                banks: k,
                passes_per_location: 1,
            },
            AllocationPolicy::Filtered => RingAllocation {
                policy,
                // eq. (5): K · Nkernel
                rings: k * g.n_kernel(),
                wavelengths: g.n_kernel(),
                rings_per_bank: g.n_kernel(),
                banks: k,
                passes_per_location: 1,
            },
            AllocationPolicy::FilteredChannelSequential => RingAllocation {
                policy,
                // K · m·m rings reused across the nc channels
                rings: k * g.n_kernel_per_channel(),
                wavelengths: g.n_kernel_per_channel(),
                rings_per_bank: g.n_kernel_per_channel(),
                banks: k,
                passes_per_location: g.channels() as u64,
            },
        }
    }

    /// Ring-count saving of this allocation relative to the unfiltered
    /// baseline (the paper's ">150k×" headline for conv1).
    #[must_use]
    pub fn saving_vs_unfiltered(&self, g: &ConvGeometry) -> f64 {
        let unfiltered = RingAllocation::for_layer(g, AllocationPolicy::Unfiltered).rings;
        unfiltered as f64 / self.rings.max(1) as f64
    }
}

/// Microring area model: square rings on a square pitch (paper: 25 µm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Ring pitch (side of the square cell), metres.
    pub ring_pitch_m: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            ring_pitch_m: 25e-6,
        }
    }
}

impl AreaModel {
    /// Area of `rings` microrings, mm².
    #[must_use]
    pub fn rings_area_mm2(&self, rings: u64) -> f64 {
        let cell_m2 = self.ring_pitch_m * self.ring_pitch_m;
        rings as f64 * cell_m2 * 1e6 // m² → mm²
    }
}

/// The per-layer rows of Figure 5: ring counts filtered vs. not-filtered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Layer name.
    pub layer: String,
    /// Eq. (4) count.
    pub not_filtered: u64,
    /// Eq. (5) count.
    pub filtered: u64,
    /// Channel-sequential count (the paper's conv4 arithmetic).
    pub filtered_channel_sequential: u64,
    /// Filtered area at the configured pitch, mm².
    pub filtered_area_mm2: f64,
}

/// Computes Figure 5 for a list of named layers.
#[must_use]
pub fn figure5(layers: &[(&str, ConvGeometry)], area: &AreaModel) -> Vec<Fig5Row> {
    layers
        .iter()
        .map(|(name, g)| {
            let unf = RingAllocation::for_layer(g, AllocationPolicy::Unfiltered);
            let fil = RingAllocation::for_layer(g, AllocationPolicy::Filtered);
            let seq = RingAllocation::for_layer(g, AllocationPolicy::FilteredChannelSequential);
            Fig5Row {
                layer: (*name).to_owned(),
                not_filtered: unf.rings,
                filtered: fil.rings,
                filtered_channel_sequential: seq.rings,
                filtered_area_mm2: area.rings_area_mm2(fil.rings),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    fn conv1() -> ConvGeometry {
        zoo::alexnet_conv_layers()[0].1
    }

    fn conv4() -> ConvGeometry {
        zoo::alexnet_conv_layers()[3].1
    }

    #[test]
    fn equation_4_unfiltered_conv1_is_5_2_billion() {
        let alloc = RingAllocation::for_layer(&conv1(), AllocationPolicy::Unfiltered);
        assert_eq!(alloc.rings, 5_245_599_744); // "approximately 5.2 Billion"
        assert_eq!(alloc.wavelengths, 150_528);
    }

    #[test]
    fn equation_5_filtered_conv1_is_35_thousand() {
        let alloc = RingAllocation::for_layer(&conv1(), AllocationPolicy::Filtered);
        assert_eq!(alloc.rings, 34_848); // "35 thousand"
        assert_eq!(alloc.wavelengths, 363);
        assert_eq!(alloc.banks, 96);
        assert_eq!(alloc.rings_per_bank, 363);
    }

    #[test]
    fn conv1_saving_exceeds_150k() {
        // §V-A: "a saving of more than 150k× in the number microrings"
        let alloc = RingAllocation::for_layer(&conv1(), AllocationPolicy::Filtered);
        let saving = alloc.saving_vs_unfiltered(&conv1());
        assert!(saving > 150_000.0, "saving {saving}");
        assert!(saving < 151_000.0);
    }

    #[test]
    fn conv4_channel_sequential_is_3456_rings() {
        // §V-A: "the 4th layer of AlexNet ... will require 3456 microrings".
        // Only the channel-sequential reading reproduces this number.
        let alloc =
            RingAllocation::for_layer(&conv4(), AllocationPolicy::FilteredChannelSequential);
        assert_eq!(alloc.rings, 3456);
        assert_eq!(alloc.passes_per_location, 384);
    }

    #[test]
    fn conv4_area_is_2_2_mm2() {
        // §V-A: "it takes an area of 2.2mm² to fit all the microrings"
        let area = AreaModel::default();
        assert!((area.rings_area_mm2(3456) - 2.16).abs() < 0.01);
    }

    #[test]
    fn conv4_filtered_verbatim_eq5() {
        // eq. (5) taken literally for conv4 (dense nc = 384)
        let alloc = RingAllocation::for_layer(&conv4(), AllocationPolicy::Filtered);
        assert_eq!(alloc.rings, 384 * 3 * 3 * 384); // 1_327_104
    }

    #[test]
    fn filtered_never_exceeds_unfiltered() {
        for (_, g) in zoo::alexnet_conv_layers() {
            let unf = RingAllocation::for_layer(&g, AllocationPolicy::Unfiltered).rings;
            let fil = RingAllocation::for_layer(&g, AllocationPolicy::Filtered).rings;
            let seq =
                RingAllocation::for_layer(&g, AllocationPolicy::FilteredChannelSequential).rings;
            assert!(fil <= unf);
            assert!(seq <= fil);
        }
    }

    #[test]
    fn ring_count_scales_linearly_in_kernels() {
        // §V-A takeaway: "the total number of rings scales linearly with
        // the number of kernels K".
        let g1 = conv1().with_kernels(96).unwrap();
        let g2 = conv1().with_kernels(192).unwrap();
        let a1 = RingAllocation::for_layer(&g1, AllocationPolicy::Filtered).rings;
        let a2 = RingAllocation::for_layer(&g2, AllocationPolicy::Filtered).rings;
        assert_eq!(a2, 2 * a1);
    }

    #[test]
    fn figure2_example_counts() {
        // Figure 2: 16×16 input, five 3×3 kernels (single channel):
        // unfiltered needs 256 wavelengths, filtered only 9.
        let g = ConvGeometry::new(16, 3, 0, 1, 1, 5).unwrap();
        let unf = RingAllocation::for_layer(&g, AllocationPolicy::Unfiltered);
        let fil = RingAllocation::for_layer(&g, AllocationPolicy::Filtered);
        assert_eq!(unf.wavelengths, 256);
        assert_eq!(fil.wavelengths, 9);
        assert_eq!(fil.rings, 45);
    }

    #[test]
    fn figure5_rows_cover_all_layers() {
        let rows = figure5(&zoo::alexnet_conv_layers(), &AreaModel::default());
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].layer, "conv1");
        assert_eq!(rows[0].filtered, 34_848);
        assert_eq!(rows[3].filtered_channel_sequential, 3456);
        for r in &rows {
            assert!(r.filtered <= r.not_filtered);
            assert!(r.filtered_area_mm2 > 0.0);
        }
    }

    #[test]
    fn area_scales_with_pitch_squared() {
        let a25 = AreaModel {
            ring_pitch_m: 25e-6,
        };
        let a50 = AreaModel {
            ring_pitch_m: 50e-6,
        };
        let r = 1000;
        assert!((a50.rings_area_mm2(r) / a25.rings_area_mm2(r) - 4.0).abs() < 1e-12);
    }
}
