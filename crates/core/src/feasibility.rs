//! Physical-feasibility analysis of a PCNNA mapping (reproduction
//! extension).
//!
//! The paper's eq. (5) requires one WDM carrier per receptive-field value —
//! `Nkernel` carriers. Two physical budgets bound how many carriers one
//! broadcast bus can actually carry:
//!
//! 1. **The C band** (~4.4 THz): at 50 GHz spacing, ≈ 89 channels.
//! 2. **The microring free spectral range**: a ring resonates periodically
//!    every `FSR = λ²/(n_g·L)`; carriers further apart than one FSR alias
//!    onto the same ring. A 10 µm-radius ring (n_g ≈ 4.2) has an FSR of
//!    ≈ 9 nm ≈ 1.13 THz → ≈ 23 channels at 50 GHz.
//!
//! AlexNet conv1 needs 363 carriers — 4× the C band and 16× one FSR. The
//! feasible design *spectrally partitions* the receptive field: the layer's
//! carriers are served in `ceil(Nkernel / usable)` sequential spectral
//! passes, each an extra fast-clock cycle, multiplying eq. (7)'s optical
//! time. This module quantifies that correction per layer (reported in
//! EXPERIMENTS.md as a reproduction finding the paper omits).

use crate::config::PcnnaConfig;
use crate::mapping::{AreaModel, RingAllocation};
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use pcnna_photonics::constants::SPEED_OF_LIGHT;
use pcnna_photonics::wavelength::{C_BAND_MAX_M, C_BAND_MIN_M};
use serde::{Deserialize, Serialize};

/// Spectral-budget parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralBudget {
    /// WDM channel spacing, Hz.
    pub channel_spacing_hz: f64,
    /// Microring radius, metres (sets the FSR).
    pub ring_radius_m: f64,
    /// Waveguide group index.
    pub group_index: f64,
    /// Centre wavelength, metres.
    pub center_m: f64,
}

impl Default for SpectralBudget {
    fn default() -> Self {
        SpectralBudget {
            channel_spacing_hz: 50e9,
            ring_radius_m: 10e-6,
            group_index: 4.2,
            center_m: 1550e-9,
        }
    }
}

impl SpectralBudget {
    /// Returns a copy with a different WDM channel spacing, Hz (the
    /// design-space explorer's wavelength-count knob: tighter spacing means
    /// more usable carriers within both budgets).
    #[must_use]
    pub fn with_channel_spacing_hz(mut self, spacing_hz: f64) -> Self {
        self.channel_spacing_hz = spacing_hz;
        self
    }

    /// Returns a copy with a different microring radius, metres (sets the
    /// FSR and thus the per-ring carrier budget — the MRR bank-size knob).
    #[must_use]
    pub fn with_ring_radius_m(mut self, radius_m: f64) -> Self {
        self.ring_radius_m = radius_m;
        self
    }

    /// Returns a copy with a different waveguide group index.
    #[must_use]
    pub fn with_group_index(mut self, n_g: f64) -> Self {
        self.group_index = n_g;
        self
    }

    /// Channels that fit the conventional C band at this spacing.
    #[must_use]
    pub fn c_band_channels(&self) -> u64 {
        let f_lo = SPEED_OF_LIGHT / C_BAND_MAX_M;
        let f_hi = SPEED_OF_LIGHT / C_BAND_MIN_M;
        ((f_hi - f_lo) / self.channel_spacing_hz).floor() as u64 + 1
    }

    /// The ring FSR in Hz: `c·FSR_λ/λ² = c/(n_g·L)`.
    #[must_use]
    pub fn fsr_hz(&self) -> f64 {
        let circumference = 2.0 * core::f64::consts::PI * self.ring_radius_m;
        SPEED_OF_LIGHT / (self.group_index * circumference)
    }

    /// Channels that fit within one FSR at this spacing.
    #[must_use]
    pub fn fsr_channels(&self) -> u64 {
        (self.fsr_hz() / self.channel_spacing_hz).floor() as u64
    }

    /// Usable simultaneous carriers: the tighter of the two budgets.
    #[must_use]
    pub fn usable_channels(&self) -> u64 {
        self.c_band_channels().min(self.fsr_channels()).max(1)
    }
}

/// Per-layer feasibility verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerFeasibility {
    /// Layer name.
    pub name: String,
    /// Carriers eq. (5) demands (`Nkernel`, or `m·m` channel-sequential).
    pub wavelengths_required: u64,
    /// Simultaneous carriers the physics allows.
    pub usable_channels: u64,
    /// C-band capacity at the configured spacing.
    pub c_band_channels: u64,
    /// FSR capacity at the configured ring size.
    pub fsr_channels: u64,
    /// Sequential spectral passes needed: `ceil(required / usable)`.
    pub spectral_passes: u64,
    /// Whether the layer runs in a single pass as the paper assumes.
    pub single_pass: bool,
    /// eq. (7) optical time as the paper computes it.
    pub paper_optical_time: SimTime,
    /// Optical time corrected for spectral partitioning.
    pub corrected_optical_time: SimTime,
    /// Ring count under the configured policy.
    pub rings: u64,
    /// Ring area, mm².
    pub ring_area_mm2: f64,
}

/// The lean per-layer spectral verdict — just the fields search hot loops
/// consume, `Copy`, no name interning, no allocation. See
/// [`FeasibilityModel::layer_spectrum`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerSpectrum {
    /// Optical time corrected for spectral partitioning.
    pub corrected_optical_time: SimTime,
    /// Sequential spectral passes needed: `ceil(required / usable)`.
    pub spectral_passes: u64,
    /// Ring area at the configured pitch, mm².
    pub ring_area_mm2: f64,
}

/// Analyses layers against the spectral budgets.
#[derive(Debug, Clone)]
pub struct FeasibilityModel {
    config: PcnnaConfig,
    budget: SpectralBudget,
}

impl FeasibilityModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] for invalid configs.
    pub fn new(config: PcnnaConfig, budget: SpectralBudget) -> Result<Self> {
        config.validate()?;
        Ok(FeasibilityModel { config, budget })
    }

    /// The spectral budget in force.
    #[must_use]
    pub fn budget(&self) -> &SpectralBudget {
        &self.budget
    }

    /// The lean spectral verdict of one layer — the search hot-loop
    /// counterpart of [`layer`](Self::layer): identical arithmetic, only
    /// the fields the design-space objectives consume, and no allocation.
    #[must_use]
    pub fn layer_spectrum(&self, g: &ConvGeometry) -> LayerSpectrum {
        self.layer_spectrum_with(g, &RingAllocation::for_layer(g, self.config.allocation))
    }

    /// [`layer_spectrum`](Self::layer_spectrum) with a caller-computed
    /// ring allocation (so [`layer`](Self::layer) computes it once).
    fn layer_spectrum_with(&self, g: &ConvGeometry, alloc: &RingAllocation) -> LayerSpectrum {
        let spectral_passes = alloc.wavelengths.div_ceil(self.budget.usable_channels());
        let corrected = self
            .config
            .fast_clock
            .cycles(g.n_locations() * alloc.passes_per_location * spectral_passes);
        let area = AreaModel {
            ring_pitch_m: self.config.ring_pitch_m,
        };
        LayerSpectrum {
            corrected_optical_time: corrected,
            spectral_passes,
            ring_area_mm2: area.rings_area_mm2(alloc.rings),
        }
    }

    /// Feasibility of one layer.
    #[must_use]
    pub fn layer(&self, name: &str, g: &ConvGeometry) -> LayerFeasibility {
        let alloc = RingAllocation::for_layer(g, self.config.allocation);
        let required = alloc.wavelengths;
        let usable = self.budget.usable_channels();
        let lean = self.layer_spectrum_with(g, &alloc);
        let spectral_passes = lean.spectral_passes;
        let paper_optical = self
            .config
            .fast_clock
            .cycles(g.n_locations() * alloc.passes_per_location);
        let corrected = lean.corrected_optical_time;
        LayerFeasibility {
            name: name.to_owned(),
            wavelengths_required: required,
            usable_channels: usable,
            c_band_channels: self.budget.c_band_channels(),
            fsr_channels: self.budget.fsr_channels(),
            spectral_passes,
            single_pass: spectral_passes == 1,
            paper_optical_time: paper_optical,
            corrected_optical_time: corrected,
            rings: alloc.rings,
            ring_area_mm2: lean.ring_area_mm2,
        }
    }

    /// Feasibility of a list of layers.
    #[must_use]
    pub fn network(&self, layers: &[(&str, ConvGeometry)]) -> Vec<LayerFeasibility> {
        layers.iter().map(|(name, g)| self.layer(name, g)).collect()
    }
}

/// Renders a feasibility table.
#[must_use]
pub fn render_feasibility(rows: &[LayerFeasibility]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>9} {:>8} {:>7} {:>7} {:>7} {:>12} {:>14}\n",
        "layer", "carriers", "usable", "C-band", "FSR", "passes", "paper-opt", "corrected-opt"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>9} {:>8} {:>7} {:>7} {:>7} {:>12} {:>14}\n",
            r.name,
            r.wavelengths_required,
            r.usable_channels,
            r.c_band_channels,
            r.fsr_channels,
            r.spectral_passes,
            r.paper_optical_time.to_string(),
            r.corrected_optical_time.to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocationPolicy;
    use pcnna_cnn::zoo;

    fn model() -> FeasibilityModel {
        FeasibilityModel::new(PcnnaConfig::default(), SpectralBudget::default()).unwrap()
    }

    #[test]
    fn c_band_holds_about_89_channels_at_50ghz() {
        let b = SpectralBudget::default();
        let c = b.c_band_channels();
        assert!((85..=92).contains(&c), "C-band channels {c}");
    }

    #[test]
    fn fsr_of_10um_ring_is_about_1_1_thz() {
        let b = SpectralBudget::default();
        let fsr = b.fsr_hz();
        assert!(
            (1.0e12..1.3e12).contains(&fsr),
            "FSR {fsr} Hz outside the expected range"
        );
        let ch = b.fsr_channels();
        assert!((20..=26).contains(&ch), "FSR channels {ch}");
    }

    #[test]
    fn fsr_is_the_binding_budget_at_default_geometry() {
        let b = SpectralBudget::default();
        assert!(b.fsr_channels() < b.c_band_channels());
        assert_eq!(b.usable_channels(), b.fsr_channels());
    }

    #[test]
    fn no_alexnet_layer_is_single_pass_under_filtered_allocation() {
        // The reproduction finding: every AlexNet layer's Nkernel exceeds
        // the simultaneous-carrier budget; the paper's single-cycle MAC
        // assumption needs spectral partitioning.
        let m = model();
        for r in m.network(&zoo::alexnet_conv_layers()) {
            assert!(
                !r.single_pass,
                "{}: {} carriers vs {} usable",
                r.name, r.wavelengths_required, r.usable_channels
            );
            assert!(r.corrected_optical_time > r.paper_optical_time);
        }
    }

    #[test]
    fn conv1_needs_about_16_spectral_passes() {
        let m = model();
        let r = m.layer("conv1", &zoo::alexnet_conv_layers()[0].1);
        assert_eq!(r.wavelengths_required, 363);
        // 363 / 22-23 usable ≈ 16-17 passes
        assert!(
            (15..=19).contains(&r.spectral_passes),
            "{}",
            r.spectral_passes
        );
    }

    #[test]
    fn channel_sequential_allocation_often_fits_one_pass() {
        // m·m carriers (9 for 3x3 kernels) fit easily.
        let cfg =
            PcnnaConfig::default().with_allocation(AllocationPolicy::FilteredChannelSequential);
        let m = FeasibilityModel::new(cfg, SpectralBudget::default()).unwrap();
        let conv3 = zoo::alexnet_conv_layers()[2].1;
        let r = m.layer("conv3", &conv3);
        assert_eq!(r.wavelengths_required, 9);
        assert!(r.single_pass);
    }

    #[test]
    fn corrected_time_is_paper_time_times_passes() {
        let m = model();
        let r = m.layer("conv4", &zoo::alexnet_conv_layers()[3].1);
        assert_eq!(
            r.corrected_optical_time.as_ps(),
            r.paper_optical_time.as_ps() * r.spectral_passes
        );
    }

    #[test]
    fn bigger_rings_mean_fewer_usable_channels() {
        let small = SpectralBudget::default().with_ring_radius_m(5e-6);
        let big = SpectralBudget::default().with_ring_radius_m(20e-6);
        assert!(small.fsr_channels() > big.fsr_channels());
    }

    #[test]
    fn budget_builders_land_on_the_right_fields() {
        let b = SpectralBudget::default()
            .with_channel_spacing_hz(25e9)
            .with_ring_radius_m(7.5e-6)
            .with_group_index(4.0);
        assert_eq!(b.channel_spacing_hz, 25e9);
        assert_eq!(b.ring_radius_m, 7.5e-6);
        assert_eq!(b.group_index, 4.0);
        // tighter spacing buys more carriers than the default 50 GHz
        assert!(b.usable_channels() > SpectralBudget::default().usable_channels());
    }

    #[test]
    fn render_includes_all_layers() {
        let m = model();
        let s = render_feasibility(&m.network(&zoo::alexnet_conv_layers()));
        for l in ["conv1", "conv5", "passes"] {
            assert!(s.contains(l));
        }
    }

    #[test]
    fn tiny_layer_is_single_pass() {
        let m = model();
        let g = ConvGeometry::new(8, 3, 0, 1, 2, 4).unwrap(); // 18 carriers
        let r = m.layer("tiny", &g);
        assert!(r.single_pass);
        assert_eq!(r.corrected_optical_time, r.paper_optical_time);
    }
}
