//! PCNNA core: the photonic convolutional-neural-network accelerator.
//!
//! This crate implements the paper's primary contribution on top of the
//! `pcnna-cnn`, `pcnna-photonics` and `pcnna-electronics` substrates:
//!
//! * [`config`] — the full hardware configuration, defaulting to the paper's
//!   design point (5 GHz fast clock, 10 input DACs at 6 GSa/s, 2.8 GSa/s
//!   ADC, 7 ns 128 kb SRAM, 25 µm microrings).
//! * [`mapping`] — ring allocation with and without receptive-field
//!   filtering (paper equations (4)/(5)) and the microring area model
//!   (§V-A, Figure 5).
//! * [`scheduler`] — the kernel-location schedule of Figure 3, with exact
//!   stride-based incremental input-update sets (the numerator of eq. (8)).
//! * [`analytical`] — the execution-time framework (equations (6)–(8),
//!   Figure 6): optical-core time and full-system time under electronic I/O
//!   constraints.
//! * [`simulator`] — a cycle-approximate pipeline simulator
//!   (DRAM → buffer → SRAM → DAC → MZM → MRR → PD → ADC → DRAM, with double
//!   buffering) that cross-checks the analytical model and reports cache,
//!   traffic and energy detail the paper does not.
//! * [`functional`] — functional photonic inference: runs actual
//!   convolutions through the device models (calibrated weight banks,
//!   quantized converters, optional shot/thermal/RIN noise) and scores the
//!   result against the ground-truth reference.
//! * [`feasibility`] — spectral-budget analysis (C band, microring FSR)
//!   the paper omits: how many WDM carriers a layer really gets and what
//!   spectral partitioning costs (reproduction extension).
//! * [`power`] — full-system power/energy model (reproduction extension).
//! * [`execution`] — whole-network sequential execution: latency and
//!   frames/second, with and without per-layer weight reprogramming.
//! * [`tiling`] — channel tiling for layers exceeding the SRAM/carrier
//!   budgets, with partial-sum accounting (reproduction extension).
//! * [`controller`] — sizes the thermal recalibration loop real MRR banks
//!   require: period, cost, duty overhead (reproduction extension).
//! * [`serving`] — collapses a (network, config) pair into an affine
//!   [`serving::ServiceQuote`] (weight-load intercept + per-frame slope for
//!   time and energy) so the `pcnna-fleet` serving simulator can price
//!   batches without re-running the analytical model (reproduction
//!   extension).
//! * [`accel`] — the high-level [`accel::Pcnna`] API tying it all together.
//! * [`report`] — human-readable and serializable reports.
//!
//! # Quickstart
//!
//! ```
//! use pcnna_core::accel::Pcnna;
//! use pcnna_core::config::PcnnaConfig;
//! use pcnna_cnn::zoo;
//!
//! let accel = Pcnna::new(PcnnaConfig::default()).unwrap();
//! let report = accel.analyze_conv_layers(&zoo::alexnet_conv_layers()).unwrap();
//! // Figure 5: filtered ring counts; conv1 ≈ 35k (paper §V-A)
//! assert_eq!(report.layers[0].rings_filtered, 34_848);
//! // Figure 6: optical-core time; conv1 = 3025 locations at 5 GHz = 605 ns
//! assert_eq!(report.layers[0].optical_time.as_ps(), 3025 * 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `if !(x > 0.0)` in parameter validation is deliberate: unlike `x <= 0.0`
// it also rejects NaN, which must never enter a physical model.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod accel;
pub mod analytical;
pub mod config;
pub mod controller;
pub mod execution;
pub mod feasibility;
pub mod functional;
pub mod mapping;
pub mod power;
pub mod report;
pub mod scheduler;
pub mod serving;
pub mod simulator;
pub mod tiling;

pub use accel::Pcnna;
pub use config::PcnnaConfig;

/// Errors produced by the PCNNA core.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration parameter is invalid.
    InvalidConfig {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An error bubbled up from the CNN substrate.
    Cnn(pcnna_cnn::CnnError),
    /// An error bubbled up from the photonic substrate.
    Photonic(pcnna_photonics::PhotonicError),
    /// An error bubbled up from the electronic substrate.
    Electronic(pcnna_electronics::ElectronicError),
    /// A layer does not fit the configured hardware (SRAM, wavelengths…).
    ResourceExceeded {
        /// What ran out.
        resource: &'static str,
        /// Requested amount.
        requested: u64,
        /// Available amount.
        available: u64,
    },
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid PCNNA config: {reason}"),
            CoreError::Cnn(e) => write!(f, "CNN substrate error: {e}"),
            CoreError::Photonic(e) => write!(f, "photonic substrate error: {e}"),
            CoreError::Electronic(e) => write!(f, "electronic substrate error: {e}"),
            CoreError::ResourceExceeded {
                resource,
                requested,
                available,
            } => write!(
                f,
                "resource exceeded: {resource} needs {requested}, hardware provides {available}"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Cnn(e) => Some(e),
            CoreError::Photonic(e) => Some(e),
            CoreError::Electronic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pcnna_cnn::CnnError> for CoreError {
    fn from(e: pcnna_cnn::CnnError) -> Self {
        CoreError::Cnn(e)
    }
}

impl From<pcnna_photonics::PhotonicError> for CoreError {
    fn from(e: pcnna_photonics::PhotonicError) -> Self {
        CoreError::Photonic(e)
    }
}

impl From<pcnna_electronics::ElectronicError> for CoreError {
    fn from(e: pcnna_electronics::ElectronicError) -> Self {
        CoreError::Electronic(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = core::result::Result<T, CoreError>;
