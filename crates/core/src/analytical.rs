//! The paper's analytical execution-time framework (§V-B, eq. (6)–(8)).
//!
//! Two models:
//!
//! * **Optical core, PCNNA(O)** — eq. (7): one kernel location per fast
//!   clock cycle, `Tconv = Nlocs / fclock`, independent of `K`.
//! * **Full system, PCNNA(O+E)** — the electronic I/O constraint. The paper
//!   declares the input DAC the bottleneck: per location, `nc·m·s / NDAC`
//!   sequential conversions at 6 GSa/s (eq. (8)). This module reproduces
//!   that model verbatim ([`BottleneckModel::DacOnly`]) and extends it with
//!   a max-of-pipelined-stages model ([`BottleneckModel::MaxOfStages`]) that
//!   also prices the SRAM access, the optical pass(es), the ADC batch, and
//!   the DRAM stream — exposing where the paper's assumption holds and
//!   where it does not (see EXPERIMENTS.md).

use crate::config::{BottleneckModel, PcnnaConfig};
use crate::mapping::{AreaModel, RingAllocation};
use crate::{CoreError, Result};
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::adc::AdcArray;
use pcnna_electronics::dac::DacArray;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// Per-layer timing breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Layer name.
    pub name: String,
    /// Number of kernel locations (`Nlocs`, eq. (6)).
    pub locations: u64,
    /// Optical passes per location (1, or `nc` when channel-sequential).
    pub passes_per_location: u64,
    /// PCNNA(O): optical-core execution time (eq. (7)).
    pub optical_time: SimTime,
    /// Steady-state input-DAC time per location (eq. (8) applied).
    pub dac_time_per_location: SimTime,
    /// Input updates per location assumed by the paper (`nc·m·s`).
    pub updates_per_location: u64,
    /// Pipelined SRAM access time per location.
    pub sram_time_per_location: SimTime,
    /// ADC digitization time per location (K results over the ADC array).
    pub adc_time_per_location: SimTime,
    /// DRAM streaming time per location for the update set (worst case, no
    /// cross-row reuse).
    pub dram_time_per_location: SimTime,
    /// PCNNA(O+E): full-system execution time under the configured
    /// bottleneck model.
    pub full_system_time: SimTime,
    /// Which stage bound the full-system time.
    pub bottleneck_stage: String,
    /// One-time per-layer kernel-weight load through the weight DAC(s)
    /// (reported separately; charged only if the config says so).
    pub weight_load_time: SimTime,
    /// Ring allocation used.
    pub rings: u64,
    /// Ring area, mm².
    pub ring_area_mm2: f64,
}

impl LayerTiming {
    /// Full-system speedup of the optical core over the full system — how
    /// much the electronics cost.
    #[must_use]
    pub fn io_slowdown(&self) -> f64 {
        self.full_system_time
            .ratio(self.optical_time.max(SimTime::from_ps(1)))
    }
}

/// The analytical model, parameterised by a [`PcnnaConfig`].
#[derive(Debug, Clone)]
pub struct AnalyticalModel {
    config: PcnnaConfig,
    input_dacs: DacArray,
    weight_dacs: DacArray,
    adcs: AdcArray,
}

impl AnalyticalModel {
    /// Builds the model (validates the config).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid configurations.
    pub fn new(config: PcnnaConfig) -> Result<Self> {
        config.validate()?;
        let input_dacs = DacArray::new(config.input_dac, config.n_input_dacs)?;
        let weight_dacs = DacArray::new(config.input_dac, config.n_weight_dacs)?;
        let adcs = AdcArray::new(config.adc, config.n_adcs)?;
        Ok(AnalyticalModel {
            config,
            input_dacs,
            weight_dacs,
            adcs,
        })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &PcnnaConfig {
        &self.config
    }

    /// PCNNA(O): eq. (7), scaled by the allocation policy's optical passes.
    #[must_use]
    pub fn optical_time(&self, g: &ConvGeometry) -> SimTime {
        let alloc = RingAllocation::for_layer(g, self.config.allocation);
        self.config
            .fast_clock
            .cycles(g.n_locations() * alloc.passes_per_location)
    }

    /// Steady-state per-location input-DAC time: eq. (8)'s conversion count
    /// over the input DAC array.
    #[must_use]
    pub fn dac_time_per_location(&self, g: &ConvGeometry) -> SimTime {
        self.input_dacs
            .convert_time(g.updated_inputs_per_location())
    }

    /// Per-location ADC time: `K` results over the ADC array.
    #[must_use]
    pub fn adc_time_per_location(&self, g: &ConvGeometry) -> SimTime {
        self.adcs.convert_time(g.kernels() as u64)
    }

    /// Per-location pipelined SRAM access time (one wide banked access).
    #[must_use]
    pub fn sram_time_per_location(&self) -> SimTime {
        self.config.sram.access_time
    }

    /// Per-location DRAM streaming time for the update set (worst case).
    #[must_use]
    pub fn dram_time_per_location(&self, g: &ConvGeometry) -> SimTime {
        self.config
            .dram
            .streaming_time(g.updated_inputs_per_location() * self.config.bytes_per_value)
    }

    /// One-time kernel-weight load for the layer: `K·Nkernel` (or `K·m·m`
    /// for channel-sequential) values through the weight DAC array.
    #[must_use]
    pub fn weight_load_time(&self, g: &ConvGeometry) -> SimTime {
        let alloc = RingAllocation::for_layer(g, self.config.allocation);
        self.weight_dacs.convert_time(alloc.rings)
    }

    /// Full-system per-location time and the name of the binding stage.
    #[must_use]
    pub fn full_system_per_location(&self, g: &ConvGeometry) -> (SimTime, &'static str) {
        let alloc = RingAllocation::for_layer(g, self.config.allocation);
        let optical = self.config.fast_clock.cycles(alloc.passes_per_location);
        let dac = self.dac_time_per_location(g);
        match self.config.bottleneck {
            BottleneckModel::DacOnly => (dac.max(optical), "dac"),
            BottleneckModel::MaxOfStages => {
                let stages = [
                    ("dac", dac),
                    ("sram", self.sram_time_per_location()),
                    ("optical", optical),
                    ("adc", self.adc_time_per_location(g)),
                    ("dram", self.dram_time_per_location(g)),
                ];
                let (name, time) = stages
                    .into_iter()
                    .max_by_key(|&(_, t)| t)
                    .expect("stages is non-empty");
                (time, name)
            }
        }
    }

    /// Full-system execution time of one layer — the lean path for search
    /// hot loops (the design-space explorer evaluates thousands of
    /// candidates per second): the same SRAM feasibility check and timing
    /// arithmetic as [`layer_timing`](Self::layer_timing), with no name
    /// interning, no per-stage breakdown, and no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ResourceExceeded`] if the layer's working set
    /// exceeds the input SRAM.
    pub fn layer_full_system_time(&self, g: &ConvGeometry) -> Result<SimTime> {
        self.full_system_with_stage(g).map(|(full, _)| full)
    }

    /// The shared SRAM-check + timing arithmetic behind both the lean and
    /// the reporting per-layer paths.
    fn full_system_with_stage(&self, g: &ConvGeometry) -> Result<(SimTime, &'static str)> {
        let working_set = g.n_kernel();
        let capacity = self.config.sram.capacity_words();
        if working_set > capacity {
            return Err(CoreError::ResourceExceeded {
                resource: "input SRAM (words)",
                requested: working_set,
                available: capacity,
            });
        }
        let (per_loc, stage) = self.full_system_per_location(g);
        let mut full = per_loc.saturating_mul(g.n_locations());
        if self.config.include_weight_load {
            full += self.weight_load_time(g);
        }
        Ok((full, stage))
    }

    /// Full analysis of one layer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ResourceExceeded`] if the layer's working set
    /// exceeds the input SRAM (the paper sizes the cache to hold a full
    /// receptive field).
    pub fn layer_timing(&self, name: &str, g: &ConvGeometry) -> Result<LayerTiming> {
        let (full, stage) = self.full_system_with_stage(g)?;
        let alloc = RingAllocation::for_layer(g, self.config.allocation);
        let weight_load = self.weight_load_time(g);
        let area = AreaModel {
            ring_pitch_m: self.config.ring_pitch_m,
        };
        Ok(LayerTiming {
            name: name.to_owned(),
            locations: g.n_locations(),
            passes_per_location: alloc.passes_per_location,
            optical_time: self.optical_time(g),
            dac_time_per_location: self.dac_time_per_location(g),
            updates_per_location: g.updated_inputs_per_location(),
            sram_time_per_location: self.sram_time_per_location(),
            adc_time_per_location: self.adc_time_per_location(g),
            dram_time_per_location: self.dram_time_per_location(g),
            full_system_time: full,
            bottleneck_stage: stage.to_owned(),
            weight_load_time: weight_load,
            rings: alloc.rings,
            ring_area_mm2: area.rings_area_mm2(alloc.rings),
        })
    }

    /// Analyses a list of named conv layers.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    pub fn network_timing(&self, layers: &[(&str, ConvGeometry)]) -> Result<Vec<LayerTiming>> {
        layers
            .iter()
            .map(|(name, g)| self.layer_timing(name, g))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocationPolicy;
    use pcnna_cnn::zoo;

    fn model() -> AnalyticalModel {
        AnalyticalModel::new(PcnnaConfig::default()).unwrap()
    }

    #[test]
    fn equation_7_conv1_optical_time() {
        // conv1: 3025 locations at 5 GHz = 605 ns
        let m = model();
        let g = zoo::alexnet_conv_layers()[0].1;
        assert_eq!(m.optical_time(&g), SimTime::from_ps(3025 * 200));
    }

    #[test]
    fn optical_time_independent_of_kernels() {
        // §V-B: "Tconv in equation 7 is independent of the number of
        // kernels."
        let m = model();
        let g = zoo::alexnet_conv_layers()[2].1;
        let g2 = g.with_kernels(2 * g.kernels()).unwrap();
        assert_eq!(m.optical_time(&g), m.optical_time(&g2));
    }

    #[test]
    fn equation_8_conv4_dac_time() {
        // conv4: ceil(1152/10) = 116 conversions at 6 GSa/s ≈ 19.33 ns
        let m = model();
        let g = zoo::alexnet_conv_layers()[3].1;
        let t = m.dac_time_per_location(&g);
        assert!((t.as_ns_f64() - 116.0 / 6.0).abs() < 0.01, "{t}");
    }

    #[test]
    fn full_system_dac_only_conv4() {
        // 169 locations × 19.33 ns ≈ 3.27 µs
        let m = model();
        let g = zoo::alexnet_conv_layers()[3].1;
        let t = m.layer_timing("conv4", &g).unwrap();
        assert!((t.full_system_time.as_us_f64() - 3.268).abs() < 0.01);
        assert_eq!(t.bottleneck_stage, "dac");
    }

    #[test]
    fn full_system_at_least_optical() {
        let m = model();
        for (name, g) in zoo::alexnet_conv_layers() {
            let t = m.layer_timing(name, &g).unwrap();
            assert!(
                t.full_system_time >= t.optical_time,
                "{name}: O+E {} < O {}",
                t.full_system_time,
                t.optical_time
            );
        }
    }

    #[test]
    fn io_slowdown_is_orders_of_magnitude() {
        // The gap between PCNNA(O) and PCNNA(O+E) in Figure 6 is ~2 orders.
        let m = model();
        let g = zoo::alexnet_conv_layers()[3].1;
        let t = m.layer_timing("conv4", &g).unwrap();
        let slowdown = t.io_slowdown();
        assert!((50.0..1000.0).contains(&slowdown), "io slowdown {slowdown}");
    }

    #[test]
    fn max_of_stages_never_faster_than_dac_only() {
        let dac_only = model();
        let fuller = AnalyticalModel::new(
            PcnnaConfig::default().with_bottleneck(BottleneckModel::MaxOfStages),
        )
        .unwrap();
        for (name, g) in zoo::alexnet_conv_layers() {
            let a = dac_only.layer_timing(name, &g).unwrap();
            let b = fuller.layer_timing(name, &g).unwrap();
            assert!(b.full_system_time >= a.full_system_time, "{name}");
        }
    }

    #[test]
    fn dram_binds_conv4_under_max_of_stages() {
        // The reproduction finding: at 12.8 GB/s, streaming 1152 new
        // 16-bit values per location takes 180 ns — 9× the paper's DAC
        // bottleneck. See EXPERIMENTS.md.
        let fuller = AnalyticalModel::new(
            PcnnaConfig::default().with_bottleneck(BottleneckModel::MaxOfStages),
        )
        .unwrap();
        let g = zoo::alexnet_conv_layers()[3].1;
        let t = fuller.layer_timing("conv4", &g).unwrap();
        assert_eq!(t.bottleneck_stage, "dram");
    }

    #[test]
    fn weight_load_is_significant_but_uncharged_by_default() {
        let m = model();
        let g = zoo::alexnet_conv_layers()[3].1;
        let t = m.layer_timing("conv4", &g).unwrap();
        // 1.3M rings through one 6 GSa/s DAC ≈ 221 µs >> 3.27 µs compute.
        assert!(t.weight_load_time > t.full_system_time);
        // Charged when requested:
        let cfg = PcnnaConfig {
            include_weight_load: true,
            ..PcnnaConfig::default()
        };
        let m2 = AnalyticalModel::new(cfg).unwrap();
        let t2 = m2.layer_timing("conv4", &g).unwrap();
        assert!(t2.full_system_time > t.full_system_time);
    }

    #[test]
    fn channel_sequential_multiplies_optical_passes() {
        let cfg =
            PcnnaConfig::default().with_allocation(AllocationPolicy::FilteredChannelSequential);
        let m = AnalyticalModel::new(cfg).unwrap();
        let g = zoo::alexnet_conv_layers()[3].1;
        let t = m.layer_timing("conv4", &g).unwrap();
        assert_eq!(t.passes_per_location, 384);
        assert_eq!(t.optical_time, SimTime::from_ps(169 * 384 * 200));
    }

    #[test]
    fn oversized_layer_rejected_by_sram_check() {
        // Nkernel beyond 8192 words cannot be cached.
        let m = model();
        let g = ConvGeometry::new(32, 5, 0, 1, 512, 4).unwrap(); // 12800 words
        assert!(matches!(
            m.layer_timing("big", &g),
            Err(CoreError::ResourceExceeded { .. })
        ));
    }

    #[test]
    fn all_alexnet_layers_fit_the_sram() {
        // The paper's cache sizing story: every AlexNet receptive field
        // fits in 8192 words (max is conv4/conv5's 3456).
        let m = model();
        for (name, g) in zoo::alexnet_conv_layers() {
            assert!(m.layer_timing(name, &g).is_ok());
        }
    }

    #[test]
    fn network_timing_returns_all_layers() {
        let m = model();
        let rows = m.network_timing(&zoo::alexnet_conv_layers()).unwrap();
        assert_eq!(rows.len(), 5);
        // total full-system time across conv layers is microseconds-scale
        let total: SimTime = rows.iter().map(|r| r.full_system_time).sum();
        assert!(total.as_us_f64() > 10.0 && total.as_us_f64() < 1000.0);
    }
}
