//! The high-level PCNNA accelerator API.
//!
//! [`Pcnna`] is the façade a downstream user works with: construct it from a
//! [`PcnnaConfig`], then
//!
//! * [`Pcnna::analyze_conv_layers`] — the paper's analytical evaluation
//!   (ring counts, area, PCNNA(O) and PCNNA(O+E) times) for any layer list;
//! * [`Pcnna::simulate_conv_layers`] — the cycle-approximate pipeline
//!   simulation with cache/traffic/energy detail;
//! * [`Pcnna::run_functional`] — actual photonic inference on tensors;
//! * [`Pcnna::analyze_network`] / [`Pcnna::simulate_network`] — the same
//!   over a whole [`Network`]'s conv layers.

use crate::analytical::{AnalyticalModel, LayerTiming};
use crate::config::PcnnaConfig;
use crate::functional::{FunctionalOptions, PhotonicConvExecutor, PhotonicConvResult};
use crate::simulator::{PipelineSimulator, SimResult};
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::network::Network;
use pcnna_cnn::tensor::Tensor;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// Whole-run analytical report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Per-layer timings, in order.
    pub layers: Vec<NetworkLayerRow>,
}

/// One row of a [`NetworkReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkLayerRow {
    /// Layer name.
    pub name: String,
    /// Geometry rendered for humans.
    pub geometry: String,
    /// `Nlocs`.
    pub locations: u64,
    /// Eq. (4) ring count.
    pub rings_unfiltered: u64,
    /// Eq. (5) ring count.
    pub rings_filtered: u64,
    /// Configured-policy ring area, mm².
    pub ring_area_mm2: f64,
    /// PCNNA(O) time.
    pub optical_time: SimTime,
    /// PCNNA(O+E) time.
    pub full_system_time: SimTime,
    /// Binding stage.
    pub bottleneck: String,
    /// Full timing detail.
    pub timing: LayerTiming,
}

impl NetworkReport {
    /// Total PCNNA(O) time across layers.
    #[must_use]
    pub fn total_optical(&self) -> SimTime {
        self.layers.iter().map(|l| l.timing.optical_time).sum()
    }

    /// Total PCNNA(O+E) time across layers.
    #[must_use]
    pub fn total_full_system(&self) -> SimTime {
        self.layers.iter().map(|l| l.timing.full_system_time).sum()
    }
}

/// The PCNNA accelerator model.
#[derive(Debug, Clone)]
pub struct Pcnna {
    config: PcnnaConfig,
    analytical: AnalyticalModel,
}

impl Pcnna {
    /// Builds an accelerator from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] for invalid
    /// configurations.
    pub fn new(config: PcnnaConfig) -> Result<Self> {
        let analytical = AnalyticalModel::new(config)?;
        Ok(Pcnna { config, analytical })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &PcnnaConfig {
        &self.config
    }

    /// The underlying analytical model.
    #[must_use]
    pub fn analytical(&self) -> &AnalyticalModel {
        &self.analytical
    }

    /// Analyses a list of named conv layers (the paper's evaluation flow).
    ///
    /// # Errors
    ///
    /// Propagates per-layer resource failures.
    pub fn analyze_conv_layers(&self, layers: &[(&str, ConvGeometry)]) -> Result<NetworkReport> {
        use crate::config::AllocationPolicy;
        use crate::mapping::RingAllocation;
        let mut rows = Vec::with_capacity(layers.len());
        for (name, g) in layers {
            let timing = self.analytical.layer_timing(name, g)?;
            let unfiltered = RingAllocation::for_layer(g, AllocationPolicy::Unfiltered);
            let filtered = RingAllocation::for_layer(g, AllocationPolicy::Filtered);
            rows.push(NetworkLayerRow {
                name: (*name).to_owned(),
                geometry: g.to_string(),
                locations: g.n_locations(),
                rings_unfiltered: unfiltered.rings,
                rings_filtered: filtered.rings,
                ring_area_mm2: timing.ring_area_mm2,
                optical_time: timing.optical_time,
                full_system_time: timing.full_system_time,
                bottleneck: timing.bottleneck_stage.clone(),
                timing,
            });
        }
        Ok(NetworkReport { layers: rows })
    }

    /// Analyses the conv layers of a [`Network`].
    ///
    /// # Errors
    ///
    /// Propagates per-layer resource failures.
    pub fn analyze_network(&self, net: &Network) -> Result<NetworkReport> {
        let layers: Vec<(&str, ConvGeometry)> = net
            .conv_layers()
            .map(|c| (c.name.as_str(), c.geometry))
            .collect();
        self.analyze_conv_layers(&layers)
    }

    /// Simulates a list of named conv layers through the pipeline model.
    ///
    /// # Errors
    ///
    /// Propagates per-layer resource failures.
    pub fn simulate_conv_layers(&self, layers: &[(&str, ConvGeometry)]) -> Result<Vec<SimResult>> {
        PipelineSimulator::new(self.config)?.simulate_network(layers)
    }

    /// Simulates the conv layers of a [`Network`].
    ///
    /// # Errors
    ///
    /// Propagates per-layer resource failures.
    pub fn simulate_network(&self, net: &Network) -> Result<Vec<SimResult>> {
        let layers: Vec<(&str, ConvGeometry)> = net
            .conv_layers()
            .map(|c| (c.name.as_str(), c.geometry))
            .collect();
        self.simulate_conv_layers(&layers)
    }

    /// Runs one conv layer functionally through the photonic device models.
    ///
    /// # Errors
    ///
    /// Propagates substrate failures.
    pub fn run_functional(
        &self,
        g: &ConvGeometry,
        input: &Tensor,
        kernels: &Tensor,
        opts: &FunctionalOptions,
    ) -> Result<PhotonicConvResult> {
        PhotonicConvExecutor::new(self.config)?.run_layer(g, input, kernels, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::workload::Workload;
    use pcnna_cnn::zoo;

    #[test]
    fn analyze_alexnet_matches_paper_headlines() {
        let accel = Pcnna::new(PcnnaConfig::default()).unwrap();
        let report = accel
            .analyze_conv_layers(&zoo::alexnet_conv_layers())
            .unwrap();
        assert_eq!(report.layers.len(), 5);
        // conv1 ring headline numbers
        assert_eq!(report.layers[0].rings_unfiltered, 5_245_599_744);
        assert_eq!(report.layers[0].rings_filtered, 34_848);
        // optical total: (3025 + 729 + 3·169) locations × 200 ps
        let locs: u64 = report.layers.iter().map(|l| l.locations).sum();
        assert_eq!(locs, 3025 + 729 + 169 * 3);
        assert_eq!(report.total_optical(), SimTime::from_ps(locs * 200));
        // full-system total is microseconds: electronics dominate
        assert!(report.total_full_system() > report.total_optical());
    }

    #[test]
    fn analyze_network_extracts_conv_layers() {
        let accel = Pcnna::new(PcnnaConfig::default()).unwrap();
        let report = accel.analyze_network(&zoo::alexnet()).unwrap();
        assert_eq!(report.layers.len(), 5);
        assert_eq!(report.layers[0].name, "conv1");
    }

    #[test]
    fn simulate_small_network() {
        let accel = Pcnna::new(PcnnaConfig::default()).unwrap();
        let results = accel.simulate_network(&zoo::cifar_small()).unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.total_time > SimTime::ZERO);
        }
    }

    #[test]
    fn functional_via_facade() {
        let accel = Pcnna::new(PcnnaConfig::default()).unwrap();
        let g = pcnna_cnn::geometry::ConvGeometry::new(5, 3, 0, 1, 1, 2).unwrap();
        let wl = Workload::uniform(&g, 3);
        let r = accel
            .run_functional(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
            .unwrap();
        assert!(r.accuracy.snr_db > 20.0);
    }

    #[test]
    fn report_rows_render_geometry() {
        let accel = Pcnna::new(PcnnaConfig::default()).unwrap();
        let report = accel
            .analyze_conv_layers(&zoo::alexnet_conv_layers())
            .unwrap();
        assert!(report.layers[0].geometry.contains("224x224x3"));
        assert_eq!(report.layers[0].bottleneck, "dac");
    }
}
