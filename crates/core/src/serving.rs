//! Serving-oriented execution summaries (reproduction extension).
//!
//! The fleet simulator (`pcnna-fleet`) replays millions of requests against
//! a pool of PCNNA instances. Re-running
//! [`AnalyticalModel`](crate::analytical::AnalyticalModel) per request
//! would dominate the simulation, so this module collapses a whole network
//! on a given [`PcnnaConfig`] into a [`ServiceQuote`] — the affine
//! batch-cost model
//!
//! ```text
//! service_time(batch)  = weight_load + batch · per_frame
//! service_energy(batch) = weight_load_energy + batch · per_frame_energy
//! ```
//!
//! which is exact for the layer-major batched execution of
//! [`ExecutionModel::run_batched`]: per batch, each layer programs its MRR
//! weights once (the single weight-DAC bottleneck the paper describes) and
//! then streams every frame through. A quote is computed once per
//! (network, config) pair and is `Copy`, so a scheduler hot loop prices a
//! candidate batch with two multiply-adds and no allocation.
//!
//! ## One entry point, two axes
//!
//! [`service_quote`] is the single front door: a [`QuoteRequest`] carries
//! the config, power assumptions, layers, a [`HealthState`], and the
//! [`DegradationLimits`] it is judged against — the healthy case is just
//! [`HealthState::nominal`], which is the request builder's default. The
//! result prices **both** service axes:
//!
//! * **time/energy** — the affine batch-cost model above, re-derived on
//!   the surviving-channel config and carrying the laser-compensation
//!   energy of an aged diode;
//! * **accuracy** — an [`AccuracyQuote`]: the health's SNR penalty
//!   ([`health_snr_penalty_db`]) discounts the nominal converter ENOB to
//!   an effective datapath bit width, and a trained proxy net measured at
//!   that width ([`pcnna_cnn::train::quantized_top1`]) prices the top-1
//!   accuracy the instance would actually serve. Quotes are memoized per
//!   (network fingerprint, effective bits), so the hot path is a lock and
//!   a map probe.
//!
//! The legacy [`quote`]/[`quote_degraded`] split remains as thin
//! `#[deprecated]` shims over [`service_quote`]; both are pinned
//! bit-identical to the unified path.

use crate::config::PcnnaConfig;
use crate::execution::ExecutionModel;
use crate::power::{PowerAssumptions, PowerModel};
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use pcnna_photonics::degradation::{DegradationLimits, HealthState};
use pcnna_photonics::noise::health_snr_penalty_db;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

/// The quoted inference quality of one network on one instance's health:
/// how many effective bits the analog datapath still resolves, and the
/// measured top-1 accuracy at that resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyQuote {
    /// Quoted electrical SNR of the analog readout, dB (nominal converter
    /// SNR plus the health's penalty).
    pub snr_db: f64,
    /// Effective datapath resolution, bits: the SNR's ENOB, further
    /// discounted by converter full-scale underutilization on an aged
    /// laser, clamped to `[1, nominal]`.
    pub effective_bits: u8,
    /// Measured proxy top-1 accuracy at `effective_bits`.
    pub top1_accuracy: f64,
    /// The same measurement on nominal hardware — the quote's ceiling.
    pub pristine_accuracy: f64,
}

/// The affine time/energy cost of serving one network on one config,
/// plus the accuracy the analog datapath delivers while doing so.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceQuote {
    /// One-time cost per batch: reprogramming every layer's MRR bank
    /// through the weight DAC(s).
    pub weight_load: SimTime,
    /// Marginal cost per frame in the batch (compute + DRAM writeback).
    pub per_frame: SimTime,
    /// Energy of the per-batch weight reprogramming, joules.
    pub weight_load_energy_j: f64,
    /// Marginal energy per frame, joules (converters, DRAM, photonics at
    /// the analytical execution time).
    pub per_frame_energy_j: f64,
    /// The accuracy axis of the quote.
    pub accuracy: AccuracyQuote,
}

impl ServiceQuote {
    /// Service time for a batch of `batch` frames.
    #[must_use]
    pub fn batch_service_time(&self, batch: u64) -> SimTime {
        self.weight_load + self.per_frame.saturating_mul(batch)
    }

    /// Energy to serve a batch of `batch` frames, joules.
    #[must_use]
    pub fn batch_energy_j(&self, batch: u64) -> f64 {
        self.weight_load_energy_j + batch as f64 * self.per_frame_energy_j
    }

    /// Steady-state frames/second at a given batch size.
    #[must_use]
    pub fn throughput_fps(&self, batch: u64) -> f64 {
        let secs = self.batch_service_time(batch).as_secs_f64();
        if secs > 0.0 {
            batch as f64 / secs
        } else {
            0.0
        }
    }
}

/// Everything [`service_quote`] needs to price a network on an instance.
/// Built with [`QuoteRequest::new`], which defaults to nominal health and
/// the default serviceability envelope — the healthy quote is the request
/// with no further configuration.
#[derive(Debug, Clone, Copy)]
pub struct QuoteRequest<'a> {
    /// Instance configuration (nominal channel counts and converters).
    pub config: &'a PcnnaConfig,
    /// Power assumptions the energy terms are priced under.
    pub assumptions: &'a PowerAssumptions,
    /// The network, as named conv layers.
    pub layers: &'a [(&'a str, ConvGeometry)],
    /// The instance's health snapshot.
    pub health: HealthState,
    /// Serviceability envelope the health is judged against.
    pub limits: DegradationLimits,
}

impl<'a> QuoteRequest<'a> {
    /// A request for nominal hardware under the default serviceability
    /// envelope.
    #[must_use]
    pub fn new(
        config: &'a PcnnaConfig,
        assumptions: &'a PowerAssumptions,
        layers: &'a [(&'a str, ConvGeometry)],
    ) -> Self {
        QuoteRequest {
            config,
            assumptions,
            layers,
            health: HealthState::nominal(),
            limits: DegradationLimits::default(),
        }
    }

    /// The same request under a different health snapshot.
    #[must_use]
    pub fn with_health(mut self, health: HealthState) -> Self {
        self.health = health;
        self
    }

    /// The same request under a different serviceability envelope.
    #[must_use]
    pub fn with_limits(mut self, limits: DegradationLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// A quote re-derived for the requested hardware state, with the
/// derivation's provenance alongside (what capacity survived and what the
/// laser compensation costs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedQuote {
    /// The re-derived affine cost model (already includes the laser
    /// compensation energy) and the accuracy quote for the requested
    /// health.
    pub quote: ServiceQuote,
    /// Input-DAC channels still alive.
    pub effective_input_dacs: usize,
    /// Output-ADC channels still alive.
    pub effective_adcs: usize,
    /// Extra per-frame energy spent holding optical power nominal on an
    /// aged laser (zero at factor 1.0), joules.
    pub laser_compensation_j_per_frame: f64,
}

/// Process-wide (network fingerprint, effective bits) → top-1 memo. The
/// proxy measurement behind it is a pure function of its inputs, so the
/// cache is bit-identical regardless of how many threads race to fill it:
/// every writer computes the same value.
fn memoized_top1(fingerprint: u64, bits: u8) -> f64 {
    static CACHE: OnceLock<Mutex<HashMap<(u64, u8), f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&top1) = cache
        .lock()
        .expect("accuracy memo lock")
        .get(&(fingerprint, bits))
    {
        return top1;
    }
    // Measure outside the lock: the first call trains the proxy ladder.
    let top1 = pcnna_cnn::train::quantized_top1(bits);
    cache
        .lock()
        .expect("accuracy memo lock")
        .insert((fingerprint, bits), top1);
    top1
}

/// A process-local fingerprint of a layer stack (names + geometry), the
/// memo key for accuracy quotes — the analogue of the fleet's first-seen
/// quote dedupe.
fn network_fingerprint(layers: &[(&str, ConvGeometry)]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for (name, g) in layers {
        name.hash(&mut hasher);
        format!("{g:?}").hash(&mut hasher);
    }
    hasher.finish()
}

/// Prices the accuracy axis for `layers` on `config` under `health`.
///
/// The chain is SNR → effective bits → measured top-1:
///
/// 1. Nominal hardware anchors at the ADC's effective resolution
///    ([`AdcModel::effective_bits`], ~8 ENOB for the paper's 10-bit
///    converter), i.e. `6.02·ENOB + 1.76` dB of electrical SNR.
/// 2. [`health_snr_penalty_db`] discounts that for thermal detuning,
///    laser aging, and dead-channel crosstalk.
/// 3. An aged laser additionally *underutilizes* the converters' fixed
///    full scale: the attenuated analog signal spans only `factor`× the
///    ADC range, wasting `log2(1/factor)` codes on headroom that carries
///    no signal — a resolution loss on top of the SNR loss.
/// 4. The effective width (floored, clamped to `[1, nominal]`) indexes
///    the measured proxy ladder in [`pcnna_cnn::train::quantized_top1`].
///
/// Monotone non-increasing under any worsening of `health`, and exactly
/// the pristine quote at [`HealthState::nominal`].
///
/// [`AdcModel::effective_bits`]: pcnna_electronics::adc::AdcModel::effective_bits
fn accuracy_quote(
    config: &PcnnaConfig,
    layers: &[(&str, ConvGeometry)],
    health: &HealthState,
) -> AccuracyQuote {
    let nominal_bits = config.adc.effective_bits();
    let nominal_snr_db = 6.02 * f64::from(nominal_bits) + 1.76;
    let penalty_db = health_snr_penalty_db(health);
    let snr_db = nominal_snr_db + penalty_db;
    let range_bits = health.laser_power_factor.max(1e-9).log2().min(0.0);
    let enob = f64::from(nominal_bits) + penalty_db / 6.02 + range_bits;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let effective_bits = enob.floor().clamp(1.0, f64::from(nominal_bits)) as u8;
    let fingerprint = network_fingerprint(layers);
    AccuracyQuote {
        snr_db,
        effective_bits,
        top1_accuracy: memoized_top1(fingerprint, effective_bits),
        pristine_accuracy: memoized_top1(fingerprint, nominal_bits),
    }
}

/// The time/energy terms for `layers` on `config`, with the accuracy
/// field priced at nominal health for this config.
///
/// The time terms are extracted from the batched execution model by
/// evaluating it at batch sizes 1 and 2 (the model is affine in the batch,
/// so this recovers intercept and slope exactly, and stays correct if the
/// underlying model gains terms later). Energy combines the per-layer
/// [`PowerModel`] ledgers with the weight-DAC energy of the reprogramming
/// phase.
fn raw_quote(
    config: &PcnnaConfig,
    assumptions: &PowerAssumptions,
    layers: &[(&str, ConvGeometry)],
) -> Result<ServiceQuote> {
    let exec = ExecutionModel::new(*config)?;
    let b1 = exec.run_batched(layers, 1)?;
    let b2 = exec.run_batched(layers, 2)?;
    let per_frame = b2.total.saturating_sub(b1.total);
    let weight_load = b1.total.saturating_sub(per_frame);

    // Price per-frame energy at the *marginal* frame time. The power model
    // integrates power over `full_system_time`, which folds the weight-load
    // window in when `include_weight_load` is set — that window is already
    // billed separately below, once per batch, so force it out of the
    // per-frame term to avoid double-counting it `batch` times.
    let energy_config = PcnnaConfig {
        include_weight_load: false,
        ..*config
    };
    let power = PowerModel::new(energy_config, *assumptions)?;
    let per_frame_energy_j: f64 = power
        .network_power(layers)?
        .iter()
        .map(|lp| lp.energy.total_j())
        .sum();
    // The reprogramming phase keeps the weight DAC(s) streaming set points
    // for the whole weight_load window.
    let weight_load_energy_j =
        config.input_dac.power_w * config.n_weight_dacs as f64 * weight_load.as_secs_f64();

    Ok(ServiceQuote {
        weight_load,
        per_frame,
        weight_load_energy_j,
        per_frame_energy_j,
        accuracy: accuracy_quote(config, layers, &HealthState::nominal()),
    })
}

/// The unified quote entry point: prices `request.layers` on
/// `request.config` under `request.health`, on both the time/energy and
/// accuracy axes.
///
/// The degradation maps onto the quote as:
///
/// * **Dead converter channels** shrink the effective `n_input_dacs` /
///   `n_adcs`, so the per-frame time (and the per-frame converter
///   energy, priced at the longer execution) rises — the quote is
///   re-run through the full execution model on the surviving-channel
///   config, not scaled.
/// * **Laser aging** costs energy, not time: the bias current is
///   raised to hold optical power (and thus SNR) at nominal, so each
///   frame carries an extra `(1/factor − 1) ×` the layer's laser
///   energy. What compensation cannot restore — converter full-scale
///   utilization — shows up on the accuracy axis instead.
/// * **Every health axis** discounts the [`AccuracyQuote`]: SNR → fewer
///   effective bits → lower measured top-1.
/// * **Thermal drift** beyond `limits` (or a laser below its floor)
///   means the programmed weights — or the SNR — are wrong: no quote
///   exists and the device must recalibrate. That, and losing the last
///   converter channel, returns `Ok(None)` (infeasible), which a fleet
///   treats as "this instance cannot serve until repaired".
///
/// With a nominal health snapshot the result is bit-identical to the
/// legacy [`quote`] (and the degraded path to [`quote_degraded`]) — the
/// pinned contract that keeps the fleet oracle and control-policy
/// regression artifacts byte-stable.
///
/// # Errors
///
/// Propagates configuration and per-layer resource failures from the
/// core models.
pub fn service_quote(request: &QuoteRequest) -> Result<Option<DegradedQuote>> {
    if !request.health.serviceable(&request.limits) {
        return Ok(None);
    }
    let effective_input_dacs = request
        .config
        .n_input_dacs
        .saturating_sub(request.health.dead_input_channels);
    let effective_adcs = request
        .config
        .n_adcs
        .saturating_sub(request.health.dead_output_channels);
    if effective_input_dacs == 0 || effective_adcs == 0 {
        return Ok(None);
    }
    let degraded = request
        .config
        .with_input_dacs(effective_input_dacs)
        .with_adcs(effective_adcs);
    let mut q = raw_quote(&degraded, request.assumptions, request.layers)?;

    // Laser compensation: holding the emitted power at nominal on a
    // diode whose wall-plug efficiency has slid to `factor` multiplies
    // the lasers' electrical draw by 1/factor. Only the laser share of
    // the per-frame energy scales — converters and DRAM don't care.
    let mut laser_compensation_j_per_frame = 0.0;
    if request.health.laser_power_factor < 1.0 {
        let power = PowerModel::new(
            PcnnaConfig {
                include_weight_load: false,
                ..degraded
            },
            *request.assumptions,
        )?;
        let laser_j_per_frame: f64 = power
            .network_power(request.layers)?
            .iter()
            .map(|lp| lp.photonic.lasers_w * lp.exec_seconds)
            .sum();
        laser_compensation_j_per_frame =
            laser_j_per_frame * (1.0 / request.health.laser_power_factor - 1.0);
        q.per_frame_energy_j += laser_compensation_j_per_frame;
    }

    q.accuracy = accuracy_quote(request.config, request.layers, &request.health);

    Ok(Some(DegradedQuote {
        quote: q,
        effective_input_dacs,
        effective_adcs,
        laser_compensation_j_per_frame,
    }))
}

/// Computes the [`ServiceQuote`] for `layers` on nominal hardware.
///
/// # Errors
///
/// Propagates configuration and per-layer resource failures.
#[deprecated(
    note = "use service_quote(&QuoteRequest::new(config, assumptions, layers)) — the unified entry point"
)]
pub fn quote(
    config: &PcnnaConfig,
    assumptions: &PowerAssumptions,
    layers: &[(&str, ConvGeometry)],
) -> Result<ServiceQuote> {
    config.validate()?;
    Ok(
        service_quote(&QuoteRequest::new(config, assumptions, layers))?
            .expect("nominal hardware on a valid config is always serviceable")
            .quote,
    )
}

/// Re-derives the [`ServiceQuote`] for `layers` on `config` under a
/// degraded [`HealthState`].
///
/// # Errors
///
/// Propagates configuration and per-layer resource failures from the
/// core models (same failure surface as [`service_quote`]).
#[deprecated(
    note = "use service_quote(&QuoteRequest::new(..).with_health(..).with_limits(..)) — the unified entry point"
)]
pub fn quote_degraded(
    config: &PcnnaConfig,
    assumptions: &PowerAssumptions,
    layers: &[(&str, ConvGeometry)],
    health: &HealthState,
    limits: &DegradationLimits,
) -> Result<Option<DegradedQuote>> {
    service_quote(
        &QuoteRequest::new(config, assumptions, layers)
            .with_health(*health)
            .with_limits(*limits),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    fn nominal(layers: &[(&str, ConvGeometry)]) -> ServiceQuote {
        let cfg = PcnnaConfig::default();
        service_quote(&QuoteRequest::new(
            &cfg,
            &PowerAssumptions::default(),
            layers,
        ))
        .unwrap()
        .expect("nominal hardware is serviceable")
        .quote
    }

    #[test]
    fn quote_matches_batched_execution_exactly() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let q = nominal(&layers);
        let exec = ExecutionModel::new(cfg).unwrap();
        for batch in [1u64, 2, 7, 64, 1024] {
            let direct = exec.run_batched(&layers, batch).unwrap();
            assert_eq!(q.batch_service_time(batch), direct.total, "batch {batch}");
        }
    }

    #[test]
    fn quote_terms_are_positive_for_alexnet() {
        let q = nominal(&zoo::alexnet_conv_layers());
        assert!(q.weight_load > SimTime::ZERO);
        assert!(q.per_frame > SimTime::ZERO);
        assert!(q.weight_load_energy_j > 0.0);
        assert!(q.per_frame_energy_j > 0.0);
        assert!(q.accuracy.top1_accuracy > 0.0);
        assert!(q.accuracy.effective_bits >= 1);
    }

    #[test]
    fn batching_amortizes_weight_load_in_quote() {
        let q = nominal(&zoo::alexnet_conv_layers());
        assert!(q.throughput_fps(64) > q.throughput_fps(1));
        assert!(q.throughput_fps(1024) > q.throughput_fps(64));
        // energy per frame also amortizes
        let e1 = q.batch_energy_j(1);
        let e64 = q.batch_energy_j(64) / 64.0;
        assert!(e64 < e1);
    }

    #[test]
    fn per_frame_energy_excludes_weight_load_regardless_of_config() {
        // With include_weight_load set, full_system_time folds the reload
        // window in; the quote must still bill that window once per batch,
        // not once per frame.
        let layers = zoo::alexnet_conv_layers();
        let without = nominal(&layers);
        let cfg = PcnnaConfig {
            include_weight_load: true,
            ..PcnnaConfig::default()
        };
        let with = service_quote(&QuoteRequest::new(
            &cfg,
            &PowerAssumptions::default(),
            &layers,
        ))
        .unwrap()
        .unwrap()
        .quote;
        assert_eq!(with.per_frame_energy_j, without.per_frame_energy_j);
        assert_eq!(with.weight_load_energy_j, without.weight_load_energy_j);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_are_bit_identical_to_the_unified_path() {
        // The pinned API-redesign contract: the legacy entry points and
        // the unified QuoteRequest path produce byte-identical quotes, so
        // the fleet oracle and Hold-policy regression artifacts cannot
        // move.
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let assumptions = PowerAssumptions::default();
        let unified = service_quote(&QuoteRequest::new(&cfg, &assumptions, &layers))
            .unwrap()
            .unwrap();
        let legacy_plain = quote(&cfg, &assumptions, &layers).unwrap();
        assert_eq!(unified.quote, legacy_plain);

        for health in [
            HealthState::nominal(),
            HealthState {
                ambient_delta_k: 0.15,
                laser_power_factor: 0.8,
                dead_input_channels: 2,
                dead_output_channels: 1,
            },
            HealthState {
                ambient_delta_k: 9.0, // unserviceable
                ..HealthState::nominal()
            },
        ] {
            let legacy = quote_degraded(
                &cfg,
                &assumptions,
                &layers,
                &health,
                &DegradationLimits::default(),
            )
            .unwrap();
            let via_request =
                service_quote(&QuoteRequest::new(&cfg, &assumptions, &layers).with_health(health))
                    .unwrap();
            assert_eq!(legacy, via_request);
        }
    }

    #[test]
    fn nominal_health_quotes_bit_identically() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let plain = nominal(&layers);
        let degraded = service_quote(
            &QuoteRequest::new(&cfg, &PowerAssumptions::default(), &layers)
                .with_health(HealthState::nominal()),
        )
        .unwrap()
        .expect("nominal hardware is serviceable");
        assert_eq!(degraded.quote, plain);
        assert_eq!(degraded.effective_input_dacs, cfg.n_input_dacs);
        assert_eq!(degraded.effective_adcs, cfg.n_adcs);
        assert_eq!(degraded.laser_compensation_j_per_frame, 0.0);
    }

    #[test]
    fn dead_channels_slow_the_quote_down() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let healthy = nominal(&layers);
        let half = service_quote(
            &QuoteRequest::new(&cfg, &PowerAssumptions::default(), &layers).with_health(
                HealthState {
                    dead_input_channels: 5,
                    ..HealthState::nominal()
                },
            ),
        )
        .unwrap()
        .unwrap();
        assert_eq!(half.effective_input_dacs, 5);
        assert!(
            half.quote.per_frame > healthy.per_frame,
            "losing half the input DACs must lengthen the frame time"
        );
        // matches an explicit re-quote of the surviving-channel config —
        // on the time/energy axes; the accuracy axis sees the dead
        // channels' crosstalk, which a clean 5-DAC config doesn't have
        let explicit = service_quote(&QuoteRequest::new(
            &cfg.with_input_dacs(5),
            &PowerAssumptions::default(),
            &layers,
        ))
        .unwrap()
        .unwrap()
        .quote;
        assert_eq!(half.quote.weight_load, explicit.weight_load);
        assert_eq!(half.quote.per_frame, explicit.per_frame);
        assert_eq!(
            half.quote.weight_load_energy_j,
            explicit.weight_load_energy_j
        );
        assert_eq!(half.quote.per_frame_energy_j, explicit.per_frame_energy_j);
        assert!(half.quote.accuracy.snr_db < explicit.accuracy.snr_db);
    }

    #[test]
    fn laser_aging_costs_energy_not_time() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let healthy = nominal(&layers);
        let aged = service_quote(
            &QuoteRequest::new(&cfg, &PowerAssumptions::default(), &layers).with_health(
                HealthState {
                    laser_power_factor: 0.5,
                    ..HealthState::nominal()
                },
            ),
        )
        .unwrap()
        .unwrap();
        assert_eq!(aged.quote.per_frame, healthy.per_frame, "time unchanged");
        assert_eq!(aged.quote.weight_load, healthy.weight_load);
        assert!(aged.laser_compensation_j_per_frame > 0.0);
        assert!(
            aged.quote.per_frame_energy_j > healthy.per_frame_energy_j,
            "holding SNR on an aged laser must cost energy"
        );
        assert!(
            (aged.quote.per_frame_energy_j
                - healthy.per_frame_energy_j
                - aged.laser_compensation_j_per_frame)
                .abs()
                < 1e-15,
            "the delta is exactly the reported compensation"
        );
        // compensation holds the power but not the converter utilization:
        // the accuracy axis still pays
        assert!(aged.quote.accuracy.effective_bits < healthy.accuracy.effective_bits);
    }

    #[test]
    fn infeasible_degradations_return_none() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let q = |health: HealthState| {
            service_quote(
                &QuoteRequest::new(&cfg, &PowerAssumptions::default(), &layers).with_health(health),
            )
            .unwrap()
        };
        let limits = DegradationLimits::default();
        // thermal drift past the budget: weights are wrong
        assert!(q(HealthState {
            ambient_delta_k: limits.max_ambient_excursion_k * 2.0,
            ..HealthState::nominal()
        })
        .is_none());
        // laser below the SNR floor
        assert!(q(HealthState {
            laser_power_factor: limits.min_laser_power_factor * 0.5,
            ..HealthState::nominal()
        })
        .is_none());
        // every input channel dead
        assert!(q(HealthState {
            dead_input_channels: cfg.n_input_dacs,
            ..HealthState::nominal()
        })
        .is_none());
        // every output channel dead (even overshooting the count)
        assert!(q(HealthState {
            dead_output_channels: cfg.n_adcs + 7,
            ..HealthState::nominal()
        })
        .is_none());
    }

    #[test]
    fn empty_network_quotes_zero() {
        let q = nominal(&[]);
        assert_eq!(q.weight_load, SimTime::ZERO);
        assert_eq!(q.per_frame, SimTime::ZERO);
        assert_eq!(q.batch_energy_j(10), 0.0);
    }

    #[test]
    fn accuracy_equals_pristine_at_nominal_health() {
        let q = nominal(&zoo::alexnet_conv_layers());
        assert_eq!(q.accuracy.top1_accuracy, q.accuracy.pristine_accuracy);
        assert_eq!(
            q.accuracy.effective_bits,
            PcnnaConfig::default().adc.effective_bits()
        );
        assert_eq!(q.accuracy.snr_db, 6.02 * 8.0 + 1.76);
    }

    #[test]
    fn accuracy_is_monotone_under_worsening_health() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let assumptions = PowerAssumptions::default();
        // a loose envelope so every rung stays serviceable
        let limits = DegradationLimits {
            max_ambient_excursion_k: 10.0,
            min_laser_power_factor: 0.01,
        };
        let acc = |health: HealthState| {
            service_quote(
                &QuoteRequest::new(&cfg, &assumptions, &layers)
                    .with_health(health)
                    .with_limits(limits),
            )
            .unwrap()
            .expect("serviceable under the loose envelope")
            .quote
            .accuracy
        };
        // drift axis
        let mut prev = acc(HealthState::nominal());
        for i in 1..=8 {
            let now = acc(HealthState {
                ambient_delta_k: 0.25 * f64::from(i),
                ..HealthState::nominal()
            });
            assert!(now.top1_accuracy <= prev.top1_accuracy, "drift step {i}");
            assert!(now.effective_bits <= prev.effective_bits);
            assert!(now.snr_db < prev.snr_db);
            prev = now;
        }
        // laser axis
        prev = acc(HealthState::nominal());
        for i in 1..=9 {
            let now = acc(HealthState {
                laser_power_factor: 1.0 - 0.1 * f64::from(i),
                ..HealthState::nominal()
            });
            assert!(now.top1_accuracy <= prev.top1_accuracy, "laser step {i}");
            assert!(now.effective_bits <= prev.effective_bits);
            prev = now;
        }
        // dead-channel axis
        prev = acc(HealthState::nominal());
        for i in 1..=6usize {
            let now = acc(HealthState {
                dead_input_channels: i,
                dead_output_channels: i / 2,
                ..HealthState::nominal()
            });
            assert!(now.top1_accuracy <= prev.top1_accuracy, "dead step {i}");
            assert!(now.effective_bits <= prev.effective_bits);
            prev = now;
        }
    }

    #[test]
    fn heavy_degradation_costs_real_accuracy() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let loose = DegradationLimits {
            max_ambient_excursion_k: 2.0,
            min_laser_power_factor: 0.1,
        };
        let hot = service_quote(
            &QuoteRequest::new(&cfg, &PowerAssumptions::default(), &layers)
                .with_health(HealthState {
                    ambient_delta_k: 1.0,
                    ..HealthState::nominal()
                })
                .with_limits(loose),
        )
        .unwrap()
        .unwrap()
        .quote
        .accuracy;
        assert!(
            hot.top1_accuracy < hot.pristine_accuracy - 0.05,
            "1 K of uncompensated drift should visibly cost top-1: {} vs {}",
            hot.top1_accuracy,
            hot.pristine_accuracy
        );
    }

    #[test]
    fn accuracy_memo_is_bit_identical_across_threads() {
        let layers = zoo::alexnet_conv_layers();
        let healths = [
            HealthState::nominal(),
            HealthState {
                ambient_delta_k: 0.6,
                ..HealthState::nominal()
            },
            HealthState {
                laser_power_factor: 0.35,
                ..HealthState::nominal()
            },
        ];
        let run = move || {
            let cfg = PcnnaConfig::default();
            healths
                .iter()
                .map(|h| accuracy_quote(&cfg, &zoo::alexnet_conv_layers(), h))
                .collect::<Vec<_>>()
        };
        let baseline = {
            let cfg = PcnnaConfig::default();
            healths
                .iter()
                .map(|h| accuracy_quote(&cfg, &layers, h))
                .collect::<Vec<_>>()
        };
        let handles: Vec<_> = (0..8).map(|_| std::thread::spawn(run)).collect();
        for handle in handles {
            let got = handle.join().expect("worker thread");
            for (a, b) in got.iter().zip(&baseline) {
                assert_eq!(a.snr_db.to_bits(), b.snr_db.to_bits());
                assert_eq!(a.effective_bits, b.effective_bits);
                assert_eq!(a.top1_accuracy.to_bits(), b.top1_accuracy.to_bits());
                assert_eq!(a.pristine_accuracy.to_bits(), b.pristine_accuracy.to_bits());
            }
        }
    }
}
