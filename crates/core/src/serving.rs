//! Serving-oriented execution summaries (reproduction extension).
//!
//! The fleet simulator (`pcnna-fleet`) replays millions of requests against
//! a pool of PCNNA instances. Re-running
//! [`AnalyticalModel`](crate::analytical::AnalyticalModel) per request
//! would dominate the simulation, so this module collapses a whole network
//! on a given [`PcnnaConfig`] into a [`ServiceQuote`] — the affine
//! batch-cost model
//!
//! ```text
//! service_time(batch)  = weight_load + batch · per_frame
//! service_energy(batch) = weight_load_energy + batch · per_frame_energy
//! ```
//!
//! which is exact for the layer-major batched execution of
//! [`ExecutionModel::run_batched`]: per batch, each layer programs its MRR
//! weights once (the single weight-DAC bottleneck the paper describes) and
//! then streams every frame through. A quote is computed once per
//! (network, config) pair and is `Copy`, so a scheduler hot loop prices a
//! candidate batch with two multiply-adds and no allocation.

use crate::config::PcnnaConfig;
use crate::execution::ExecutionModel;
use crate::power::{PowerAssumptions, PowerModel};
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// The affine time/energy cost of serving one network on one config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceQuote {
    /// One-time cost per batch: reprogramming every layer's MRR bank
    /// through the weight DAC(s).
    pub weight_load: SimTime,
    /// Marginal cost per frame in the batch (compute + DRAM writeback).
    pub per_frame: SimTime,
    /// Energy of the per-batch weight reprogramming, joules.
    pub weight_load_energy_j: f64,
    /// Marginal energy per frame, joules (converters, DRAM, photonics at
    /// the analytical execution time).
    pub per_frame_energy_j: f64,
}

impl ServiceQuote {
    /// Service time for a batch of `batch` frames.
    #[must_use]
    pub fn batch_service_time(&self, batch: u64) -> SimTime {
        self.weight_load + self.per_frame.saturating_mul(batch)
    }

    /// Energy to serve a batch of `batch` frames, joules.
    #[must_use]
    pub fn batch_energy_j(&self, batch: u64) -> f64 {
        self.weight_load_energy_j + batch as f64 * self.per_frame_energy_j
    }

    /// Steady-state frames/second at a given batch size.
    #[must_use]
    pub fn throughput_fps(&self, batch: u64) -> f64 {
        let secs = self.batch_service_time(batch).as_secs_f64();
        if secs > 0.0 {
            batch as f64 / secs
        } else {
            0.0
        }
    }
}

/// Computes the [`ServiceQuote`] for `layers` on `config`.
///
/// The time terms are extracted from the batched execution model by
/// evaluating it at batch sizes 1 and 2 (the model is affine in the batch,
/// so this recovers intercept and slope exactly, and stays correct if the
/// underlying model gains terms later). Energy combines the per-layer
/// [`PowerModel`] ledgers with the weight-DAC energy of the reprogramming
/// phase.
///
/// # Errors
///
/// Propagates configuration and per-layer resource failures.
pub fn quote(
    config: &PcnnaConfig,
    assumptions: &PowerAssumptions,
    layers: &[(&str, ConvGeometry)],
) -> Result<ServiceQuote> {
    let exec = ExecutionModel::new(*config)?;
    let b1 = exec.run_batched(layers, 1)?;
    let b2 = exec.run_batched(layers, 2)?;
    let per_frame = b2.total.saturating_sub(b1.total);
    let weight_load = b1.total.saturating_sub(per_frame);

    // Price per-frame energy at the *marginal* frame time. The power model
    // integrates power over `full_system_time`, which folds the weight-load
    // window in when `include_weight_load` is set — that window is already
    // billed separately below, once per batch, so force it out of the
    // per-frame term to avoid double-counting it `batch` times.
    let energy_config = PcnnaConfig {
        include_weight_load: false,
        ..*config
    };
    let power = PowerModel::new(energy_config, *assumptions)?;
    let per_frame_energy_j: f64 = power
        .network_power(layers)?
        .iter()
        .map(|lp| lp.energy.total_j())
        .sum();
    // The reprogramming phase keeps the weight DAC(s) streaming set points
    // for the whole weight_load window.
    let weight_load_energy_j =
        config.input_dac.power_w * config.n_weight_dacs as f64 * weight_load.as_secs_f64();

    Ok(ServiceQuote {
        weight_load,
        per_frame,
        weight_load_energy_j,
        per_frame_energy_j,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    #[test]
    fn quote_matches_batched_execution_exactly() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let q = quote(&cfg, &PowerAssumptions::default(), &layers).unwrap();
        let exec = ExecutionModel::new(cfg).unwrap();
        for batch in [1u64, 2, 7, 64, 1024] {
            let direct = exec.run_batched(&layers, batch).unwrap();
            assert_eq!(q.batch_service_time(batch), direct.total, "batch {batch}");
        }
    }

    #[test]
    fn quote_terms_are_positive_for_alexnet() {
        let q = quote(
            &PcnnaConfig::default(),
            &PowerAssumptions::default(),
            &zoo::alexnet_conv_layers(),
        )
        .unwrap();
        assert!(q.weight_load > SimTime::ZERO);
        assert!(q.per_frame > SimTime::ZERO);
        assert!(q.weight_load_energy_j > 0.0);
        assert!(q.per_frame_energy_j > 0.0);
    }

    #[test]
    fn batching_amortizes_weight_load_in_quote() {
        let q = quote(
            &PcnnaConfig::default(),
            &PowerAssumptions::default(),
            &zoo::alexnet_conv_layers(),
        )
        .unwrap();
        assert!(q.throughput_fps(64) > q.throughput_fps(1));
        assert!(q.throughput_fps(1024) > q.throughput_fps(64));
        // energy per frame also amortizes
        let e1 = q.batch_energy_j(1);
        let e64 = q.batch_energy_j(64) / 64.0;
        assert!(e64 < e1);
    }

    #[test]
    fn per_frame_energy_excludes_weight_load_regardless_of_config() {
        // With include_weight_load set, full_system_time folds the reload
        // window in; the quote must still bill that window once per batch,
        // not once per frame.
        let layers = zoo::alexnet_conv_layers();
        let without = quote(
            &PcnnaConfig::default(),
            &PowerAssumptions::default(),
            &layers,
        )
        .unwrap();
        let with = quote(
            &PcnnaConfig {
                include_weight_load: true,
                ..PcnnaConfig::default()
            },
            &PowerAssumptions::default(),
            &layers,
        )
        .unwrap();
        assert_eq!(with.per_frame_energy_j, without.per_frame_energy_j);
        assert_eq!(with.weight_load_energy_j, without.weight_load_energy_j);
    }

    #[test]
    fn empty_network_quotes_zero() {
        let q = quote(&PcnnaConfig::default(), &PowerAssumptions::default(), &[]).unwrap();
        assert_eq!(q.weight_load, SimTime::ZERO);
        assert_eq!(q.per_frame, SimTime::ZERO);
        assert_eq!(q.batch_energy_j(10), 0.0);
    }
}
