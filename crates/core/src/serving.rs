//! Serving-oriented execution summaries (reproduction extension).
//!
//! The fleet simulator (`pcnna-fleet`) replays millions of requests against
//! a pool of PCNNA instances. Re-running
//! [`AnalyticalModel`](crate::analytical::AnalyticalModel) per request
//! would dominate the simulation, so this module collapses a whole network
//! on a given [`PcnnaConfig`] into a [`ServiceQuote`] — the affine
//! batch-cost model
//!
//! ```text
//! service_time(batch)  = weight_load + batch · per_frame
//! service_energy(batch) = weight_load_energy + batch · per_frame_energy
//! ```
//!
//! which is exact for the layer-major batched execution of
//! [`ExecutionModel::run_batched`]: per batch, each layer programs its MRR
//! weights once (the single weight-DAC bottleneck the paper describes) and
//! then streams every frame through. A quote is computed once per
//! (network, config) pair and is `Copy`, so a scheduler hot loop prices a
//! candidate batch with two multiply-adds and no allocation.

use crate::config::PcnnaConfig;
use crate::execution::ExecutionModel;
use crate::power::{PowerAssumptions, PowerModel};
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use pcnna_photonics::degradation::{DegradationLimits, HealthState};
use serde::{Deserialize, Serialize};

/// The affine time/energy cost of serving one network on one config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceQuote {
    /// One-time cost per batch: reprogramming every layer's MRR bank
    /// through the weight DAC(s).
    pub weight_load: SimTime,
    /// Marginal cost per frame in the batch (compute + DRAM writeback).
    pub per_frame: SimTime,
    /// Energy of the per-batch weight reprogramming, joules.
    pub weight_load_energy_j: f64,
    /// Marginal energy per frame, joules (converters, DRAM, photonics at
    /// the analytical execution time).
    pub per_frame_energy_j: f64,
}

impl ServiceQuote {
    /// Service time for a batch of `batch` frames.
    #[must_use]
    pub fn batch_service_time(&self, batch: u64) -> SimTime {
        self.weight_load + self.per_frame.saturating_mul(batch)
    }

    /// Energy to serve a batch of `batch` frames, joules.
    #[must_use]
    pub fn batch_energy_j(&self, batch: u64) -> f64 {
        self.weight_load_energy_j + batch as f64 * self.per_frame_energy_j
    }

    /// Steady-state frames/second at a given batch size.
    #[must_use]
    pub fn throughput_fps(&self, batch: u64) -> f64 {
        let secs = self.batch_service_time(batch).as_secs_f64();
        if secs > 0.0 {
            batch as f64 / secs
        } else {
            0.0
        }
    }
}

/// Computes the [`ServiceQuote`] for `layers` on `config`.
///
/// The time terms are extracted from the batched execution model by
/// evaluating it at batch sizes 1 and 2 (the model is affine in the batch,
/// so this recovers intercept and slope exactly, and stays correct if the
/// underlying model gains terms later). Energy combines the per-layer
/// [`PowerModel`] ledgers with the weight-DAC energy of the reprogramming
/// phase.
///
/// # Errors
///
/// Propagates configuration and per-layer resource failures.
pub fn quote(
    config: &PcnnaConfig,
    assumptions: &PowerAssumptions,
    layers: &[(&str, ConvGeometry)],
) -> Result<ServiceQuote> {
    let exec = ExecutionModel::new(*config)?;
    let b1 = exec.run_batched(layers, 1)?;
    let b2 = exec.run_batched(layers, 2)?;
    let per_frame = b2.total.saturating_sub(b1.total);
    let weight_load = b1.total.saturating_sub(per_frame);

    // Price per-frame energy at the *marginal* frame time. The power model
    // integrates power over `full_system_time`, which folds the weight-load
    // window in when `include_weight_load` is set — that window is already
    // billed separately below, once per batch, so force it out of the
    // per-frame term to avoid double-counting it `batch` times.
    let energy_config = PcnnaConfig {
        include_weight_load: false,
        ..*config
    };
    let power = PowerModel::new(energy_config, *assumptions)?;
    let per_frame_energy_j: f64 = power
        .network_power(layers)?
        .iter()
        .map(|lp| lp.energy.total_j())
        .sum();
    // The reprogramming phase keeps the weight DAC(s) streaming set points
    // for the whole weight_load window.
    let weight_load_energy_j =
        config.input_dac.power_w * config.n_weight_dacs as f64 * weight_load.as_secs_f64();

    Ok(ServiceQuote {
        weight_load,
        per_frame,
        weight_load_energy_j,
        per_frame_energy_j,
    })
}

/// A quote re-derived for degraded hardware, with the derivation's
/// provenance alongside (what capacity survived and what the laser
/// compensation costs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedQuote {
    /// The re-derived affine cost model (already includes the laser
    /// compensation energy).
    pub quote: ServiceQuote,
    /// Input-DAC channels still alive.
    pub effective_input_dacs: usize,
    /// Output-ADC channels still alive.
    pub effective_adcs: usize,
    /// Extra per-frame energy spent holding optical power nominal on an
    /// aged laser (zero at factor 1.0), joules.
    pub laser_compensation_j_per_frame: f64,
}

/// Re-derives the [`ServiceQuote`] for `layers` on `config` under a
/// degraded [`HealthState`].
///
/// The degradation maps onto the quote as:
///
/// * **Dead converter channels** shrink the effective `n_input_dacs` /
///   `n_adcs`, so the per-frame time (and the per-frame converter
///   energy, priced at the longer execution) rises — the quote is
///   re-run through the full execution model on the surviving-channel
///   config, not scaled.
/// * **Laser aging** costs energy, not time: the bias current is
///   raised to hold optical power (and thus SNR) at nominal, so each
///   frame carries an extra `(1/factor − 1) ×` the layer's laser
///   energy.
/// * **Thermal drift** beyond `limits` (or a laser below its floor)
///   means the programmed weights — or the SNR — are wrong: no quote
///   exists and the device must recalibrate. That, and losing the last
///   converter channel, returns `Ok(None)` (infeasible), which a fleet
///   treats as "this instance cannot serve until repaired".
///
/// With a nominal health snapshot the result is bit-identical to
/// [`quote`].
///
/// # Errors
///
/// Propagates configuration and per-layer resource failures from the
/// core models (same failure surface as [`quote`]).
pub fn quote_degraded(
    config: &PcnnaConfig,
    assumptions: &PowerAssumptions,
    layers: &[(&str, ConvGeometry)],
    health: &HealthState,
    limits: &DegradationLimits,
) -> Result<Option<DegradedQuote>> {
    if !health.serviceable(limits) {
        return Ok(None);
    }
    let effective_input_dacs = config
        .n_input_dacs
        .saturating_sub(health.dead_input_channels);
    let effective_adcs = config.n_adcs.saturating_sub(health.dead_output_channels);
    if effective_input_dacs == 0 || effective_adcs == 0 {
        return Ok(None);
    }
    let degraded = config
        .with_input_dacs(effective_input_dacs)
        .with_adcs(effective_adcs);
    let mut q = quote(&degraded, assumptions, layers)?;

    // Laser compensation: holding the emitted power at nominal on a
    // diode whose wall-plug efficiency has slid to `factor` multiplies
    // the lasers' electrical draw by 1/factor. Only the laser share of
    // the per-frame energy scales — converters and DRAM don't care.
    let mut laser_compensation_j_per_frame = 0.0;
    if health.laser_power_factor < 1.0 {
        let power = PowerModel::new(
            PcnnaConfig {
                include_weight_load: false,
                ..degraded
            },
            *assumptions,
        )?;
        let laser_j_per_frame: f64 = power
            .network_power(layers)?
            .iter()
            .map(|lp| lp.photonic.lasers_w * lp.exec_seconds)
            .sum();
        laser_compensation_j_per_frame =
            laser_j_per_frame * (1.0 / health.laser_power_factor - 1.0);
        q.per_frame_energy_j += laser_compensation_j_per_frame;
    }

    Ok(Some(DegradedQuote {
        quote: q,
        effective_input_dacs,
        effective_adcs,
        laser_compensation_j_per_frame,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    #[test]
    fn quote_matches_batched_execution_exactly() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let q = quote(&cfg, &PowerAssumptions::default(), &layers).unwrap();
        let exec = ExecutionModel::new(cfg).unwrap();
        for batch in [1u64, 2, 7, 64, 1024] {
            let direct = exec.run_batched(&layers, batch).unwrap();
            assert_eq!(q.batch_service_time(batch), direct.total, "batch {batch}");
        }
    }

    #[test]
    fn quote_terms_are_positive_for_alexnet() {
        let q = quote(
            &PcnnaConfig::default(),
            &PowerAssumptions::default(),
            &zoo::alexnet_conv_layers(),
        )
        .unwrap();
        assert!(q.weight_load > SimTime::ZERO);
        assert!(q.per_frame > SimTime::ZERO);
        assert!(q.weight_load_energy_j > 0.0);
        assert!(q.per_frame_energy_j > 0.0);
    }

    #[test]
    fn batching_amortizes_weight_load_in_quote() {
        let q = quote(
            &PcnnaConfig::default(),
            &PowerAssumptions::default(),
            &zoo::alexnet_conv_layers(),
        )
        .unwrap();
        assert!(q.throughput_fps(64) > q.throughput_fps(1));
        assert!(q.throughput_fps(1024) > q.throughput_fps(64));
        // energy per frame also amortizes
        let e1 = q.batch_energy_j(1);
        let e64 = q.batch_energy_j(64) / 64.0;
        assert!(e64 < e1);
    }

    #[test]
    fn per_frame_energy_excludes_weight_load_regardless_of_config() {
        // With include_weight_load set, full_system_time folds the reload
        // window in; the quote must still bill that window once per batch,
        // not once per frame.
        let layers = zoo::alexnet_conv_layers();
        let without = quote(
            &PcnnaConfig::default(),
            &PowerAssumptions::default(),
            &layers,
        )
        .unwrap();
        let with = quote(
            &PcnnaConfig {
                include_weight_load: true,
                ..PcnnaConfig::default()
            },
            &PowerAssumptions::default(),
            &layers,
        )
        .unwrap();
        assert_eq!(with.per_frame_energy_j, without.per_frame_energy_j);
        assert_eq!(with.weight_load_energy_j, without.weight_load_energy_j);
    }

    #[test]
    fn nominal_health_quotes_bit_identically() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let plain = quote(&cfg, &PowerAssumptions::default(), &layers).unwrap();
        let degraded = quote_degraded(
            &cfg,
            &PowerAssumptions::default(),
            &layers,
            &HealthState::nominal(),
            &DegradationLimits::default(),
        )
        .unwrap()
        .expect("nominal hardware is serviceable");
        assert_eq!(degraded.quote, plain);
        assert_eq!(degraded.effective_input_dacs, cfg.n_input_dacs);
        assert_eq!(degraded.effective_adcs, cfg.n_adcs);
        assert_eq!(degraded.laser_compensation_j_per_frame, 0.0);
    }

    #[test]
    fn dead_channels_slow_the_quote_down() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let limits = DegradationLimits::default();
        let healthy = quote(&cfg, &PowerAssumptions::default(), &layers).unwrap();
        let half = quote_degraded(
            &cfg,
            &PowerAssumptions::default(),
            &layers,
            &HealthState {
                dead_input_channels: 5,
                ..HealthState::nominal()
            },
            &limits,
        )
        .unwrap()
        .unwrap();
        assert_eq!(half.effective_input_dacs, 5);
        assert!(
            half.quote.per_frame > healthy.per_frame,
            "losing half the input DACs must lengthen the frame time"
        );
        // matches an explicit re-quote of the surviving-channel config
        let explicit = quote(
            &cfg.with_input_dacs(5),
            &PowerAssumptions::default(),
            &layers,
        )
        .unwrap();
        assert_eq!(half.quote, explicit);
    }

    #[test]
    fn laser_aging_costs_energy_not_time() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let limits = DegradationLimits::default();
        let healthy = quote(&cfg, &PowerAssumptions::default(), &layers).unwrap();
        let aged = quote_degraded(
            &cfg,
            &PowerAssumptions::default(),
            &layers,
            &HealthState {
                laser_power_factor: 0.5,
                ..HealthState::nominal()
            },
            &limits,
        )
        .unwrap()
        .unwrap();
        assert_eq!(aged.quote.per_frame, healthy.per_frame, "time unchanged");
        assert_eq!(aged.quote.weight_load, healthy.weight_load);
        assert!(aged.laser_compensation_j_per_frame > 0.0);
        assert!(
            aged.quote.per_frame_energy_j > healthy.per_frame_energy_j,
            "holding SNR on an aged laser must cost energy"
        );
        assert!(
            (aged.quote.per_frame_energy_j
                - healthy.per_frame_energy_j
                - aged.laser_compensation_j_per_frame)
                .abs()
                < 1e-15,
            "the delta is exactly the reported compensation"
        );
    }

    #[test]
    fn infeasible_degradations_return_none() {
        let cfg = PcnnaConfig::default();
        let layers = zoo::alexnet_conv_layers();
        let limits = DegradationLimits::default();
        let q = |health: &HealthState| {
            quote_degraded(&cfg, &PowerAssumptions::default(), &layers, health, &limits).unwrap()
        };
        // thermal drift past the budget: weights are wrong
        assert!(q(&HealthState {
            ambient_delta_k: limits.max_ambient_excursion_k * 2.0,
            ..HealthState::nominal()
        })
        .is_none());
        // laser below the SNR floor
        assert!(q(&HealthState {
            laser_power_factor: limits.min_laser_power_factor * 0.5,
            ..HealthState::nominal()
        })
        .is_none());
        // every input channel dead
        assert!(q(&HealthState {
            dead_input_channels: cfg.n_input_dacs,
            ..HealthState::nominal()
        })
        .is_none());
        // every output channel dead (even overshooting the count)
        assert!(q(&HealthState {
            dead_output_channels: cfg.n_adcs + 7,
            ..HealthState::nominal()
        })
        .is_none());
    }

    #[test]
    fn empty_network_quotes_zero() {
        let q = quote(&PcnnaConfig::default(), &PowerAssumptions::default(), &[]).unwrap();
        assert_eq!(q.weight_load, SimTime::ZERO);
        assert_eq!(q.per_frame, SimTime::ZERO);
        assert_eq!(q.batch_energy_j(10), 0.0);
    }
}
