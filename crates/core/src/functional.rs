//! Functional photonic inference: convolutions computed *through the device
//! models*.
//!
//! The paper never demonstrates that the broadcast-and-weight MAC computes
//! correct convolutions — it assumes so and evaluates ring counts and
//! timing. This module closes that gap: it maps a convolution layer onto a
//! [`BroadcastWeightLink`] (one WDM carrier per receptive-field value, one
//! calibrated MRR bank per kernel), drives every kernel location through the
//! analog datapath, and scores the resulting feature map against the
//! ground-truth reference convolution.
//!
//! ## Signed-value encoding
//!
//! Optical intensities are non-negative. Weights get their sign from
//! balanced detection (drop minus through). Inputs use *offset encoding*:
//! `x' = (x/xs + 1)/2 ∈ [0,1]`, with the electronic back end removing the
//! offset using the known per-bank weight sum:
//! `Σ w·x = xs·ws·(2·Σ wl·x' − Σ wl)`.

use crate::config::PcnnaConfig;
use crate::scheduler::LocationSchedule;
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_cnn::quantize::Quantizer;
use pcnna_cnn::reference;
use pcnna_cnn::tensor::Tensor;
use pcnna_photonics::link::BroadcastWeightLink;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Options for a functional run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FunctionalOptions {
    /// Sample stochastic noise (RIN, shot, thermal) per MAC evaluation.
    pub noise: bool,
    /// Quantize the digitized outputs with the configured ADC resolution.
    pub adc_quantization: bool,
    /// Quantize the DAC-driven inputs with the configured DAC resolution.
    pub dac_quantization: bool,
    /// RNG seed for noise sampling.
    pub seed: u64,
}

impl Default for FunctionalOptions {
    fn default() -> Self {
        FunctionalOptions {
            noise: false,
            adc_quantization: true,
            dac_quantization: true,
            seed: 0,
        }
    }
}

/// Error metrics of a photonic feature map against the reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Maximum absolute error.
    pub max_abs_error: f32,
    /// Root-mean-square error.
    pub rmse: f32,
    /// Reference signal RMS (for relative scaling).
    pub reference_rms: f32,
    /// Signal-to-error ratio in dB (`20·log10(ref_rms / rmse)`).
    pub snr_db: f32,
}

impl AccuracyReport {
    fn from_tensors(photonic: &Tensor, reference: &Tensor) -> Self {
        let rmse = photonic
            .rmse(reference)
            .expect("same shape by construction");
        let ref_rms = (reference.as_slice().iter().map(|v| v * v).sum::<f32>()
            / reference.len().max(1) as f32)
            .sqrt();
        let snr_db = if rmse > 0.0 {
            20.0 * (ref_rms / rmse).log10()
        } else {
            f32::INFINITY
        };
        AccuracyReport {
            max_abs_error: photonic
                .sub(reference)
                .expect("same shape by construction")
                .max_abs(),
            rmse,
            reference_rms: ref_rms,
            snr_db,
        }
    }
}

/// Result of running one conv layer through the photonic datapath.
#[derive(Debug, Clone)]
pub struct PhotonicConvResult {
    /// The photonic output feature map, `(k, o, o)`.
    pub output: Tensor,
    /// The reference output feature map.
    pub reference: Tensor,
    /// Error metrics.
    pub accuracy: AccuracyReport,
    /// Worst calibration residual across banks (logical weight units).
    pub worst_calibration_residual: f64,
}

/// Executes convolution layers through the photonic device models.
#[derive(Debug, Clone)]
pub struct PhotonicConvExecutor {
    config: PcnnaConfig,
}

impl PhotonicConvExecutor {
    /// Creates an executor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] for invalid configurations.
    pub fn new(config: PcnnaConfig) -> Result<Self> {
        config.validate()?;
        Ok(PhotonicConvExecutor { config })
    }

    /// Runs one layer: programs `kernels` into MRR banks, drives `input`
    /// location by location, digitizes, and compares with the reference.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the CNN substrate and device
    /// failures from the photonic substrate.
    pub fn run_layer(
        &self,
        g: &ConvGeometry,
        input: &Tensor,
        kernels: &Tensor,
        opts: &FunctionalOptions,
    ) -> Result<PhotonicConvResult> {
        let reference = reference::conv2d_direct(g, input, kernels)?;
        let channels = g.n_kernel() as usize;
        let k = g.kernels();

        // Normalisation scales; all-zero tensors normalise over unit scale
        // (everything downstream then sees zeros, which is exact).
        let x_scale = match f64::from(input.max_abs()) {
            s if s > 0.0 => s,
            _ => 1.0,
        };
        let w_scale = match f64::from(kernels.max_abs()) {
            s if s > 0.0 => s,
            _ => 1.0,
        };

        // Program one calibrated bank per kernel.
        let mut link = BroadcastWeightLink::new(self.config.link, channels, k)?;
        let mut weight_sums = Vec::with_capacity(k);
        let mut worst_residual = 0.0f64;
        let kdata = kernels.as_slice();
        for kk in 0..k {
            let logical: Vec<f64> = kdata[kk * channels..(kk + 1) * channels]
                .iter()
                .map(|&w| f64::from(w) / w_scale)
                .collect();
            link.set_weights(kk, &logical)?;
            if let Some(rep) = link.calibration_report(kk) {
                worst_residual = worst_residual.max(rep.residual / link.weight_scale());
            }
            weight_sums.push(logical.iter().sum::<f64>());
        }
        let compiled = link.compile();

        let dac_q = Quantizer::new(self.config.input_dac.bits, 1.0);
        let schedule = LocationSchedule::new(*g, self.config.scan);
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let o = g.output_side();
        let mut output = Tensor::zeros(&[k, o, o]);

        // Per-bank ADC full-scale range: the largest |dot| the bank can
        // produce given |x| ≤ x_scale (per-channel programmable gain).
        let adc_ranges: Vec<f32> = (0..k)
            .map(|kk| {
                let sum_abs: f64 = kdata[kk * channels..(kk + 1) * channels]
                    .iter()
                    .map(|&w| f64::from(w.abs()) / w_scale)
                    .sum();
                ((sum_abs.max(1e-9)) * x_scale * w_scale) as f32
            })
            .collect();

        for &loc in schedule.locations() {
            let field = reference::receptive_field(g, input, loc.oy, loc.ox)?;
            // Offset-encode into [0, 1] and apply DAC quantization.
            let encoded: Vec<f64> = field
                .iter()
                .map(|&v| {
                    let xn = (f64::from(v) / x_scale + 1.0) / 2.0;
                    if opts.dac_quantization {
                        f64::from(dac_q.quantize(xn as f32))
                    } else {
                        xn
                    }
                })
                .collect();
            let macs = if opts.noise {
                compiled.mac_noisy(&encoded, &mut rng)?
            } else {
                compiled.mac_ideal(&encoded)?
            };
            for (kk, &d) in macs.iter().enumerate() {
                // Remove the offset: Σ w·x = xs·ws·(2·Σ wl·x' − Σ wl).
                let mut value = (x_scale * w_scale * (2.0 * d - weight_sums[kk])) as f32;
                if opts.adc_quantization {
                    let q = Quantizer::new(self.config.adc.bits, adc_ranges[kk]);
                    value = q.quantize(value);
                }
                *output.at3_mut(kk, loc.oy, loc.ox) = value;
            }
        }

        let accuracy = AccuracyReport::from_tensors(&output, &reference);
        Ok(PhotonicConvResult {
            output,
            reference,
            accuracy,
            worst_calibration_residual: worst_residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::workload::Workload;

    fn executor() -> PhotonicConvExecutor {
        PhotonicConvExecutor::new(PcnnaConfig::default()).unwrap()
    }

    fn tiny() -> ConvGeometry {
        ConvGeometry::new(6, 3, 0, 1, 2, 3).unwrap()
    }

    #[test]
    fn ideal_run_tracks_reference_closely() {
        let g = tiny();
        let wl = Workload::uniform(&g, 5);
        let r = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
            .unwrap();
        assert_eq!(r.output.shape(), r.reference.shape());
        assert!(
            r.accuracy.snr_db > 25.0,
            "photonic conv SNR {} dB too low (rmse {})",
            r.accuracy.snr_db,
            r.accuracy.rmse
        );
    }

    #[test]
    fn noiseless_unquantized_is_even_closer() {
        let g = tiny();
        let wl = Workload::uniform(&g, 6);
        let opts = FunctionalOptions {
            adc_quantization: false,
            dac_quantization: false,
            ..FunctionalOptions::default()
        };
        let clean = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &opts)
            .unwrap();
        let quantized = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
            .unwrap();
        assert!(clean.accuracy.rmse <= quantized.accuracy.rmse * 1.5 + 1e-9);
        assert!(clean.accuracy.snr_db > 30.0);
    }

    #[test]
    fn noisy_run_is_worse_but_reasonable() {
        let g = tiny();
        let wl = Workload::uniform(&g, 7);
        let clean = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
            .unwrap();
        let noisy_opts = FunctionalOptions {
            noise: true,
            seed: 42,
            ..FunctionalOptions::default()
        };
        let noisy = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &noisy_opts)
            .unwrap();
        assert!(noisy.accuracy.rmse >= clean.accuracy.rmse);
        // 1 mW lasers keep the analog MAC usable.
        assert!(
            noisy.accuracy.snr_db > 15.0,
            "noisy SNR {} dB",
            noisy.accuracy.snr_db
        );
    }

    #[test]
    fn noise_is_reproducible_by_seed() {
        let g = tiny();
        let wl = Workload::uniform(&g, 8);
        let opts = FunctionalOptions {
            noise: true,
            seed: 9,
            ..FunctionalOptions::default()
        };
        let a = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &opts)
            .unwrap();
        let b = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &opts)
            .unwrap();
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn signed_inputs_are_handled_by_offset_encoding() {
        // Gaussian inputs are signed; offset encoding must still decode.
        let g = ConvGeometry::new(5, 3, 1, 2, 1, 2).unwrap();
        let wl = Workload::gaussian(&g, 11);
        let r = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
            .unwrap();
        assert!(r.accuracy.snr_db > 20.0, "SNR {}", r.accuracy.snr_db);
    }

    #[test]
    fn calibration_residual_reported() {
        let g = tiny();
        let wl = Workload::uniform(&g, 12);
        let r = executor()
            .run_layer(&g, &wl.input, &wl.kernels, &FunctionalOptions::default())
            .unwrap();
        assert!(r.worst_calibration_residual > 0.0);
        assert!(r.worst_calibration_residual < 0.05);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let g = tiny();
        let wl = Workload::uniform(&g, 13);
        let bad_input = Tensor::zeros(&[1, 6, 6]);
        assert!(executor()
            .run_layer(&g, &bad_input, &wl.kernels, &FunctionalOptions::default())
            .is_err());
    }

    #[test]
    fn accuracy_report_math() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let rep = AccuracyReport::from_tensors(&a, &b);
        assert_eq!(rep.max_abs_error, 0.0);
        assert!(rep.snr_db.is_infinite());
    }
}
