//! Channel tiling for layers that exceed the hardware budgets
//! (reproduction extension).
//!
//! The paper sizes PCNNA's SRAM so that a full receptive field fits
//! (`Nkernel ≤ 8192` words) — true for AlexNet, false for e.g. VGG-16's
//! 3·3·512 = 4608… which fits, but a hypothetical deeper layer or the
//! spectral budgets of [`crate::feasibility`] may not. Rather than reject
//! such layers, a real system would *tile the channel dimension*: split the
//! `nc` input channels into groups small enough to satisfy every budget,
//! run one optical pass per group, and accumulate the partial sums
//! electronically. This module plans that tiling and prices it.

use crate::analytical::AnalyticalModel;
use crate::config::PcnnaConfig;
use crate::{CoreError, Result};
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// Budgets a channel tile must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConstraints {
    /// SRAM words available for one tile's receptive field.
    pub sram_words: u64,
    /// Simultaneous WDM carriers available (see
    /// [`crate::feasibility::SpectralBudget::usable_channels`]).
    pub carriers: u64,
}

impl TileConstraints {
    /// Constraints from a config (SRAM only; carriers unconstrained).
    #[must_use]
    pub fn from_config(config: &PcnnaConfig) -> Self {
        TileConstraints {
            sram_words: config.sram.capacity_words(),
            carriers: u64::MAX,
        }
    }

    /// Adds a carrier budget.
    #[must_use]
    pub fn with_carriers(mut self, carriers: u64) -> Self {
        self.carriers = carriers;
        self
    }
}

/// A planned channel tiling for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TilingPlan {
    /// The original layer.
    pub layer: String,
    /// Channels processed per tile.
    pub channels_per_tile: usize,
    /// Number of tiles (`ceil(nc / channels_per_tile)`).
    pub tiles: u64,
    /// Geometry of one (full) tile.
    pub tile_geometry: ConvGeometry,
    /// Extra partial-sum accumulations per output value (`tiles − 1`).
    pub partial_sums_per_output: u64,
    /// Full-system time for the tiled layer (tiles × tile time).
    pub full_system_time: SimTime,
    /// Optical-core time for the tiled layer.
    pub optical_time: SimTime,
}

/// Plans channel tilings.
#[derive(Debug, Clone)]
pub struct TilingPlanner {
    config: PcnnaConfig,
}

impl TilingPlanner {
    /// Builds a planner.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for invalid configs.
    pub fn new(config: PcnnaConfig) -> Result<Self> {
        config.validate()?;
        Ok(TilingPlanner { config })
    }

    /// The largest channel count per tile satisfying the constraints:
    /// `m·m·nc_tile ≤ min(sram_words, carriers)`.
    #[must_use]
    pub fn max_channels_per_tile(&self, g: &ConvGeometry, c: &TileConstraints) -> usize {
        let per_channel = g.n_kernel_per_channel().max(1);
        let budget = c.sram_words.min(c.carriers);
        ((budget / per_channel) as usize).min(g.channels())
    }

    /// Plans the tiling of one layer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ResourceExceeded`] if even a single channel's
    /// receptive field exceeds the budgets (tile the *kernel window* — out
    /// of scope; no paper layer needs it).
    pub fn plan(&self, name: &str, g: &ConvGeometry, c: &TileConstraints) -> Result<TilingPlan> {
        let channels_per_tile = self.max_channels_per_tile(g, c);
        if channels_per_tile == 0 {
            return Err(CoreError::ResourceExceeded {
                resource: "single-channel receptive field (words/carriers)",
                requested: g.n_kernel_per_channel(),
                available: c.sram_words.min(c.carriers),
            });
        }
        let tiles = (g.channels() as u64).div_ceil(channels_per_tile as u64);
        let tile_geometry = ConvGeometry::new(
            g.input_side(),
            g.kernel_side(),
            g.padding(),
            g.stride(),
            channels_per_tile,
            g.kernels(),
        )?;
        let analytical = AnalyticalModel::new(self.config)?;
        let tile_timing = analytical.layer_timing(name, &tile_geometry)?;
        Ok(TilingPlan {
            layer: name.to_owned(),
            channels_per_tile,
            tiles,
            tile_geometry,
            partial_sums_per_output: tiles - 1,
            full_system_time: tile_timing.full_system_time.saturating_mul(tiles),
            optical_time: tile_timing.optical_time.saturating_mul(tiles),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    fn planner() -> TilingPlanner {
        TilingPlanner::new(PcnnaConfig::default()).unwrap()
    }

    #[test]
    fn alexnet_layers_fit_in_one_tile_under_sram_only() {
        let p = planner();
        let c = TileConstraints::from_config(&PcnnaConfig::default());
        for (name, g) in zoo::alexnet_conv_layers() {
            let plan = p.plan(name, &g, &c).unwrap();
            assert_eq!(plan.tiles, 1, "{name}");
            assert_eq!(plan.partial_sums_per_output, 0);
            assert_eq!(plan.channels_per_tile, g.channels());
        }
    }

    #[test]
    fn carrier_budget_forces_tiling() {
        // 22 usable carriers (the FSR budget): conv4 needs 3456 → tiles.
        let p = planner();
        let g = zoo::alexnet_conv_layers()[3].1;
        let c = TileConstraints::from_config(&PcnnaConfig::default()).with_carriers(22);
        let plan = p.plan("conv4", &g, &c).unwrap();
        // 22 / 9 = 2 channels per tile → 192 tiles
        assert_eq!(plan.channels_per_tile, 2);
        assert_eq!(plan.tiles, 192);
        assert_eq!(plan.partial_sums_per_output, 191);
    }

    #[test]
    fn tiled_time_scales_with_tiles() {
        let p = planner();
        let g = zoo::alexnet_conv_layers()[3].1;
        let c = TileConstraints::from_config(&PcnnaConfig::default()).with_carriers(22);
        let plan = p.plan("conv4", &g, &c).unwrap();
        let single = AnalyticalModel::new(PcnnaConfig::default())
            .unwrap()
            .layer_timing("tile", &plan.tile_geometry)
            .unwrap();
        assert_eq!(
            plan.full_system_time,
            single.full_system_time.saturating_mul(plan.tiles)
        );
    }

    #[test]
    fn oversized_vgg_layer_becomes_plannable() {
        // A synthetic 5x5x512 layer exceeds the 8192-word SRAM (12800 words)
        // — the analytical model rejects it, the planner tiles it.
        let g = ConvGeometry::new(32, 5, 0, 1, 512, 4).unwrap();
        let p = planner();
        let c = TileConstraints::from_config(&PcnnaConfig::default());
        let plan = p.plan("big", &g, &c).unwrap();
        assert!(plan.tiles >= 2);
        assert!(plan.channels_per_tile as u64 * plan.tiles >= 512);
        // per-tile receptive field fits
        assert!(plan.tile_geometry.n_kernel() <= 8192);
    }

    #[test]
    fn impossible_budget_is_rejected() {
        let g = ConvGeometry::new(16, 5, 0, 1, 4, 2).unwrap(); // 25 words/channel
        let p = planner();
        let c = TileConstraints {
            sram_words: 10,
            carriers: u64::MAX,
        };
        assert!(matches!(
            p.plan("g", &g, &c),
            Err(CoreError::ResourceExceeded { .. })
        ));
    }

    #[test]
    fn tiles_cover_all_channels_exactly() {
        let g = ConvGeometry::new(14, 3, 1, 1, 100, 8).unwrap();
        let p = planner();
        let c = TileConstraints {
            sram_words: 9 * 7, // 7 channels per tile
            carriers: u64::MAX,
        };
        let plan = p.plan("g", &g, &c).unwrap();
        assert_eq!(plan.channels_per_tile, 7);
        assert_eq!(plan.tiles, 100u64.div_ceil(7));
    }
}
