//! Cycle-approximate pipeline simulation of Figure 4.
//!
//! Where [`crate::analytical`] multiplies closed-form per-location costs,
//! this simulator actually walks the schedule location by location through
//! the three pipeline stages of the architecture —
//!
//! ```text
//! front end : DRAM → input buffer → SRAM cache → input DACs → MZMs
//! optical   : MRR weight banks → balanced photodiodes   (1 fast cycle/pass)
//! back end  : ADC array → output buffer → DRAM
//! ```
//!
//! — with double buffering between stages (location *i+1*'s inputs convert
//! while location *i* flies through the rings and location *i−1* digitizes).
//! It uses the *exact* per-location update sets from the scheduler (not the
//! paper's steady-state estimate), a real cache simulation for the SRAM, and
//! charges DRAM misses, so it reports everything the analytical model
//! cannot: cache hit rates, true DRAM traffic, stage occupancy, and energy.

use crate::analytical::AnalyticalModel;
use crate::config::PcnnaConfig;
use crate::mapping::RingAllocation;
use crate::scheduler::LocationSchedule;
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::adc::AdcArray;
use pcnna_electronics::dac::DacArray;
use pcnna_electronics::dram::DramTraffic;
use pcnna_electronics::energy::EnergyLedger;
use pcnna_electronics::sram::{CacheSim, CacheStats};
use pcnna_electronics::time::SimTime;
use serde::{Deserialize, Serialize};

/// Busy time per pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageBusy {
    /// Front end: cache + DAC conversion (+ DRAM miss service).
    pub front_end: SimTime,
    /// Optical core.
    pub optical: SimTime,
    /// Back end: ADC + writeback.
    pub back_end: SimTime,
}

/// Result of simulating one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Layer name.
    pub name: String,
    /// Locations processed.
    pub locations: u64,
    /// Total simulated execution time (last writeback completes).
    pub total_time: SimTime,
    /// Busy time per stage.
    pub busy: StageBusy,
    /// Input-cache statistics.
    pub cache: CacheStats,
    /// DRAM traffic, bytes.
    pub traffic: DramTraffic,
    /// Energy ledger.
    pub energy: EnergyLedger,
    /// One-time weight-load time (charged into `total_time` only when the
    /// config's `include_weight_load` is set).
    pub weight_load_time: SimTime,
    /// Exact total input loads (from the schedule).
    pub total_input_loads: u64,
}

impl SimResult {
    /// Utilisation of the optical core: optical busy time / total time.
    #[must_use]
    pub fn optical_utilization(&self) -> f64 {
        if self.total_time == SimTime::ZERO {
            0.0
        } else {
            self.busy.optical.ratio(self.total_time)
        }
    }
}

/// The pipeline simulator.
#[derive(Debug, Clone)]
pub struct PipelineSimulator {
    config: PcnnaConfig,
    input_dacs: DacArray,
    weight_dacs: DacArray,
    adcs: AdcArray,
}

impl PipelineSimulator {
    /// Builds a simulator (validates the config).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] for invalid
    /// configurations.
    pub fn new(config: PcnnaConfig) -> Result<Self> {
        config.validate()?;
        Ok(PipelineSimulator {
            config,
            input_dacs: DacArray::new(config.input_dac, config.n_input_dacs)?,
            weight_dacs: DacArray::new(config.input_dac, config.n_weight_dacs)?,
            adcs: AdcArray::new(config.adc, config.n_adcs)?,
        })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &PcnnaConfig {
        &self.config
    }

    /// Simulates one conv layer.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::ResourceExceeded`] if the receptive field
    /// exceeds the SRAM (same check as the analytical model).
    pub fn simulate_layer(&self, name: &str, g: &ConvGeometry) -> Result<SimResult> {
        // Reuse the analytical model's resource validation.
        AnalyticalModel::new(self.config)?.layer_timing(name, g)?;

        let alloc = RingAllocation::for_layer(g, self.config.allocation);
        let schedule = LocationSchedule::new(*g, self.config.scan);
        let mut cache = CacheSim::for_model(&self.config.sram)?;
        let bytes_per_value = self.config.bytes_per_value;
        let k = g.kernels() as u64;

        let optical_pass = self.config.fast_clock.cycles(alloc.passes_per_location);
        let adc_batch = self.adcs.convert_time(k);
        let writeback = self.config.dram.streaming_time(k * bytes_per_value);
        let back_duration = adc_batch.max(writeback);

        // Weight load: every ring's set point converted once by the weight
        // DAC array at layer start.
        let weight_load = self.weight_dacs.convert_time(alloc.rings);

        let mut front_free = if self.config.include_weight_load {
            weight_load
        } else {
            SimTime::ZERO
        };
        let mut optical_free = SimTime::ZERO;
        let mut back_free = SimTime::ZERO;
        let mut busy = StageBusy::default();
        let mut traffic = DramTraffic::default();
        let mut energy = EnergyLedger::default();
        let mut total_input_loads = 0u64;
        let mut previous: Vec<u64> = Vec::new();

        for &loc in schedule.locations() {
            let required = schedule.required_inputs(loc);
            // Newly required values relative to the previous window.
            let prev_set: std::collections::HashSet<u64> = previous.iter().copied().collect();
            let new_count = required.iter().filter(|a| !prev_set.contains(a)).count() as u64;
            total_input_loads += new_count;

            // Serve the new values: cache hits are free refills (the value
            // is still resident from an earlier window), misses stream from
            // DRAM.
            let misses = cache.access_all(&required);
            let miss_bytes = misses * bytes_per_value;
            traffic.input_reads += miss_bytes;
            energy.dram_j += self.config.dram.transfer_energy_j(miss_bytes);
            energy.sram_j += self.config.sram.power_w(1e6) * 1e-6 * new_count as f64;

            // Front end: one pipelined SRAM access window + DAC conversion
            // of the new values, plus DRAM streaming for misses.
            let dac_time = self.input_dacs.convert_time(new_count);
            energy.dac_j += self.input_dacs.convert_energy_j(new_count);
            let dram_time = self.config.dram.streaming_time(miss_bytes);
            let front_duration = self.config.sram.access_time.max(dac_time).max(dram_time);
            let front_done = front_free + front_duration;
            busy.front_end += front_duration;
            front_free = front_done;

            // Optical stage starts when its input is ready and the core is
            // free.
            let optical_start = front_done.max(optical_free);
            let optical_done = optical_start + optical_pass;
            busy.optical += optical_pass;
            optical_free = optical_done;

            // Back end digitizes and writes K results.
            let back_start = optical_done.max(back_free);
            let back_done = back_start + back_duration;
            busy.back_end += back_duration;
            back_free = back_done;
            energy.adc_j += self.adcs.convert_energy_j(k);
            traffic.output_writes += k * bytes_per_value;
            energy.dram_j += self.config.dram.transfer_energy_j(k * bytes_per_value);

            previous = required;
        }

        // Weight traffic: rings' set points read from DRAM once.
        traffic.weight_reads += alloc.rings * bytes_per_value;
        energy.dram_j += self
            .config
            .dram
            .transfer_energy_j(alloc.rings * bytes_per_value);
        energy.dac_j += self.weight_dacs.convert_energy_j(alloc.rings);

        Ok(SimResult {
            name: name.to_owned(),
            locations: g.n_locations(),
            total_time: back_free,
            busy,
            cache: cache.stats(),
            traffic,
            energy,
            weight_load_time: weight_load,
            total_input_loads,
        })
    }

    /// Simulates a list of named layers.
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    pub fn simulate_network(&self, layers: &[(&str, ConvGeometry)]) -> Result<Vec<SimResult>> {
        layers
            .iter()
            .map(|(name, g)| self.simulate_layer(name, g))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BottleneckModel, ScanOrder};

    fn small_geometry() -> ConvGeometry {
        ConvGeometry::new(12, 3, 1, 1, 4, 8).unwrap()
    }

    fn sim() -> PipelineSimulator {
        PipelineSimulator::new(PcnnaConfig::default()).unwrap()
    }

    #[test]
    fn simulation_produces_sane_totals() {
        let r = sim().simulate_layer("t", &small_geometry()).unwrap();
        assert_eq!(r.locations, 144);
        assert!(r.total_time > SimTime::ZERO);
        assert!(r.busy.front_end > SimTime::ZERO);
        assert!(r.busy.optical > SimTime::ZERO);
        assert!(r.busy.back_end > SimTime::ZERO);
    }

    #[test]
    fn simulated_time_bounds_analytical_dac_only() {
        // The simulator includes SRAM/DRAM/ADC effects the paper's DacOnly
        // model ignores, so it can only be slower than Nlocs × t_dac,
        // and it must stay within the MaxOfStages envelope plus fill/drain.
        let g = small_geometry();
        let r = sim().simulate_layer("t", &g).unwrap();
        let dac_only = AnalyticalModel::new(PcnnaConfig::default()).unwrap();
        let a = dac_only.layer_timing("t", &g).unwrap();
        assert!(
            r.total_time >= a.full_system_time,
            "sim {} < analytical {}",
            r.total_time,
            a.full_system_time
        );
        let fuller = AnalyticalModel::new(
            PcnnaConfig::default().with_bottleneck(BottleneckModel::MaxOfStages),
        )
        .unwrap();
        let b = fuller.layer_timing("t", &g).unwrap();
        // Envelope: per-location max-stage times plus 3 fill/drain stages.
        let envelope = b.full_system_time
            + b.sram_time_per_location.saturating_mul(8)
            + b.adc_time_per_location.saturating_mul(8);
        assert!(
            r.total_time <= envelope,
            "sim {} > envelope {}",
            r.total_time,
            envelope
        );
    }

    #[test]
    fn cache_captures_sliding_window_reuse() {
        let r = sim().simulate_layer("t", &small_geometry()).unwrap();
        // Stride-1 3×3 windows overlap heavily: hit rate well above half.
        assert!(r.cache.hit_rate() > 0.5, "hit rate {}", r.cache.hit_rate());
    }

    #[test]
    fn serpentine_loads_fewer_inputs_than_raster() {
        let g = small_geometry();
        let raster = sim().simulate_layer("t", &g).unwrap();
        let serp = PipelineSimulator::new(PcnnaConfig::default().with_scan(ScanOrder::Serpentine))
            .unwrap()
            .simulate_layer("t", &g)
            .unwrap();
        assert!(serp.total_input_loads < raster.total_input_loads);
        assert!(serp.total_time <= raster.total_time);
    }

    #[test]
    fn traffic_accounts_inputs_weights_outputs() {
        let g = small_geometry();
        let r = sim().simulate_layer("t", &g).unwrap();
        assert!(r.traffic.input_reads > 0);
        // weights: K·Nkernel rings × 2 bytes
        assert_eq!(r.traffic.weight_reads, 8 * 36 * 2);
        // outputs: Nlocs × K × 2 bytes
        assert_eq!(r.traffic.output_writes, 144 * 8 * 2);
    }

    #[test]
    fn energy_ledger_is_populated() {
        let r = sim().simulate_layer("t", &small_geometry()).unwrap();
        assert!(r.energy.dac_j > 0.0);
        assert!(r.energy.adc_j > 0.0);
        assert!(r.energy.dram_j > 0.0);
        assert!(r.energy.total_j() > 0.0);
    }

    #[test]
    fn weight_load_charged_when_configured() {
        let g = small_geometry();
        let without = sim().simulate_layer("t", &g).unwrap();
        let cfg = PcnnaConfig {
            include_weight_load: true,
            ..PcnnaConfig::default()
        };
        let with = PipelineSimulator::new(cfg)
            .unwrap()
            .simulate_layer("t", &g)
            .unwrap();
        assert!(with.total_time >= without.total_time + with.weight_load_time);
    }

    #[test]
    fn optical_utilization_is_low_when_dac_bound() {
        // The optical core idles most of the time — the paper's point about
        // electronic I/O limits.
        let r = sim().simulate_layer("t", &small_geometry()).unwrap();
        let u = r.optical_utilization();
        assert!(u > 0.0 && u < 0.2, "utilization {u}");
    }

    #[test]
    fn network_simulation_covers_all_layers() {
        let layers = [
            ("a", ConvGeometry::new(8, 3, 1, 1, 2, 4).unwrap()),
            ("b", ConvGeometry::new(8, 3, 1, 2, 4, 8).unwrap()),
        ];
        let rs = sim().simulate_network(&layers).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].name, "a");
    }

    #[test]
    fn oversized_layer_rejected() {
        let g = ConvGeometry::new(32, 5, 0, 1, 512, 4).unwrap();
        assert!(sim().simulate_layer("big", &g).is_err());
    }
}
