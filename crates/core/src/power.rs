//! Full-system power and energy model (reproduction extension).
//!
//! The paper argues photonics saves power but reports no numbers. This
//! module prices the paper's design point: lasers (one per carrier),
//! microring heaters, MZM drivers, the converter arrays, SRAM and DRAM —
//! and produces per-layer energy at the analytical execution time, so the
//! `energy` harness can put PCNNA on the same axis as Eyeriss and YodaNN.

use crate::analytical::AnalyticalModel;
use crate::config::PcnnaConfig;
use crate::mapping::RingAllocation;
use crate::Result;
use pcnna_cnn::geometry::ConvGeometry;
use pcnna_electronics::energy::EnergyLedger;
use pcnna_photonics::laser::LaserDiode;
use pcnna_photonics::power::{mzm_driver_power_w, PhotonicPowerBudget};
use serde::{Deserialize, Serialize};

/// Static power assumptions beyond what the config carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerAssumptions {
    /// Per-carrier laser model.
    pub laser: LaserDiode,
    /// Average heater power per *active* ring, watts (rings parked at
    /// weight −1 draw none; mid-scale tuning draws about half the
    /// per-linewidth figure × the parking offset).
    pub avg_heater_w_per_ring: f64,
    /// MZM driver capacitance, farads.
    pub mzm_capacitance_f: f64,
    /// MZM drive swing, volts.
    pub mzm_swing_v: f64,
    /// Receiver (TIA + comparator) power per bank, watts.
    pub receiver_w_per_bank: f64,
}

impl Default for PowerAssumptions {
    fn default() -> Self {
        PowerAssumptions {
            laser: LaserDiode::default(),
            avg_heater_w_per_ring: 1.0e-4,
            mzm_capacitance_f: 100e-15,
            mzm_swing_v: 2.0,
            receiver_w_per_bank: 2.0e-3,
        }
    }
}

/// Per-layer power/energy summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPower {
    /// Layer name.
    pub name: String,
    /// Photonic front-end budget (lasers, heaters, modulators, receivers).
    pub photonic: PhotonicPowerBudget,
    /// Electronic converter + memory power, watts.
    pub electronic_w: f64,
    /// Total power, watts.
    pub total_w: f64,
    /// Execution time used for the energy figure (full-system analytical).
    pub exec_seconds: f64,
    /// Energy ledger for one execution of the layer.
    pub energy: EnergyLedger,
    /// MACs per joule — the efficiency headline.
    pub macs_per_joule: f64,
}

/// The power model.
#[derive(Debug, Clone)]
pub struct PowerModel {
    config: PcnnaConfig,
    assumptions: PowerAssumptions,
}

impl PowerModel {
    /// Builds a power model.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] for invalid configs.
    pub fn new(config: PcnnaConfig, assumptions: PowerAssumptions) -> Result<Self> {
        config.validate()?;
        Ok(PowerModel {
            config,
            assumptions,
        })
    }

    /// The static photonic power of a layer's mapping.
    #[must_use]
    pub fn photonic_budget(&self, g: &ConvGeometry) -> PhotonicPowerBudget {
        let alloc = RingAllocation::for_layer(g, self.config.allocation);
        let carriers = alloc.wavelengths;
        PhotonicPowerBudget {
            lasers_w: carriers as f64 * self.assumptions.laser.electrical_power_w(),
            heaters_w: alloc.rings as f64 * self.assumptions.avg_heater_w_per_ring,
            modulators_w: mzm_driver_power_w(
                self.assumptions.mzm_capacitance_f,
                self.assumptions.mzm_swing_v,
                self.config.fast_clock.frequency_hz(),
                carriers as usize,
            ),
            receivers_w: alloc.banks as f64 * self.assumptions.receiver_w_per_bank,
        }
    }

    /// Electronic power: converter arrays at their duty, SRAM at the
    /// per-location access rate.
    #[must_use]
    pub fn electronic_power_w(&self, g: &ConvGeometry) -> f64 {
        let dacs = self.config.input_dac.power_w
            * (self.config.n_input_dacs + self.config.n_weight_dacs) as f64;
        let adcs = self.config.adc.power_w * self.config.n_adcs as f64;
        // SRAM accessed once per updated value per location; approximate the
        // access rate by updates/loc over the per-location time.
        let sram = self.config.sram.power_w(
            g.updated_inputs_per_location() as f64 * self.config.fast_clock.frequency_hz() / 1000.0, // conservative duty scaling
        );
        dacs + adcs + sram
    }

    /// Energy of one execution of a layer priced at `exec_seconds` — the
    /// lean path for search hot loops: the same four energy terms as the
    /// [`LayerPower`] ledger (converters, DRAM traffic, photonics), with
    /// no name interning, no ledger struct, and no allocation. The caller
    /// supplies the execution time (typically
    /// [`AnalyticalModel::layer_full_system_time`]) so the analytical
    /// model is built once per network, not once per layer.
    #[must_use]
    pub fn layer_energy_j(&self, g: &ConvGeometry, exec_seconds: f64) -> f64 {
        let photonic = self.photonic_budget(g);
        let dac_j = self.config.input_dac.power_w
            * (self.config.n_input_dacs + self.config.n_weight_dacs) as f64
            * exec_seconds;
        let adc_j = self.config.adc.power_w * self.config.n_adcs as f64 * exec_seconds;
        let dram_j = self.config.dram.transfer_energy_j(
            (g.n_input() + g.weight_count() + g.n_output()) * self.config.bytes_per_value,
        );
        dac_j + adc_j + dram_j + photonic.energy_j(exec_seconds)
    }

    /// Full per-layer power/energy analysis with a caller-provided
    /// analytical model (avoids rebuilding it per layer).
    fn layer_power_with(
        &self,
        analytical: &AnalyticalModel,
        name: &str,
        g: &ConvGeometry,
    ) -> Result<LayerPower> {
        let timing = analytical.layer_timing(name, g)?;
        let photonic = self.photonic_budget(g);
        let electronic_w = self.electronic_power_w(g);
        let total_w = photonic.total_w() + electronic_w;
        let secs = timing.full_system_time.as_secs_f64();
        let energy = EnergyLedger {
            dac_j: self.config.input_dac.power_w
                * (self.config.n_input_dacs + self.config.n_weight_dacs) as f64
                * secs,
            adc_j: self.config.adc.power_w * self.config.n_adcs as f64 * secs,
            sram_j: 0.0,
            dram_j: self.config.dram.transfer_energy_j(
                (g.n_input() + g.weight_count() + g.n_output()) * self.config.bytes_per_value,
            ),
            photonic_j: photonic.energy_j(secs),
        };
        let macs_per_joule = if energy.total_j() > 0.0 {
            g.macs() as f64 / energy.total_j()
        } else {
            0.0
        };
        Ok(LayerPower {
            name: name.to_owned(),
            photonic,
            electronic_w,
            total_w,
            exec_seconds: secs,
            energy,
            macs_per_joule,
        })
    }

    /// Full per-layer power/energy analysis.
    ///
    /// # Errors
    ///
    /// Propagates resource failures from the analytical model.
    pub fn layer_power(&self, name: &str, g: &ConvGeometry) -> Result<LayerPower> {
        let analytical = AnalyticalModel::new(self.config)?;
        self.layer_power_with(&analytical, name, g)
    }

    /// Power analysis over a list of layers (the analytical model behind
    /// the execution times is built once, not once per layer).
    ///
    /// # Errors
    ///
    /// Propagates the first per-layer failure.
    pub fn network_power(&self, layers: &[(&str, ConvGeometry)]) -> Result<Vec<LayerPower>> {
        let analytical = AnalyticalModel::new(self.config)?;
        layers
            .iter()
            .map(|(name, g)| self.layer_power_with(&analytical, name, g))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcnna_cnn::zoo;

    fn model() -> PowerModel {
        PowerModel::new(PcnnaConfig::default(), PowerAssumptions::default()).unwrap()
    }

    #[test]
    fn photonic_budget_scales_with_mapping() {
        let m = model();
        let conv3 = zoo::alexnet_conv_layers()[2].1;
        let conv4 = zoo::alexnet_conv_layers()[3].1;
        let b3 = m.photonic_budget(&conv3);
        let b4 = m.photonic_budget(&conv4);
        // conv4 has more rings (more heaters) and more carriers (more lasers)
        assert!(b4.heaters_w > b3.heaters_w);
        assert!(b4.lasers_w > b3.lasers_w);
    }

    #[test]
    fn heaters_dominate_deep_layers_lasers_shallow_ones() {
        // conv4 under eq. (5) carries 1.33 M rings — at 0.1 mW each the
        // heater budget alone is ~130 W, dwarfing its 3456 lasers. conv1's
        // 35 k rings flip the balance toward its 363 lasers. (The paper's
        // qualitative "photonics saves power" needs this caveat; see
        // EXPERIMENTS.md "Power reality check".)
        let m = model();
        let conv4 = zoo::alexnet_conv_layers()[3].1;
        assert_eq!(m.photonic_budget(&conv4).dominant().0, "heaters");
        let conv1 = zoo::alexnet_conv_layers()[0].1;
        assert_eq!(m.photonic_budget(&conv1).dominant().0, "lasers");
    }

    #[test]
    fn layer_power_produces_positive_totals() {
        let m = model();
        for (name, g) in zoo::alexnet_conv_layers() {
            let p = m.layer_power(name, &g).unwrap();
            assert!(p.total_w > 0.0, "{name}");
            assert!(p.energy.total_j() > 0.0, "{name}");
            assert!(p.macs_per_joule > 0.0, "{name}");
        }
    }

    #[test]
    fn efficiency_is_competitive_per_mac() {
        // The point of analog photonic MACs: macs/J should be well beyond
        // a ~100 GMAC/s/W electronic engine at these assumptions.
        let m = model();
        let g = zoo::alexnet_conv_layers()[3].1;
        let p = m.layer_power("conv4", &g).unwrap();
        assert!(
            p.macs_per_joule > 1e11,
            "macs/J = {:.3e} unexpectedly poor",
            p.macs_per_joule
        );
    }

    #[test]
    fn lean_layer_energy_matches_the_ledger() {
        // The allocation-free search path and the reporting ledger must
        // never drift apart.
        let m = model();
        for (name, g) in zoo::alexnet_conv_layers() {
            let p = m.layer_power(name, &g).unwrap();
            let lean = m.layer_energy_j(&g, p.exec_seconds);
            let total = p.energy.total_j();
            assert!(
                (lean - total).abs() <= 1e-12 * total,
                "{name}: lean {lean} vs ledger {total}"
            );
        }
    }

    #[test]
    fn network_power_covers_all_layers() {
        let m = model();
        let rows = m.network_power(&zoo::alexnet_conv_layers()).unwrap();
        assert_eq!(rows.len(), 5);
    }
}
