//! Property-based invariants of the fleet simulator.

use proptest::prelude::*;

use pcnna_core::PcnnaConfig;
use pcnna_fleet::engine::wheel::{EventTime, TimingWheel};
use pcnna_fleet::prelude::*;

/// A small scenario space: LeNet-class requests (cheap to quote and serve)
/// over varying load, fleet size, batch bound, policy, and seed.
fn scenarios() -> impl Strategy<Value = FleetScenario> {
    (
        200.0f64..20_000.0, // arrival rate
        1usize..5,          // instances
        1u64..48,           // max_batch
        0usize..3,          // policy index
        0u64..1_000,        // seed
        16usize..2_000,     // queue capacity
    )
        .prop_map(
            |(rate, n_inst, max_batch, policy, seed, cap)| FleetScenario {
                classes: vec![
                    NetworkClass::lenet5(0.005, 2.0),
                    NetworkClass::alexnet(0.050, 1.0),
                ],
                arrival: ArrivalProcess::Poisson { rate_rps: rate },
                policy: [
                    Policy::Fifo,
                    Policy::EarliestDeadlineFirst,
                    Policy::NetworkAffinity,
                ][policy],
                instances: vec![PcnnaConfig::default(); n_inst],
                max_batch,
                queue_capacity: cap,
                horizon_s: 0.02,
                seed,
                ..FleetScenario::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn requests_are_conserved(s in scenarios()) {
        let r = s.simulate().unwrap();
        // Nothing is created or lost: every offered request is either
        // rejected at admission or served to completion (the engine
        // drains the queue after arrivals stop).
        prop_assert_eq!(r.offered, r.admitted + r.rejected);
        prop_assert_eq!(r.admitted, r.completed);
        let per_class: u64 = r.per_class.iter().map(|c| c.completed).sum();
        prop_assert_eq!(per_class, r.completed);
        let admitted_per_class: u64 = r.per_class.iter().map(|c| c.admitted).sum();
        prop_assert_eq!(admitted_per_class, r.admitted);
    }

    #[test]
    fn latency_is_bounded_below_by_service_time(s in scenarios()) {
        let quotes = s.quote_table().unwrap();
        let r = s.simulate().unwrap();
        if r.completed == 0 { return Ok(()); }
        // No request can complete faster than one frame's marginal service
        // time on the fastest instance for the cheapest class.
        let floor = (0..s.instances.len())
            .flat_map(|i| (0..s.classes.len()).map(move |c| (i, c)))
            .map(|(i, c)| quotes.get(i, c).per_frame.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(floor > 0.0);
        // 1 ulp of slack: latency is (arrival + service) − arrival in f64.
        prop_assert!(
            r.latency.min_s >= floor * (1.0 - 1e-9),
            "min latency {} < service floor {}", r.latency.min_s, floor
        );
    }

    #[test]
    fn report_statistics_are_sane(s in scenarios()) {
        let r = s.simulate().unwrap();
        if r.completed == 0 { return Ok(()); }
        prop_assert!(r.latency.min_s <= r.latency.p50_s);
        prop_assert!(r.latency.p50_s <= r.latency.p95_s);
        prop_assert!(r.latency.p95_s <= r.latency.p99_s);
        prop_assert!(r.latency.p99_s <= r.latency.p999_s);
        prop_assert!(r.latency.p999_s <= r.latency.max_s);
        prop_assert!((0.0..=1.0).contains(&r.slo_attainment));
        prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-9);
        prop_assert!(r.energy_per_request_j > 0.0);
        prop_assert!(r.weight_reloads <= r.batches);
        prop_assert!(r.mean_batch >= 1.0 - 1e-12);
        prop_assert!(r.mean_batch <= s.max_batch as f64 + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn histogram_quantiles_match_exact_sort(
        samples in prop::collection::vec(1e-6f64..10.0, 1..1500),
    ) {
        // The engine's streaming histogram must agree with the exact
        // sort-based summary within its documented 1% relative error on
        // every reported quantile — and exactly on mean/min/max.
        let mut hist = LatencyHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        let exact = LatencySummary::from_samples(&mut sorted);
        let approx = LatencySummary::from_histogram(&hist);
        for (label, a, e) in [
            ("p50", approx.p50_s, exact.p50_s),
            ("p95", approx.p95_s, exact.p95_s),
            ("p99", approx.p99_s, exact.p99_s),
            ("p999", approx.p999_s, exact.p999_s),
        ] {
            prop_assert!(
                (a - e).abs() <= 0.01 * e,
                "{label}: histogram {a} vs exact {e}"
            );
        }
        prop_assert!((approx.mean_s - exact.mean_s).abs() <= 1e-12 + 1e-9 * exact.mean_s);
        prop_assert_eq!(approx.min_s, exact.min_s);
        prop_assert_eq!(approx.max_s, exact.max_s);
        // quantiles stay monotone and inside [min, max]
        prop_assert!(approx.min_s <= approx.p50_s);
        prop_assert!(approx.p50_s <= approx.p95_s);
        prop_assert!(approx.p95_s <= approx.p99_s);
        prop_assert!(approx.p99_s <= approx.p999_s);
        prop_assert!(approx.p999_s <= approx.max_s);
    }
}

#[test]
fn histogram_handles_empty_and_single_sample_classes() {
    // Empty: the PR 2 NaN-hardening contract — all-zero, finite summary.
    let empty = LatencyHistogram::new();
    let s = LatencySummary::from_histogram(&empty);
    assert_eq!(s, LatencySummary::default());
    for v in [
        s.p50_s, s.p95_s, s.p99_s, s.p999_s, s.mean_s, s.min_s, s.max_s,
    ] {
        assert!(v.is_finite());
        assert_eq!(v, 0.0);
    }
    // Single sample: every quantile is (within the error bound) that
    // sample, and min/max/mean are exactly it.
    let mut one = LatencyHistogram::new();
    one.record(0.042);
    let s = LatencySummary::from_histogram(&one);
    assert_eq!(s.min_s, 0.042);
    assert_eq!(s.max_s, 0.042);
    assert_eq!(s.mean_s, 0.042);
    for q in [s.p50_s, s.p999_s] {
        assert!((q - 0.042).abs() <= 0.01 * 0.042, "{q}");
    }
}

#[test]
fn longer_runs_do_not_grow_report_memory() {
    // The engine's latency state is O(1) in the request count: a
    // 10×-longer run must produce a report with the identical footprint
    // (same per-class/per-instance vector lengths), backed by histograms
    // whose bin array never grows.
    let scenario = |horizon_s: f64| FleetScenario {
        classes: vec![
            NetworkClass::lenet5(0.005, 2.0),
            NetworkClass::alexnet(0.050, 1.0),
        ],
        arrival: ArrivalProcess::Poisson { rate_rps: 20_000.0 },
        instances: vec![PcnnaConfig::default(); 2],
        horizon_s,
        queue_capacity: 1_000_000,
        seed: 3,
        ..FleetScenario::default()
    };
    let short = scenario(0.05).simulate().unwrap();
    let long = scenario(0.5).simulate().unwrap();
    assert!(
        long.completed >= 9 * short.completed,
        "10× run, 10× requests"
    );
    // identical report footprint: the report carries summaries, not
    // samples, so its size is a function of the scenario shape only
    assert_eq!(short.per_class.len(), long.per_class.len());
    assert_eq!(
        short.per_instance_batches.len(),
        long.per_instance_batches.len()
    );
    // and the streaming histogram itself is fixed-size however much is
    // recorded
    let mut h = LatencyHistogram::new();
    assert_eq!(h.bin_count(), LatencyHistogram::BIN_COUNT);
    for i in 0..1_000_000u64 {
        h.record(1e-5 + (i as f64) * 1e-8);
    }
    assert_eq!(h.bin_count(), LatencyHistogram::BIN_COUNT);
    assert_eq!(h.count(), 1_000_000);
}

/// A small fault-timeline space over a 3-instance fleet: degrades with
/// random channel loss, hard failures, and recalibrations at random
/// times inside the horizon.
fn fault_timelines(horizon_s: f64) -> impl Strategy<Value = FaultTimeline> {
    let event = (
        0.0..horizon_s,
        0usize..3,  // instance
        0usize..3,  // action selector
        0usize..10, // dead input channels for Degrade
    )
        .prop_map(move |(at_s, instance, action, dead)| FaultEvent {
            at_s,
            instance,
            action: match action {
                0 => FaultAction::Degrade(HealthState {
                    dead_input_channels: dead,
                    ..HealthState::nominal()
                }),
                1 => FaultAction::Fail,
                _ => FaultAction::Recalibrate {
                    duration_s: horizon_s * 0.05,
                },
            },
        });
    prop::collection::vec(event, 0..8).prop_map(FaultTimeline::from_events)
}

fn faulty_scenarios() -> impl Strategy<Value = FleetScenario> {
    let horizon_s = 0.02;
    (
        500.0f64..20_000.0, // arrival rate
        0usize..3,          // policy index
        0u64..1_000,        // seed
        fault_timelines(horizon_s),
    )
        .prop_map(move |(rate, policy, seed, faults)| FleetScenario {
            classes: vec![
                NetworkClass::lenet5(0.005, 2.0),
                NetworkClass::alexnet(0.050, 1.0),
            ],
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            policy: [
                Policy::Fifo,
                Policy::EarliestDeadlineFirst,
                Policy::NetworkAffinity,
            ][policy],
            instances: vec![PcnnaConfig::default(); 3],
            queue_capacity: 100_000,
            horizon_s,
            seed,
            faults,
            ..FleetScenario::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn faults_preserve_request_conservation(s in faulty_scenarios()) {
        // Failover must neither drop nor duplicate: every offered
        // request is rejected at admission, served to completion, or —
        // only when capacity never comes back — left unserved in the
        // queues. Nothing else.
        let r = s.simulate().unwrap();
        prop_assert_eq!(r.offered, r.admitted + r.rejected);
        prop_assert_eq!(r.admitted, r.completed + r.resilience.unserved);
        let per_class: u64 = r.per_class.iter().map(|c| c.completed).sum();
        prop_assert_eq!(per_class, r.completed);
        let batches_served: u64 = r.per_instance_batches.iter().sum();
        prop_assert_eq!(batches_served, r.batches);
        prop_assert!((0.0..=1.0).contains(&r.resilience.availability));
        prop_assert!(r.resilience.offline_s >= 0.0);
        // debug_asserts inside dispatch double-check that no batch was
        // ever routed to a drained/offline instance (tests build with
        // debug assertions on)
    }

    #[test]
    fn no_request_is_routed_to_an_instance_failed_from_the_start(
        rate in 1_000.0f64..20_000.0,
        seed in 0u64..1_000,
        policy in 0usize..3,
    ) {
        // An instance hard-failed before any arrival must serve zero
        // batches, whatever the policy or load.
        let r = FleetScenario {
            classes: vec![
                NetworkClass::lenet5(0.005, 2.0),
                NetworkClass::alexnet(0.050, 1.0),
            ],
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            policy: [
                Policy::Fifo,
                Policy::EarliestDeadlineFirst,
                Policy::NetworkAffinity,
            ][policy],
            instances: vec![PcnnaConfig::default(); 3],
            queue_capacity: 100_000,
            horizon_s: 0.02,
            seed,
            faults: FaultTimeline::from_events(vec![FaultEvent {
                at_s: 0.0,
                instance: 1,
                action: FaultAction::Fail,
            }]),
            ..FleetScenario::default()
        }
        .simulate()
        .unwrap();
        prop_assert_eq!(
            r.per_instance_batches[1], 0,
            "drained instance must take no work"
        );
        prop_assert_eq!(r.admitted, r.completed, "survivors absorb the load");
    }

    #[test]
    fn same_seed_and_timeline_reproduce_at_any_thread_count(
        s in faulty_scenarios(),
    ) {
        // The engine is single-threaded per replica; replication must
        // be a pure function of the seed list regardless of how many
        // worker threads the map runs on.
        let seeds: Vec<u64> = (0..6).map(|k| s.seed ^ (k * 7919)).collect();
        let serial = par::par_map_slice(&seeds, 1, |seed| s.simulate_seeded(seed).unwrap());
        let wide = par::par_map_slice(&seeds, 8, |seed| s.simulate_seeded(seed).unwrap());
        for (a, b) in serial.iter().zip(&wide) {
            prop_assert_eq!(a, b, "thread count changed a replica's metrics");
        }
    }
}

/// Random interleavings of pushes and pops for the wheel-vs-heap
/// equivalence: `(delay_num, instance, pop_after)` per operation, with
/// push times made monotone-from-last-pop the same way the engine's
/// simulation clock is.
fn wheel_programs() -> impl Strategy<Value = Vec<(u32, u32, bool)>> {
    prop::collection::vec((0u32..1_000, 0u32..64, any::<bool>()), 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_pops_in_heap_order(program in wheel_programs()) {
        // The timing wheel must pop in *exactly* the order the replaced
        // `BinaryHeap<Reverse<(EventTime, usize, u32)>>` would — that
        // equivalence is why swapping the structure changed no
        // simulation result. The stream honours the engine's one
        // contract: every push is at or after the last popped time.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut wheel = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();
        let mut now = 0.0f64;
        let mut epoch = 0u32;
        for (delay_num, instance, pop_after) in program {
            // times spread over ~6 decades to cross many octaves
            let t = now + f64::from(delay_num) * f64::from(delay_num) * 1e-5;
            let at = EventTime::try_new(t).unwrap();
            wheel.push(at, instance, epoch);
            heap.push(Reverse((at.bits(), instance, epoch)));
            epoch = epoch.wrapping_add(1);
            if pop_after {
                let w = wheel.pop().unwrap();
                let Reverse(h) = heap.pop().unwrap();
                prop_assert_eq!((w.at.bits(), w.instance, w.epoch), h);
                now = w.at.get();
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        while let Some(w) = wheel.pop() {
            let Reverse(h) = heap.pop().unwrap();
            prop_assert_eq!((w.at.bits(), w.instance, w.epoch), h);
        }
        prop_assert!(heap.is_empty());
    }
}

/// The chaos-matrix scenario shape at CI smoke size, as a function of
/// the seed.
fn chaos_base(seed: u64) -> FleetScenario {
    FleetScenario {
        classes: vec![
            NetworkClass::alexnet(0.004, 1.0),
            NetworkClass::lenet5(0.001, 3.0),
        ],
        arrival: ArrivalProcess::Poisson { rate_rps: 45_000.0 },
        policy: Policy::NetworkAffinity,
        instances: vec![PcnnaConfig::default(); 4],
        queue_capacity: 100_000,
        horizon_s: 0.05,
        seed,
        ..FleetScenario::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_chaos_reports_are_bit_identical_across_shards_and_threads(
        seed in 0u64..1_000,
    ) {
        // The headline determinism contract of the sharded engine, for
        // all four named chaos scenarios: the shards = 1 run is the
        // oracle, and every (shards, threads) combination must
        // reproduce it bit for bit — FleetReport implements PartialEq
        // field-for-field, including every f64 ledger and histogram bin.
        let base = chaos_base(seed);
        let cfg = ChaosConfig { seed, ..ChaosConfig::default() };
        for kind in ChaosKind::ALL {
            let scenario = FleetScenario {
                faults: chaos_timeline(kind, &base.instances, base.horizon_s, &cfg),
                ..base.clone()
            };
            let oracle = scenario.simulate_sharded(1, 1).unwrap();
            prop_assert!(oracle.completed > 0, "{kind:?}");
            for (shards, threads) in [(2, 1), (2, 8), (4, 2), (8, 8)] {
                let r = scenario.simulate_sharded(shards, threads).unwrap();
                prop_assert_eq!(
                    &oracle, &r,
                    "{:?} diverged at shards={} threads={}", kind, shards, threads
                );
            }
            // and the sharded engine honours the same conservation laws
            prop_assert_eq!(oracle.offered, oracle.admitted + oracle.rejected, "{kind:?}");
            prop_assert_eq!(
                oracle.admitted,
                oracle.completed + oracle.resilience.unserved,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn hierarchical_plan_shapes_are_bit_identical_across_threads(
        seed in 0u64..1_000,
    ) {
        // The hierarchical extension of the determinism contract: the
        // partition into leaf cells never depends on the plan shape, so
        // grouping leaves into wider scheduling units — flat (1 leaf
        // per group), 2-wide, 4-wide — must reproduce the shards = 1
        // oracle bit for bit at every thread count, chaos included.
        let base = chaos_base(seed);
        let cfg = ChaosConfig { seed, ..ChaosConfig::default() };
        for kind in ChaosKind::ALL {
            let scenario = FleetScenario {
                faults: chaos_timeline(kind, &base.instances, base.horizon_s, &cfg),
                ..base.clone()
            };
            let oracle = scenario.simulate_sharded(1, 1).unwrap();
            prop_assert!(oracle.completed > 0, "{kind:?}");
            for group_width in [1usize, 2, 4] {
                let shape = PlanShape { group_width };
                for threads in [1usize, 8] {
                    let r = scenario.simulate_sharded_shaped(8, threads, shape).unwrap();
                    prop_assert_eq!(
                        &oracle, &r,
                        "{:?} diverged at group_width={} threads={}",
                        kind, group_width, threads
                    );
                }
            }
        }
    }

    #[test]
    fn replication_on_the_shard_engine_is_thread_invariant(
        seed in 0u64..1_000,
    ) {
        // `par::simulate_replicated` now routes every replica through
        // the sharded engine; the reports must still be a pure function
        // of the seed list, chaos timelines included.
        let base = chaos_base(seed);
        let scenario = FleetScenario {
            faults: chaos_timeline(
                ChaosKind::ChannelLossBurst,
                &base.instances,
                base.horizon_s,
                &ChaosConfig { seed, ..ChaosConfig::default() },
            ),
            ..base
        };
        let seeds: Vec<u64> = (0..4).map(|k| seed ^ (k * 7919)).collect();
        let a = par::simulate_replicated(&scenario, &seeds).unwrap();
        let b = par::simulate_replicated(&scenario, &seeds).unwrap();
        prop_assert_eq!(&a, &b, "replication must reproduce");
        // and each replica equals its direct sharded run
        for (report, &s) in a.iter().zip(&seeds) {
            let direct = scenario.simulate_sharded_seeded(s, 1, 1).unwrap();
            prop_assert_eq!(report, &direct);
        }
    }
}

/// A scripted worst-case controller: every window it flips the scale
/// target between the full fleet and the floor. With a boot time longer
/// than the window, every second plan aborts boots still in flight —
/// maximal exercise of the control-epoch cancellation path, on top of
/// whatever fault timeline is running.
struct Flapper {
    n: usize,
    tick: u64,
}

impl ControlPolicy for Flapper {
    fn name(&self) -> &str {
        "flapper"
    }

    fn plan(&mut self, _obs: &WindowObservation, view: &FleetView) -> ControlAction {
        self.tick += 1;
        ControlAction {
            target_active: if self.tick.is_multiple_of(2) {
                self.n
            } else {
                1
            },
            admission: vec![Admission::Open; view.n_classes],
            shed_to: vec![None; view.n_classes],
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn controlled_runs_conserve_requests_and_reproduce(
        s in faulty_scenarios(),
        policy_ix in 0usize..2,
        window_ms in 1u32..5,
    ) {
        // The closed loop must keep both conservation laws however the
        // policy scales, throttles, or sheds — and stay a pure function
        // of (scenario, config, policy). The dispatch-path debug_asserts
        // (tests build with debug assertions) double-check that no
        // scaling event ever routes work to a draining, parked, or
        // absent instance.
        let cfg = ControlConfig {
            window_s: f64::from(window_ms) * 1e-3,
            boot_s: 2e-3,
            min_active: 1,
            initial_active: usize::MAX,
            max_step: 4,
            idle_power_w: 2.0,
        };
        let fresh = || -> Box<dyn ControlPolicy> {
            if policy_ix == 0 {
                Box::new(ReactivePolicy::new())
            } else {
                Box::new(PredictivePolicy::new())
            }
        };
        let a = s.simulate_controlled(&cfg, &mut *fresh()).unwrap();
        let b = s.simulate_controlled(&cfg, &mut *fresh()).unwrap();
        prop_assert_eq!(&a.report, &b.report, "controlled run must reproduce");
        prop_assert_eq!(a.throttled, b.throttled);
        let r = &a.report;
        prop_assert_eq!(r.offered, r.admitted + r.rejected);
        prop_assert_eq!(
            r.admitted,
            r.completed + r.resilience.unserved + r.resilience.shed,
            "admitted = completed + unserved + shed"
        );
        let class_admitted: u64 = r.per_class.iter().map(|c| c.admitted).sum();
        let class_shed: u64 = r.per_class.iter().map(|c| c.shed).sum();
        let class_unserved: u64 = r.per_class.iter().map(|c| c.unserved).sum();
        prop_assert_eq!(class_admitted, r.admitted);
        prop_assert_eq!(class_shed, r.resilience.shed);
        prop_assert_eq!(class_unserved, r.resilience.unserved);
        for c in &r.per_class {
            prop_assert_eq!(c.admitted, c.completed + c.shed + c.unserved, "per-class books");
        }
    }

    #[test]
    fn scale_down_aborts_cancel_in_flight_boots_cleanly(s in faulty_scenarios()) {
        // Boot (2.5 ms) > window (1 ms): the flapper's every down-flip
        // catches boots mid-flight, so the run leans entirely on the
        // control-epoch token to cancel the pending restore events —
        // stale tokens must be skipped, never double-admit an instance,
        // and never corrupt the books, fault timeline included.
        let cfg = ControlConfig {
            window_s: 1e-3,
            boot_s: 2.5e-3,
            min_active: 1,
            initial_active: usize::MAX,
            max_step: 8,
            idle_power_w: 2.0,
        };
        let n = s.instances.len();
        let a = s.simulate_controlled(&cfg, &mut Flapper { n, tick: 0 }).unwrap();
        let b = s.simulate_controlled(&cfg, &mut Flapper { n, tick: 0 }).unwrap();
        prop_assert_eq!(&a.report, &b.report, "flapping run must reproduce");
        prop_assert!(a.scale_downs > 0, "the flapper must actually park");
        let r = &a.report;
        prop_assert_eq!(r.offered, r.admitted + r.rejected);
        prop_assert_eq!(
            r.admitted,
            r.completed + r.resilience.unserved + r.resilience.shed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batching_never_worsens_fifo_throughput_on_uniform_traffic(
        rate in 500.0f64..8_000.0,
        batch in 2u64..64,
        seed in 0u64..500,
    ) {
        // Uniform workload (one class), FIFO, same arrivals: allowing
        // batches must not reduce throughput relative to batch-size-1.
        let base = FleetScenario {
            classes: vec![NetworkClass::lenet5(0.010, 1.0)],
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            policy: Policy::Fifo,
            instances: vec![PcnnaConfig::default(); 2],
            queue_capacity: usize::MAX,
            horizon_s: 0.02,
            seed,
            ..FleetScenario::default()
        };
        let unbatched = FleetScenario { max_batch: 1, ..base.clone() }.simulate().unwrap();
        let batched = FleetScenario { max_batch: batch, ..base }.simulate().unwrap();
        // identical arrivals, both drain fully
        prop_assert_eq!(unbatched.completed, batched.completed);
        prop_assert!(
            batched.throughput_rps >= unbatched.throughput_rps * (1.0 - 1e-9),
            "batch {} throughput {} < batch-1 throughput {}",
            batch, batched.throughput_rps, unbatched.throughput_rps
        );
        // and batching can only help tail latency or leave it unchanged
        // under saturation — but never break conservation
        prop_assert_eq!(batched.offered, unbatched.offered);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn traced_chaos_runs_are_byte_identical_across_shards_and_threads(
        seed in 0u64..1_000,
    ) {
        // The telemetry determinism contract, for all four named chaos
        // scenarios: the rendered JSONL trace — every event, every
        // (cell, seq) id, every formatted f64 timestamp — is a pure
        // function of the scenario, whatever (shards, threads) executed
        // it. Cell decomposition never depends on who runs the cells,
        // so neither does the trace.
        let base = chaos_base(seed);
        let cfg = ChaosConfig { seed, ..ChaosConfig::default() };
        let tcfg = TraceConfig { stride: 16, ..TraceConfig::default() };
        for kind in ChaosKind::ALL {
            let scenario = FleetScenario {
                faults: chaos_timeline(kind, &base.instances, base.horizon_s, &cfg),
                ..base.clone()
            };
            let (oracle_report, oracle_trace) =
                scenario.simulate_sharded_traced(1, 1, &tcfg).unwrap();
            let oracle_jsonl = oracle_trace.render_jsonl();
            prop_assert!(
                oracle_trace.profile.events_recorded > 0,
                "{kind:?}: the sampler must catch something at stride 16"
            );
            // tracing is observation only: the report is the untraced one
            let plain = scenario.simulate_sharded(1, 1).unwrap();
            prop_assert_eq!(&oracle_report, &plain, "{:?}: sink must not steer", kind);
            for shards in [1usize, 2, 4, 8] {
                for threads in [1usize, 2, 8] {
                    let (report, trace) = scenario
                        .simulate_sharded_traced(shards, threads, &tcfg)
                        .unwrap();
                    prop_assert_eq!(&report, &oracle_report, "{:?}", kind);
                    prop_assert_eq!(
                        &trace.render_jsonl(), &oracle_jsonl,
                        "{:?} trace diverged at shards={} threads={}",
                        kind, shards, threads
                    );
                }
            }
        }
    }

    #[test]
    fn sampled_traces_conserve_every_request(seed in 0u64..1_000) {
        // Event conservation per traced request: each sampled id tells a
        // complete, consistent lifecycle story. Stride 1 traces every
        // request, so this is the full engine ledger replayed from the
        // event stream.
        use pcnna_fleet::telemetry::NO_REQUEST;
        use std::collections::HashMap;
        let base = chaos_base(seed);
        let cfg = ChaosConfig { seed, ..ChaosConfig::default() };
        let tcfg = TraceConfig {
            stride: 1,
            max_per_class: u64::MAX,
            ..TraceConfig::default()
        };
        for kind in ChaosKind::ALL {
            let scenario = FleetScenario {
                faults: chaos_timeline(kind, &base.instances, base.horizon_s, &cfg),
                ..base.clone()
            };
            let (report, trace) = scenario.simulate_sharded_traced(4, 2, &tcfg).unwrap();
            let mut per_id: HashMap<u64, Vec<TraceEventKind>> = HashMap::new();
            for ev in &trace.events {
                if ev.id != NO_REQUEST {
                    per_id.entry(ev.id).or_default().push(ev.kind);
                }
            }
            let (mut enqueued, mut completed, mut shed) = (0u64, 0u64, 0u64);
            for (id, kinds) in &per_id {
                let n = |k: TraceEventKind| kinds.iter().filter(|&&x| x == k).count() as u64;
                prop_assert_eq!(n(TraceEventKind::Arrive), 1, "{}: one arrival", id);
                prop_assert_eq!(kinds[0], TraceEventKind::Arrive, "{}: arrival first", id);
                let enq = n(TraceEventKind::Enqueue);
                let refused = n(TraceEventKind::Refuse);
                prop_assert_eq!(enq + refused, 1, "{}: enqueue xor refuse", id);
                if refused == 1 {
                    prop_assert_eq!(kinds.len(), 2, "{}: refusal is terminal", id);
                    continue;
                }
                // every dispatch ends in exactly one completion or one
                // failover-abort (which requeues for a later dispatch)
                prop_assert_eq!(
                    n(TraceEventKind::Dispatch),
                    n(TraceEventKind::Complete) + n(TraceEventKind::Failover),
                    "{}: dispatches resolve", id
                );
                let done = n(TraceEventKind::Complete);
                let dropped = n(TraceEventKind::Shed);
                prop_assert!(done + dropped <= 1, "{id}: at most one terminal state");
                enqueued += 1;
                completed += done;
                shed += dropped;
            }
            // aggregate ledger: the event stream reproduces the report
            prop_assert_eq!(per_id.len() as u64, report.offered, "{:?}", kind);
            prop_assert_eq!(enqueued, report.admitted, "{:?}", kind);
            prop_assert_eq!(completed, report.completed, "{:?}", kind);
            prop_assert_eq!(shed, report.resilience.shed, "{:?}", kind);
            prop_assert_eq!(
                enqueued - completed - shed,
                report.resilience.unserved,
                "{:?}: stranded = unserved", kind
            );
        }
    }

    #[test]
    fn per_class_histograms_merge_to_the_fleet_summary(seed in 0u64..1_000) {
        // Satellite of the telemetry layer: every class report now
        // carries its full latency histogram, exact under merge — the
        // bin-wise sum of the per-class histograms must reproduce the
        // fleet-wide latency summary, and the sharded run's per-class
        // histograms must equal the whole-run oracle's bin for bin.
        let base = chaos_base(seed);
        let cfg = ChaosConfig { seed, ..ChaosConfig::default() };
        for kind in ChaosKind::ALL {
            let scenario = FleetScenario {
                faults: chaos_timeline(kind, &base.instances, base.horizon_s, &cfg),
                ..base.clone()
            };
            let whole = scenario.simulate_sharded(1, 1).unwrap();
            let parts = scenario.simulate_sharded(4, 2).unwrap();
            let mut merged = LatencyHistogram::new();
            for (c, class) in parts.per_class.iter().enumerate() {
                prop_assert_eq!(
                    &class.histogram, &whole.per_class[c].histogram,
                    "{:?}: class {} histogram diverged under sharding", kind, c
                );
                prop_assert_eq!(class.histogram.count(), class.completed, "{:?}", kind);
                prop_assert_eq!(
                    &LatencySummary::from_histogram(&class.histogram), &class.latency,
                    "{:?}: summary must be derived from the carried histogram", kind
                );
                merged.merge(&class.histogram);
            }
            prop_assert_eq!(merged.count(), whole.completed, "{:?}", kind);
            prop_assert_eq!(
                &LatencySummary::from_histogram(&merged), &whole.latency,
                "{:?}: merge of the parts must equal the whole", kind
            );
        }
    }
}
