//! Property-based contracts of the scenario DSL (ISSUE 8 satellite):
//!
//! * serde round-trip is lossless — spec → JSON text → spec is
//!   identity, and re-rendering reproduces the bytes;
//! * a round-tripped scenario simulates **bit-identically** to the
//!   original, across shard counts {1, 4};
//! * the shrinker turns a seeded known-bad scenario into a stable,
//!   replayable repro file.
//!
//! The strategy samples the same space the fuzz campaign draws from
//! ([`ScenarioGen`]), so these properties cover exactly the scenarios
//! CI generates — arrival processes, class mixes, heterogeneous
//! instance groups, fault timelines (explicit and chaos), and control
//! sections alike.

use proptest::prelude::*;

use pcnna_fleet::prelude::*;
use pcnna_fleet::scenario::ScenarioSpec;

/// The generative sampler as a proptest strategy: any `(seed, index)`
/// pair maps to a valid spec, so the property space is the campaign's.
fn specs() -> impl Strategy<Value = ScenarioSpec> {
    (0u64..1_000_000, 0u64..32).prop_map(|(seed, index)| ScenarioGen::new(seed).generate(index))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_is_lossless(spec in specs()) {
        let text = spec.render();
        let back = ScenarioSpec::parse(&text).expect("rendered spec re-parses");
        prop_assert_eq!(&back, &spec);
        // Rendering is canonical: a second trip reproduces the bytes.
        prop_assert_eq!(back.render(), text);
    }

    #[test]
    fn roundtripped_spec_simulates_bit_identically_across_shards(spec in specs()) {
        let back = ScenarioSpec::parse(&spec.render()).expect("rendered spec re-parses");
        let original = spec.compile().expect("generated spec compiles").scenario;
        let replayed = back.compile().expect("round-tripped spec compiles").scenario;
        prop_assert_eq!(&replayed, &original);
        for shards in [1usize, 4] {
            let a = original.simulate_sharded(shards, shards).expect("valid scenario");
            let b = replayed.simulate_sharded(shards, shards).expect("valid scenario");
            prop_assert_eq!(
                a, b,
                "round-tripped scenario diverged at shards={}", shards
            );
        }
    }
}

/// A deliberately breakable invariant ("the fleet never hard-fails"),
/// used to drive the shrinker the way a real oracle violation would.
struct NoHardFailures;

impl Oracle for NoHardFailures {
    fn name(&self) -> &'static str {
        "no-hard-failures"
    }

    fn check(&self, run: &RunArtifacts<'_>) -> Result<(), String> {
        if run.sharded.resilience.hard_failures > 0 {
            Err(format!(
                "{} hard failures",
                run.sharded.resilience.hard_failures
            ))
        } else {
            Ok(())
        }
    }
}

#[test]
fn known_bad_scenario_minimizes_to_a_stable_replayable_file() {
    let oracles: Vec<Box<dyn Oracle>> = vec![Box::new(NoHardFailures)];
    let generator = ScenarioGen::new(7);
    let victim = (0..64)
        .map(|i| generator.generate(i))
        .find(|s| !run_and_check(s, &oracles).violations.is_empty())
        .expect("the sample space contains hard failures");
    let minimized = shrink(&victim, &oracles);
    // Stable: shrinking twice from the same victim lands on the same
    // spec, and the minimum is a fixpoint.
    assert_eq!(shrink(&victim, &oracles), minimized);
    assert_eq!(shrink(&minimized, &oracles), minimized);
    // Replayable: the file form reproduces the violation.
    let replayed = ScenarioSpec::parse(&minimized.render()).expect("repro file parses");
    assert_eq!(replayed, minimized);
    assert!(!run_and_check(&replayed, &oracles).violations.is_empty());
}
