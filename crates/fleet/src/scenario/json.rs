//! Minimal deterministic JSON for scenario files.
//!
//! The workspace's `serde` is an offline no-op facade (its derives
//! expand to nothing), so the scenario format carries its own codec:
//! a small value model, a strict parser, and a deterministic renderer.
//! Two properties matter more than generality here:
//!
//! * **Losslessness.** Floats render via `f64`'s `Debug` formatting,
//!   which is shortest-roundtrip (`render(x).parse::<f64>() == x`
//!   exactly) and always distinguishable from an integer token (it
//!   always emits a `.` or an exponent). Integers keep a dedicated
//!   [`Json::Int`] variant so `u64` seeds above 2^53 survive a round
//!   trip bit-for-bit.
//! * **Byte determinism.** Objects preserve insertion order and the
//!   renderer is a pure function of the value, so the same spec always
//!   renders the same bytes — the contract the fuzz campaign's
//!   byte-identical artifacts and the committed scenario files rely on.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number token without `.` or exponent (lossless for `u64`).
    Int(i128),
    /// A number token with `.` or exponent.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (preserved by the renderer).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object (`None` on other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; may round above 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a `u64` (exact integers only).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a `usize` (exact integers only).
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match *self {
            Json::Int(i) => usize::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as a `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value compactly (no whitespace) and
    /// deterministically: same value ⇒ same bytes.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders with two-space indentation (committed scenario files
    /// are meant to be read and edited by hand). Deterministic like
    /// [`render`](Self::render).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => out.push_str(&render_f64(*n)),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    render_str(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a reason string with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Shortest-roundtrip float rendering. `Debug` always emits a `.` or
/// an exponent, so a rendered [`Json::Num`] never re-parses as
/// [`Json::Int`]. Non-finite values have no JSON spelling; the specs
/// this module serializes are validated finite first, so `null` is a
/// defensive fallback, not a supported encoding.
fn render_f64(n: f64) -> String {
    if n.is_finite() {
        format!("{n:?}")
    } else {
        "null".to_owned()
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?} at byte {}", self.pos));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let c = char::from_u32(hex).ok_or_else(|| {
                                format!("\\u escape is not a scalar at byte {}", self.pos)
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if fractional {
            let n: f64 = token
                .parse()
                .map_err(|_| format!("invalid number {token:?} at byte {start}"))?;
            if !n.is_finite() {
                return Err(format!("non-finite number {token:?} at byte {start}"));
            }
            Ok(Json::Num(n))
        } else {
            let i: i128 = token
                .parse()
                .map_err(|_| format!("invalid integer {token:?} at byte {start}"))?;
            Ok(Json::Int(i))
        }
    }
}

/// `Json::Num`, from a finite float.
#[must_use]
pub fn num(n: f64) -> Json {
    Json::Num(n)
}

/// `Json::Int`, from a `u64` (lossless; seeds can exceed 2^53).
#[must_use]
pub fn int(i: u64) -> Json {
    Json::Int(i128::from(i))
}

/// `Json::Int`, from a `usize`.
#[must_use]
pub fn uint(i: usize) -> Json {
    Json::Int(i as i128)
}

/// `Json::Str`, from anything string-like.
#[must_use]
pub fn str(s: impl Into<String>) -> Json {
    Json::Str(s.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trips_structures() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"e":"x\ny"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        // pretty rendering parses back to the same value
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn floats_are_shortest_roundtrip_and_typed() {
        for x in [
            0.002,
            1.0 / 3.0,
            5e-3,
            1e300,
            -0.0,
            45_000.5,
            f64::MIN_POSITIVE,
        ] {
            let rendered = render_f64(x);
            let back: f64 = rendered.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{rendered}");
            // a rendered float never re-parses as an integer token
            assert!(matches!(Json::parse(&rendered).unwrap(), Json::Num(_)));
        }
        // whole floats keep their ".0" so the Num/Int distinction survives
        assert_eq!(render_f64(5.0), "5.0");
    }

    #[test]
    fn big_integers_survive_exactly() {
        let seed = u64::MAX - 12345;
        let v = int(seed);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.as_u64(), Some(seed));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "[1e999]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::Obj(vec![("z".to_owned(), int(1)), ("a".to_owned(), int(2))]);
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn accessors_select_the_right_variants() {
        let v = Json::parse(r#"{"i":7,"f":7.5,"s":"x","b":false,"a":[1]}"#).unwrap();
        assert_eq!(v.get("i").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("i").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(7.5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Int(-1).as_u64(), None, "negatives are not u64");
    }
}
