//! Declarative scenario files: a serde-style JSON format for fleet
//! experiments.
//!
//! A [`ScenarioSpec`] is the on-disk description of one serving
//! experiment: arrival process, class mix with SLOs, heterogeneous
//! instance configs, a fault timeline (explicit [`FaultAction`]
//! sequences or a named chaos generator reference), and an optional
//! closed-loop control section. [`ScenarioSpec::compile`] turns a
//! validated spec into the runnable [`FleetScenario`] (+
//! [`ControlConfig`] + policy) bundle; [`ScenarioSpec::render`] /
//! [`ScenarioSpec::parse`] round-trip it through JSON **losslessly**
//! (floats are shortest-roundtrip, integers exact — see
//! [`json`]) and **deterministically** (same spec ⇒ same bytes).
//!
//! The workspace's vendored `serde` facade is inert (its derives
//! expand to nothing), so this module carries its own codec in
//! [`json`]; the `#[derive(Serialize, Deserialize)]` annotations on
//! the engine types remain for real-serde compatibility.
//!
//! Parsing is strict in the `try_from` style: unknown keys, missing
//! required fields, non-finite or negative times, out-of-range
//! instance indices, non-monotone per-instance fault sequences, and
//! empty class mixes are all rejected with a reason — nothing is
//! silently defaulted except fields documented as optional.
//!
//! ## Format reference
//!
//! ```json
//! {
//!   "name": "heat-wave",
//!   "seed": 7,
//!   "horizon_s": 0.05,
//!   "arrival": {"poisson": {"rate_rps": 45000.0}},
//!   "policy": "network-affinity",
//!   "classes": [
//!     {"network": "alexnet", "slo_s": 0.004, "weight": 1.0},
//!     {"network": "lenet5", "slo_s": 0.001, "weight": 3.0}
//!   ],
//!   "instances": [{"count": 4}],
//!   "max_batch": 32,
//!   "queue_capacity": 100000,
//!   "resident_weights": true,
//!   "limits": {"max_ambient_excursion_k": 0.2, "min_laser_power_factor": 0.5},
//!   "faults": {"chaos": {"kind": "heat-wave", "recalibration_s": 0.002, "seed": 7}}
//! }
//! ```
//!
//! `faults` may instead list explicit events:
//!
//! ```json
//! {"events": [
//!   {"at_s": 0.01, "instance": 0, "action": "fail"},
//!   {"at_s": 0.02, "instance": 0, "action": {"recalibrate": {"duration_s": 0.002}}},
//!   {"at_s": 0.03, "instance": 1, "action": {"degrade": {"ambient_delta_k": 0.5}}}
//! ]}
//! ```
//!
//! and an optional `control` section closes the loop:
//!
//! ```json
//! {"control": {
//!   "policy": {"kind": "reactive", "scale_up_load": 0.75},
//!   "config": {"window_s": 0.005, "boot_s": 0.004, "min_active": 1,
//!              "initial_active": 4, "max_step": 4, "idle_power_w": 2.0}
//! }}
//! ```
//!
//! Required fields: `name`, `classes`, `arrival`, `instances`,
//! `horizon_s`. Everything else defaults as [`FleetScenario::default`]
//! does (`seed` 0, `policy` `"fifo"`, `max_batch` 32,
//! `queue_capacity` 10000, `resident_weights` true, default limits,
//! no faults, no control).

pub mod json;

use crate::control::policy::{ControlPolicy, Hold, PredictivePolicy, ReactivePolicy};
use crate::control::ControlConfig;
use crate::engine::FleetScenario;
use crate::faults::{
    chaos_timeline, ChaosConfig, ChaosKind, FaultAction, FaultEvent, FaultTimeline,
};
use crate::scheduler::Policy;
use crate::workload::{ArrivalProcess, NetworkClass};
use crate::{FleetError, Result};
use json::Json;
use pcnna_core::config::PcnnaConfig;
use pcnna_photonics::degradation::{DegradationLimits, HealthState};

/// One served class in a scenario file: a model-zoo network name plus
/// its SLO and traffic weight.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Zoo network name: `"alexnet"`, `"lenet5"`, or `"vgg16"`.
    pub network: String,
    /// Latency SLO, seconds.
    pub slo_s: f64,
    /// Relative traffic weight (need not be normalized).
    pub weight: f64,
    /// Accuracy SLO: minimum quoted top-1 an instance must sustain to
    /// serve the class when the scenario's `accuracy_routing` is on
    /// (default `0.0` = any accuracy is acceptable). Must be in
    /// `[0, 1]`.
    pub min_accuracy: f64,
}

impl ClassSpec {
    fn to_class(&self) -> Option<NetworkClass> {
        let class = match self.network.as_str() {
            "alexnet" => NetworkClass::alexnet(self.slo_s, self.weight),
            "lenet5" => NetworkClass::lenet5(self.slo_s, self.weight),
            "vgg16" => NetworkClass::vgg16(self.slo_s, self.weight),
            _ => return None,
        };
        Some(class.with_min_accuracy(self.min_accuracy))
    }
}

/// Zoo networks a [`ClassSpec`] may reference.
pub const KNOWN_NETWORKS: [&str; 3] = ["alexnet", "lenet5", "vgg16"];

/// A group of identical accelerator instances, described as knob
/// overrides on [`PcnnaConfig::default`]. Omitted knobs keep the
/// paper's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    /// How many instances this group expands to.
    pub count: usize,
    /// Input DAC channels (default 10).
    pub input_dacs: Option<usize>,
    /// Output ADC channels (default 32).
    pub adcs: Option<usize>,
    /// Weight DAC channels (default 1).
    pub weight_dacs: Option<usize>,
    /// Microring pitch, meters.
    pub ring_pitch_m: Option<f64>,
    /// Bytes per transferred value (default 2).
    pub bytes_per_value: Option<u64>,
}

impl InstanceSpec {
    /// A group of `count` default-config instances.
    #[must_use]
    pub fn defaults(count: usize) -> Self {
        InstanceSpec {
            count,
            input_dacs: None,
            adcs: None,
            weight_dacs: None,
            ring_pitch_m: None,
            bytes_per_value: None,
        }
    }

    fn to_config(&self) -> PcnnaConfig {
        let mut c = PcnnaConfig::default();
        if let Some(n) = self.input_dacs {
            c = c.with_input_dacs(n);
        }
        if let Some(n) = self.adcs {
            c = c.with_adcs(n);
        }
        if let Some(n) = self.weight_dacs {
            c = c.with_weight_dacs(n);
        }
        if let Some(p) = self.ring_pitch_m {
            c = c.with_ring_pitch(p);
        }
        if let Some(b) = self.bytes_per_value {
            c = c.with_bytes_per_value(b);
        }
        c
    }
}

/// The fault section of a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// An explicit event list (any [`FaultAction`] sequence).
    Events(Vec<FaultEvent>),
    /// A named chaos generator reference, expanded at compile time
    /// with the spec's `limits`.
    Chaos {
        /// Which named scenario to generate.
        kind: ChaosKind,
        /// Recalibration window passed to the generator, seconds.
        recalibration_s: f64,
        /// Generator seed.
        seed: u64,
    },
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::Events(Vec::new())
    }
}

/// The control policy section of a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// The open-loop baseline.
    Hold,
    /// [`ReactivePolicy`] with its public knobs.
    Reactive {
        /// Load factor above which the fleet scales up.
        scale_up_load: f64,
        /// Load factor below which the fleet may scale down.
        scale_down_load: f64,
        /// p99 fraction of the tightest SLO that arms the overload guard.
        p99_guard_frac: f64,
        /// Worst quoted top-1 accuracy below which the guard presses
        /// (`0.0` = never).
        accuracy_guard: f64,
        /// Consecutive low-load windows before each scale-down.
        cooldown_windows: u32,
    },
    /// [`PredictivePolicy`] with its public knobs.
    Predictive {
        /// Level smoothing factor α.
        alpha: f64,
        /// Trend smoothing factor β.
        beta: f64,
        /// Utilization the forecast is provisioned at.
        target_util: f64,
        /// p99 fraction of the tightest SLO that arms the overload guard.
        p99_guard_frac: f64,
        /// Worst quoted top-1 accuracy below which the guard presses
        /// (`0.0` = never).
        accuracy_guard: f64,
    },
}

impl PolicySpec {
    /// The defaults for a named policy kind, or `None` for an unknown
    /// name.
    #[must_use]
    pub fn from_kind(kind: &str) -> Option<PolicySpec> {
        match kind {
            "hold" => Some(PolicySpec::Hold),
            "reactive" => {
                let d = ReactivePolicy::new();
                Some(PolicySpec::Reactive {
                    scale_up_load: d.scale_up_load,
                    scale_down_load: d.scale_down_load,
                    p99_guard_frac: d.p99_guard_frac,
                    accuracy_guard: d.accuracy_guard,
                    cooldown_windows: d.cooldown_windows,
                })
            }
            "predictive" => {
                let d = PredictivePolicy::new();
                Some(PolicySpec::Predictive {
                    alpha: d.alpha,
                    beta: d.beta,
                    target_util: d.target_util,
                    p99_guard_frac: d.p99_guard_frac,
                    accuracy_guard: d.accuracy_guard,
                })
            }
            _ => None,
        }
    }

    /// The policy's stable kind name.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            PolicySpec::Hold => "hold",
            PolicySpec::Reactive { .. } => "reactive",
            PolicySpec::Predictive { .. } => "predictive",
        }
    }

    /// Builds the runnable policy (fresh internal state).
    #[must_use]
    pub fn build(&self) -> Box<dyn ControlPolicy> {
        match *self {
            PolicySpec::Hold => Box::new(Hold),
            PolicySpec::Reactive {
                scale_up_load,
                scale_down_load,
                p99_guard_frac,
                accuracy_guard,
                cooldown_windows,
            } => {
                let mut p = ReactivePolicy::new();
                p.scale_up_load = scale_up_load;
                p.scale_down_load = scale_down_load;
                p.p99_guard_frac = p99_guard_frac;
                p.accuracy_guard = accuracy_guard;
                p.cooldown_windows = cooldown_windows;
                Box::new(p)
            }
            PolicySpec::Predictive {
                alpha,
                beta,
                target_util,
                p99_guard_frac,
                accuracy_guard,
            } => {
                let mut p = PredictivePolicy::new();
                p.alpha = alpha;
                p.beta = beta;
                p.target_util = target_util;
                p.p99_guard_frac = p99_guard_frac;
                p.accuracy_guard = accuracy_guard;
                Box::new(p)
            }
        }
    }

    fn validate(&self) -> core::result::Result<(), String> {
        let frac = |label: &str, v: f64| {
            if v.is_finite() && v > 0.0 && v <= 1.0 {
                Ok(())
            } else {
                Err(format!("{label} must be in (0, 1], got {v}"))
            }
        };
        let unit = |label: &str, v: f64| {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{label} must be in [0, 1], got {v}"))
            }
        };
        match *self {
            PolicySpec::Hold => Ok(()),
            PolicySpec::Reactive {
                scale_up_load,
                scale_down_load,
                p99_guard_frac,
                accuracy_guard,
                cooldown_windows,
            } => {
                if !(scale_up_load > 0.0) || !scale_up_load.is_finite() {
                    return Err(format!(
                        "scale_up_load must be positive, got {scale_up_load}"
                    ));
                }
                if !(scale_down_load >= 0.0) || scale_down_load >= scale_up_load {
                    return Err(format!(
                        "scale_down_load must be in [0, scale_up_load), got {scale_down_load}"
                    ));
                }
                frac("p99_guard_frac", p99_guard_frac)?;
                unit("accuracy_guard", accuracy_guard)?;
                if cooldown_windows == 0 {
                    return Err("cooldown_windows must be at least 1".to_owned());
                }
                Ok(())
            }
            PolicySpec::Predictive {
                alpha,
                beta,
                target_util,
                p99_guard_frac,
                accuracy_guard,
            } => {
                frac("alpha", alpha)?;
                frac("beta", beta)?;
                frac("target_util", target_util)?;
                frac("p99_guard_frac", p99_guard_frac)?;
                unit("accuracy_guard", accuracy_guard)
            }
        }
    }
}

/// The closed-loop section of a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlSpec {
    /// Which policy drives the loop, with its knobs.
    pub policy: PolicySpec,
    /// The loop parameters.
    pub config: ControlConfig,
}

/// A complete, serializable scenario description. See the
/// [module docs](self) for the JSON format.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (lands in reports, artifact records, and
    /// regression file names; restricted to `[A-Za-z0-9._-]`).
    pub name: String,
    /// The served class mix.
    pub classes: Vec<ClassSpec>,
    /// Request arrival process.
    pub arrival: ArrivalProcess,
    /// Batching admission policy.
    pub policy: Policy,
    /// Instance groups, expanded in order into the fleet.
    pub instances: Vec<InstanceSpec>,
    /// Largest batch a single dispatch may carry.
    pub max_batch: u64,
    /// Admission bound (queue depth beyond which arrivals are rejected).
    pub queue_capacity: usize,
    /// Weight-residency assumption (see [`FleetScenario::resident_weights`]).
    pub resident_weights: bool,
    /// Whether dispatch honors the classes' `min_accuracy` floors (see
    /// [`FleetScenario::accuracy_routing`]; default `false`).
    pub accuracy_routing: bool,
    /// Arrival horizon, seconds.
    pub horizon_s: f64,
    /// RNG seed (arrivals + class sampling).
    pub seed: u64,
    /// Serviceability envelope (also fed to the chaos generator).
    pub limits: DegradationLimits,
    /// The fault section.
    pub faults: FaultSpec,
    /// Optional closed-loop section.
    pub control: Option<ControlSpec>,
}

/// A compiled scenario: the runnable engine inputs a spec expands to.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// The engine scenario (classes, instances, and faults expanded).
    pub scenario: FleetScenario,
    /// The control section, if present ([`ControlSpec::policy`]
    /// builds a fresh policy per run).
    pub control: Option<ControlSpec>,
}

fn invalid(reason: String) -> FleetError {
    FleetError::InvalidScenario { reason }
}

/// The stable scheduling-policy names used in scenario files.
#[must_use]
pub fn policy_name(policy: Policy) -> &'static str {
    match policy {
        Policy::Fifo => "fifo",
        Policy::EarliestDeadlineFirst => "edf",
        Policy::NetworkAffinity => "network-affinity",
    }
}

/// Parses a scheduling-policy name ([`policy_name`]'s inverse).
#[must_use]
pub fn policy_from_name(name: &str) -> Option<Policy> {
    match name {
        "fifo" => Some(Policy::Fifo),
        "edf" => Some(Policy::EarliestDeadlineFirst),
        "network-affinity" => Some(Policy::NetworkAffinity),
        _ => None,
    }
}

impl ScenarioSpec {
    /// Validates every field of the spec (strict `try_from`-style:
    /// the checks [`compile`](Self::compile) relies on, surfaced with
    /// reasons before anything runs).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidScenario`] with the violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(invalid("scenario name must be non-empty".to_owned()));
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        {
            return Err(invalid(format!(
                "scenario name {:?} must use only [A-Za-z0-9._-]",
                self.name
            )));
        }
        if self.classes.is_empty() {
            return Err(invalid("class mix must be non-empty".to_owned()));
        }
        for c in &self.classes {
            if !KNOWN_NETWORKS.contains(&c.network.as_str()) {
                return Err(invalid(format!(
                    "unknown network {:?} (known: {})",
                    c.network,
                    KNOWN_NETWORKS.join(", ")
                )));
            }
            if !(c.slo_s > 0.0) || !c.slo_s.is_finite() {
                return Err(invalid(format!(
                    "class {} slo_s must be finite and positive, got {}",
                    c.network, c.slo_s
                )));
            }
            if !(c.weight > 0.0) || !c.weight.is_finite() {
                return Err(invalid(format!(
                    "class {} weight must be finite and positive, got {}",
                    c.network, c.weight
                )));
            }
            if !c.min_accuracy.is_finite() || !(0.0..=1.0).contains(&c.min_accuracy) {
                return Err(invalid(format!(
                    "class {} min_accuracy must be in [0, 1], got {}",
                    c.network, c.min_accuracy
                )));
            }
        }
        self.arrival.validate().map_err(invalid)?;
        if self.instances.is_empty() {
            return Err(invalid("instance list must be non-empty".to_owned()));
        }
        for (g, spec) in self.instances.iter().enumerate() {
            if spec.count == 0 {
                return Err(invalid(format!("instance group {g} has count 0")));
            }
            for (label, v) in [
                ("input_dacs", spec.input_dacs),
                ("adcs", spec.adcs),
                ("weight_dacs", spec.weight_dacs),
            ] {
                if v == Some(0) {
                    return Err(invalid(format!(
                        "instance group {g} {label} must be at least 1"
                    )));
                }
            }
            if let Some(p) = spec.ring_pitch_m {
                if !(p > 0.0) || !p.is_finite() {
                    return Err(invalid(format!(
                        "instance group {g} ring_pitch_m must be finite and positive, got {p}"
                    )));
                }
            }
            if spec.bytes_per_value == Some(0) {
                return Err(invalid(format!(
                    "instance group {g} bytes_per_value must be at least 1"
                )));
            }
        }
        if self.max_batch == 0 {
            return Err(invalid("max_batch must be at least 1".to_owned()));
        }
        if self.queue_capacity == 0 {
            return Err(invalid("queue_capacity must be at least 1".to_owned()));
        }
        if !(self.horizon_s > 0.0) || !self.horizon_s.is_finite() {
            return Err(invalid(format!(
                "horizon_s must be finite and positive, got {}",
                self.horizon_s
            )));
        }
        if !(self.limits.max_ambient_excursion_k >= 0.0)
            || !self.limits.max_ambient_excursion_k.is_finite()
            || !(0.0..=1.0).contains(&self.limits.min_laser_power_factor)
        {
            return Err(invalid(format!(
                "degradation limits out of range: {:?}",
                self.limits
            )));
        }
        let n_instances = self.n_instances();
        match &self.faults {
            FaultSpec::Events(events) => {
                FaultTimeline::try_from_events(events.clone(), n_instances)
                    .map_err(|e| invalid(format!("fault timeline: {e}")))?;
                // The file's per-instance order is the replay order for
                // same-instant events; require it monotone so what you
                // read is what runs.
                let mut last_at = vec![f64::NEG_INFINITY; n_instances];
                for (k, e) in events.iter().enumerate() {
                    if e.at_s < last_at[e.instance] {
                        return Err(invalid(format!(
                            "fault event {k} at t={} precedes an earlier event for \
                             instance {} — per-instance event order must be monotone",
                            e.at_s, e.instance
                        )));
                    }
                    last_at[e.instance] = e.at_s;
                }
            }
            FaultSpec::Chaos {
                recalibration_s, ..
            } => {
                if !(*recalibration_s > 0.0) || !recalibration_s.is_finite() {
                    return Err(invalid(format!(
                        "chaos recalibration_s must be finite and positive, got {recalibration_s}"
                    )));
                }
            }
        }
        if let Some(control) = &self.control {
            control.config.validate()?;
            control
                .policy
                .validate()
                .map_err(|e| invalid(format!("control policy: {e}")))?;
        }
        Ok(())
    }

    /// Total fleet size the instance groups expand to.
    #[must_use]
    pub fn n_instances(&self) -> usize {
        self.instances.iter().map(|g| g.count).sum()
    }

    /// Expands and validates the spec into runnable engine inputs.
    ///
    /// Deterministic: the same spec always compiles to the same
    /// [`FleetScenario`] (chaos references expand through the seeded
    /// generator).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidScenario`] from
    /// [`validate`](Self::validate) or the engine's own
    /// [`FleetScenario::validate`].
    pub fn compile(&self) -> Result<CompiledScenario> {
        self.validate()?;
        let classes: Vec<NetworkClass> = self
            .classes
            .iter()
            .map(|c| c.to_class().expect("validated network name"))
            .collect();
        let instances: Vec<PcnnaConfig> = self
            .instances
            .iter()
            .flat_map(|g| std::iter::repeat_n(g.to_config(), g.count))
            .collect();
        let faults = match &self.faults {
            FaultSpec::Events(events) => {
                FaultTimeline::try_from_events(events.clone(), instances.len())
                    .map_err(|e| invalid(format!("fault timeline: {e}")))?
            }
            FaultSpec::Chaos {
                kind,
                recalibration_s,
                seed,
            } => chaos_timeline(
                *kind,
                &instances,
                self.horizon_s,
                &ChaosConfig {
                    limits: self.limits,
                    recalibration_s: *recalibration_s,
                    seed: *seed,
                },
            ),
        };
        let scenario = FleetScenario {
            classes,
            arrival: self.arrival,
            policy: self.policy,
            instances,
            max_batch: self.max_batch,
            queue_capacity: self.queue_capacity,
            resident_weights: self.resident_weights,
            accuracy_routing: self.accuracy_routing,
            horizon_s: self.horizon_s,
            seed: self.seed,
            faults,
            limits: self.limits,
            ..FleetScenario::default()
        };
        scenario.validate()?;
        Ok(CompiledScenario {
            scenario,
            control: self.control.clone(),
        })
    }

    /// Serializes the spec to its JSON value (every field written, in
    /// a fixed order — the deterministic form [`render`](Self::render)
    /// emits).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("name".into(), json::str(&self.name)),
            ("seed".into(), json::int(self.seed)),
            ("horizon_s".into(), json::num(self.horizon_s)),
            ("arrival".into(), arrival_to_json(&self.arrival)),
            ("policy".into(), json::str(policy_name(self.policy))),
            (
                "classes".into(),
                Json::Arr(
                    self.classes
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("network".into(), json::str(&c.network)),
                                ("slo_s".into(), json::num(c.slo_s)),
                                ("weight".into(), json::num(c.weight)),
                                ("min_accuracy".into(), json::num(c.min_accuracy)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "instances".into(),
                Json::Arr(self.instances.iter().map(instance_to_json).collect()),
            ),
            ("max_batch".into(), json::int(self.max_batch)),
            ("queue_capacity".into(), json::uint(self.queue_capacity)),
            ("resident_weights".into(), Json::Bool(self.resident_weights)),
            ("accuracy_routing".into(), Json::Bool(self.accuracy_routing)),
            (
                "limits".into(),
                Json::Obj(vec![
                    (
                        "max_ambient_excursion_k".into(),
                        json::num(self.limits.max_ambient_excursion_k),
                    ),
                    (
                        "min_laser_power_factor".into(),
                        json::num(self.limits.min_laser_power_factor),
                    ),
                ]),
            ),
            ("faults".into(), faults_to_json(&self.faults)),
        ];
        if let Some(control) = &self.control {
            fields.push(("control".into(), control_to_json(control)));
        }
        Json::Obj(fields)
    }

    /// Renders the spec as pretty-printed JSON with a trailing
    /// newline — the committed-scenario-file form. Deterministic:
    /// same spec ⇒ byte-identical output.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Parses a spec from JSON text (strict: unknown keys are errors).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidScenario`] with the parse or
    /// validation failure.
    pub fn parse(text: &str) -> Result<ScenarioSpec> {
        let value = Json::parse(text).map_err(|e| invalid(format!("scenario JSON: {e}")))?;
        ScenarioSpec::from_json(&value)
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidScenario`] for I/O, parse, or
    /// validation failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<ScenarioSpec> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| invalid(format!("cannot read {}: {e}", path.display())))?;
        ScenarioSpec::parse(&text)
    }

    /// Builds a spec from a parsed JSON value (strict; also runs
    /// [`validate`](Self::validate)).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidScenario`] with the reason.
    pub fn from_json(value: &Json) -> Result<ScenarioSpec> {
        let fields = value
            .as_obj()
            .ok_or_else(|| invalid("scenario must be a JSON object".to_owned()))?;
        const KNOWN: [&str; 15] = [
            "name",
            "seed",
            "horizon_s",
            "arrival",
            "policy",
            "classes",
            "instances",
            "max_batch",
            "queue_capacity",
            "resident_weights",
            "accuracy_routing",
            "limits",
            "faults",
            "control",
            "description",
        ];
        for (k, _) in fields {
            if !KNOWN.contains(&k.as_str()) {
                return Err(invalid(format!("unknown scenario key {k:?}")));
            }
        }
        let name = req_str(value, "name")?;
        let seed = opt_u64(value, "seed")?.unwrap_or(0);
        let horizon_s = req_f64(value, "horizon_s")?;
        let arrival = arrival_from_json(
            value
                .get("arrival")
                .ok_or_else(|| invalid("missing \"arrival\"".to_owned()))?,
        )?;
        let policy = match value.get("policy") {
            None => Policy::Fifo,
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| invalid("\"policy\" must be a string".to_owned()))?;
                policy_from_name(name).ok_or_else(|| {
                    invalid(format!(
                        "unknown policy {name:?} (known: fifo, edf, network-affinity)"
                    ))
                })?
            }
        };
        let classes = value
            .get("classes")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("\"classes\" must be an array".to_owned()))?
            .iter()
            .map(class_from_json)
            .collect::<Result<Vec<_>>>()?;
        let instances = value
            .get("instances")
            .and_then(Json::as_arr)
            .ok_or_else(|| invalid("\"instances\" must be an array".to_owned()))?
            .iter()
            .map(instance_from_json)
            .collect::<Result<Vec<_>>>()?;
        let defaults = FleetScenario::default();
        let max_batch = opt_u64(value, "max_batch")?.unwrap_or(defaults.max_batch);
        let queue_capacity = opt_usize(value, "queue_capacity")?.unwrap_or(defaults.queue_capacity);
        let resident_weights = match value.get("resident_weights") {
            None => defaults.resident_weights,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| invalid("\"resident_weights\" must be a bool".to_owned()))?,
        };
        let accuracy_routing = match value.get("accuracy_routing") {
            None => defaults.accuracy_routing,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| invalid("\"accuracy_routing\" must be a bool".to_owned()))?,
        };
        let limits = match value.get("limits") {
            None => DegradationLimits::default(),
            Some(v) => limits_from_json(v)?,
        };
        let faults = match value.get("faults") {
            None => FaultSpec::default(),
            Some(v) => faults_from_json(v)?,
        };
        let control = match value.get("control") {
            None => None,
            Some(v) => Some(control_from_json(v)?),
        };
        let spec = ScenarioSpec {
            name,
            classes,
            arrival,
            policy,
            instances,
            max_batch,
            queue_capacity,
            resident_weights,
            accuracy_routing,
            horizon_s,
            seed,
            limits,
            faults,
            control,
        };
        spec.validate()?;
        Ok(spec)
    }
}

// ---- field helpers -------------------------------------------------

fn req_str(value: &Json, key: &str) -> Result<String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| invalid(format!("missing or non-string {key:?}")))
}

fn req_f64(value: &Json, key: &str) -> Result<f64> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| invalid(format!("missing or non-numeric {key:?}")))
}

fn opt_f64(value: &Json, key: &str) -> Result<Option<f64>> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| invalid(format!("{key:?} must be a number"))),
    }
}

fn opt_u64(value: &Json, key: &str) -> Result<Option<u64>> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| invalid(format!("{key:?} must be a non-negative integer"))),
    }
}

fn opt_usize(value: &Json, key: &str) -> Result<Option<usize>> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| invalid(format!("{key:?} must be a non-negative integer"))),
    }
}

fn reject_unknown(value: &Json, known: &[&str], what: &str) -> Result<()> {
    let fields = value
        .as_obj()
        .ok_or_else(|| invalid(format!("{what} must be a JSON object")))?;
    for (k, _) in fields {
        if !known.contains(&k.as_str()) {
            return Err(invalid(format!("unknown {what} key {k:?}")));
        }
    }
    Ok(())
}

// ---- arrival -------------------------------------------------------

fn arrival_to_json(arrival: &ArrivalProcess) -> Json {
    match *arrival {
        ArrivalProcess::Poisson { rate_rps } => Json::Obj(vec![(
            "poisson".into(),
            Json::Obj(vec![("rate_rps".into(), json::num(rate_rps))]),
        )]),
        ArrivalProcess::Mmpp {
            low_rps,
            high_rps,
            dwell_low_s,
            dwell_high_s,
        } => Json::Obj(vec![(
            "mmpp".into(),
            Json::Obj(vec![
                ("low_rps".into(), json::num(low_rps)),
                ("high_rps".into(), json::num(high_rps)),
                ("dwell_low_s".into(), json::num(dwell_low_s)),
                ("dwell_high_s".into(), json::num(dwell_high_s)),
            ]),
        )]),
        ArrivalProcess::Diurnal {
            base_rps,
            peak_rps,
            period_s,
        } => Json::Obj(vec![(
            "diurnal".into(),
            Json::Obj(vec![
                ("base_rps".into(), json::num(base_rps)),
                ("peak_rps".into(), json::num(peak_rps)),
                ("period_s".into(), json::num(period_s)),
            ]),
        )]),
    }
}

fn arrival_from_json(value: &Json) -> Result<ArrivalProcess> {
    let fields = value
        .as_obj()
        .ok_or_else(|| invalid("\"arrival\" must be a JSON object".to_owned()))?;
    if fields.len() != 1 {
        return Err(invalid(
            "\"arrival\" must have exactly one of: poisson, mmpp, diurnal".to_owned(),
        ));
    }
    let (kind, body) = &fields[0];
    match kind.as_str() {
        "poisson" => {
            reject_unknown(body, &["rate_rps"], "poisson")?;
            Ok(ArrivalProcess::Poisson {
                rate_rps: req_f64(body, "rate_rps")?,
            })
        }
        "mmpp" => {
            reject_unknown(
                body,
                &["low_rps", "high_rps", "dwell_low_s", "dwell_high_s"],
                "mmpp",
            )?;
            Ok(ArrivalProcess::Mmpp {
                low_rps: req_f64(body, "low_rps")?,
                high_rps: req_f64(body, "high_rps")?,
                dwell_low_s: req_f64(body, "dwell_low_s")?,
                dwell_high_s: req_f64(body, "dwell_high_s")?,
            })
        }
        "diurnal" => {
            reject_unknown(body, &["base_rps", "peak_rps", "period_s"], "diurnal")?;
            Ok(ArrivalProcess::Diurnal {
                base_rps: req_f64(body, "base_rps")?,
                peak_rps: req_f64(body, "peak_rps")?,
                period_s: req_f64(body, "period_s")?,
            })
        }
        other => Err(invalid(format!("unknown arrival process {other:?}"))),
    }
}

// ---- classes / instances / limits ----------------------------------

fn class_from_json(value: &Json) -> Result<ClassSpec> {
    reject_unknown(
        value,
        &["network", "slo_s", "weight", "min_accuracy"],
        "class",
    )?;
    Ok(ClassSpec {
        network: req_str(value, "network")?,
        slo_s: req_f64(value, "slo_s")?,
        weight: req_f64(value, "weight")?,
        min_accuracy: opt_f64(value, "min_accuracy")?.unwrap_or(0.0),
    })
}

fn instance_to_json(spec: &InstanceSpec) -> Json {
    let mut fields = vec![("count".into(), json::uint(spec.count))];
    if let Some(n) = spec.input_dacs {
        fields.push(("input_dacs".into(), json::uint(n)));
    }
    if let Some(n) = spec.adcs {
        fields.push(("adcs".into(), json::uint(n)));
    }
    if let Some(n) = spec.weight_dacs {
        fields.push(("weight_dacs".into(), json::uint(n)));
    }
    if let Some(p) = spec.ring_pitch_m {
        fields.push(("ring_pitch_m".into(), json::num(p)));
    }
    if let Some(b) = spec.bytes_per_value {
        fields.push(("bytes_per_value".into(), json::int(b)));
    }
    Json::Obj(fields)
}

fn instance_from_json(value: &Json) -> Result<InstanceSpec> {
    reject_unknown(
        value,
        &[
            "count",
            "input_dacs",
            "adcs",
            "weight_dacs",
            "ring_pitch_m",
            "bytes_per_value",
        ],
        "instance group",
    )?;
    Ok(InstanceSpec {
        count: opt_usize(value, "count")?.unwrap_or(1),
        input_dacs: opt_usize(value, "input_dacs")?,
        adcs: opt_usize(value, "adcs")?,
        weight_dacs: opt_usize(value, "weight_dacs")?,
        ring_pitch_m: opt_f64(value, "ring_pitch_m")?,
        bytes_per_value: opt_u64(value, "bytes_per_value")?,
    })
}

fn limits_from_json(value: &Json) -> Result<DegradationLimits> {
    reject_unknown(
        value,
        &["max_ambient_excursion_k", "min_laser_power_factor"],
        "limits",
    )?;
    let defaults = DegradationLimits::default();
    Ok(DegradationLimits {
        max_ambient_excursion_k: opt_f64(value, "max_ambient_excursion_k")?
            .unwrap_or(defaults.max_ambient_excursion_k),
        min_laser_power_factor: opt_f64(value, "min_laser_power_factor")?
            .unwrap_or(defaults.min_laser_power_factor),
    })
}

// ---- faults --------------------------------------------------------

fn health_to_json(h: &HealthState) -> Json {
    Json::Obj(vec![
        ("ambient_delta_k".into(), json::num(h.ambient_delta_k)),
        ("laser_power_factor".into(), json::num(h.laser_power_factor)),
        (
            "dead_input_channels".into(),
            json::uint(h.dead_input_channels),
        ),
        (
            "dead_output_channels".into(),
            json::uint(h.dead_output_channels),
        ),
    ])
}

fn health_from_json(value: &Json) -> Result<HealthState> {
    reject_unknown(
        value,
        &[
            "ambient_delta_k",
            "laser_power_factor",
            "dead_input_channels",
            "dead_output_channels",
        ],
        "degrade",
    )?;
    let nominal = HealthState::nominal();
    Ok(HealthState {
        ambient_delta_k: opt_f64(value, "ambient_delta_k")?.unwrap_or(nominal.ambient_delta_k),
        laser_power_factor: opt_f64(value, "laser_power_factor")?
            .unwrap_or(nominal.laser_power_factor),
        dead_input_channels: opt_usize(value, "dead_input_channels")?
            .unwrap_or(nominal.dead_input_channels),
        dead_output_channels: opt_usize(value, "dead_output_channels")?
            .unwrap_or(nominal.dead_output_channels),
    })
}

fn action_to_json(action: &FaultAction) -> Json {
    match action {
        FaultAction::Fail => json::str("fail"),
        FaultAction::Degrade(h) => Json::Obj(vec![("degrade".into(), health_to_json(h))]),
        FaultAction::Recalibrate { duration_s } => Json::Obj(vec![(
            "recalibrate".into(),
            Json::Obj(vec![("duration_s".into(), json::num(*duration_s))]),
        )]),
    }
}

fn action_from_json(value: &Json) -> Result<FaultAction> {
    if value.as_str() == Some("fail") {
        return Ok(FaultAction::Fail);
    }
    let fields = value
        .as_obj()
        .ok_or_else(|| invalid("fault action must be \"fail\" or an object".to_owned()))?;
    if fields.len() != 1 {
        return Err(invalid(
            "fault action must have exactly one of: degrade, recalibrate".to_owned(),
        ));
    }
    let (kind, body) = &fields[0];
    match kind.as_str() {
        "degrade" => Ok(FaultAction::Degrade(health_from_json(body)?)),
        "recalibrate" => {
            reject_unknown(body, &["duration_s"], "recalibrate")?;
            Ok(FaultAction::Recalibrate {
                duration_s: req_f64(body, "duration_s")?,
            })
        }
        other => Err(invalid(format!("unknown fault action {other:?}"))),
    }
}

fn faults_to_json(faults: &FaultSpec) -> Json {
    match faults {
        FaultSpec::Events(events) => Json::Obj(vec![(
            "events".into(),
            Json::Arr(
                events
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("at_s".into(), json::num(e.at_s)),
                            ("instance".into(), json::uint(e.instance)),
                            ("action".into(), action_to_json(&e.action)),
                        ])
                    })
                    .collect(),
            ),
        )]),
        FaultSpec::Chaos {
            kind,
            recalibration_s,
            seed,
        } => Json::Obj(vec![(
            "chaos".into(),
            Json::Obj(vec![
                ("kind".into(), json::str(kind.name())),
                ("recalibration_s".into(), json::num(*recalibration_s)),
                ("seed".into(), json::int(*seed)),
            ]),
        )]),
    }
}

fn faults_from_json(value: &Json) -> Result<FaultSpec> {
    let fields = value
        .as_obj()
        .ok_or_else(|| invalid("\"faults\" must be a JSON object".to_owned()))?;
    if fields.len() != 1 {
        return Err(invalid(
            "\"faults\" must have exactly one of: events, chaos".to_owned(),
        ));
    }
    let (kind, body) = &fields[0];
    match kind.as_str() {
        "events" => {
            let events = body
                .as_arr()
                .ok_or_else(|| invalid("\"events\" must be an array".to_owned()))?
                .iter()
                .map(|e| {
                    reject_unknown(e, &["at_s", "instance", "action"], "fault event")?;
                    Ok(FaultEvent {
                        at_s: req_f64(e, "at_s")?,
                        instance: e.get("instance").and_then(Json::as_usize).ok_or_else(|| {
                            invalid(
                                "fault event \"instance\" must be a non-negative integer"
                                    .to_owned(),
                            )
                        })?,
                        action: action_from_json(e.get("action").ok_or_else(|| {
                            invalid("fault event missing \"action\"".to_owned())
                        })?)?,
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(FaultSpec::Events(events))
        }
        "chaos" => {
            reject_unknown(body, &["kind", "recalibration_s", "seed"], "chaos")?;
            let kind_name = req_str(body, "kind")?;
            let kind = ChaosKind::from_name(&kind_name).ok_or_else(|| {
                invalid(format!(
                    "unknown chaos kind {kind_name:?} (known: {})",
                    ChaosKind::ALL
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?;
            let defaults = ChaosConfig::default();
            Ok(FaultSpec::Chaos {
                kind,
                recalibration_s: opt_f64(body, "recalibration_s")?
                    .unwrap_or(defaults.recalibration_s),
                seed: opt_u64(body, "seed")?.unwrap_or(defaults.seed),
            })
        }
        other => Err(invalid(format!("unknown faults key {other:?}"))),
    }
}

// ---- control -------------------------------------------------------

fn control_to_json(control: &ControlSpec) -> Json {
    let policy = match control.policy {
        PolicySpec::Hold => Json::Obj(vec![("kind".into(), json::str("hold"))]),
        PolicySpec::Reactive {
            scale_up_load,
            scale_down_load,
            p99_guard_frac,
            accuracy_guard,
            cooldown_windows,
        } => Json::Obj(vec![
            ("kind".into(), json::str("reactive")),
            ("scale_up_load".into(), json::num(scale_up_load)),
            ("scale_down_load".into(), json::num(scale_down_load)),
            ("p99_guard_frac".into(), json::num(p99_guard_frac)),
            ("accuracy_guard".into(), json::num(accuracy_guard)),
            (
                "cooldown_windows".into(),
                json::int(u64::from(cooldown_windows)),
            ),
        ]),
        PolicySpec::Predictive {
            alpha,
            beta,
            target_util,
            p99_guard_frac,
            accuracy_guard,
        } => Json::Obj(vec![
            ("kind".into(), json::str("predictive")),
            ("alpha".into(), json::num(alpha)),
            ("beta".into(), json::num(beta)),
            ("target_util".into(), json::num(target_util)),
            ("p99_guard_frac".into(), json::num(p99_guard_frac)),
            ("accuracy_guard".into(), json::num(accuracy_guard)),
        ]),
    };
    let cfg = &control.config;
    Json::Obj(vec![
        ("policy".into(), policy),
        (
            "config".into(),
            Json::Obj(vec![
                ("window_s".into(), json::num(cfg.window_s)),
                ("boot_s".into(), json::num(cfg.boot_s)),
                ("min_active".into(), json::uint(cfg.min_active)),
                ("initial_active".into(), json::uint(cfg.initial_active)),
                ("max_step".into(), json::uint(cfg.max_step)),
                ("idle_power_w".into(), json::num(cfg.idle_power_w)),
            ]),
        ),
    ])
}

fn control_from_json(value: &Json) -> Result<ControlSpec> {
    reject_unknown(value, &["policy", "config"], "control")?;
    let policy_value = value
        .get("policy")
        .ok_or_else(|| invalid("control missing \"policy\"".to_owned()))?;
    reject_unknown(
        policy_value,
        &[
            "kind",
            "scale_up_load",
            "scale_down_load",
            "p99_guard_frac",
            "accuracy_guard",
            "cooldown_windows",
            "alpha",
            "beta",
            "target_util",
        ],
        "control policy",
    )?;
    let kind = req_str(policy_value, "kind")?;
    let mut policy = PolicySpec::from_kind(&kind).ok_or_else(|| {
        invalid(format!(
            "unknown control policy {kind:?} (known: hold, reactive, predictive)"
        ))
    })?;
    match &mut policy {
        PolicySpec::Hold => {}
        PolicySpec::Reactive {
            scale_up_load,
            scale_down_load,
            p99_guard_frac,
            accuracy_guard,
            cooldown_windows,
        } => {
            *scale_up_load = opt_f64(policy_value, "scale_up_load")?.unwrap_or(*scale_up_load);
            *scale_down_load =
                opt_f64(policy_value, "scale_down_load")?.unwrap_or(*scale_down_load);
            *p99_guard_frac = opt_f64(policy_value, "p99_guard_frac")?.unwrap_or(*p99_guard_frac);
            *accuracy_guard = opt_f64(policy_value, "accuracy_guard")?.unwrap_or(*accuracy_guard);
            if let Some(w) = opt_u64(policy_value, "cooldown_windows")? {
                *cooldown_windows = u32::try_from(w)
                    .map_err(|_| invalid(format!("cooldown_windows {w} out of range")))?;
            }
        }
        PolicySpec::Predictive {
            alpha,
            beta,
            target_util,
            p99_guard_frac,
            accuracy_guard,
        } => {
            *alpha = opt_f64(policy_value, "alpha")?.unwrap_or(*alpha);
            *beta = opt_f64(policy_value, "beta")?.unwrap_or(*beta);
            *target_util = opt_f64(policy_value, "target_util")?.unwrap_or(*target_util);
            *p99_guard_frac = opt_f64(policy_value, "p99_guard_frac")?.unwrap_or(*p99_guard_frac);
            *accuracy_guard = opt_f64(policy_value, "accuracy_guard")?.unwrap_or(*accuracy_guard);
        }
    }
    let config = match value.get("config") {
        None => ControlConfig::default(),
        Some(v) => {
            reject_unknown(
                v,
                &[
                    "window_s",
                    "boot_s",
                    "min_active",
                    "initial_active",
                    "max_step",
                    "idle_power_w",
                ],
                "control config",
            )?;
            let d = ControlConfig::default();
            ControlConfig {
                window_s: opt_f64(v, "window_s")?.unwrap_or(d.window_s),
                boot_s: opt_f64(v, "boot_s")?.unwrap_or(d.boot_s),
                min_active: opt_usize(v, "min_active")?.unwrap_or(d.min_active),
                initial_active: opt_usize(v, "initial_active")?.unwrap_or(d.initial_active),
                max_step: opt_usize(v, "max_step")?.unwrap_or(d.max_step),
                idle_power_w: opt_f64(v, "idle_power_w")?.unwrap_or(d.idle_power_w),
            }
        }
    };
    Ok(ControlSpec { policy, config })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "demo".to_owned(),
            classes: vec![
                ClassSpec {
                    network: "alexnet".to_owned(),
                    slo_s: 0.004,
                    weight: 1.0,
                    min_accuracy: 0.0,
                },
                ClassSpec {
                    network: "lenet5".to_owned(),
                    slo_s: 0.001,
                    weight: 3.0,
                    min_accuracy: 0.0,
                },
            ],
            arrival: ArrivalProcess::Poisson { rate_rps: 45_000.0 },
            policy: Policy::NetworkAffinity,
            instances: vec![InstanceSpec::defaults(4)],
            max_batch: 32,
            queue_capacity: 100_000,
            resident_weights: true,
            accuracy_routing: false,
            horizon_s: 0.05,
            seed: 7,
            limits: DegradationLimits::default(),
            faults: FaultSpec::Chaos {
                kind: ChaosKind::HeatWave,
                recalibration_s: 2e-3,
                seed: 7,
            },
            control: None,
        }
    }

    #[test]
    fn round_trip_is_lossless_and_deterministic() {
        let spec = demo_spec();
        let rendered = spec.render();
        let back = ScenarioSpec::parse(&rendered).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.render(), rendered, "render must be deterministic");
    }

    #[test]
    fn compiled_chaos_reference_matches_hand_built_scenario() {
        let spec = demo_spec();
        let compiled = spec.compile().unwrap();
        let expected = FleetScenario {
            classes: vec![
                NetworkClass::alexnet(0.004, 1.0),
                NetworkClass::lenet5(0.001, 3.0),
            ],
            arrival: ArrivalProcess::Poisson { rate_rps: 45_000.0 },
            policy: Policy::NetworkAffinity,
            instances: vec![PcnnaConfig::default(); 4],
            max_batch: 32,
            queue_capacity: 100_000,
            horizon_s: 0.05,
            seed: 7,
            faults: chaos_timeline(
                ChaosKind::HeatWave,
                &vec![PcnnaConfig::default(); 4],
                0.05,
                &ChaosConfig {
                    recalibration_s: 2e-3,
                    seed: 7,
                    ..ChaosConfig::default()
                },
            ),
            ..FleetScenario::default()
        };
        assert_eq!(compiled.scenario, expected);
    }

    #[test]
    fn explicit_events_round_trip_and_compile() {
        let mut spec = demo_spec();
        spec.faults = FaultSpec::Events(vec![
            FaultEvent {
                at_s: 0.01,
                instance: 0,
                action: FaultAction::Fail,
            },
            FaultEvent {
                at_s: 0.02,
                instance: 0,
                action: FaultAction::Recalibrate { duration_s: 2e-3 },
            },
            FaultEvent {
                at_s: 0.015,
                instance: 3,
                action: FaultAction::Degrade(HealthState {
                    ambient_delta_k: 0.1,
                    ..HealthState::nominal()
                }),
            },
        ]);
        let back = ScenarioSpec::parse(&spec.render()).unwrap();
        assert_eq!(back, spec);
        let compiled = spec.compile().unwrap();
        assert_eq!(compiled.scenario.faults.len(), 3);
    }

    #[test]
    fn control_section_round_trips_and_builds() {
        let mut spec = demo_spec();
        spec.control = Some(ControlSpec {
            policy: PolicySpec::Reactive {
                scale_up_load: 0.8,
                scale_down_load: 0.3,
                p99_guard_frac: 0.7,
                accuracy_guard: 0.85,
                cooldown_windows: 3,
            },
            config: ControlConfig {
                initial_active: 4,
                ..ControlConfig::default()
            },
        });
        let back = ScenarioSpec::parse(&spec.render()).unwrap();
        assert_eq!(back, spec);
        let policy = back.control.as_ref().unwrap().policy.build();
        assert_eq!(policy.name(), "reactive");
        for kind in ["hold", "reactive", "predictive"] {
            let p = PolicySpec::from_kind(kind).unwrap();
            assert_eq!(p.kind(), kind);
            assert_eq!(p.build().name(), kind);
        }
        assert!(PolicySpec::from_kind("nope").is_none());
    }

    #[test]
    fn accuracy_slos_round_trip_and_compile() {
        let mut spec = demo_spec();
        spec.accuracy_routing = true;
        spec.classes[0].min_accuracy = 0.85;
        spec.control = Some(ControlSpec {
            policy: PolicySpec::Predictive {
                alpha: 0.4,
                beta: 0.2,
                target_util: 0.6,
                p99_guard_frac: 0.7,
                accuracy_guard: 0.8,
            },
            config: ControlConfig::default(),
        });
        let rendered = spec.render();
        assert!(rendered.contains("\"min_accuracy\""));
        assert!(rendered.contains("\"accuracy_routing\": true"));
        assert!(rendered.contains("\"accuracy_guard\""));
        let back = ScenarioSpec::parse(&rendered).unwrap();
        assert_eq!(back, spec);
        let compiled = spec.compile().unwrap();
        assert!(compiled.scenario.accuracy_routing);
        assert_eq!(compiled.scenario.classes[0].min_accuracy, 0.85);
        assert_eq!(compiled.scenario.classes[1].min_accuracy, 0.0);
        // a spec that omits the fields defaults them off
        let bare = demo_spec();
        assert!(!bare.compile().unwrap().scenario.accuracy_routing);
    }

    #[test]
    fn out_of_range_min_accuracy_names_the_field() {
        let mut spec = demo_spec();
        spec.classes[1].min_accuracy = 1.5;
        let err = spec.validate().unwrap_err().to_string();
        assert!(
            err.contains("min_accuracy") && err.contains("lenet5"),
            "error must name the field and class: {err}"
        );
        let mut spec = demo_spec();
        spec.control = Some(ControlSpec {
            policy: PolicySpec::Reactive {
                scale_up_load: 0.75,
                scale_down_load: 0.35,
                p99_guard_frac: 0.7,
                accuracy_guard: -0.2,
                cooldown_windows: 2,
            },
            config: ControlConfig::default(),
        });
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("accuracy_guard"), "got: {err}");
    }

    #[test]
    fn strict_parsing_rejects_malformed_specs() {
        let good = demo_spec().render();
        // unknown top-level key
        let with_unknown = good.replace("\"seed\"", "\"sneed\"");
        assert!(ScenarioSpec::parse(&with_unknown).is_err());
        // unknown network
        let bad_net = good.replace("\"alexnet\"", "\"resnet50\"");
        assert!(ScenarioSpec::parse(&bad_net).is_err());
        // missing required field
        let v = Json::parse(&good).unwrap();
        let Json::Obj(fields) = v else { unreachable!() };
        let without_arrival: Vec<_> = fields
            .iter()
            .filter(|(k, _)| k != "arrival")
            .cloned()
            .collect();
        assert!(ScenarioSpec::from_json(&Json::Obj(without_arrival)).is_err());
        // negative time, out-of-range instance, non-monotone order
        for (patch, label) in [
            (
                r#"{"events":[{"at_s":-1.0,"instance":0,"action":"fail"}]}"#,
                "negative time",
            ),
            (
                r#"{"events":[{"at_s":0.01,"instance":9,"action":"fail"}]}"#,
                "instance range",
            ),
            (
                r#"{"events":[{"at_s":0.02,"instance":0,"action":"fail"},
                             {"at_s":0.01,"instance":0,"action":"fail"}]}"#,
                "monotone order",
            ),
        ] {
            let mut spec = demo_spec();
            let faults = Json::parse(patch).unwrap();
            spec.faults = match faults_from_json(&faults) {
                Ok(f) => f,
                Err(_) => continue, // rejected at parse: also a pass
            };
            assert!(spec.validate().is_err(), "{label} must be rejected");
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let ok = demo_spec();
        assert!(ok.validate().is_ok());
        let cases: Vec<(&str, ScenarioSpec)> = vec![
            (
                "empty name",
                ScenarioSpec {
                    name: String::new(),
                    ..ok.clone()
                },
            ),
            (
                "bad name",
                ScenarioSpec {
                    name: "no spaces".to_owned(),
                    ..ok.clone()
                },
            ),
            (
                "empty classes",
                ScenarioSpec {
                    classes: vec![],
                    ..ok.clone()
                },
            ),
            (
                "empty instances",
                ScenarioSpec {
                    instances: vec![],
                    ..ok.clone()
                },
            ),
            (
                "zero count",
                ScenarioSpec {
                    instances: vec![InstanceSpec::defaults(0)],
                    ..ok.clone()
                },
            ),
            (
                "zero batch",
                ScenarioSpec {
                    max_batch: 0,
                    ..ok.clone()
                },
            ),
            (
                "zero queue",
                ScenarioSpec {
                    queue_capacity: 0,
                    ..ok.clone()
                },
            ),
            (
                "inf horizon",
                ScenarioSpec {
                    horizon_s: f64::INFINITY,
                    ..ok.clone()
                },
            ),
            (
                "nan horizon",
                ScenarioSpec {
                    horizon_s: f64::NAN,
                    ..ok.clone()
                },
            ),
            (
                "bad slo",
                ScenarioSpec {
                    classes: vec![ClassSpec {
                        network: "lenet5".to_owned(),
                        slo_s: 0.0,
                        weight: 1.0,
                        min_accuracy: 0.0,
                    }],
                    ..ok.clone()
                },
            ),
            (
                "min_accuracy above 1",
                ScenarioSpec {
                    classes: vec![ClassSpec {
                        network: "lenet5".to_owned(),
                        slo_s: 0.001,
                        weight: 1.0,
                        min_accuracy: 1.5,
                    }],
                    ..ok.clone()
                },
            ),
            (
                "negative min_accuracy",
                ScenarioSpec {
                    classes: vec![ClassSpec {
                        network: "lenet5".to_owned(),
                        slo_s: 0.001,
                        weight: 1.0,
                        min_accuracy: -0.1,
                    }],
                    ..ok.clone()
                },
            ),
            (
                "bad chaos recal",
                ScenarioSpec {
                    faults: FaultSpec::Chaos {
                        kind: ChaosKind::HeatWave,
                        recalibration_s: 0.0,
                        seed: 0,
                    },
                    ..ok.clone()
                },
            ),
            (
                "bad arrival",
                ScenarioSpec {
                    arrival: ArrivalProcess::Poisson { rate_rps: 0.0 },
                    ..ok.clone()
                },
            ),
        ];
        for (label, spec) in cases {
            assert!(spec.validate().is_err(), "{label} must be rejected");
        }
    }

    #[test]
    fn heterogeneous_instance_groups_expand_in_order() {
        let mut spec = demo_spec();
        spec.instances = vec![
            InstanceSpec {
                input_dacs: Some(40),
                ..InstanceSpec::defaults(1)
            },
            InstanceSpec::defaults(2),
        ];
        let compiled = spec.compile().unwrap();
        assert_eq!(compiled.scenario.instances.len(), 3);
        assert_eq!(compiled.scenario.instances[0].n_input_dacs, 40);
        assert_eq!(compiled.scenario.instances[1].n_input_dacs, 10);
        assert_eq!(spec.n_instances(), 3);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            Policy::Fifo,
            Policy::EarliestDeadlineFirst,
            Policy::NetworkAffinity,
        ] {
            assert_eq!(policy_from_name(policy_name(p)), Some(p));
        }
        assert_eq!(policy_from_name("lifo"), None);
    }
}
